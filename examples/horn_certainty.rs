//! The P-complete case solved through dual-Horn SAT (Proposition 17), on
//! the §4 block-chain family: certainty propagates block to block, which is
//! exactly unit propagation in the dual-Horn encoding.
//!
//! Since the unified [`Solver`] landed, no caller has to know that: the
//! problem is NL-hard by Theorem 12, matches Proposition 17's shape, and
//! routes to the dual-Horn backend automatically — this example builds the
//! solver once and streams the whole §4 family through `solve`/`solve_many`,
//! cross-checking the encoding internals and the exhaustive oracle.
//!
//! Run with: `cargo run --example horn_certainty`

use cqa::prelude::*;
use cqa::solvers::prop17;
use cqa_gen::{block_chain, BlockChainConfig};
use std::sync::Arc;

fn main() {
    println!("§4 block-chain database, n = 3, closing value □ = c:");
    let bc = block_chain(BlockChainConfig {
        n: 3,
        closing_is_c: true,
        with_anchor: true,
    });
    for fact in bc.db.facts() {
        println!("  {fact}");
    }

    // One solver for the whole family: classified once, routed to the
    // polynomial-time backend (Theorem 12 says NL-hard, so no FO plan
    // exists — the router recognizes Proposition 17's shape instead).
    let problem = Problem::new(bc.query.clone(), bc.fks.clone()).unwrap();
    let solver = Solver::new(problem).expect("poly-time shape needs no fallback opt-in");
    println!("\nroute: {}", solver.route());
    assert_eq!(solver.route().kind(), RouteKind::PolyTime);

    // The encoding behind the route, for the curious.
    let formula = prop17::build_formula(&bc.db, Cst::new("c"));
    println!(
        "dual-Horn encoding: {} clauses over the chain values; satisfiable = {}",
        formula.len(),
        formula.satisfiable()
    );
    let verdict = solver.solve(&bc.db);
    println!("verdict: {verdict} (paper: yes-instance iff □ = c)");
    assert!(verdict.is_certain());
    assert_eq!(verdict.provenance.backend, BackendKind::DualHorn);

    // The three §4 variants as one lazy batch, cross-checked against the
    // exhaustive oracle at n = 2.
    println!("\nvariants at n = 2 (small enough for the ⊕-repair oracle):");
    let oracle = CertaintyOracle::new();
    let configs = [
        ("□ = c, with O(1)", BlockChainConfig { n: 2, closing_is_c: true, with_anchor: true }),
        ("□ = d, with O(1)", BlockChainConfig { n: 2, closing_is_c: false, with_anchor: true }),
        ("□ = c, without O(1)", BlockChainConfig { n: 2, closing_is_c: true, with_anchor: false }),
    ];
    let chains: Vec<_> = configs.iter().map(|(_, cfg)| block_chain(*cfg)).collect();
    let dbs: Vec<Instance> = chains.iter().map(|bc| bc.db.clone()).collect();
    for ((label, _), (bc, verdict)) in configs
        .iter()
        .zip(chains.iter().zip(solver.solve_many(&dbs)))
    {
        let fast = verdict.as_bool().expect("poly backends always decide");
        let slow = oracle
            .is_certain(&bc.db, &bc.query, &bc.fks)
            .as_bool()
            .expect("small instance");
        println!(
            "  {label:<22} solver: {fast:5}  oracle: {slow:5}  expected: {:5}",
            bc.expected_certain
        );
        assert_eq!(fast, slow);
        assert_eq!(fast, bc.expected_certain);
    }

    // Scaling: linear-time solving of a P-complete problem family while the
    // exhaustive oracle is exponential (don't try it at n = 4096). The
    // verdict's provenance carries the per-call wall time.
    println!("\nchain length sweep (dual-Horn backend via the solver):");
    for n in [64usize, 512, 4096, 32768] {
        let bc = block_chain(BlockChainConfig {
            n,
            closing_is_c: true,
            with_anchor: true,
        });
        let verdict = solver.solve(&bc.db);
        println!(
            "  n = {n:>6}: {:>6} facts solved in {:?} → {}",
            bc.db.len(),
            verdict.provenance.elapsed,
            verdict.certainty
        );
        assert!(verdict.is_certain());
    }

    // The solver is shape-generic: the same problem under renamed
    // relations routes identically (no hardcoded "N"/"O" anywhere).
    let s = Arc::new(parse_schema("Emp[3,1] Dept[1,1]").unwrap());
    let q = parse_query(&s, "Emp(x,'hq',y), Dept(y)").unwrap();
    let fks = parse_fks(&s, "Emp[3] -> Dept").unwrap();
    let renamed = Solver::new(Problem::new(q, fks).unwrap()).unwrap();
    let db = parse_instance(&s, "Emp(e1,hq,d1) Dept(d1)").unwrap();
    println!("\nrenamed relations: {} → {}", renamed.route(), renamed.solve(&db).certainty);
    assert!(renamed.solve(&db).is_certain());
}
