//! The P-complete case solved through dual-Horn SAT (Proposition 17), on
//! the §4 block-chain family: certainty propagates block to block, which is
//! exactly unit propagation in the dual-Horn encoding.
//!
//! Run with: `cargo run --example horn_certainty`

use cqa::prelude::*;
use cqa::solvers::prop17;
use cqa_gen::{block_chain, BlockChainConfig};

fn main() {
    println!("§4 block-chain database, n = 3, closing value □ = c:");
    let bc = block_chain(BlockChainConfig {
        n: 3,
        closing_is_c: true,
        with_anchor: true,
    });
    for fact in bc.db.facts() {
        println!("  {fact}");
    }

    let formula = prop17::build_formula(&bc.db, Cst::new("c"));
    println!(
        "\ndual-Horn encoding: {} clauses over the chain values; satisfiable = {}",
        formula.len(),
        formula.satisfiable()
    );
    let certain = prop17::certain(&bc.db, Cst::new("c"));
    println!("certain = {certain} (paper: yes-instance iff □ = c)");
    assert!(certain);

    // The three §4 variants, cross-checked against the exhaustive oracle.
    println!("\nvariants at n = 2 (small enough for the ⊕-repair oracle):");
    let oracle = CertaintyOracle::new();
    for (label, cfg) in [
        ("□ = c, with O(1)", BlockChainConfig { n: 2, closing_is_c: true, with_anchor: true }),
        ("□ = d, with O(1)", BlockChainConfig { n: 2, closing_is_c: false, with_anchor: true }),
        ("□ = c, without O(1)", BlockChainConfig { n: 2, closing_is_c: true, with_anchor: false }),
    ] {
        let bc = block_chain(cfg);
        let fast = prop17::certain(&bc.db, Cst::new("c"));
        let slow = oracle
            .is_certain(&bc.db, &bc.query, &bc.fks)
            .as_bool()
            .expect("small instance");
        println!(
            "  {label:<22} solver: {fast:5}  oracle: {slow:5}  expected: {:5}",
            bc.expected_certain
        );
        assert_eq!(fast, slow);
        assert_eq!(fast, bc.expected_certain);
    }

    // Scaling: linear-time solving of a P-complete problem family while the
    // exhaustive oracle is exponential (don't try it at n = 4096).
    println!("\nchain length sweep (dual-Horn solver):");
    for n in [64usize, 512, 4096, 32768] {
        let bc = block_chain(BlockChainConfig {
            n,
            closing_is_c: true,
            with_anchor: true,
        });
        let start = std::time::Instant::now();
        let fast = prop17::certain(&bc.db, Cst::new("c"));
        println!(
            "  n = {n:>6}: {:>6} facts solved in {:?} → certain = {fast}",
            bc.db.len(),
            start.elapsed()
        );
        assert!(fast);
    }
}
