//! The Figure 3 reduction: graph reachability inside consistent query
//! answering.
//!
//! Builds the paper's NL-hardness instances from directed graphs, decides
//! them with the polynomial dual-Horn solver (Proposition 17's engine), and
//! cross-checks small cases against the exhaustive ⊕-repair oracle.
//!
//! Run with: `cargo run --example reachability_hardness`

use cqa::prelude::*;
use cqa::solvers::fig3;
use cqa::solvers::reach::DiGraph;
use cqa_gen::graphs::{layered_dag, random_dag};

fn to_digraph(spec: &cqa_gen::graphs::GraphSpec) -> DiGraph {
    let mut g = DiGraph::new();
    for &v in &spec.vertices {
        g.add_vertex(v);
    }
    for &(u, v) in &spec.edges {
        g.add_edge(u, v);
    }
    g
}

fn main() {
    // The paper's own Figure 3 graph: s → 1, s → 2, 2 → t.
    let mut fig3_graph = DiGraph::new();
    let (s, t) = (0, 3);
    fig3_graph.add_edge(s, 1);
    fig3_graph.add_edge(s, 2);
    fig3_graph.add_edge(2, t);

    let inst = fig3::reduce(&fig3_graph, s, t);
    println!("Figure 3 reduction of the paper's example graph:");
    for fact in inst.db.facts() {
        println!("  {fact}");
    }
    let certain = cqa::solvers::prop17::certain(&inst.db, Cst::new("c"));
    println!(
        "  s ⇝ t in the graph: {}; database is a {}-instance of CERTAINTY(q, FK)",
        inst.reachable,
        if certain { "yes" } else { "no" },
    );
    assert_eq!(certain, !inst.reachable, "no-instance iff reachable");

    // Oracle cross-check on the same (small) instance.
    let oracle = CertaintyOracle::new();
    let oracle_says = oracle
        .is_certain(&inst.db, &inst.query, &inst.fks)
        .as_bool()
        .expect("small instance");
    assert_eq!(oracle_says, certain);
    println!("  exhaustive oracle agrees\n");

    // Random DAGs: the fast solver tracks ground-truth reachability exactly.
    println!("random DAGs (n = 14, p = 0.12), solver vs. reachability:");
    let mut disagreements = 0;
    for seed in 0..20u64 {
        let spec = random_dag(14, 0.12, seed);
        let g = to_digraph(&spec);
        let inst = fig3::reduce(&g, 0, 13);
        let fast = cqa::solvers::prop17::certain(&inst.db, Cst::new("c"));
        if fast == inst.reachable {
            disagreements += 1;
        }
    }
    println!("  20 seeds, {disagreements} disagreements (must be 0)");
    assert_eq!(disagreements, 0);

    // Scaling: reachability distance grows with the number of layers, and
    // the solver stays polynomial (the paper pins the problem NL-hard, i.e.
    // inherently sequential block-to-block propagation, yet easily P-time).
    println!("\nlayered DAGs (width 6, fanout 2): instance size vs. solve time");
    for layers in [4usize, 16, 64, 256] {
        let spec = layered_dag(layers, 6, 2, 99);
        let g = to_digraph(&spec);
        let target = layers * 6 - 1;
        let inst = fig3::reduce(&g, 0, target);
        let start = std::time::Instant::now();
        let fast = cqa::solvers::prop17::certain(&inst.db, Cst::new("c"));
        let elapsed = start.elapsed();
        println!(
            "  layers {layers:>4}: {:>6} facts, certain = {:5}, solved in {elapsed:?}",
            inst.db.len(),
            fast,
        );
        assert_eq!(fast, !inst.reachable);
    }
}
