//! A production-flavoured walk through the bibliography domain: scale the
//! Figure 1 scenario up, evaluate certain answers through the rewriting, and
//! contrast with the exponential repair-enumeration baseline.
//!
//! Run with: `cargo run --release --example bibliography`

use cqa::prelude::*;
use cqa_gen::bibliography::scaled_bibliography;

fn main() {
    // 200 papers × 3 authors; every 5th author has conflicting first names,
    // every 7th authorship dangles.
    let bib = scaled_bibliography(200, 3, 5, 7);
    println!(
        "scaled bibliography: {} facts ({} papers, {} authorships, {} author tuples)",
        bib.db.len(),
        bib.db.count_of(RelName::new("DOCS")),
        bib.db.count_of(RelName::new("R")),
        bib.db.count_of(RelName::new("AUTHORS")),
    );
    println!(
        "  primary-key violations: {} blocks; dangling authorships: {}",
        bib.db.pk_violations().len(),
        bib.db.dangling_facts(&bib.fks).len()
    );

    let problem = Problem::new(bib.query.clone(), bib.fks.clone()).unwrap();
    let engine = CertainEngine::try_new(problem.clone()).expect("q0 is FO-rewritable");
    let solver = Solver::new(problem).expect("q0 is FO-rewritable");

    let verdict = solver.solve(&bib.db);
    println!(
        "\ncertain answer to \"some 2016 paper has an author named Jeff\": {} ({:?} via {})",
        verdict.is_certain(),
        verdict.provenance.elapsed,
        verdict.provenance.backend,
    );

    // The repair count shows why enumeration is not an option: every
    // conflicting AUTHORS block doubles it.
    let repairs = cqa_repair::count_pk_repairs(&bib.db);
    println!("number of primary-key repairs alone: {repairs} (≈2^{:.0})", (repairs as f64).log2());
    println!("…and ⊕-repairs with foreign keys are more numerous still.");

    // The rewriting as SQL, ready for a relational engine.
    let (ddl, expr) = engine.sql().unwrap();
    println!("\n-- SQL deployment artifact --------------------------------");
    println!("{ddl}");
    let shown: String = expr.chars().take(240).collect();
    println!("SELECT … WHERE {shown}…");
}
