//! Quickstart: the paper's running example (Figure 1).
//!
//! An inconsistent bibliography database — one primary-key violation (two
//! first names for ORCiD o1) and one foreign-key violation (a dangling
//! authorship R(d1, o3)) — and the §1 query:
//!
//! > Does some paper of 2016 have an author with first name Jeff?
//!
//! The consistent answer is **no**: there is a repair in which it fails.
//!
//! Run with: `cargo run --example quickstart`

use cqa::prelude::*;
use cqa_gen::bibliography_scenario;

fn main() {
    let bib = bibliography_scenario();
    println!("Figure 1 database ({} facts):", bib.db.len());
    for fact in bib.db.facts() {
        println!("  {fact}");
    }
    println!();
    println!("primary-key violations : {:?}", bib.db.pk_violations());
    println!("dangling facts         : {:?}", bib.db.dangling_facts(&bib.fks));
    println!();

    let problem = Problem::new(bib.query.clone(), bib.fks.clone()).expect("FK₀ is about q₀");
    println!("problem: {problem}");

    // Theorem 12: classify and, since this is in FO, build the rewriting.
    match problem.classify() {
        Classification::Fo(plan) => {
            println!("classification: in FO — consistent FO rewriting constructed");
            println!();
            println!("{plan}");
            println!();
            let answer = plan.answer(&bib.db);
            println!("consistent answer on the Figure 1 database: {}", yn(answer));
            assert!(!answer, "the paper says the consistent answer is no");

            // Cross-check against the exhaustive ⊕-repair oracle.
            let oracle = CertaintyOracle::new();
            match oracle.is_certain(&bib.db, problem.query(), problem.fks()) {
                OracleOutcome::NotCertain(witness) => {
                    println!("oracle agrees; a falsifying ⊕-repair:");
                    for fact in witness.facts() {
                        println!("  {fact}");
                    }
                }
                other => panic!("oracle disagrees: {other}"),
            }

            // Repair the data: give o1 the first name Jeff everywhere and
            // resolve the dangling fact; the answer flips to yes.
            let mut clean = bib.db.clone();
            clean.remove(&parse_fact("AUTHORS(o1, 'Jeffrey', 'Ullman')").unwrap());
            clean.remove(&parse_fact("R(d1, o3)").unwrap());
            println!();
            println!(
                "after cleaning (drop the Jeffrey tuple and the dangling authorship): {}",
                yn(plan.answer(&clean))
            );
        }
        Classification::NotFo(reason) => panic!("unexpectedly hard: {reason}"),
    }
}

fn yn(b: bool) -> &'static str {
    if b {
        "yes (holds in every repair)"
    } else {
        "no (some repair falsifies it)"
    }
}
