//! Quickstart: the paper's running example (Figure 1), answered through
//! the unified [`Solver`] — one entry point that accepts any
//! `CERTAINTY(q, FK)` problem, classifies it once, and routes it to the
//! fastest sound backend.
//!
//! An inconsistent bibliography database — one primary-key violation (two
//! first names for ORCiD o1) and one foreign-key violation (a dangling
//! authorship R(d1, o3)) — and the §1 query:
//!
//! > Does some paper of 2016 have an author with first name Jeff?
//!
//! The consistent answer is **no**: there is a repair in which it fails.
//! The second half shows cross-class routing: the same `solve` call site
//! serves an FO-rewritable problem, a P-complete one (dual-Horn backend)
//! and a hard one (budgeted oracle, explicit opt-in).
//!
//! Run with: `cargo run --example quickstart`

use cqa::prelude::*;
use cqa_gen::bibliography_scenario;
use std::sync::Arc;

fn main() {
    let bib = bibliography_scenario();
    println!("Figure 1 database ({} facts):", bib.db.len());
    for fact in bib.db.facts() {
        println!("  {fact}");
    }
    println!();
    println!("primary-key violations : {:?}", bib.db.pk_violations());
    println!("dangling facts         : {:?}", bib.db.dangling_facts(&bib.fks));
    println!();

    let problem = Problem::new(bib.query.clone(), bib.fks.clone()).expect("FK₀ is about q₀");
    println!("problem: {problem}");

    // One builder call: Theorem 12 classification, backend selection and
    // plan compilation all happen here, exactly once.
    let solver = Solver::new(problem).expect("q₀ is FO-rewritable");
    println!("route  : {}", solver.route());
    assert_eq!(solver.route().kind(), RouteKind::Fo);
    println!();

    let verdict = solver.solve(&bib.db);
    println!("consistent answer on the Figure 1 database: {}", yn(&verdict));
    assert_eq!(verdict.as_bool(), Some(false), "the paper says no");
    assert_eq!(verdict.provenance.backend, BackendKind::CompiledPlan);

    // Cross-check against the exhaustive ⊕-repair oracle.
    let oracle = CertaintyOracle::new();
    match oracle.is_certain(&bib.db, solver.problem().query(), solver.problem().fks()) {
        OracleOutcome::NotCertain(witness) => {
            println!("oracle agrees; a falsifying ⊕-repair:");
            for fact in witness.facts() {
                println!("  {fact}");
            }
        }
        other => panic!("oracle disagrees: {other}"),
    }

    // Repair the data: give o1 the first name Jeff everywhere and resolve
    // the dangling fact; the answer flips to yes.
    let mut clean = bib.db.clone();
    clean.remove(&parse_fact("AUTHORS(o1, 'Jeffrey', 'Ullman')").unwrap()).unwrap();
    clean.remove(&parse_fact("R(d1, o3)").unwrap()).unwrap();
    println!();
    println!(
        "after cleaning (drop the Jeffrey tuple and the dangling authorship): {}",
        yn(&solver.solve(&clean))
    );
    assert!(solver.solve(&clean).is_certain());

    cross_class_routing();
}

/// The same `Solver::solve` call site serving all three complexity
/// classes — no per-class plumbing at the caller.
fn cross_class_routing() {
    println!();
    println!("━━ cross-class routing ━━");

    // P-complete (Proposition 17's shape, relations renamed): routed to
    // the dual-Horn backend, no FO rewriting exists.
    let s = Arc::new(parse_schema("Emp[3,1] Dept[1,1]").unwrap());
    let q = parse_query(&s, "Emp(x,'hq',y), Dept(y)").unwrap();
    let fks = parse_fks(&s, "Emp[3] -> Dept").unwrap();
    let solver = Solver::new(Problem::new(q, fks).unwrap()).unwrap();
    println!("P-complete problem  → {}", solver.route());
    let db = parse_instance(&s, "Emp(e1,hq,d1) Dept(d1)").unwrap();
    let verdict = solver.solve(&db);
    println!("  {} on {db}", verdict);
    assert_eq!(verdict.provenance.backend, BackendKind::DualHorn);
    assert!(verdict.is_certain());

    // Hard class (Example 13's q2 — not FO, not a known poly shape):
    // requires an explicit fallback opt-in, and the budget is honest.
    let s = Arc::new(parse_schema("N[3,1] O[2,1]").unwrap());
    let q = parse_query(&s, "N(x,'c',y), O(y,w)").unwrap();
    let fks = parse_fks(&s, "N[3] -> O").unwrap();
    let problem = Problem::new(q, fks).unwrap();
    match Solver::new(problem.clone()) {
        Err(SolverError::HardWithoutFallback(reason)) => {
            println!("hard problem        → rejected by default ({reason})");
        }
        other => panic!("expected a hard-class rejection, got {other:?}"),
    }
    let solver = Solver::builder(problem)
        .options(ExecOptions::default().with_fallback(SearchLimits::budgeted(10_000)))
        .build()
        .unwrap();
    println!("  with --fallback   → {}", solver.route());
    let db = parse_instance(&s, "N(k,c,a) O(a,3)").unwrap();
    let verdict = solver.solve(&db);
    println!("  {} on {db}", verdict);
    assert_eq!(verdict.provenance.backend, BackendKind::Oracle);
    assert_eq!(verdict.as_bool(), Some(true));
}

fn yn(v: &Verdict) -> String {
    match v.as_bool() {
        Some(true) => format!("yes (holds in every repair; via {})", v.provenance.backend),
        Some(false) => format!("no (some repair falsifies it; via {})", v.provenance.backend),
        None => format!("inconclusive ({v})"),
    }
}
