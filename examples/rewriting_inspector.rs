//! Inspecting consistent first-order rewritings: the reduction pipeline,
//! the flattened formula, and its SQL rendering.
//!
//! Reproduces the paper's §8 worked example — `q = {N(c,y), O(y), P(y)}`
//! with `FK = {N[2]→O}` rewrites to
//! `∃y (N(c,y) ∧ O(y)) ∧ ∀y (N(c,y) → P(y))` — and walks a larger pipeline
//! featuring every reduction lemma.
//!
//! Run with: `cargo run --example rewriting_inspector`

use cqa::prelude::*;
use std::sync::Arc;

fn main() {
    // ── The §8 example ────────────────────────────────────────────────────
    let schema = Arc::new(parse_schema("N[2,1] O[1,1] P[1,1]").unwrap());
    let q = parse_query(&schema, "N('c',y), O(y), P(y)").unwrap();
    let fks = parse_fks(&schema, "N[2] -> O").unwrap();
    let problem = Problem::new(q, fks).unwrap();
    let engine = CertainEngine::try_new(problem.clone()).unwrap();
    let solver = Solver::new(problem).unwrap();

    println!("━━━ §8 worked example");
    println!("{engine}");
    let formula = engine.formula().unwrap();
    println!("\nflattened rewriting: {formula}");
    println!("paper's rewriting  : ∃y (N(c,y) ∧ O(y)) ∧ ∀y (N(c,y) → P(y))");

    // The paper's asymmetry note: O is referenced by a strong key, P is not.
    // Its yes-instance flips to no when either P-fact is removed.
    let db = parse_instance(&schema, "N(c,a) N(c,b) O(a) P(a) P(b)").unwrap();
    println!(
        "\ninstance {{N(c,a), N(c,b), O(a), P(a), P(b)}} → {}",
        solver.solve(&db).is_certain()
    );
    for gone in ["P(a)", "P(b)"] {
        let mut smaller = db.clone();
        smaller.remove(&parse_fact(gone).unwrap()).unwrap();
        println!("  … without {gone} → {}", solver.solve(&smaller).is_certain());
    }

    let (ddl, expr) = engine.sql().unwrap();
    println!("\nSQL rendering:\n{ddl}\nSELECT CASE WHEN {expr} THEN 'certain' ELSE 'not certain' END;");

    // ── A pipeline featuring several lemmas ──────────────────────────────
    // Weak key (Lemma 36), an o→o key into a leaf (Lemma 37), and a d→d key
    // (Lemma 39) in one problem.
    let schema2 = Arc::new(parse_schema("A[2,1] B[2,1] C[1,1] D[2,1]").unwrap());
    let q2 = parse_query(&schema2, "A(x,y), B(y,z), C(y), D(z,'k')").unwrap();
    let fks2 = parse_fks(&schema2, "A[2] -> B, B[1] -> C, B[2] -> D").unwrap();
    let problem2 = Problem::new(q2, fks2).unwrap();
    println!("\n━━━ multi-lemma pipeline");
    match problem2.classify() {
        Classification::Fo(plan) => {
            println!("{plan}");
            println!(
                "\nflattened: {}",
                cqa::core::flatten::flatten(&plan).unwrap()
            );
        }
        Classification::NotFo(r) => println!("not in FO: {r}"),
    }
}
