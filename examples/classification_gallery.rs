//! A gallery of classifications (Theorem 12), centred on the paper's
//! Example 13: replacing a variable by a constant can move a problem across
//! the FO boundary in either direction — behaviour foreign keys exhibit and
//! primary keys alone do not.
//!
//! Run with: `cargo run --example classification_gallery`

use cqa::core::fk_types::type_table;
use cqa::prelude::*;
use cqa_attack::classify_pk;
use std::sync::Arc;

fn main() {
    let cases: Vec<(&str, &str, &str, &str)> = vec![
        (
            "Example 13, q1 (variable at (N,2))",
            "N[3,1] O[2,1]",
            "N(x,u,y), O(y,w)",
            "N[3] -> O",
        ),
        (
            "Example 13, q2 = q1[u→c]",
            "N[3,1] O[2,1]",
            "N(x,'c',y), O(y,w)",
            "N[3] -> O",
        ),
        (
            "Example 13, q3 = q1[u,w→c,c]",
            "N[3,1] O[2,1]",
            "N(x,'c',y), O(y,'c')",
            "N[3] -> O",
        ),
        (
            "§4 block-chain query",
            "N[3,1] O[1,1]",
            "N(x,'c',y), O(y)",
            "N[3] -> O",
        ),
        (
            "Proposition 16 (NL-complete)",
            "N[2,1] O[1,1]",
            "N(x,x), O(x)",
            "N[2] -> O",
        ),
        (
            "Example 11 (interference via (3b))",
            "Np[2,1] O[1,1] T[2,1]",
            "Np(x,y), O(y), T(x,y)",
            "Np[2] -> O",
        ),
        (
            "§6 cyclic attack graph (L-hard)",
            "R[2,1] S[2,1]",
            "R(x,y), S(y,x)",
            "R[2] -> S",
        ),
        (
            "§8 worked rewriting (Lemma 45)",
            "N[2,1] O[1,1] P[1,1]",
            "N('c',y), O(y), P(y)",
            "N[2] -> O",
        ),
    ];

    for (name, schema_text, query_text, fks_text) in cases {
        let schema = Arc::new(parse_schema(schema_text).unwrap());
        let q = parse_query(&schema, query_text).unwrap();
        let fks = parse_fks(&schema, fks_text).unwrap();
        let problem = Problem::new(q, fks).expect("about the query");

        println!("━━━ {name}");
        println!("    {problem}");
        println!("    primary keys only     : CERTAINTY(q) is {}", classify_pk(problem.query()));
        print!("    foreign-key types     :");
        for (fk, ty) in type_table(problem.query(), problem.fks()) {
            print!("  {fk} is {ty};");
        }
        println!();
        match problem.classify() {
            Classification::Fo(plan) => {
                println!("    with foreign keys     : in FO");
                match cqa::core::flatten::flatten(&plan) {
                    Ok(f) => println!("    rewriting             : {f}"),
                    Err(e) => println!("    rewriting             : (plan only: {e})"),
                }
            }
            Classification::NotFo(reason) => {
                println!("    with foreign keys     : NOT in FO — {reason}");
            }
        }
        println!();
    }
}
