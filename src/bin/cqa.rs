//! `cqa` — command-line front end for consistent query answering with
//! primary keys and unary foreign keys.
//!
//! ```text
//! cqa classify --schema "N[3,1] O[2,1]" --query "N(x,'c',y), O(y,w)" --fks "N[3] -> O"
//! cqa rewrite  --schema … --query … --fks …            # print plan + formula
//! cqa sql      --schema … --query … --fks …            # rewriting as SQL
//! cqa solve    --schema … --query … --fks … --db db.txt  # unified solver (any class)
//! cqa answer   --schema … --query … --fks … --db db.txt  # FO-only legacy path
//! cqa oracle   --schema … --query … --fks … --db db.txt  # exhaustive check
//! cqa emit     --schema … --query … --fks … --db db.txt  # self-contained Datalog/SQL artifact
//! cqa analyze  --schema … --query … [--fks …]            # static IR audit + read-set
//! cqa analyze  --problem file.problem                    # same, from a problem file
//! cqa analyze  --fixture list | --fixture NAME           # built-in malformed IR
//! cqa analyze  --datalog artifact.dl                     # audit an emitted Datalog program
//! cqa serve    --socket /tmp/cqa.sock [--metrics-out m.json]  # persistent service
//! cqa request  --socket /tmp/cqa.sock --op ping          # one-shot protocol client
//! ```
//!
//! `emit` compiles the problem's route over one database into a
//! **self-contained artifact** (`--format datalog|sql`, default
//! `datalog`): DDL/facts plus the certainty program, runnable with no part
//! of this codebase present. `--out PATH` writes it to a file (default
//! stdout); `--execute` additionally runs a Datalog artifact through the
//! vendored semi-naïve evaluator and exits by its verdict. Problems whose
//! only route is the budgeted oracle have no polynomial-size artifact and
//! exit 4. Every command accepts `--problem file.problem` in place of the
//! `--schema`/`--query`/`--fks` flags; a `db:` line in the file supplies
//! an inline database (`--db` overrides it).
//!
//! `solve` routes the problem to its best backend (compiled FO plan,
//! dual-Horn / reachability poly-time solver, or — with
//! `--fallback-budget N` — the budgeted exhaustive oracle) and prints the
//! verdict with provenance. `--threads N` pins the sharding width
//! (otherwise `CQA_THREADS`, resolved once); `--materialized` forces the
//! interpretive FO evaluator; `--evaluator auto|backtracking|semijoin`
//! pins how acyclic residual conjunctions execute (otherwise
//! `CQA_EVALUATOR`, resolved once).
//!
//! `serve` runs the persistent solver service (`cqa_serve`): a
//! line-delimited JSON protocol on `--socket PATH` (Unix domain) or
//! `--tcp ADDR`, with an LRU plan cache (`--cache N` entries), admission
//! control (`--max-facts N`; hard-class requests must carry a budget) and
//! a metrics dump on shutdown (`--metrics-out PATH`). Unlike every other
//! command, `serve` validates `CQA_THREADS`/`CQA_EVALUATOR` **strictly**
//! at startup and refuses to start on unparsable values — a long-lived
//! server must not silently degrade to defaults. `request` is the
//! matching one-shot client: `--op ping|solve|metrics|shutdown` (with the
//! usual problem flags plus `--db-text` for an inline database), or a raw
//! protocol line via `--line JSON`.
//!
//! Databases are text files of facts (`R(a,1); S(1,x)` — see
//! `cqa_model::parser`).
//!
//! ## Exit codes
//!
//! | code | meaning |
//! |------|---------|
//! | 0 | yes / certain (`classify`: in FO) |
//! | 1 | no / not certain (`classify`: not in FO) |
//! | 2 | usage or input error (including `serve` env-validation refusal) |
//! | 3 | inconclusive (fallback budget exhausted) or request rejected by admission control |
//! | 4 | `answer`: the problem is **not FO-rewritable** — the query/FK pair is the wrong shape for `answer`, use `solve`. `emit`: the problem routes only to the budgeted oracle, so **no polynomial-size artifact exists**. Distinct from 1 so scripts can tell "the answer is no" from "wrong tool / no artifact". |

use cqa::core::flatten::flatten;
use cqa::prelude::*;
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    command: String,
    schema: Option<String>,
    query: Option<String>,
    fks: String,
    db: Option<String>,
    problem_file: Option<String>,
    fixture: Option<String>,
    datalog_file: Option<String>,
    format: Option<Format>,
    out: Option<String>,
    execute: bool,
    fallback_budget: Option<u64>,
    threads: Option<usize>,
    evaluator: Option<JoinStrategy>,
    materialized: bool,
    // serve / request flags
    socket: Option<String>,
    tcp: Option<String>,
    cache: Option<usize>,
    max_facts: Option<usize>,
    metrics_out: Option<String>,
    op: Option<String>,
    db_text: Option<String>,
    line: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(usage)?;
    let mut args = Args {
        command,
        schema: None,
        query: None,
        fks: String::new(),
        db: None,
        problem_file: None,
        fixture: None,
        datalog_file: None,
        format: None,
        out: None,
        execute: false,
        fallback_budget: None,
        threads: None,
        evaluator: None,
        materialized: false,
        socket: None,
        tcp: None,
        cache: None,
        max_facts: None,
        metrics_out: None,
        op: None,
        db_text: None,
        line: None,
    };
    while let Some(flag) = argv.next() {
        if flag == "--materialized" {
            args.materialized = true;
            continue;
        }
        if flag == "--execute" {
            args.execute = true;
            continue;
        }
        let value = argv
            .next()
            .ok_or_else(|| format!("missing value for {flag}"))?;
        match flag.as_str() {
            "--schema" => args.schema = Some(value),
            "--query" => args.query = Some(value),
            "--fks" => args.fks = value,
            "--db" => args.db = Some(value),
            "--problem" => args.problem_file = Some(value),
            "--fixture" => args.fixture = Some(value),
            "--datalog" => args.datalog_file = Some(value),
            "--format" => args.format = Some(value.parse().map_err(|e| format!("--format: {e}"))?),
            "--out" => args.out = Some(value),
            "--fallback-budget" => {
                args.fallback_budget =
                    Some(value.parse().map_err(|e| format!("--fallback-budget: {e}"))?)
            }
            "--threads" => {
                args.threads = Some(value.parse().map_err(|e| format!("--threads: {e}"))?)
            }
            "--evaluator" => {
                args.evaluator = Some(value.parse().map_err(|e| format!("--evaluator: {e}"))?)
            }
            "--socket" => args.socket = Some(value),
            "--tcp" => args.tcp = Some(value),
            "--cache" => {
                args.cache = Some(value.parse().map_err(|e| format!("--cache: {e}"))?)
            }
            "--max-facts" => {
                args.max_facts = Some(value.parse().map_err(|e| format!("--max-facts: {e}"))?)
            }
            "--metrics-out" => args.metrics_out = Some(value),
            "--op" => args.op = Some(value),
            "--db-text" => args.db_text = Some(value),
            "--line" => args.line = Some(value),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    Ok(args)
}

fn usage() -> String {
    "usage: cqa <classify|rewrite|sql|solve|answer|oracle|emit|analyze|serve|request> \
     --schema \"R[2,1] …\" --query \"R(x,y), …\" [--fks \"R[2] -> S, …\"] [--db facts.txt] \
     [--problem file.problem] [--fixture NAME|list] [--datalog artifact.dl] \
     [--fallback-budget N] [--threads N] [--evaluator auto|backtracking|semijoin] \
     [--materialized]\n\
     emit:    --format datalog|sql  [--out PATH] [--execute]  \
     (self-contained artifact; exit 4 when only the oracle route exists)\n\
     serve:   --socket PATH | --tcp ADDR  [--cache N] [--max-facts N] [--metrics-out PATH] \
     (refuses to start on invalid CQA_THREADS/CQA_EVALUATOR)\n\
     request: --socket PATH | --tcp ADDR  [--op ping|solve|emit|metrics|shutdown] [--db-text \"R(a,1) …\"] \
     [--line '{\"op\":…}']\n\
     exit codes: 0 yes/certain · 1 no/not-certain · 2 usage or input error · \
     3 inconclusive or rejected · 4 not-FO (answer) / no artifact (emit)"
        .to_string()
}

/// The CLI's outcome, mapped to exit codes in `main`.
enum Outcome {
    /// Yes / certain / in FO — exit 0.
    Yes,
    /// No / not certain / not in FO — exit 1.
    No,
    /// Budget exhausted or request rejected by admission control — exit 3.
    Inconclusive,
    /// `cqa answer` only: the problem is not FO-rewritable, so `answer`
    /// is the wrong tool (use `cqa solve`) — exit 4, distinct from the
    /// "certain no" exit 1.
    NotFo,
}

/// `cqa analyze`: the static IR auditor. Dispatched before the
/// `--schema`/`--query` requirement because the fixture and `--datalog`
/// modes need neither.
fn run_analyze(args: &Args) -> Result<Outcome, String> {
    if let Some(path) = &args.datalog_file {
        // Audit an emitted (or hand-written) Datalog artifact: parse,
        // then check range-restriction and stratifiability.
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let program = cqa::emit::datalog::Program::parse(&text)
            .map_err(|e| format!("{path}: {e}"))?;
        println!("datalog: {} rules", program.rules.len());
        let report = cqa::analyze::audit_program(&program);
        print!("{report}");
        return Ok(if report.is_clean() {
            Outcome::Yes
        } else {
            Outcome::No
        });
    }
    if let Some(name) = &args.fixture {
        if name == "list" {
            for f in cqa::analyze::fixtures::all() {
                println!("{:<26} [{}] {}", f.name, f.expect, f.describe);
            }
            return Ok(Outcome::Yes);
        }
        let f = cqa::analyze::fixtures::by_name(name)
            .ok_or_else(|| format!("unknown fixture `{name}` (see --fixture list)"))?;
        println!("fixture `{}`: {}", f.name, f.describe);
        print!("{}", f.audit());
        // Fixtures are malformed by construction: the audit must fail.
        return Ok(Outcome::No);
    }

    // `analyze` is static: a `db:` line in the problem file is ignored.
    let (schema_text, query_text, fks_text, _db) = problem_inputs(args)?;
    let schema = Arc::new(parse_schema(&schema_text).map_err(|e| e.to_string())?);
    let query = parse_query(&schema, &query_text).map_err(|e| e.to_string())?;
    let fks = parse_fks(&schema, &fks_text).map_err(|e| e.to_string())?;
    let problem = Problem::new(query, fks).map_err(|e| e.to_string())?;
    println!("problem: {problem}");

    match problem.classify() {
        Classification::Fo(plan) => {
            let compiled = CompiledPlan::compile(&plan).map_err(|e| e.to_string())?;
            println!("class: FO-rewritable (depth-{} reduction plan)", plan.depth());
            let report = compiled.audit();
            if !report.is_clean() {
                print!("{report}");
                return Ok(Outcome::No);
            }
            println!("{report}");
            println!("read-set: {}", compiled.read_set());
            Ok(Outcome::Yes)
        }
        Classification::NotFo(reason) => {
            // No compiled IR to audit — report the class and the coarse
            // (whole-relation) read-set the incremental solver falls back
            // to on this route.
            println!("class: not FO — {reason}");
            let mut rels: std::collections::BTreeSet<RelName> =
                problem.query().atoms().iter().map(|a| a.rel).collect();
            for fk in problem.fks().iter() {
                rels.insert(fk.from);
                rels.insert(fk.to);
            }
            println!("read-set (coarse): {}", ReadSet::whole_over(rels));
            Ok(Outcome::Yes)
        }
    }
}

/// Parses a `.problem` file: `schema:`, `query:`, optional `fks:` and
/// optional `db:` (inline facts) lines, with `#` comments and blank lines
/// ignored.
fn parse_problem_file(text: &str) -> Result<(String, String, String, Option<String>), String> {
    let (mut schema, mut query, mut fks, mut db) = (None, None, String::new(), None);
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match line.split_once(':') {
            Some(("schema", rest)) => schema = Some(rest.trim().to_string()),
            Some(("query", rest)) => query = Some(rest.trim().to_string()),
            Some(("fks", rest)) => fks = rest.trim().to_string(),
            Some(("db", rest)) => db = Some(rest.trim().to_string()),
            _ => return Err(format!("unrecognized line `{line}`")),
        }
    }
    Ok((
        schema.ok_or("missing `schema:` line")?,
        query.ok_or("missing `query:` line")?,
        fks,
        db,
    ))
}

/// Resolves the problem text from `--problem` and/or the explicit flags
/// (explicit flags win over file fields). The fourth component is the
/// file's inline `db:` facts, if any.
fn problem_inputs(args: &Args) -> Result<(String, String, String, Option<String>), String> {
    let file = match &args.problem_file {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            Some(parse_problem_file(&text).map_err(|e| format!("{path}: {e}"))?)
        }
        None => None,
    };
    let (f_schema, f_query, f_fks, f_db) = match file {
        Some((s, q, f, d)) => (Some(s), Some(q), Some(f), d),
        None => (None, None, None, None),
    };
    Ok((
        args.schema.clone().or(f_schema).ok_or("missing --schema")?,
        args.query.clone().or(f_query).ok_or("missing --query")?,
        if args.fks.is_empty() {
            f_fks.unwrap_or_default()
        } else {
            args.fks.clone()
        },
        f_db,
    ))
}

/// `cqa serve`: the persistent solver service. Validates the environment
/// **strictly** before binding — a long-lived server that silently mapped
/// `CQA_EVALUATOR=semijion` to `Auto` would serve every request with the
/// wrong evaluator until someone noticed; refusing to start is the only
/// honest behavior.
fn run_serve(args: &Args) -> Result<Outcome, String> {
    // Strict env validation (exit 2 on failure). The lenient, warn-once
    // readers used by `ExecOptions::default()` resolve the same values
    // once these checks pass.
    let env_threads = rayon_lite::env_threads().map_err(|e| format!("refusing to serve: {e}"))?;
    let env_join = JoinStrategy::try_from_env().map_err(|e| format!("refusing to serve: {e}"))?;

    let endpoint = cqa::serve::Endpoint::from_flags(args.socket.as_deref(), args.tcp.as_deref())?;
    let mut defaults = ExecOptions::default();
    if let Some(n) = args.threads.or(env_threads) {
        defaults = defaults.with_threads(n);
    }
    if let Some(join) = args.evaluator.or(env_join) {
        defaults = defaults.with_join(join);
    }
    if args.materialized {
        defaults.evaluator = Evaluator::Materialized;
    }
    if let Some(budget) = args.fallback_budget {
        defaults = defaults.with_fallback(SearchLimits::budgeted(budget));
    }
    let config = cqa::serve::ServeConfig {
        defaults,
        cache_capacity: args.cache.unwrap_or(64),
        max_facts: args.max_facts,
    };
    let service = Arc::new(cqa::serve::Service::new(config));
    eprintln!("cqa serve: listening on {endpoint}");
    cqa::serve::serve(
        &service,
        &endpoint,
        args.metrics_out.as_deref().map(std::path::Path::new),
    )
    .map_err(|e| format!("serve: {e}"))?;
    eprintln!(
        "cqa serve: shut down ({} cache hits, {} misses)",
        service.metrics().hits(),
        service.metrics().misses()
    );
    Ok(Outcome::Yes)
}

/// `cqa request`: one-shot protocol client. Builds the request line from
/// the usual problem flags (or takes it verbatim via `--line`), prints
/// the server's reply, and maps it onto the CLI exit codes.
fn run_request(args: &Args) -> Result<Outcome, String> {
    use serde_json::Value;
    let endpoint = cqa::serve::Endpoint::from_flags(args.socket.as_deref(), args.tcp.as_deref())?;
    let line = match &args.line {
        Some(line) => line.clone(),
        None => {
            let op = args.op.clone().unwrap_or_else(|| "solve".to_string());
            let mut fields = std::collections::BTreeMap::new();
            fields.insert("op".to_string(), Value::String(op.clone()));
            if op == "emit" {
                if let Some(format) = args.format {
                    fields.insert("format".to_string(), Value::String(format.to_string()));
                }
            }
            if op == "solve" || op == "emit" {
                let db_text = match (&args.db_text, &args.db) {
                    (Some(text), _) => text.clone(),
                    (None, Some(path)) => {
                        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?
                    }
                    (None, None) => return Err("missing --db or --db-text".to_string()),
                };
                fields.insert(
                    "schema".to_string(),
                    Value::String(args.schema.clone().ok_or("missing --schema")?),
                );
                fields.insert(
                    "query".to_string(),
                    Value::String(args.query.clone().ok_or("missing --query")?),
                );
                fields.insert("fks".to_string(), Value::String(args.fks.clone()));
                fields.insert("db".to_string(), Value::String(db_text));
                if let Some(join) = args.evaluator {
                    fields.insert("evaluator".to_string(), Value::String(join.to_string()));
                }
                if args.materialized {
                    fields.insert("materialized".to_string(), Value::Bool(true));
                }
                if let Some(n) = args.threads {
                    fields.insert("threads".to_string(), Value::Number(n as f64));
                }
                if let Some(b) = args.fallback_budget {
                    fields.insert("budget".to_string(), Value::Number(b as f64));
                }
            }
            serde_json::to_string(&Value::Object(fields)).expect("request serialization")
        }
    };
    let reply = cqa::serve::request(&endpoint, &line).map_err(|e| format!("request: {e}"))?;
    println!("{reply}");
    let parsed = serde_json::from_str(&reply).map_err(|e| format!("unparsable reply: {e}"))?;
    if parsed.get("ok").and_then(Value::as_bool) != Some(true) {
        if parsed.get("rejected").and_then(Value::as_bool) == Some(true) {
            return Ok(Outcome::Inconclusive);
        }
        return Err(parsed
            .get("error")
            .and_then(Value::as_str)
            .unwrap_or("request failed")
            .to_string());
    }
    match parsed.get("certainty").and_then(Value::as_str) {
        Some("certain") | None => Ok(Outcome::Yes),
        Some("not certain") => Ok(Outcome::No),
        _ => Ok(Outcome::Inconclusive),
    }
}

fn run() -> Result<Outcome, String> {
    let args = parse_args()?;
    if args.command == "analyze" {
        return run_analyze(&args);
    }
    if args.command == "serve" {
        return run_serve(&args);
    }
    if args.command == "request" {
        return run_request(&args);
    }
    let (schema_text, query_text, fks_text, inline_db) = problem_inputs(&args)?;
    let schema = Arc::new(parse_schema(&schema_text).map_err(|e| e.to_string())?);
    let query = parse_query(&schema, &query_text).map_err(|e| e.to_string())?;
    let fks = parse_fks(&schema, &fks_text).map_err(|e| e.to_string())?;
    let problem = Problem::new(query, fks).map_err(|e| e.to_string())?;

    let load_db = || -> Result<Instance, String> {
        let text = match (&args.db, &inline_db) {
            (Some(path), _) => std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?,
            (None, Some(inline)) => inline.clone(),
            (None, None) => return Err("missing --db (or a `db:` line in --problem)".to_string()),
        };
        parse_instance(&schema, &text).map_err(|e| e.to_string())
    };

    let yn = |b: bool| if b { Outcome::Yes } else { Outcome::No };

    match args.command.as_str() {
        "classify" => match problem.classify() {
            Classification::Fo(plan) => {
                println!("in FO — consistent first-order rewriting constructed");
                println!("{plan}");
                Ok(Outcome::Yes)
            }
            Classification::NotFo(reason) => {
                println!("not in FO — {reason}");
                Ok(Outcome::No)
            }
        },
        "rewrite" => match problem.classify() {
            Classification::Fo(plan) => {
                println!("{plan}");
                let f = flatten(&plan).map_err(|e| e.to_string())?;
                println!("\nflattened: {f}");
                println!("ascii    : {}", f.ascii());
                Ok(Outcome::Yes)
            }
            Classification::NotFo(reason) => {
                println!("not in FO — {reason}");
                Ok(Outcome::No)
            }
        },
        "sql" => {
            let engine = CertainEngine::try_new(problem).map_err(|r| r.to_string())?;
            let (ddl, expr) = engine.sql().map_err(|e| e.to_string())?;
            println!("{ddl}");
            println!("SELECT CASE WHEN {expr} THEN 1 ELSE 0 END AS certain;");
            Ok(Outcome::Yes)
        }
        "solve" => {
            let mut options = ExecOptions::default();
            if let Some(n) = args.threads {
                options = options.with_threads(n);
            }
            if let Some(join) = args.evaluator {
                options = options.with_join(join);
            }
            if args.materialized {
                options.evaluator = Evaluator::Materialized;
            }
            if let Some(budget) = args.fallback_budget {
                options = options.with_fallback(SearchLimits::budgeted(budget));
            }
            let solver = Solver::builder(problem)
                .options(options)
                .build()
                .map_err(|e| format!("{e}\n(hint: pass --fallback-budget N to opt in)"))?;
            println!("route: {}", solver.route());
            let db = load_db()?;
            if let Route::Fallback(fallback) = solver.route() {
                if !fallback.oracle().within_budget(&db, solver.problem().fks()) {
                    eprintln!(
                        "note: candidate space exceeds the fallback budget — expect an \
                         inconclusive verdict (raise --fallback-budget)"
                    );
                }
            }
            let verdict = solver.solve(&db);
            println!("{verdict}");
            match verdict.certainty {
                Certainty::Certain => Ok(Outcome::Yes),
                Certainty::NotCertain => Ok(Outcome::No),
                Certainty::Inconclusive => Ok(Outcome::Inconclusive),
            }
        }
        "emit" => {
            let format = args.format.unwrap_or(Format::Datalog);
            if args.execute && format != Format::Datalog {
                return Err("--execute runs the vendored Datalog evaluator; \
                            it requires --format datalog"
                    .to_string());
            }
            let mut options = ExecOptions::default();
            if let Some(budget) = args.fallback_budget {
                options = options.with_fallback(SearchLimits::budgeted(budget));
            }
            // Hard-class problems have no polynomial-size artifact whether
            // or not a fallback budget was supplied: exit 4 either way.
            let no_artifact = |reason: &dyn std::fmt::Display| {
                eprintln!(
                    "cannot emit: {reason} — the only route is the budgeted oracle, \
                     and there is no polynomial-size artifact for it"
                );
            };
            let solver = match Solver::builder(problem).options(options).build() {
                Ok(solver) => solver,
                Err(SolverError::HardWithoutFallback(reason)) => {
                    no_artifact(&reason);
                    return Ok(Outcome::NotFo);
                }
            };
            let db = load_db()?;
            let artifact = match solver.emit(&db, format) {
                Ok(artifact) => artifact,
                Err(EmitError::Spec(reason @ EmitSpecError::FallbackOnly)) => {
                    no_artifact(&reason);
                    return Ok(Outcome::NotFo);
                }
                Err(e) => return Err(e.to_string()),
            };
            match &args.out {
                Some(path) => {
                    std::fs::write(path, &artifact.text).map_err(|e| format!("{path}: {e}"))?;
                    eprintln!(
                        "wrote {} artifact (route: {}, goal: {}) to {path}",
                        artifact.format, artifact.route, artifact.goal
                    );
                }
                None => print!("{}", artifact.text),
            }
            if args.execute {
                let program = cqa::emit::datalog::Program::parse(&artifact.text)
                    .map_err(|e| format!("emitted artifact failed to re-parse: {e}"))?;
                let ev = evaluate(&program).map_err(|e| e.to_string())?;
                let holds = ev.holds(&artifact.goal);
                println!(
                    "executed: {} ({} facts derived, {} rounds)",
                    if holds { "certain" } else { "not certain" },
                    ev.derived(),
                    ev.rounds()
                );
                return Ok(yn(holds));
            }
            Ok(Outcome::Yes)
        }
        "answer" => {
            // The FO-only legacy path, now a thin alias of the solver's
            // FO route. Anything not FO exits 4 — NOT 1 (a certain "no")
            // and NOT 2 (a malformed invocation): the problem is valid,
            // `answer` is just the wrong tool for its class, and scripts
            // need to tell those apart.
            let not_fo = "use `cqa solve` (with --fallback-budget for the hard class) \
                          or `cqa oracle` for small instances";
            let mut options = ExecOptions::default();
            if let Some(join) = args.evaluator {
                options = options.with_join(join);
            }
            let solver = match Solver::builder(problem).options(options).build() {
                Ok(solver) => solver,
                Err(r) => {
                    eprintln!("not FO-rewritable ({r}); {not_fo}");
                    return Ok(Outcome::NotFo);
                }
            };
            if solver.route().kind() != RouteKind::Fo {
                eprintln!("not FO-rewritable (routed {}); {not_fo}", solver.route());
                return Ok(Outcome::NotFo);
            }
            let db = load_db()?;
            let ans = solver.solve(&db).is_certain();
            println!(
                "{}",
                if ans {
                    "certain: the query holds in every ⊕-repair"
                } else {
                    "not certain: some ⊕-repair falsifies the query"
                }
            );
            Ok(yn(ans))
        }
        "oracle" => {
            let db = load_db()?;
            // --fallback-budget raises/lowers the search limits here too,
            // so a user hitting "inconclusive" can re-budget in place.
            let oracle = match args.fallback_budget {
                Some(budget) => CertaintyOracle::with_limits(SearchLimits::budgeted(budget)),
                None => CertaintyOracle::new(),
            };
            match oracle.is_certain(&db, problem.query(), problem.fks()) {
                OracleOutcome::Certain => {
                    println!("certain (exhaustive search)");
                    Ok(Outcome::Yes)
                }
                OracleOutcome::NotCertain(witness) => {
                    println!("not certain; falsifying ⊕-repair: {witness}");
                    Ok(Outcome::No)
                }
                OracleOutcome::Inconclusive(why) => {
                    println!("inconclusive: {why} (raise --fallback-budget)");
                    Ok(Outcome::Inconclusive)
                }
            }
        }
        other => Err(format!("unknown command {other}\n{}", usage())),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(Outcome::Yes) => ExitCode::SUCCESS,
        Ok(Outcome::No) => ExitCode::from(1),
        Ok(Outcome::Inconclusive) => ExitCode::from(3),
        Ok(Outcome::NotFo) => ExitCode::from(4),
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}
