//! `cqa` — command-line front end for consistent query answering with
//! primary keys and unary foreign keys.
//!
//! ```text
//! cqa classify --schema "N[3,1] O[2,1]" --query "N(x,'c',y), O(y,w)" --fks "N[3] -> O"
//! cqa rewrite  --schema … --query … --fks …            # print plan + formula
//! cqa sql      --schema … --query … --fks …            # rewriting as SQL
//! cqa answer   --schema … --query … --fks … --db db.txt  # certain answer
//! cqa oracle   --schema … --query … --fks … --db db.txt  # exhaustive check
//! ```
//!
//! Databases are text files of facts (`R(a,1); S(1,x)` — see
//! `cqa_model::parser`). Exit code 0 = yes/FO, 1 = no/not-FO, 2 = usage or
//! input error.

use cqa::core::flatten::flatten;
use cqa::prelude::*;
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    command: String,
    schema: Option<String>,
    query: Option<String>,
    fks: String,
    db: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(usage)?;
    let mut args = Args {
        command,
        schema: None,
        query: None,
        fks: String::new(),
        db: None,
    };
    while let Some(flag) = argv.next() {
        let value = argv
            .next()
            .ok_or_else(|| format!("missing value for {flag}"))?;
        match flag.as_str() {
            "--schema" => args.schema = Some(value),
            "--query" => args.query = Some(value),
            "--fks" => args.fks = value,
            "--db" => args.db = Some(value),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    Ok(args)
}

fn usage() -> String {
    "usage: cqa <classify|rewrite|sql|answer|oracle> \
     --schema \"R[2,1] …\" --query \"R(x,y), …\" [--fks \"R[2] -> S, …\"] [--db facts.txt]"
        .to_string()
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let schema_text = args.schema.ok_or("missing --schema")?;
    let query_text = args.query.ok_or("missing --query")?;
    let schema = Arc::new(parse_schema(&schema_text).map_err(|e| e.to_string())?);
    let query = parse_query(&schema, &query_text).map_err(|e| e.to_string())?;
    let fks = parse_fks(&schema, &args.fks).map_err(|e| e.to_string())?;
    let problem = Problem::new(query, fks).map_err(|e| e.to_string())?;

    let load_db = || -> Result<Instance, String> {
        let path = args.db.clone().ok_or("missing --db")?;
        let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
        parse_instance(&schema, &text).map_err(|e| e.to_string())
    };

    match args.command.as_str() {
        "classify" => match problem.classify() {
            Classification::Fo(plan) => {
                println!("in FO — consistent first-order rewriting constructed");
                println!("{plan}");
                Ok(true)
            }
            Classification::NotFo(reason) => {
                println!("not in FO — {reason}");
                Ok(false)
            }
        },
        "rewrite" => match problem.classify() {
            Classification::Fo(plan) => {
                println!("{plan}");
                let f = flatten(&plan).map_err(|e| e.to_string())?;
                println!("\nflattened: {f}");
                println!("ascii    : {}", f.ascii());
                Ok(true)
            }
            Classification::NotFo(reason) => {
                println!("not in FO — {reason}");
                Ok(false)
            }
        },
        "sql" => {
            let engine = CertainEngine::try_new(problem).map_err(|r| r.to_string())?;
            let (ddl, expr) = engine.sql().map_err(|e| e.to_string())?;
            println!("{ddl}");
            println!("SELECT CASE WHEN {expr} THEN 1 ELSE 0 END AS certain;");
            Ok(true)
        }
        "answer" => {
            let engine = CertainEngine::try_new(problem).map_err(|r| {
                format!("not FO-rewritable ({r}); use `cqa oracle` for small instances")
            })?;
            let db = load_db()?;
            let ans = engine.answer(&db);
            println!(
                "{}",
                if ans {
                    "certain: the query holds in every ⊕-repair"
                } else {
                    "not certain: some ⊕-repair falsifies the query"
                }
            );
            Ok(ans)
        }
        "oracle" => {
            let db = load_db()?;
            let oracle = CertaintyOracle::new();
            match oracle.is_certain(&db, problem.query(), problem.fks()) {
                OracleOutcome::Certain => {
                    println!("certain (exhaustive search)");
                    Ok(true)
                }
                OracleOutcome::NotCertain(witness) => {
                    println!("not certain; falsifying ⊕-repair: {witness}");
                    Ok(false)
                }
                OracleOutcome::Inconclusive(why) => Err(format!("inconclusive: {why}")),
            }
        }
        other => Err(format!("unknown command {other}\n{}", usage())),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}
