//! # cqa — Consistent Query Answering for Primary Keys and Unary Foreign Keys
//!
//! Facade crate re-exporting the whole workspace: a faithful, executable
//! implementation of *"A Dichotomy in Consistent Query Answering for Primary
//! Keys and Unary Foreign Keys"* (Hannula & Wijsen, PODS 2022).
//!
//! ## Quick start
//!
//! One [`Solver`](prelude::Solver) accepts **any** `CERTAINTY(q, FK)`
//! problem, classifies it once (Theorem 12 plus the Proposition 16/17
//! shape matcher), and answers through the fastest sound backend:
//!
//! ```
//! use cqa::prelude::*;
//!
//! // Schema in the paper's signature notation: N has arity 3 with a unary key.
//! let schema = std::sync::Arc::new(parse_schema("N[3,1] O[1,1]").unwrap());
//! let q = parse_query(&schema, "N(x, 'c', y), O(y)").unwrap();
//! let fks = parse_fks(&schema, "N[3] -> O").unwrap();
//! let problem = Problem::new(q, fks).unwrap();
//!
//! // Theorem 12: this pair has block-interference, hence is NL-hard (not
//! // FO) — but it is Proposition 17's shape, so the solver routes it to
//! // the polynomial-time dual-Horn backend instead of turning you away.
//! match problem.classify() {
//!     Classification::NotFo(why) => assert!(why.nl_hard()),
//!     Classification::Fo(_) => unreachable!(),
//! }
//! let solver = Solver::new(problem).unwrap();
//! let db = parse_instance(&schema, "N(b,c,1) O(1)").unwrap();
//! let verdict = solver.solve(&db);
//! assert!(verdict.is_certain());
//! assert_eq!(verdict.provenance.backend, BackendKind::DualHorn);
//! ```
//!
//! See `examples/` for richer scenarios and `DESIGN.md` for the module map
//! and the full routing table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cqa_analyze as analyze;
pub use cqa_attack as attack;
pub use cqa_core as core;
pub use cqa_emit as emit;
pub use cqa_fo as fo;
pub use cqa_gen as gen;
pub use cqa_model as model;
pub use cqa_repair as repair;
pub use cqa_serve as serve;
pub use cqa_solvers as solvers;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use cqa_analyze::{AuditReport, Code, Diagnostic, ReadSet};
    pub use cqa_attack::{attack_graph::AttackGraph, classify::PkClass, rewrite::kw_rewrite};
    pub use cqa_core::{
        classify::{Classification, NotFoReason},
        compiled_plan::{CompileError, CompiledPlan},
        engine::CertainEngine,
        parallel::ParallelPolicy,
        pipeline::RewritePlan,
        problem::Problem,
        solver::{
            EmitSpec, EmitSpecError, ExecOptions, Evaluator, FallbackBudget, IncrementalSolver,
            Route, RouteKind, Solver, SolverBuilder, SolverError,
        },
        verdict::{BackendKind, Certainty, DeltaOutcome, Provenance, Verdict},
    };
    pub use cqa_emit::{evaluate, Artifact, EmitError, Format, SolverEmitExt};
    pub use cqa_repair::SearchLimits;
    pub use cqa_solvers::backend::Backend;
    pub use cqa_fo::{ast::Formula, eval::eval_closed};
    pub use cqa_model::parser::{
        parse_fact, parse_fks, parse_instance, parse_query, parse_schema,
    };
    pub use cqa_model::{
        Atom, Cst, Delta, DeltaOp, Fact, FkSet, ForeignKey, Instance, JoinStrategy, Query,
        RelName, Schema, Term, Var,
    };
    pub use cqa_repair::oracle::{CertaintyOracle, OracleOutcome};
}
