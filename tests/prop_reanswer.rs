//! Differential harness for **delta-certainty**: on randomized mutation
//! traces, [`IncrementalSolver::reanswer`] must agree with a from-scratch
//! [`Solver::solve`] after every batch — across all three routes (the
//! compiled FO plan, the poly-time backends, the budgeted fallback), and
//! whatever mix of reuse rungs the session picks (unaffected, localized,
//! recomputed). Traces include remove-then-reinsert round trips, emptied
//! blocks, active-domain shrink and facts in a relation the problem never
//! reads.

use cqa::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// Small value pool: block collisions, re-removals and reinserts are
/// common.
const POOL: [&str; 4] = ["c", "a", "b", "1"];

/// One mutation: `(op, rel_pick, args...)` — `op == 0` inserts, else
/// removes. Relations and arities are resolved per route.
type Step = (usize, usize, usize, usize, usize);

/// A trace: the initial instance as insert-only steps, then batches of
/// mutations, each answered incrementally and differentially checked.
fn arb_trace() -> impl Strategy<Value = (Vec<Step>, Vec<Vec<Step>>)> {
    let step = (0..2usize, 0..8usize, 0..POOL.len(), 0..POOL.len(), 0..POOL.len());
    let seed = (Just(0usize), 0..8usize, 0..POOL.len(), 0..POOL.len(), 0..POOL.len());
    (
        proptest::collection::vec(seed, 0..10),
        proptest::collection::vec(proptest::collection::vec(step, 0..5), 0..6),
    )
}

fn fact_for(rels: &[(&str, usize)], &(_, rel_pick, a, b, c): &Step) -> Fact {
    let (rel, arity) = rels[rel_pick % rels.len()];
    let picks = [a, b, c];
    let args: Vec<&str> = (0..arity).map(|i| POOL[picks[i] % POOL.len()]).collect();
    Fact::from_names(rel, &args)
}

fn delta_for(rels: &[(&str, usize)], steps: &[Step]) -> Delta {
    let mut delta = Delta::new();
    for step in steps {
        let fact = fact_for(rels, step);
        if step.0 == 0 {
            delta.insert(fact);
        } else {
            delta.remove(fact);
        }
    }
    delta
}

/// Runs a whole trace through one solver: incremental verdicts must match
/// from-scratch verdicts (including *which* instances are inconclusive),
/// and a session that applies its own deltas must never lose its prior.
fn check_trace(
    schema: &Arc<Schema>,
    solver: &Solver,
    rels: &[(&str, usize)],
    seed: &[Step],
    batches: &[Vec<Step>],
) -> Result<(), TestCaseError> {
    let mut db = Instance::new(schema.clone());
    for step in seed {
        db.insert(fact_for(rels, step)).unwrap();
    }
    let mut session = solver.incremental();
    prop_assert_eq!(
        session.solve(&db).certainty,
        solver.solve(&db).certainty,
        "initial session solve differs from scratch on {}",
        db
    );
    for batch in batches {
        let delta = delta_for(rels, batch);
        let incremental = session.reanswer(&mut db, &delta).unwrap();
        let scratch = solver.solve(&db);
        prop_assert_eq!(
            incremental.certainty,
            scratch.certainty,
            "incremental ({:?}) diverged from scratch after {} on {}",
            incremental.provenance.delta,
            delta,
            db
        );
        // The session applied the delta itself, so its prior is always
        // valid: a "no prior verdict" recompute here would mean the epoch
        // protocol lost track of its own mutations.
        prop_assert!(
            incremental.provenance.delta
                != Some(DeltaOutcome::Recomputed("no prior verdict for this instance state")),
            "single-writer session must never see its own writes as stale"
        );
    }
    Ok(())
}

/// Deterministic witness that the per-block rung is *strictly* stronger
/// than the rel-level condition it replaced: on §8's query the plan probes
/// only the `N('c')` block, so deltas confined to `N('d', ·)` — a relation
/// the rel-level condition counts as read — reuse the verdict outright,
/// with verdicts identical to from-scratch solves throughout.
#[test]
fn delta_on_unread_block_of_a_read_relation_is_unaffected() {
    let s = Arc::new(parse_schema("N[2,1] O[1,1] P[1,1]").unwrap());
    let problem = Problem::new(
        parse_query(&s, "N('c',y), O(y), P(y)").unwrap(),
        parse_fks(&s, "N[2] -> O").unwrap(),
    )
    .unwrap();
    let solver = Solver::new(problem).unwrap();
    let mut db = parse_instance(&s, "N(c,a) N(c,b) O(a) P(a) P(b)").unwrap();
    let mut session = solver.incremental();
    assert!(session.solve(&db).is_certain());

    // The old rung could not have fired here: N is in `reads()`.
    assert!(session.reads().contains(&RelName::new("N")));
    assert!(!session
        .read_set()
        .may_read(RelName::new("N"), &[Cst::new("d")]));

    let mut insert = Delta::new();
    insert.insert(parse_fact("N(d,x)").unwrap());
    let v = session.reanswer(&mut db, &insert).unwrap();
    assert_eq!(v.provenance.delta, Some(DeltaOutcome::Unaffected));
    assert_eq!(v.as_bool(), solver.solve(&db).as_bool());

    let mut remove = Delta::new();
    remove.remove(parse_fact("N(d,x)").unwrap());
    let v = session.reanswer(&mut db, &remove).unwrap();
    assert_eq!(v.provenance.delta, Some(DeltaOutcome::Unaffected));
    assert_eq!(v.as_bool(), solver.solve(&db).as_bool());

    // Inside the probed block the rung must NOT fire — the delta
    // localizes and the verdict flips, exactly as a scratch solve says.
    let mut inside = Delta::new();
    inside.insert(parse_fact("N(c,e)").unwrap());
    let v = session.reanswer(&mut db, &inside).unwrap();
    assert!(matches!(
        v.provenance.delta,
        Some(DeltaOutcome::Localized { .. })
    ));
    assert_eq!(v.as_bool(), Some(false));
    assert_eq!(solver.solve(&db).as_bool(), Some(false));
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        failure_persistence: Some(FileFailurePersistence::WithSource("proptest-regressions")),
        ..ProptestConfig::default()
    })]

    /// FO route (§8's query, plus an unread relation `Z`): the localized
    /// residual-cache path and both recompute paths all agree with
    /// from-scratch answers.
    #[test]
    fn fo_route_reanswer_matches_scratch(trace in arb_trace()) {
        let (seed, batches) = trace;
        let s = Arc::new(parse_schema("N[2,1] O[1,1] P[1,1] Z[1,1]").unwrap());
        let problem = Problem::new(
            parse_query(&s, "N('c',y), O(y), P(y)").unwrap(),
            parse_fks(&s, "N[2] -> O").unwrap(),
        )
        .unwrap();
        let solver = Solver::new(problem).unwrap();
        prop_assert_eq!(solver.route().kind(), RouteKind::Fo);
        let rels = [("N", 2), ("O", 1), ("P", 1), ("Z", 1)];
        check_trace(&s, &solver, &rels, &seed, &batches)?;
    }

    /// Poly-time route (Proposition 16 shape): no localizable plan, so
    /// every read-touching delta recomputes — and still agrees.
    #[test]
    fn poly_route_reanswer_matches_scratch(trace in arb_trace()) {
        let (seed, batches) = trace;
        let s = Arc::new(parse_schema("E[2,1] V[1,1] Z[1,1]").unwrap());
        let problem = Problem::new(
            parse_query(&s, "E(x,x), V(x)").unwrap(),
            parse_fks(&s, "E[2] -> V").unwrap(),
        )
        .unwrap();
        let solver = Solver::new(problem).unwrap();
        prop_assert_eq!(solver.route().kind(), RouteKind::PolyTime);
        let rels = [("E", 2), ("V", 1), ("Z", 1)];
        check_trace(&s, &solver, &rels, &seed, &batches)?;
    }

    /// Fallback route (Example 13's q2 under a small budget): verdicts —
    /// including inconclusive ones — match from-scratch, and inconclusive
    /// priors are never reused.
    #[test]
    fn fallback_route_reanswer_matches_scratch(trace in arb_trace()) {
        let (seed, batches) = trace;
        let s = Arc::new(parse_schema("N[3,1] O[2,1] Z[1,1]").unwrap());
        let problem = Problem::new(
            parse_query(&s, "N(x,'c',y), O(y,w)").unwrap(),
            parse_fks(&s, "N[3] -> O").unwrap(),
        )
        .unwrap();
        let solver = Solver::builder(problem)
            .options(ExecOptions::default().with_fallback(SearchLimits::small()))
            .build()
            .unwrap();
        prop_assert_eq!(solver.route().kind(), RouteKind::Fallback);
        let rels = [("N", 3), ("O", 2), ("Z", 1)];
        check_trace(&s, &solver, &rels, &seed, &batches)?;
    }

    /// The block-precise Unaffected rung (PR 7) *dominates* the old
    /// rel-level condition: whenever a batch's touched relations are
    /// disjoint from `reads()` and the prior verdict is definite, the
    /// session must still answer `Unaffected` — the inferred read-set is
    /// never coarser than the relation set it refines.
    #[test]
    fn unaffected_dominates_rel_level_condition(trace in arb_trace()) {
        let (seed, batches) = trace;
        let s = Arc::new(parse_schema("N[2,1] O[1,1] P[1,1] Z[1,1]").unwrap());
        let problem = Problem::new(
            parse_query(&s, "N('c',y), O(y), P(y)").unwrap(),
            parse_fks(&s, "N[2] -> O").unwrap(),
        )
        .unwrap();
        let solver = Solver::new(problem).unwrap();
        let rels = [("N", 2), ("O", 1), ("P", 1), ("Z", 1)];

        let mut db = Instance::new(s.clone());
        for step in &seed {
            db.insert(fact_for(&rels, step)).unwrap();
        }
        let mut session = solver.incremental();
        session.solve(&db);
        for batch in &batches {
            let delta = delta_for(&rels, batch);
            let prior_definite = session
                .last_verdict()
                .is_some_and(|v| v.as_bool().is_some());
            let rel_level_unaffected = delta
                .rels()
                .iter()
                .all(|r| !session.reads().contains(r));
            let v = session.reanswer(&mut db, &delta).unwrap();
            if rel_level_unaffected && prior_definite {
                prop_assert_eq!(
                    v.provenance.delta,
                    Some(DeltaOutcome::Unaffected),
                    "the per-block rung regressed below the rel-level condition on {}",
                    delta
                );
            }
            prop_assert_eq!(v.certainty, solver.solve(&db).certainty);
        }
    }

    /// Out-of-band writes between re-answers: the epoch protocol detects
    /// the stale prior and recomputes — never serving the memo.
    #[test]
    fn out_of_band_mutations_are_detected(trace in arb_trace()) {
        let (seed, batches) = trace;
        let s = Arc::new(parse_schema("N[2,1] O[1,1] P[1,1] Z[1,1]").unwrap());
        let problem = Problem::new(
            parse_query(&s, "N('c',y), O(y), P(y)").unwrap(),
            parse_fks(&s, "N[2] -> O").unwrap(),
        )
        .unwrap();
        let solver = Solver::new(problem).unwrap();
        let rels = [("N", 2), ("O", 1), ("P", 1), ("Z", 1)];

        let mut db = Instance::new(s.clone());
        for step in &seed {
            db.insert(fact_for(&rels, step)).unwrap();
        }
        let mut session = solver.incremental();
        session.solve(&db);
        for (i, batch) in batches.iter().enumerate() {
            // Odd rounds mutate behind the session's back first.
            let went_behind = i % 2 == 1 && db.insert_named("N", &["c", "oob"]).unwrap();
            let delta = delta_for(&rels, batch);
            let incremental = session.reanswer(&mut db, &delta).unwrap();
            let scratch = solver.solve(&db);
            prop_assert_eq!(incremental.certainty, scratch.certainty);
            if went_behind {
                prop_assert_eq!(
                    incremental.provenance.delta,
                    Some(DeltaOutcome::Recomputed("no prior verdict for this instance state")),
                    "out-of-band write must be detected"
                );
                // Re-remove so later rounds can go behind the back again.
                db.remove(&Fact::from_names("N", &["c", "oob"])).unwrap();
            }
        }
    }
}
