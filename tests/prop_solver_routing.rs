//! Differential routing harness for the unified [`Solver`]: on generated
//! families from **all three** complexity classes, `Solver::solve` must
//! agree with the per-backend ground truth —
//!
//! * FO-rewritable (§8's query): the [`CompiledPlan`] it routes to, and
//!   the interpretive [`RewritePlan`] differential oracle behind it;
//! * polynomial-time (Propositions 16 and 17 **under renamed relations**,
//!   so the shape matcher is on the hook): the dual-Horn / reachability
//!   solvers called directly, and the exhaustive ⊕-repair oracle where it
//!   is conclusive;
//! * hard (Example 13's q2, which is NL-hard and *not* a known poly
//!   shape): the materializing oracle under the same budget.
//!
//! Plus a regression pinning `solve_many`'s input-ordered laziness across
//! ragged shards (batch sizes that don't divide the thread width).

use cqa::core::compiled_plan::CompiledPlan;
use cqa::prelude::*;
use cqa::solvers::{prop16, prop17};
use proptest::prelude::*;
use std::sync::Arc;

/// Value pool shared by all generators: query constants occur often so
/// blocks fill up and middles match/mismatch.
const POOL: [&str; 6] = ["c", "hq", "a", "b", "d", "1"];

fn instance_for(
    schema: &Arc<Schema>,
    rels: &[(&str, usize)],
    picks: &[(usize, Vec<usize>)],
) -> Instance {
    let mut db = Instance::new(schema.clone());
    for (rel_pick, args) in picks {
        let (rel, arity) = rels[rel_pick % rels.len()];
        let args: Vec<&str> = (0..arity)
            .map(|i| POOL[args.get(i).copied().unwrap_or(0) % POOL.len()])
            .collect();
        db.insert_named(rel, &args).unwrap();
    }
    db
}

fn arb_picks() -> impl Strategy<Value = Vec<(usize, Vec<usize>)>> {
    proptest::collection::vec(
        (0..8usize, proptest::collection::vec(0..POOL.len(), 0..3)),
        0..12,
    )
}

fn solver_for(schema: &Arc<Schema>, q: &str, fks: &str, options: ExecOptions) -> Solver {
    let problem = Problem::new(
        parse_query(schema, q).unwrap(),
        parse_fks(schema, fks).unwrap(),
    )
    .unwrap();
    Solver::builder(problem).options(options).build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 128,
        failure_persistence: Some(FileFailurePersistence::WithSource("proptest-regressions")),
        ..ProptestConfig::default()
    })]

    /// FO class: the solver's verdict ≡ the compiled plan it routed to ≡
    /// the interpretive differential oracle.
    #[test]
    fn fo_route_matches_compiled_and_materializing_plans(picks in arb_picks()) {
        let s = Arc::new(parse_schema("N[2,1] O[1,1] P[1,1]").unwrap());
        let solver = solver_for(&s, "N('c',y), O(y), P(y)", "N[2] -> O", ExecOptions::default());
        prop_assert_eq!(solver.route().kind(), RouteKind::Fo);

        let problem = solver.problem();
        let plan = match problem.classify() {
            Classification::Fo(p) => *p,
            Classification::NotFo(r) => panic!("§8's query must be FO: {r}"),
        };
        let compiled = CompiledPlan::compile(&plan).unwrap();

        let db = instance_for(&s, &[("N", 2), ("O", 1), ("P", 1)], &picks);
        let verdict = solver.solve(&db);
        prop_assert_eq!(verdict.provenance.backend, BackendKind::CompiledPlan);
        prop_assert_eq!(
            verdict.as_bool(), Some(compiled.answer(&db)),
            "solver vs compiled plan on {}", db
        );
        prop_assert_eq!(
            verdict.as_bool(), Some(plan.answer(&db)),
            "solver vs materializing plan on {}", db
        );
    }

    /// Poly class, Proposition 16 shape under renamed relations: the
    /// solver must recognize the shape and agree with the dual-Horn and
    /// reachability deciders called directly, and with the exhaustive
    /// oracle where it is conclusive.
    #[test]
    fn prop16_route_matches_solvers_and_oracle(picks in arb_picks()) {
        let s = Arc::new(parse_schema("E[2,1] V[1,1]").unwrap());
        let solver = solver_for(&s, "E(x,x), V(x)", "E[2] -> V", ExecOptions::default());
        prop_assert_eq!(solver.route().kind(), RouteKind::PolyTime);

        let db = instance_for(&s, &[("E", 2), ("V", 1)], &picks);
        let verdict = solver.solve(&db);
        prop_assert_eq!(verdict.provenance.backend, BackendKind::Reachability);
        let e = RelName::new("E");
        let v = RelName::new("V");
        prop_assert_eq!(
            verdict.as_bool(), Some(prop16::certain_in(&db, e, v)),
            "solver vs dual-Horn decider on {}", db
        );
        prop_assert_eq!(
            verdict.as_bool(), Some(prop16::certain_via_reachability_in(&db, e, v)),
            "solver vs reachability decider on {}", db
        );
        let oracle = CertaintyOracle::new()
            .is_certain(&db, solver.problem().query(), solver.problem().fks());
        if let Some(truth) = oracle.as_bool() {
            prop_assert_eq!(verdict.as_bool(), Some(truth), "solver vs oracle on {}", db);
        }
    }

    /// Poly class, Proposition 17 shape under renamed relations and a
    /// non-'c' middle constant.
    #[test]
    fn prop17_route_matches_dual_horn_and_oracle(picks in arb_picks()) {
        let s = Arc::new(parse_schema("Emp[3,1] Dept[1,1]").unwrap());
        let solver = solver_for(&s, "Emp(x,'hq',y), Dept(y)", "Emp[3] -> Dept", ExecOptions::default());
        prop_assert_eq!(solver.route().kind(), RouteKind::PolyTime);

        let db = instance_for(&s, &[("Emp", 3), ("Dept", 1)], &picks);
        let verdict = solver.solve(&db);
        prop_assert_eq!(verdict.provenance.backend, BackendKind::DualHorn);
        prop_assert_eq!(
            verdict.as_bool(),
            Some(prop17::certain_in(
                &db,
                RelName::new("Emp"),
                RelName::new("Dept"),
                Cst::new("hq"),
            )),
            "solver vs dual-Horn decider on {}", db
        );
        let oracle = CertaintyOracle::new()
            .is_certain(&db, solver.problem().query(), solver.problem().fks());
        if let Some(truth) = oracle.as_bool() {
            prop_assert_eq!(verdict.as_bool(), Some(truth), "solver vs oracle on {}", db);
        }
    }

    /// Hard class (Example 13's q2): the budgeted fallback must agree with
    /// the materializing oracle under the same limits — including *which*
    /// instances are inconclusive.
    #[test]
    fn fallback_route_matches_materializing_oracle(picks in arb_picks()) {
        let s = Arc::new(parse_schema("N[3,1] O[2,1]").unwrap());
        let limits = SearchLimits::small();
        let solver = solver_for(
            &s,
            "N(x,'c',y), O(y,w)",
            "N[3] -> O",
            ExecOptions::default().with_fallback(limits),
        );
        prop_assert_eq!(solver.route().kind(), RouteKind::Fallback);

        let db = instance_for(&s, &[("N", 3), ("O", 2)], &picks);
        let verdict = solver.solve(&db);
        prop_assert_eq!(verdict.provenance.backend, BackendKind::Oracle);
        let oracle = CertaintyOracle::with_limits(limits)
            .is_certain(&db, solver.problem().query(), solver.problem().fks());
        prop_assert_eq!(
            verdict.as_bool(), oracle.as_bool(),
            "solver vs oracle (incl. inconclusiveness) on {}", db
        );
        if verdict.as_bool().is_none() {
            prop_assert!(verdict.provenance.detail.is_some(), "inconclusive carries a reason");
        }
    }

    /// `solve_many` ≡ per-instance `solve` in input order, across thread
    /// widths and ragged batch lengths.
    #[test]
    fn solve_many_matches_solve_in_input_order(
        batches in proptest::collection::vec(arb_picks(), 1..6),
        threads in 1usize..9,
    ) {
        let s = Arc::new(parse_schema("N[2,1] O[1,1] P[1,1]").unwrap());
        let options = ExecOptions {
            min_parallel_units: 1,
            ..ExecOptions::default().with_threads(threads)
        };
        let solver = solver_for(&s, "N('c',y), O(y), P(y)", "N[2] -> O", options);
        let dbs: Vec<Instance> = batches
            .iter()
            .map(|p| instance_for(&s, &[("N", 2), ("O", 1), ("P", 1)], p))
            .collect();
        let expected: Vec<Option<bool>> = dbs.iter().map(|db| solver.solve(db).as_bool()).collect();
        let streamed: Vec<Option<bool>> = solver.solve_many(&dbs).map(|v| v.as_bool()).collect();
        prop_assert_eq!(streamed, expected);
    }
}

/// Regression for `solve_many` order determinism: a batch with a *known,
/// position-dependent* answer pattern, sized so chunks are ragged against
/// every tested width, must stream back in input order — and lazily (the
/// iterator never evaluates past the pulled prefix plus one chunk).
#[test]
fn solve_many_preserves_input_order_across_ragged_shards() {
    let s = Arc::new(parse_schema("N[2,1] O[1,1] P[1,1]").unwrap());
    let problem = Problem::new(
        parse_query(&s, "N('c',y), O(y), P(y)").unwrap(),
        parse_fks(&s, "N[2] -> O").unwrap(),
    )
    .unwrap();

    // Instance i is a yes-instance iff i % 3 == 0; sizes vary so shard
    // workloads are deliberately skewed, and 41 is coprime to every
    // tested width (ragged final chunks all around).
    let mut dbs = Vec::new();
    let mut expected = Vec::new();
    for i in 0..41usize {
        let mut db = Instance::new(s.clone());
        for j in 0..=(i % 4) {
            db.insert_named("N", &["c", &format!("y{j}")]).unwrap();
            db.insert_named("O", &[&format!("y{j}")]).unwrap();
            if i % 3 == 0 || j > 0 {
                db.insert_named("P", &[&format!("y{j}")]).unwrap();
            }
        }
        expected.push(i % 3 == 0);
        dbs.push(db);
    }
    assert!(expected.iter().any(|&b| b) && expected.iter().any(|&b| !b));

    for threads in [2usize, 3, 8, 64] {
        let solver = Solver::builder(problem.clone())
            .options(ExecOptions {
                min_parallel_units: 1,
                ..ExecOptions::default().with_threads(threads)
            })
            .build()
            .unwrap();
        for round in 0..4 {
            let got: Vec<bool> = solver.solve_many(&dbs).map(|v| v.is_certain()).collect();
            assert_eq!(
                got, expected,
                "threads={threads} round={round}: verdicts out of input order"
            );
            // Sharded chunks carry batch provenance; order is unaffected.
            let first = solver.solve_many(&dbs).next().unwrap();
            assert!(first.provenance.batch >= 1);
        }
    }

    // The default environment-driven options agree too.
    let solver = Solver::new(problem).unwrap();
    let got: Vec<bool> = solver.solve_many(&dbs).map(|v| v.is_certain()).collect();
    assert_eq!(got, expected);
}
