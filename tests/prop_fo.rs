//! Property-based tests for the FO engine: the guarded evaluator agrees
//! with naive active-domain evaluation on arbitrary formulas (closed, and
//! open under arbitrary bindings — including constants outside the active
//! domain), the compiled evaluator agrees with the interpretive reference,
//! and simplification preserves semantics.

use cqa::fo::eval::{eval_with, Strategy as EvalStrategy};
use cqa::fo::{interp, simplify, Formula};
use cqa::prelude::*;
use cqa_model::Valuation;
use proptest::prelude::*;
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Arc::new(cqa::model::parser::parse_schema("R[2,1] S[1,1]").unwrap())
}

const VARS: [&str; 3] = ["x", "y", "z"];
const CSTS: [&str; 3] = ["a", "b", "c"];

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        (0..VARS.len()).prop_map(|i| Term::var(VARS[i])),
        (0..CSTS.len()).prop_map(|i| Term::cst(CSTS[i])),
    ]
}

fn arb_atom() -> impl Strategy<Value = Formula> {
    prop_oneof![
        (arb_term(), arb_term()).prop_map(|(a, b)| {
            Formula::Atom(Atom::new(RelName::new("R"), vec![a, b]))
        }),
        arb_term().prop_map(|a| Formula::Atom(Atom::new(RelName::new("S"), vec![a]))),
        (arb_term(), arb_term()).prop_map(|(a, b)| Formula::Eq(a, b)),
    ]
}

fn arb_formula() -> impl Strategy<Value = Formula> {
    arb_atom().prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(Formula::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::and([a, b])),
            // Duplicate conjuncts under one ∧ (raw, bypassing the smart
            // constructor): exercises guard selection with repeated atoms.
            inner
                .clone()
                .prop_map(|f| Formula::And(vec![f.clone(), f])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::or([a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::implies(a, b)),
            (0..VARS.len(), inner.clone())
                .prop_map(|(i, f)| Formula::exists([Var::new(VARS[i])], f)),
            (0..VARS.len(), inner).prop_map(|(i, f)| Formula::forall([Var::new(VARS[i])], f)),
        ]
    })
}

/// Constants a free variable may be bound to: the instance pool *plus*
/// constants that never occur in any generated instance or formula
/// (`out1`, `out2`) — the shapes behind the `eval_with` active-domain
/// soundness fix.
const BINDING_CSTS: [&str; 5] = ["a", "b", "c", "out1", "out2"];

/// Binds every free variable of `f`, drawing constants by the picks.
fn bind_free(f: &Formula, picks: &[usize]) -> Valuation {
    let mut b = Valuation::new();
    for (k, v) in f.free_vars().into_iter().enumerate() {
        let pick = picks.get(k % picks.len().max(1)).copied().unwrap_or(0);
        b.insert(v, Cst::new(BINDING_CSTS[pick % BINDING_CSTS.len()]));
    }
    b
}

/// Closes a formula by existentially quantifying its free variables.
fn close(f: Formula) -> Formula {
    let free: Vec<Var> = f.free_vars().into_iter().collect();
    Formula::exists(free, f)
}

prop_compose! {
    fn arb_instance()(rows in proptest::collection::vec((0..4u8, 0..4u8), 0..8),
                      singles in proptest::collection::vec(0..4u8, 0..4)) -> Instance {
        let mut db = Instance::new(schema());
        let name = |v: u8| ["a", "b", "c", "d"][v as usize];
        for (u, v) in rows {
            db.insert_named("R", &[name(u), name(v)]).unwrap();
        }
        for v in singles {
            db.insert_named("S", &[name(v)]).unwrap();
        }
        db
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 128,
        failure_persistence: Some(FileFailurePersistence::WithSource("proptest-regressions")),
        ..ProptestConfig::default()
    })]

    #[test]
    fn guarded_equals_naive(f in arb_formula(), db in arb_instance()) {
        let f = close(f);
        let guarded = eval_with(&db, &f, &Valuation::new(), EvalStrategy::Guarded);
        let naive = eval_with(&db, &f, &Valuation::new(), EvalStrategy::Naive);
        prop_assert_eq!(guarded, naive, "formula {} on {}", f, db);
    }

    #[test]
    fn engines_agree_on_open_formulas_under_any_binding(
        f in arb_formula(),
        db in arb_instance(),
        picks in proptest::collection::vec(0..BINDING_CSTS.len(), 1..4),
    ) {
        // Open formula, free variables bound to constants that may lie
        // outside adom(db) ∪ const(f): all four engines (compiled and
        // interpretive reference, guarded and naive) must agree.
        let binding = bind_free(&f, &picks);
        let compiled_g = eval_with(&db, &f, &binding, EvalStrategy::Guarded);
        let compiled_n = eval_with(&db, &f, &binding, EvalStrategy::Naive);
        let interp_g = interp::eval_with(&db, &f, &binding, EvalStrategy::Guarded);
        let interp_n = interp::eval_with(&db, &f, &binding, EvalStrategy::Naive);
        prop_assert_eq!(
            compiled_g, compiled_n,
            "strategies disagree: {} under {:?} on {}", f, binding, db
        );
        prop_assert_eq!(
            compiled_g, interp_g,
            "compiled vs interp (guarded): {} under {:?} on {}", f, binding, db
        );
        prop_assert_eq!(
            compiled_n, interp_n,
            "compiled vs interp (naive): {} under {:?} on {}", f, binding, db
        );
    }

    #[test]
    fn compiled_agrees_with_interp_on_sentences(f in arb_formula(), db in arb_instance()) {
        let f = close(f);
        for strategy in [EvalStrategy::Guarded, EvalStrategy::Naive] {
            prop_assert_eq!(
                eval_with(&db, &f, &Valuation::new(), strategy),
                interp::eval_with(&db, &f, &Valuation::new(), strategy),
                "compiled vs interp ({:?}): {} on {}", strategy, f, db
            );
        }
    }

    #[test]
    fn simplify_preserves_semantics(f in arb_formula(), db in arb_instance()) {
        let f = close(f);
        let s = simplify(&f);
        let before = eval_with(&db, &f, &Valuation::new(), EvalStrategy::Guarded);
        let after = eval_with(&db, &s, &Valuation::new(), EvalStrategy::Guarded);
        prop_assert_eq!(before, after, "{} vs simplified {}", f, s);
    }

    #[test]
    fn simplify_is_idempotent(f in arb_formula()) {
        let once = simplify(&f);
        prop_assert_eq!(once.clone(), simplify(&once));
    }

    #[test]
    fn free_vars_of_closed_is_empty(f in arb_formula()) {
        prop_assert!(close(f).is_closed());
    }

    #[test]
    fn double_negation_preserved(f in arb_formula(), db in arb_instance()) {
        let f = close(f);
        let nn = Formula::not(Formula::not(f.clone()));
        prop_assert_eq!(
            eval_with(&db, &f, &Valuation::new(), EvalStrategy::Guarded),
            eval_with(&db, &nn, &Valuation::new(), EvalStrategy::Guarded)
        );
    }

    #[test]
    fn de_morgan(f in arb_formula(), g in arb_formula(), db in arb_instance()) {
        let (f, g) = (close(f), close(g));
        let lhs = Formula::not(Formula::and([f.clone(), g.clone()]));
        let rhs = Formula::or([Formula::not(f), Formula::not(g)]);
        prop_assert_eq!(
            eval_with(&db, &lhs, &Valuation::new(), EvalStrategy::Guarded),
            eval_with(&db, &rhs, &Valuation::new(), EvalStrategy::Guarded)
        );
    }
}
