//! End-to-end reproduction of every numbered example of the paper,
//! cross-validating the classifier, the rewriting pipeline, the polynomial
//! solvers and the exhaustive ⊕-repair oracle against each other.
//!
//! Experiment index (DESIGN.md §3): E1, E2, E3, E4, E5, E9, E10, E11, E14.

use cqa::core::flatten::flatten;
use cqa::prelude::*;
use cqa_repair::chase::chase_fresh;
use cqa_repair::{is_delta_repair, SearchLimits};
use std::sync::Arc;

fn problem(schema: &Arc<Schema>, q: &str, fks: &str) -> Problem {
    Problem::new(
        parse_query(schema, q).unwrap(),
        parse_fks(schema, fks).unwrap(),
    )
    .unwrap()
}

/// E1 — Figure 1 + §1: the consistent answer to q₀ is "no"; the oracle and
/// the constructed rewriting agree fact for fact.
#[test]
fn e1_figure1_bibliography() {
    let bib = cqa_gen::bibliography_scenario();
    let p = Problem::new(bib.query.clone(), bib.fks.clone()).unwrap();
    let plan = match p.classify() {
        Classification::Fo(plan) => plan,
        Classification::NotFo(r) => panic!("q₀ must be FO: {r}"),
    };
    assert!(!plan.answer(&bib.db), "the paper's consistent answer is no");

    let oracle = CertaintyOracle::new();
    assert_eq!(
        oracle.is_certain(&bib.db, &bib.query, &bib.fks).as_bool(),
        Some(false)
    );

    // The flattened single formula agrees too.
    let f = flatten(&plan).unwrap();
    assert!(!cqa::fo::eval::eval_closed(&bib.db, &f));

    // Repairing the inconsistency flips the answer.
    let mut clean = bib.db.clone();
    clean.remove(&parse_fact("AUTHORS(o1, 'Jeffrey', 'Ullman')").unwrap()).unwrap();
    clean.remove(&parse_fact("R(d1, o3)").unwrap()).unwrap();
    assert!(plan.answer(&clean));
    assert_eq!(
        oracle.is_certain(&clean, &bib.query, &bib.fks).as_bool(),
        Some(true)
    );
}

/// E2 — the §4 block-chain: yes-instance iff `□ = c`; without the anchor
/// `O(1)` the empty instance is a repair. Checked for several chain lengths
/// with the polynomial solver, and at small length with the oracle.
#[test]
fn e2_section4_block_chain() {
    use cqa_gen::{block_chain, BlockChainConfig};
    for n in [1usize, 2, 3, 6, 20] {
        for closing_is_c in [true, false] {
            for with_anchor in [true, false] {
                let bc = block_chain(BlockChainConfig {
                    n,
                    closing_is_c,
                    with_anchor,
                });
                let fast = cqa::solvers::prop17::certain(&bc.db, Cst::new("c"));
                assert_eq!(
                    fast, bc.expected_certain,
                    "n={n} closing_is_c={closing_is_c} with_anchor={with_anchor}"
                );
                if n <= 2 {
                    let oracle = CertaintyOracle::new();
                    assert_eq!(
                        oracle.is_certain(&bc.db, &bc.query, &bc.fks).as_bool(),
                        Some(bc.expected_certain),
                        "oracle at n={n}"
                    );
                }
            }
        }
    }
}

/// E3 — Examples 6 and 10: obedience facts and the (3a) interference of the
/// §4 query; Theorem 12 classifies it NL-hard.
#[test]
fn e3_examples_6_and_10() {
    let s = Arc::new(parse_schema("N[3,1] O[1,1]").unwrap());
    let p = problem(&s, "N(x,'c',y), O(y)", "N[3] -> O");
    match p.classify() {
        Classification::NotFo(r) => {
            assert!(r.nl_hard());
            assert!(!r.l_hard());
        }
        Classification::Fo(_) => panic!("must be NL-hard"),
    }
}

/// E4 — Example 11: interference via (3b), killed by fixing `x`.
#[test]
fn e4_example_11() {
    let s = Arc::new(parse_schema("Np[2,1] O[1,1] T[2,1] R[2,1]").unwrap());
    let interfering = problem(&s, "Np(x,y), O(y), T(x,y)", "Np[2] -> O");
    assert!(!interfering.classify().is_fo());

    let fixed = problem(&s, "Np(x,y), O(y), T(x,y), R('a',x)", "Np[2] -> O");
    assert!(fixed.classify().is_fo(), "R('a',x) fixes x and kills (3b)");
}

/// E5 — Example 13: the FO boundary moves in both directions when variables
/// become constants, and q1's rewriting differs from its PK-only rewriting
/// on the paper's witness instance.
#[test]
fn e5_example_13() {
    let s = Arc::new(parse_schema("N[3,1] O[2,1]").unwrap());
    let q1 = problem(&s, "N(x,u,y), O(y,w)", "N[3] -> O");
    let q2 = problem(&s, "N(x,'c',y), O(y,w)", "N[3] -> O");
    let q3 = problem(&s, "N(x,'c',y), O(y,'c')", "N[3] -> O");

    let plan1 = match q1.classify() {
        Classification::Fo(p) => p,
        _ => panic!("q1 is FO"),
    };
    assert!(!q2.classify().is_fo(), "q2 is NL-hard");
    let plan3 = match q3.classify() {
        Classification::Fo(p) => p,
        _ => panic!("q3 is FO"),
    };

    // Paper's witness: yes for CERTAINTY(q1, FK), no for CERTAINTY(q1).
    let witness = parse_instance(&s, "N(c,1,a) N(c,2,b) O(a,3)").unwrap();
    assert!(plan1.answer(&witness));
    let pk_only = RewritePlanOf(&s, "N(x,u,y), O(y,w)");
    assert!(!pk_only.answer(&witness));

    // Oracle confirms both.
    let oracle = CertaintyOracle::new();
    assert_eq!(
        oracle
            .is_certain(&witness, q1.query(), q1.fks())
            .as_bool(),
        Some(true)
    );
    let empty_fks = FkSet::empty(s.clone());
    assert_eq!(
        oracle
            .is_certain(&witness, q1.query(), &empty_fks)
            .as_bool(),
        Some(false)
    );

    // q3: CERTAINTY(q3, FK) has the same rewriting as CERTAINTY(q3); verify
    // extensional equality on a battery of instances.
    let pk_plan3 = RewritePlanOf(&s, "N(x,'c',y), O(y,'c')");
    for text in [
        "",
        "N(a,c,1) O(1,c)",
        "N(a,c,1) O(1,d)",
        "N(a,c,1) N(a,d,2) O(1,c) O(2,c)",
        "N(a,c,1) N(b,c,2) O(1,c) O(2,d)",
    ] {
        let db = parse_instance(&s, text).unwrap();
        assert_eq!(plan3.answer(&db), pk_plan3.answer(&db), "on {text}");
    }
}

#[allow(non_snake_case)]
fn RewritePlanOf(s: &Arc<Schema>, q: &str) -> cqa::core::RewritePlan {
    let p = Problem::pk_only(parse_query(s, q).unwrap());
    match p.classify() {
        Classification::Fo(plan) => *plan,
        Classification::NotFo(r) => panic!("{r}"),
    }
}

/// E9 — §8's worked rewriting, checked as a formula and on the asymmetry
/// instance (O referenced by a strong key, P not).
#[test]
fn e9_section8_rewriting() {
    let s = Arc::new(parse_schema("N[2,1] O[1,1] P[1,1]").unwrap());
    let p = problem(&s, "N('c',y), O(y), P(y)", "N[2] -> O");
    let solver = Solver::new(p.clone()).unwrap();
    let engine = CertainEngine::try_new(p).unwrap();
    let f = engine.formula().unwrap();
    assert!(f.is_closed());

    let yes = parse_instance(&s, "N(c,a) N(c,b) O(a) P(a) P(b)").unwrap();
    assert!(solver.solve(&yes).is_certain());
    let oracle = CertaintyOracle::new();
    assert_eq!(
        oracle
            .is_certain(&yes, engine.problem().query(), engine.problem().fks())
            .as_bool(),
        Some(true)
    );
    for missing in ["P(a)", "P(b)"] {
        let mut db = yes.clone();
        db.remove(&parse_fact(missing).unwrap()).unwrap();
        assert!(!solver.solve(&db).is_certain(), "without {missing}");
        assert_eq!(
            oracle
                .is_certain(&db, engine.problem().query(), engine.problem().fks())
                .as_bool(),
            Some(false),
            "oracle without {missing}"
        );
    }
}

/// E10 — Example 4: the three ⊕-repairs of `{R(a,b), S(b,c)}` under
/// `{R[2]→S, S[2]→T}`, including the counter-intuitive incomparability of
/// r2 and r3.
#[test]
fn e10_example_4_repairs() {
    let s = Arc::new(parse_schema("R[2,1] S[2,1] T[1,1]").unwrap());
    let fks = parse_fks(&s, "R[2] -> S, S[2] -> T").unwrap();
    let db = parse_instance(&s, "R(a,b) S(b,c)").unwrap();
    let limits = SearchLimits::default();

    let r1 = parse_instance(&s, "").unwrap();
    let r2 = parse_instance(&s, "R(a,b) S(b,1) T(1)").unwrap();
    let r3 = parse_instance(&s, "R(a,b) S(b,c) T(c)").unwrap();
    for (name, r) in [("r1", &r1), ("r2", &r2), ("r3", &r3)] {
        assert_eq!(
            is_delta_repair(&db, r, &fks, &limits),
            Some(true),
            "{name} must be a ⊕-repair"
        );
    }
    assert!(!cqa_repair::closer_eq(&db, &r2, &r3));
    assert!(!cqa_repair::closer_eq(&db, &r3, &r2));

    // db ⊕ r2 and db ⊕ r3 as the paper lists them.
    let d2 = db.symmetric_difference(&r2);
    assert_eq!(d2.len(), 3); // {S(b,c), S(b,1), T(1)}
    let d3 = db.symmetric_difference(&r3);
    assert_eq!(d3.len(), 1); // {T(c)}
}

/// E11 — Example 27 / Lemma 24: the chase witness `db_{A,P}` for the cyclic
/// dependency graph `{N[2]→N, N[2]→O}` satisfies all five items of the
/// lemma.
#[test]
fn e11_example_27_lemma_24() {
    let s = Arc::new(parse_schema("N[2,1] O[2,1]").unwrap());
    let q = parse_query(&s, "N(x,x), O(x,y)").unwrap();
    let fks = parse_fks(&s, "N[2] -> N, N[2] -> O").unwrap();

    // db as in Example 27; A = N(b,c), P = {(N,2)} (on a dependency cycle).
    let db = parse_instance(&s, "N(a,a) N(b,c) O(a,b)").unwrap();
    let a_fact = parse_fact("N(b, c)").unwrap();

    // The paper's db_{A,P} with the 2-cycle c → ⊥ → c.
    let db_ap = parse_instance(&s, "N(c,⊥) N(⊥,c) O(c,⊥) O(⊥,c)").unwrap();

    // (1) keyconst(db) ∩ adom(db_{A,P}) = ∅.
    let keyconsts = db.key_consts();
    assert!(db_ap.adom().iter().all(|c| !keyconsts.contains(c)));

    // (2) adom(db) ∩ adom(db_{A,P}) ⊆ C = {c}.
    let inter: Vec<_> = db
        .adom()
        .intersection(db_ap.adom())
        .copied()
        .collect();
    assert_eq!(inter, vec![Cst::new("c")]);

    // (3) db_{A,P} ⊨ PK ∪ FK.
    assert!(db_ap.is_consistent(&fks));

    // (4) A is not dangling in {A} ∪ db_{A,P} w.r.t. keys outgoing P.
    let mut with_a = db_ap.clone();
    with_a.insert(a_fact.clone()).unwrap();
    for fk in fks.iter() {
        assert!(!with_a.is_dangling(&a_fact, fk), "A dangles for {fk}");
    }

    // (5) every fact of {A} ∪ db_{A,P} is irrelevant for q in db ∪ db_{A,P}.
    let union = db.union(&db_ap);
    for fact in with_a.facts() {
        assert!(
            !cqa_model::eval::is_relevant(&union, &q, &fact),
            "{fact} must be irrelevant"
        );
    }
}

/// E14 — the "about the query" restriction: Proposition 19's pair is
/// rejected; the §1 discussion about q₁ (the AUTHORS atom may not be
/// dropped) is enforced.
#[test]
fn e14_aboutness_validation() {
    let s = Arc::new(parse_schema("E[2,1]").unwrap());
    let q = parse_query(&s, "E(x,y)").unwrap();
    let fks = parse_fks(&s, "E[2] -> E").unwrap();
    assert!(Problem::new(q, fks).is_err());

    let s2 = Arc::new(parse_schema("DOCS[3,1] R[2,2] AUTHORS[3,1]").unwrap());
    let short = parse_query(&s2, "DOCS(x, t, 2016), R(x, 'o1')").unwrap();
    let fks2 = parse_fks(&s2, "R[1] -> DOCS, R[2] -> AUTHORS").unwrap();
    assert!(Problem::new(short, fks2.clone()).is_err());
    let full =
        parse_query(&s2, "DOCS(x, t, 2016), R(x, 'o1'), AUTHORS('o1', u, z)").unwrap();
    assert!(Problem::new(full, fks2).is_ok());
}

/// Example 4's chase shape: chasing `{R(a,b), S(b,c)}` to consistency
/// regenerates exactly the superset-repair r3's missing fact.
#[test]
fn example_4_chase() {
    let s = Arc::new(parse_schema("R[2,1] S[2,1] T[1,1]").unwrap());
    let fks = parse_fks(&s, "R[2] -> S, S[2] -> T").unwrap();
    let db = parse_instance(&s, "R(a,b) S(b,c)").unwrap();
    let (chased, inserted) = chase_fresh(&db, &fks, 8).unwrap();
    assert_eq!(inserted.len(), 1);
    assert_eq!(inserted[0].rel, RelName::new("T"));
    assert!(chased.is_consistent(&fks));
}
