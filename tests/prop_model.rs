//! Property-based tests for the data-model substrate: interning, instances,
//! blocks, the ⊕-preorder and primary-key repairs.

use cqa::prelude::*;
use cqa_repair::{closer_eq, count_pk_repairs, pk_repairs, strictly_closer};
use proptest::prelude::*;
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Arc::new(cqa::model::parser::parse_schema("R[2,1] S[3,2]").unwrap())
}

prop_compose! {
    /// A random fact over R[2,1] or S[3,2] with a small value pool.
    fn arb_fact()(which in 0..2usize, vals in proptest::collection::vec(0..5u8, 3)) -> Fact {
        let name = |v: u8| format!("v{v}");
        if which == 0 {
            Fact::from_names("R", &[&name(vals[0]), &name(vals[1])])
        } else {
            Fact::from_names("S", &[&name(vals[0]), &name(vals[1]), &name(vals[2])])
        }
    }
}

prop_compose! {
    fn arb_instance(max: usize)(facts in proptest::collection::vec(arb_fact(), 0..max)) -> Instance {
        let mut db = Instance::new(schema());
        for f in facts {
            db.insert(f).unwrap();
        }
        db
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 256,
        failure_persistence: Some(FileFailurePersistence::WithSource("proptest-regressions")),
        ..ProptestConfig::default()
    })]

    #[test]
    fn interning_round_trips(s in "[a-z][a-z0-9_]{0,12}") {
        let sym = cqa::model::intern::Sym::intern(&s);
        prop_assert_eq!(&*sym.resolve(), s.as_str());
        prop_assert_eq!(sym, cqa::model::intern::Sym::intern(&s));
    }

    #[test]
    fn insert_remove_round_trip(db in arb_instance(12), extra in arb_fact()) {
        let mut work = db.clone();
        let was_present = work.contains(&extra);
        let inserted = work.insert(extra.clone()).unwrap();
        prop_assert_eq!(inserted, !was_present);
        prop_assert!(work.contains(&extra));
        prop_assert!(work.remove(&extra).unwrap());
        if was_present {
            // removing once leaves the original count minus one
            prop_assert_eq!(work.len(), db.len() - 1);
        } else {
            prop_assert_eq!(work, db);
        }
    }

    #[test]
    fn blocks_partition_the_relation(db in arb_instance(16)) {
        for rel in db.populated_relations() {
            let from_blocks: usize = db.blocks(rel).iter().map(|(_, fs)| fs.len()).sum();
            prop_assert_eq!(from_blocks, db.count_of(rel));
            // every block member is key-equal to every other
            let sig = db.sig(rel);
            for (_, facts) in db.blocks(rel) {
                for a in &facts {
                    for b in &facts {
                        prop_assert!(a.key_equal(b, sig));
                    }
                }
            }
        }
    }

    #[test]
    fn symmetric_difference_laws(a in arb_instance(10), b in arb_instance(10)) {
        let ab = a.symmetric_difference(&b);
        let ba = b.symmetric_difference(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert!(a.symmetric_difference(&a).is_empty());
        // |A ⊕ B| = |A| + |B| - 2|A ∩ B|
        let inter = a.intersection(&b);
        prop_assert_eq!(ab.len(), a.len() + b.len() - 2 * inter.len());
    }

    #[test]
    fn closer_eq_is_a_partial_order(db in arb_instance(8), r in arb_instance(6), s in arb_instance(6)) {
        // reflexivity
        prop_assert!(closer_eq(&db, &r, &r));
        // antisymmetry of the strict part
        prop_assert!(!(strictly_closer(&db, &r, &s) && strictly_closer(&db, &s, &r)));
        // db itself is the unique minimum
        prop_assert!(closer_eq(&db, &db, &r));
    }

    #[test]
    fn transitivity_of_closer_eq(db in arb_instance(6), r in arb_instance(5), s in arb_instance(5), t in arb_instance(5)) {
        if closer_eq(&db, &r, &s) && closer_eq(&db, &s, &t) {
            prop_assert!(closer_eq(&db, &r, &t));
        }
    }

    #[test]
    fn pk_repairs_are_exactly_block_choices(db in arb_instance(8)) {
        let repairs = pk_repairs(&db);
        prop_assert_eq!(repairs.len() as u128, count_pk_repairs(&db));
        for r in &repairs {
            prop_assert!(r.satisfies_pk());
            prop_assert!(r.subset_of(&db));
            // maximality: one fact from every block
            for rel in db.populated_relations() {
                prop_assert_eq!(r.blocks(rel).len(), db.blocks(rel).len());
            }
        }
        // pairwise distinct
        for i in 0..repairs.len() {
            for j in (i + 1)..repairs.len() {
                prop_assert!(repairs[i] != repairs[j]);
            }
        }
    }

    #[test]
    fn pk_repairs_are_delta_repairs(db in arb_instance(6)) {
        let fks = FkSet::empty(schema());
        let limits = cqa_repair::SearchLimits::default();
        for r in pk_repairs(&db) {
            prop_assert_eq!(cqa_repair::is_delta_repair(&db, &r, &fks, &limits), Some(true));
        }
    }

    #[test]
    fn fact_display_parse_round_trip(f in arb_fact()) {
        let text = f.to_string();
        let parsed = cqa::model::parser::parse_fact(&text).unwrap();
        prop_assert_eq!(parsed, f);
    }

    #[test]
    fn instance_display_parse_round_trip(db in arb_instance(10)) {
        // Instance Display is `{fact, fact, …}`; strip the braces and commas
        // become separators the parser accepts.
        let text = db.to_string();
        let inner = text.trim_start_matches('{').trim_end_matches('}');
        let parsed = cqa::model::parser::parse_instance(&schema(), inner).unwrap();
        prop_assert_eq!(parsed, db);
    }

    #[test]
    fn adom_contains_all_values(db in arb_instance(12)) {
        let adom = db.adom();
        for f in db.facts() {
            for a in f.args.iter() {
                prop_assert!(adom.contains(a));
            }
        }
        prop_assert!(db.key_consts().is_subset(adom));
    }

    #[test]
    fn restriction_and_union(db in arb_instance(12)) {
        let r_only = db.restrict(&[RelName::new("R")].into_iter().collect());
        let s_only = db.restrict(&[RelName::new("S")].into_iter().collect());
        prop_assert_eq!(r_only.union(&s_only), db.clone());
        prop_assert_eq!(r_only.intersection(&s_only).len(), 0);
    }
}
