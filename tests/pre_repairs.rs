//! Cross-crate exercise of the Appendix D pre-repair machinery with the
//! *real* obedience test from `cqa-core` (the unit tests inside `cqa-repair`
//! use an emulated verdict to avoid a crate cycle).

use cqa::core::obedience::is_obedient_set;
use cqa::prelude::*;
use cqa_repair::pre_repair::{cap_closer, is_irrelevantly_dangling};
use std::sync::Arc;

/// The §4 / Lemma 15 shape: a falsifying candidate whose dangling facts all
/// have fresh (orphan) values at the disobedient position set — exactly the
/// Definition 29 situation that Lemma 24 closes off.
#[test]
fn section4_falsifying_candidate_is_irrelevantly_dangling() {
    let s = Arc::new(parse_schema("N[3,1] O[1,1]").unwrap());
    let q = parse_query(&s, "N(x,'c',y), O(y)").unwrap();
    let fks = parse_fks(&s, "N[3] -> O").unwrap();

    // db: one block {N(b1,c,1), N(b1,d,f)} where f is an orphan value, plus
    // O(1). The candidate r keeps the d-fact (dangling at position 3 with
    // the orphan value f).
    let db = parse_instance(&s, "N(b1,c,1) N(b1,d,f) O(1)").unwrap();
    let r = parse_instance(&s, "N(b1,d,f) O(1)").unwrap();

    // P = {(N,3)}? No: the value at (N,2) is 'd' (not orphan: occurs once…
    // actually orphan too) — P collects every non-key orphan position. The
    // set must be DISOBEDIENT and contain the dangling position (N,3).
    // For q = {N(x,'c',y), O(y)}, {(N,2),(N,3)} is disobedient (constant c
    // at (N,2)'s closure), so the candidate qualifies.
    assert!(is_irrelevantly_dangling(&r, &db, &fks, &q, &|q, fks, p| {
        is_obedient_set(q, fks, p)
    }));
}

/// If the dangling value is shared (non-orphan), Definition 29 fails: the
/// insertion needed to close the fact could interact with the query.
#[test]
fn shared_dangling_value_disqualifies() {
    let s = Arc::new(parse_schema("N[3,1] O[1,1]").unwrap());
    let q = parse_query(&s, "N(x,'c',y), O(y)").unwrap();
    let fks = parse_fks(&s, "N[3] -> O").unwrap();

    // The dangling value 2 also appears in another fact of r ∪ db.
    let db = parse_instance(&s, "N(b1,c,1) N(b1,d,2) N(b2,c,2) O(1)").unwrap();
    let r = parse_instance(&s, "N(b1,d,2) N(b2,c,2) O(1)").unwrap();
    assert!(!is_irrelevantly_dangling(&r, &db, &fks, &q, &|q, fks, p| {
        is_obedient_set(q, fks, p)
    }));
}

/// A consistent instance is trivially irrelevantly dangling (no dangling
/// facts at all).
#[test]
fn consistent_instances_are_trivially_ok() {
    let s = Arc::new(parse_schema("N[3,1] O[1,1]").unwrap());
    let q = parse_query(&s, "N(x,'c',y), O(y)").unwrap();
    let fks = parse_fks(&s, "N[3] -> O").unwrap();
    let db = parse_instance(&s, "N(b1,c,1) O(1)").unwrap();
    assert!(is_irrelevantly_dangling(&db, &db, &fks, &q, &|q, fks, p| {
        is_obedient_set(q, fks, p)
    }));
}

/// The ≺^∩_db order prefers keeping more of db; it is the minimality notion
/// for pre-repairs (Definition 30).
#[test]
fn cap_closer_prefers_keeping_db_facts() {
    let s = Arc::new(parse_schema("N[3,1] O[1,1]").unwrap());
    let db = parse_instance(&s, "N(b1,c,1) N(b2,c,2) O(1)").unwrap();
    let more = parse_instance(&s, "N(b1,c,1) N(b2,c,2) O(1)").unwrap();
    let less = parse_instance(&s, "N(b1,c,1) O(1)").unwrap();
    assert!(cap_closer(&db, &more, &less));
    assert!(!cap_closer(&db, &less, &more));
}

/// Theorem 32 on a small §4 instance: certainty decided through repairs
/// (the oracle) coincides with examining falsifying candidates that satisfy
/// the pre-repair *conditions* — here the candidate from the first test
/// witnesses non-certainty, matching the oracle.
#[test]
fn theorem_32_direction_on_section4_instance() {
    let s = Arc::new(parse_schema("N[3,1] O[1,1]").unwrap());
    let q = parse_query(&s, "N(x,'c',y), O(y)").unwrap();
    let fks = parse_fks(&s, "N[3] -> O").unwrap();
    let db = parse_instance(&s, "N(b1,c,1) N(b1,d,f) O(1)").unwrap();

    // A falsifying pre-repair-shaped candidate exists (previous test), so
    // Theorem 32 predicts db is a no-instance; the oracle confirms.
    let oracle = CertaintyOracle::new();
    assert_eq!(oracle.is_certain(&db, &q, &fks).as_bool(), Some(false));

    // And where no such candidate exists — the block closed by O-support on
    // the c-side only — the oracle says certain.
    let db2 = parse_instance(&s, "N(b1,c,1) O(1)").unwrap();
    assert_eq!(oracle.is_certain(&db2, &q, &fks).as_bool(), Some(true));
}
