//! Differential harness for the artifact emitter: on generated instances
//! from every emittable route, **`emit ∘ exec` must equal
//! `Solver::solve`** — the emitted Datalog program, printed, re-parsed
//! and executed by the vendored semi-naïve evaluator, derives the goal
//! predicate exactly on the yes-instances. This makes the evaluator the
//! repo's fourth independent certainty implementation (after the compiled
//! FO plan, the poly-time backends and the ⊕-repair oracle), and it
//! disagrees with none of them.
//!
//! Families:
//!
//! * FO (§8's query) and a depth-2 nested Lemma 45 query with an acyclic
//!   residual join — the `lower_fo` subformula translation;
//! * Proposition 16 **under renamed relations** (`E`/`V`), so the shape
//!   matcher, not the fixture names, picks the reachability route;
//! * Proposition 17 under renamed relations (`Emp`/`Dept`) — the flipped
//!   dual-Horn lowering with its per-block ordering chain;
//!
//! and on every family the SQL artifact must pass the emitter's own
//! `check_sql` shape check. Failure seeds persist to
//! `proptest-regressions/` next to this file.

use cqa::emit::datalog::Program;
use cqa::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// Value pool shared by all generators: query constants occur often so
/// blocks fill up and middles match/mismatch.
const POOL: [&str; 6] = ["c", "hq", "a", "b", "d", "1"];

fn instance_for(
    schema: &Arc<Schema>,
    rels: &[(&str, usize)],
    picks: &[(usize, Vec<usize>)],
) -> Instance {
    let mut db = Instance::new(schema.clone());
    for (rel_pick, args) in picks {
        let (rel, arity) = rels[rel_pick % rels.len()];
        let args: Vec<&str> = (0..arity)
            .map(|i| POOL[args.get(i).copied().unwrap_or(0) % POOL.len()])
            .collect();
        db.insert_named(rel, &args).unwrap();
    }
    db
}

fn arb_picks() -> impl Strategy<Value = Vec<(usize, Vec<usize>)>> {
    proptest::collection::vec(
        (0..8usize, proptest::collection::vec(0..POOL.len(), 0..4)),
        0..14,
    )
}

fn solver_for(schema: &Arc<Schema>, q: &str, fks: &str) -> Solver {
    let problem = Problem::new(
        parse_query(schema, q).unwrap(),
        parse_fks(schema, fks).unwrap(),
    )
    .unwrap();
    Solver::builder(problem)
        .options(ExecOptions::sequential())
        .build()
        .unwrap()
}

/// The full differential loop on one instance: emit the Datalog artifact,
/// re-parse its printed text, execute it, and compare the goal with the
/// solver's verdict; then emit the SQL artifact and shape-check it.
fn assert_emit_exec_matches_solve(solver: &Solver, db: &Instance) -> Result<(), TestCaseError> {
    let expected = solver.solve(db).is_certain();

    let artifact = solver.emit(db, Format::Datalog).unwrap();
    let program = Program::parse(&artifact.text).expect("emitted artifact re-parses");
    let ev = evaluate(&program).expect("emitted artifact is sound");
    prop_assert_eq!(
        ev.holds(&artifact.goal),
        expected,
        "emit∘exec disagrees with solve (route {})\n{}",
        artifact.route,
        artifact.text
    );

    let sql = solver.emit(db, Format::Sql).unwrap();
    if let Err(e) = cqa::emit::check_sql(&sql.text) {
        prop_assert!(false, "emitted SQL failed its shape check: {}\n{}", e, sql.text);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 128,
        failure_persistence: Some(FileFailurePersistence::WithSource("proptest-regressions")),
        ..ProptestConfig::default()
    })]

    /// FO route (§8's query): the subformula lowering under guarded
    /// negation ≡ the compiled plan.
    #[test]
    fn fo_emit_exec_matches_solve(picks in arb_picks()) {
        let s = Arc::new(parse_schema("N[2,1] O[1,1] P[1,1]").unwrap());
        let solver = solver_for(&s, "N('c',y), O(y), P(y)", "N[2] -> O");
        prop_assert_eq!(solver.route().kind(), RouteKind::Fo);
        let db = instance_for(&s, &[("N", 2), ("O", 1), ("P", 1)], &picks);
        assert_emit_exec_matches_solve(&solver, &db)?;
    }

    /// Depth-2 nested Lemma 45 with an acyclic residual join: deeper
    /// quantifier nesting and a wider dom relation in the lowering.
    #[test]
    fn nested_fo_emit_exec_matches_solve(picks in arb_picks()) {
        let s = Arc::new(parse_schema("N[2,1] M[2,1] Q[1,1] P[1,1] O[1,1]").unwrap());
        let solver = solver_for(&s, "N('c',y), M(y,w), Q(w), P(w), O(y)", "N[2] -> O, M[2] -> Q");
        prop_assert_eq!(solver.route().kind(), RouteKind::Fo);
        let db = instance_for(&s, &[("N", 2), ("M", 2), ("Q", 1), ("P", 1), ("O", 1)], &picks);
        assert_emit_exec_matches_solve(&solver, &db)?;
    }

    /// Proposition 16 under renamed relations: the recursive reachability
    /// rules ≡ the graph backend the solver routes to.
    #[test]
    fn prop16_emit_exec_matches_solve(picks in arb_picks()) {
        let s = Arc::new(parse_schema("E[2,1] V[1,1]").unwrap());
        let solver = solver_for(&s, "E(x,x), V(x)", "E[2] -> V");
        prop_assert_eq!(solver.route().kind(), RouteKind::PolyTime);
        let db = instance_for(&s, &[("E", 2), ("V", 1)], &picks);
        assert_emit_exec_matches_solve(&solver, &db)?;
    }

    /// Proposition 17 under renamed relations: the flipped dual-Horn
    /// deletion closure ≡ the dual-Horn backend.
    #[test]
    fn prop17_emit_exec_matches_solve(picks in arb_picks()) {
        let s = Arc::new(parse_schema("Emp[3,1] Dept[1,1]").unwrap());
        let solver = solver_for(&s, "Emp(x,'hq',y), Dept(y)", "Emp[3] -> Dept");
        prop_assert_eq!(solver.route().kind(), RouteKind::PolyTime);
        let db = instance_for(&s, &[("Emp", 3), ("Dept", 1)], &picks);
        assert_emit_exec_matches_solve(&solver, &db)?;
    }
}
