//! Integration tests for the user-facing features layered on the core
//! library: the certain-answers API, the engine's SQL emission, formula
//! statistics, and the repair-counting module's relationship to certainty.
//!
//! The engine's `answer*` surface is deprecated in favor of `Solver`, but
//! stays covered here on purpose — deprecated wrappers that silently rot
//! are worse than none.
#![allow(deprecated)]

use cqa::core::certain_answers;
use cqa::fo::stats;
use cqa::prelude::*;
use cqa_repair::{exact_satisfaction_ratio, sampled_satisfaction_ratio};
use std::sync::Arc;

#[test]
fn certain_answers_agree_with_boolean_certainty_per_tuple() {
    // For every candidate tuple, membership in certain_answers must equal
    // the oracle's verdict on the grounded Boolean query.
    let s = Arc::new(parse_schema("N[2,1] O[1,1] P[1,1]").unwrap());
    let q = parse_query(&s, "N(x,y), O(y), P(y)").unwrap();
    let fks = parse_fks(&s, "N[2] -> O").unwrap();
    let db = parse_instance(
        &s,
        "N(k1,a) N(k1,b) O(a) O(b) P(a) P(b)
         N(k2,c) O(c) P(c)
         N(k3,d) P(d)",
    )
    .unwrap();

    let answers = certain_answers(&q, &fks, &[Var::new("x")], &db).unwrap();
    let oracle = CertaintyOracle::new();
    for key in ["k1", "k2", "k3"] {
        let grounded = parse_query(&s, &format!("N('{key}',y), O(y), P(y)")).unwrap();
        let truth = oracle
            .is_certain(&db, &grounded, &fks)
            .as_bool()
            .expect("small instance");
        assert_eq!(
            answers.contains(&vec![Cst::new(key)]),
            truth,
            "tuple {key}"
        );
    }
    // k1: both block choices supported and P-covered → certain.
    // k2: single consistent chain → certain. k3: N(k3,d) dangling (no O(d)),
    // droppable → not certain.
    assert!(answers.contains(&vec![Cst::new("k1")]));
    assert!(answers.contains(&vec![Cst::new("k2")]));
    assert!(!answers.contains(&vec![Cst::new("k3")]));
}

#[test]
fn certain_answers_fast_path_matches_per_tuple_grounding_on_collisions() {
    // The fast path freezes the free variables as DISTINCT parameter
    // constants, classifies once, and reuses one compiled plan across all
    // tuples. Its load-bearing assumption is that the answer is invariant
    // when tuple values collide — with each other, or with constants
    // already in the query. Pin that against the legacy per-tuple
    // grounding path, tuple by tuple.
    let cases: &[(&str, &str, &str, &[&str])] = &[
        // Values of u collide with key values of R and with each other.
        ("R[2,1] S[1,1]", "R(x,u), S(x)", "R[1] -> S", &["u"]),
        // Two free variables that bind to the SAME value on some tuples.
        ("R[2,1] S[2,1]", "R(x,y), S(y,z)", "", &["x", "z"]),
        // A free variable whose values collide with the query constant 'm'.
        ("A[2,1] B[2,1]", "A(x,y), B(y,'m')", "A[2] -> B", &["x"]),
    ];
    let dbs = [
        "R(a,k) R(a,a) R(k,k) S(a) S(k)",
        "R(a,b) S(b,a) R(b,b) S(b,b) R(a,a)",
        "A(m,b) A(m,c) B(b,m) B(c,m) A(n,b)",
        "A(a,m) B(m,m)",
        "",
    ];
    for (schema_text, query_text, fks_text, free_names) in cases {
        let s = Arc::new(parse_schema(schema_text).unwrap());
        let q = parse_query(&s, query_text).unwrap();
        let fks = parse_fks(&s, fks_text).unwrap();
        let free: Vec<Var> = free_names.iter().map(|n| Var::new(n)).collect();
        for db_text in dbs {
            let Ok(db) = parse_instance(&s, db_text) else {
                continue; // instance doesn't fit this schema
            };
            let answers = certain_answers(&q, &fks, &free, &db).unwrap();
            // Candidate space, recomputed the same way the API does.
            let mut candidates: std::collections::BTreeSet<Vec<Cst>> = Default::default();
            for val in cqa_model::all_valuations(&db, &q) {
                candidates.insert(free.iter().map(|v| val[v]).collect());
            }
            for tuple in candidates {
                // Legacy path: ground, classify, answer — per tuple.
                let subst: std::collections::BTreeMap<Var, Term> = free
                    .iter()
                    .zip(tuple.iter())
                    .map(|(&v, &c)| (v, Term::Cst(c)))
                    .collect();
                let grounded = q.substitute(&subst);
                let problem = Problem::new(grounded, fks.clone()).unwrap();
                let expected = match problem.classify() {
                    Classification::Fo(plan) => plan.answer(&db),
                    Classification::NotFo(r) => {
                        panic!("{query_text} grounding {tuple:?} must stay FO: {r}")
                    }
                };
                assert_eq!(
                    answers.contains(&tuple),
                    expected,
                    "query {query_text}, tuple {tuple:?}, db {db_text}"
                );
            }
        }
    }
}

#[test]
fn batched_answers_amortize_one_compiled_plan() {
    // The engine compiles the plan once; answer_many evaluates a stream of
    // databases against it and must agree with the interpretive
    // materializing evaluator on every one.
    let s = Arc::new(parse_schema("N[2,1] O[1,1] P[1,1]").unwrap());
    let q = parse_query(&s, "N('c',y), O(y), P(y)").unwrap();
    let fks = parse_fks(&s, "N[2] -> O").unwrap();
    let engine = CertainEngine::try_new(Problem::new(q, fks).unwrap()).unwrap();
    assert!(
        engine.compiled_plan().is_some(),
        "the §8 plan must compile: {:?}",
        engine.compile_plan().err()
    );

    let dbs: Vec<Instance> = [
        "N(c,a) N(c,b) O(a) P(a) P(b)",
        "N(c,a) N(c,b) O(a) P(b)",
        "N(c,a) O(a) P(a)",
        "O(a) P(a)",
        "",
    ]
    .iter()
    .map(|text| parse_instance(&s, text).unwrap())
    .collect();

    let batched = engine.answer_many(&dbs);
    assert_eq!(batched, vec![true, false, true, false, false]);
    for (db, &got) in dbs.iter().zip(&batched) {
        assert_eq!(got, engine.answer_materialized(db), "on {db}");
        assert_eq!(got, engine.answer(db), "on {db}");
    }
}

#[test]
fn certain_answers_with_two_free_variables() {
    let s = Arc::new(parse_schema("R[2,1] S[2,1]").unwrap());
    let q = parse_query(&s, "R(x,y), S(y,z)").unwrap();
    let fks = FkSet::empty(s.clone());
    // R(a,·) is ambiguous between b and b2 — only z via the unambiguous
    // R(c,d) chain is certain.
    let db = parse_instance(&s, "R(a,b) R(a,b2) S(b,1) S(b2,2) R(c,d) S(d,9)").unwrap();
    let answers = certain_answers(&q, &fks, &[Var::new("x"), Var::new("z")], &db).unwrap();
    assert!(answers.contains(&vec![Cst::new("c"), Cst::new("9")]));
    assert!(!answers.contains(&vec![Cst::new("a"), Cst::new("1")]));
    assert!(!answers.contains(&vec![Cst::new("a"), Cst::new("2")]));
}

#[test]
fn formula_stats_of_constructed_rewritings() {
    // Rewriting size grows with the query, quantifier depth tracks the atom
    // elimination order.
    let s = Arc::new(parse_schema("R[2,1] S[2,1] T[2,1]").unwrap());
    let q2 = parse_query(&s, "R(x,y), S(y,z)").unwrap();
    let q3 = parse_query(&s, "R(x,y), S(y,z), T(z,w)").unwrap();
    let f2 = kw_rewrite(&q2).unwrap();
    let f3 = kw_rewrite(&q3).unwrap();
    let s2 = stats(&f2);
    let s3 = stats(&f3);
    assert!(s3.nodes > s2.nodes);
    assert!(s3.quantifier_depth > s2.quantifier_depth);
    assert!(s2.atoms >= 2);
    assert!(s3.atoms >= 3);
}

#[test]
fn satisfaction_ratio_one_iff_pk_certain() {
    let s = Arc::new(parse_schema("R[2,1] S[2,1]").unwrap());
    let q = parse_query(&s, "R(x,y), S(y,z)").unwrap();
    for (text, certain) in [
        ("R(a,b) R(a,c) S(b,1) S(c,2)", true),
        ("R(a,b) R(a,c) S(b,1)", false),
        ("R(a,b) S(b,1)", true),
    ] {
        let db = parse_instance(&s, text).unwrap();
        let ratio = exact_satisfaction_ratio(&db, &q);
        assert_eq!(ratio == 1.0, certain, "on {text} (ratio {ratio})");
        assert_eq!(cqa_repair::pk_certain(&db, &q), certain);
        // The sampler is consistent with the exact ratio.
        let est = sampled_satisfaction_ratio(&db, &q, 800, 5);
        assert!((est - ratio).abs() < 0.1, "estimate {est} vs exact {ratio}");
    }
}

#[test]
fn engine_sql_mentions_every_relation() {
    let s = Arc::new(parse_schema("N[2,1] O[1,1] P[1,1]").unwrap());
    let q = parse_query(&s, "N('c',y), O(y), P(y)").unwrap();
    let fks = parse_fks(&s, "N[2] -> O").unwrap();
    let engine = CertainEngine::try_new(Problem::new(q, fks).unwrap()).unwrap();
    let (ddl, expr) = engine.sql().unwrap();
    for rel in ["N", "O", "P"] {
        assert!(ddl.contains(&format!("FROM {rel}")), "DDL misses {rel}");
        assert!(expr.contains(&format!("FROM {rel}")), "WHERE misses {rel}");
    }
}
