//! CLI exit-code contract, driven through the real binary
//! (`CARGO_BIN_EXE_cqa`): the not-FO exit 4 for `cqa answer`, and
//! `cqa serve`'s strict refusal to start on invalid `CQA_THREADS` /
//! `CQA_EVALUATOR` — via subprocess environments, never in-process
//! `set_var`.

use std::io::Write;
use std::process::{Command, Stdio};

fn cqa() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cqa"))
}

fn write_db(tag: &str, text: &str) -> std::path::PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("cqa-exitcode-{}-{tag}.db", std::process::id()));
    let mut f = std::fs::File::create(&path).unwrap();
    writeln!(f, "{text}").unwrap();
    path
}

const FO: [&str; 6] = [
    "--schema",
    "N[2,1] O[1,1] P[1,1]",
    "--query",
    "N('c',y), O(y), P(y)",
    "--fks",
    "N[2] -> O",
];

const HARD: [&str; 6] = [
    "--schema",
    "N[3,1] O[2,1]",
    "--query",
    "N(x,'c',y), O(y,w)",
    "--fks",
    "N[3] -> O",
];

#[test]
fn answer_distinguishes_certain_no_from_not_fo() {
    let db = write_db("yes", "N(c,a) O(a) P(a)");
    let yes = cqa()
        .arg("answer")
        .args(FO)
        .args(["--db", db.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(yes.status.code(), Some(0), "certain yes exits 0");

    let db_no = write_db("no", "N(c,a) N(c,b) O(a) P(a)");
    let no = cqa()
        .arg("answer")
        .args(FO)
        .args(["--db", db_no.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(no.status.code(), Some(1), "certain no exits 1");

    // The regression: a hard-class problem used to be indistinguishable
    // from those by exit code. It must exit 4 — not 1 (the answer is not
    // "no") and not 2 (the invocation is well-formed).
    let db_hard = write_db("hard", "N(a,c,1) O(1,w)");
    let not_fo = cqa()
        .arg("answer")
        .args(HARD)
        .args(["--db", db_hard.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(not_fo.status.code(), Some(4), "not-FO exits 4");
    let stderr = String::from_utf8_lossy(&not_fo.stderr);
    assert!(stderr.contains("not FO-rewritable"), "{stderr}");
    assert!(stderr.contains("cqa solve"), "points at the right tool: {stderr}");

    for p in [db, db_no, db_hard] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn serve_refuses_invalid_env_instead_of_degrading() {
    // `cqa solve` tolerates a typo'd CQA_EVALUATOR (warn once, default to
    // auto) — but a long-lived server must not: `cqa serve` validates
    // strictly and exits 2 before binding anything.
    let refused = cqa()
        .arg("serve")
        .args(["--socket", "/tmp/cqa-never-bound.sock"])
        .env("CQA_EVALUATOR", "semijion")
        .output()
        .unwrap();
    assert_eq!(refused.status.code(), Some(2), "typo'd evaluator refused");
    let stderr = String::from_utf8_lossy(&refused.stderr);
    assert!(stderr.contains("refusing to serve"), "{stderr}");
    assert!(stderr.contains("semijion"), "names the bad value: {stderr}");

    let refused = cqa()
        .arg("serve")
        .args(["--socket", "/tmp/cqa-never-bound.sock"])
        .env("CQA_THREADS", "not-a-number")
        .output()
        .unwrap();
    assert_eq!(refused.status.code(), Some(2), "unparsable threads refused");
    assert!(
        String::from_utf8_lossy(&refused.stderr).contains("CQA_THREADS"),
        "names the variable"
    );

    let refused = cqa()
        .arg("serve")
        .args(["--socket", "/tmp/cqa-never-bound.sock"])
        .env("CQA_THREADS", "0")
        .output()
        .unwrap();
    assert_eq!(refused.status.code(), Some(2), "zero threads refused");
}

#[test]
fn solve_warns_once_on_typod_evaluator_but_still_runs() {
    // The non-serve commands keep the lenient path — but it must WARN
    // instead of silently mapping the typo to `auto` (the old behavior
    // made `CQA_EVALUATOR=semijion` benchmarks silently measure the wrong
    // evaluator).
    let db = write_db("warn", "N(c,a) O(a) P(a)");
    let out = cqa()
        .arg("solve")
        .args(FO)
        .args(["--db", db.to_str().unwrap()])
        .env("CQA_EVALUATOR", "semijion")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "lenient path still answers");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("warning") && stderr.contains("semijion"),
        "one-time warning names the bad value: {stderr}"
    );
    let _ = std::fs::remove_file(db);
}

#[test]
fn request_maps_verdicts_onto_exit_codes() {
    // serve + request round trip over a Unix socket, exercising the exit
    // mapping (0 certain / 1 not certain) through real processes.
    let socket = {
        let mut p = std::env::temp_dir();
        p.push(format!("cqa-exitcode-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    };
    let mut server = cqa()
        .arg("serve")
        .args(["--socket", socket.to_str().unwrap()])
        .stderr(Stdio::null())
        .spawn()
        .unwrap();

    // Wait for the socket to answer a ping.
    let mut up = false;
    for _ in 0..300 {
        let ping = cqa()
            .arg("request")
            .args(["--socket", socket.to_str().unwrap(), "--op", "ping"])
            .output()
            .unwrap();
        if ping.status.code() == Some(0) {
            up = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(up, "server came up");

    let yes = cqa()
        .arg("request")
        .args(["--socket", socket.to_str().unwrap()])
        .args(FO)
        .args(["--db-text", "N(c,a) O(a) P(a)"])
        .output()
        .unwrap();
    assert_eq!(yes.status.code(), Some(0), "certain → 0: {yes:?}");

    let no = cqa()
        .arg("request")
        .args(["--socket", socket.to_str().unwrap()])
        .args(FO)
        .args(["--db-text", "N(c,a) N(c,b) O(a) P(a)"])
        .output()
        .unwrap();
    assert_eq!(no.status.code(), Some(1), "not certain → 1: {no:?}");
    let reply = String::from_utf8_lossy(&no.stdout);
    assert!(reply.contains(r#""cache":"hit""#), "second request hits: {reply}");

    let bye = cqa()
        .arg("request")
        .args(["--socket", socket.to_str().unwrap(), "--op", "shutdown"])
        .output()
        .unwrap();
    assert_eq!(bye.status.code(), Some(0));
    let status = server.wait().unwrap();
    assert_eq!(status.code(), Some(0), "serve exits 0 on clean shutdown");
}
