//! Differential property tests for the compiled reduction pipeline: the
//! lazy, view-backed [`CompiledPlan`] must agree with the interpretive,
//! materializing [`RewritePlan::answer`] (the differential-testing oracle,
//! mirroring the `cqa-fo::interp` split) on arbitrary instances.
//!
//! The generators target exactly the shapes where the two executors take
//! maximally different routes:
//!
//! * **nested Lemma 45** (depth ≥ 2) — the interpretive path renames and
//!   materializes a database per block fact *per level*, while the
//!   compiled path rebinds parameter slots over one view stack;
//! * **non-matching block facts** — a block fact failing to unify with
//!   `N(⃗c, ⃗t)` must short-circuit to "not certain" on both paths;
//! * **dangling facts and multi-fact blocks** — exercising the Lemma 37/40
//!   block filters and the non-dangling witness test through the view.

// The deprecated engine batch surface is exercised deliberately: it is the
// thin wrapper the differential harness pins against the plan executors.
#![allow(deprecated)]

use cqa::core::compiled_plan::CompiledPlan;
use cqa::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// A case: schema, query, foreign keys, and the fact shapes the instance
/// generator may emit (relation, arity).
struct Family {
    schema: &'static str,
    query: &'static str,
    fks: &'static str,
    rels: &'static [(&'static str, usize)],
}

/// Depth-2 nested Lemma 45: `N('c',y)` binds `y`, the frozen residual
/// `M(§y,w)` binds `w` (a parameter in key position at the second level),
/// and the tail is the KW rewriting of `P`.
const NESTED: Family = Family {
    schema: "N[2,1] M[2,1] Q[1,1] P[1,1] O[1,1]",
    query: "N('c',y), M(y,w), Q(w), P(w), O(y)",
    fks: "N[2] -> O, M[2] -> Q",
    rels: &[("N", 2), ("M", 2), ("Q", 1), ("P", 1), ("O", 1)],
};

/// Lemma 45 with a constant non-key term: block facts `N(c, y, ≠d)` do not
/// match the atom and must flip the answer to false on both paths.
const NONMATCHING: Family = Family {
    schema: "N[3,1] O[1,1] P[1,1]",
    query: "N('c',y,'d'), O(y), P(y)",
    fks: "N[2] -> O",
    rels: &[("N", 3), ("O", 1), ("P", 1)],
};

/// Lemma 37 + Lemma 45 composition ("lemma45 followed by a strong key"
/// from the integration corpus): exercises block filtering upstream of the
/// branching tail.
const FILTERED: Family = Family {
    schema: "N[2,1] O[2,1] Q[1,1]",
    query: "N('c',y), O(y,z), Q(z)",
    fks: "N[2] -> O, O[2] -> Q",
    rels: &[("N", 2), ("O", 2), ("Q", 1)],
};

fn build(family: &Family) -> (RewritePlan, CompiledPlan, Arc<Schema>) {
    let schema = Arc::new(parse_schema(family.schema).unwrap());
    let q = parse_query(&schema, family.query).unwrap();
    let fks = parse_fks(&schema, family.fks).unwrap();
    let plan = match Problem::new(q, fks).unwrap().classify() {
        Classification::Fo(plan) => *plan,
        Classification::NotFo(r) => panic!("{}: expected FO, got {r}", family.query),
    };
    let compiled = CompiledPlan::compile(&plan).unwrap();
    (plan, compiled, schema)
}

/// Value pool: the query constants `c`/`d` occur often (so key blocks fill
/// up and non-key constants match and mismatch), plus a handful of others.
const POOL: [&str; 6] = ["c", "d", "a", "b", "e", "1"];

fn instance_for(
    schema: &Arc<Schema>,
    rels: &[(&str, usize)],
    picks: &[(usize, Vec<usize>)],
) -> Instance {
    let mut db = Instance::new(schema.clone());
    for (rel_pick, args) in picks {
        let (rel, arity) = rels[rel_pick % rels.len()];
        let args: Vec<&str> = (0..arity)
            .map(|i| POOL[args.get(i).copied().unwrap_or(0) % POOL.len()])
            .collect();
        db.insert_named(rel, &args).unwrap();
    }
    db
}

fn arb_picks() -> impl Strategy<Value = Vec<(usize, Vec<usize>)>> {
    proptest::collection::vec(
        (0..8usize, proptest::collection::vec(0..POOL.len(), 0..3)),
        0..14,
    )
}

fn check(family: &Family, picks: &[(usize, Vec<usize>)]) -> Result<(), TestCaseError> {
    let (plan, compiled, schema) = build(family);
    let db = instance_for(&schema, family.rels, picks);
    let interpretive = plan.answer(&db);
    let lazy = compiled.answer(&db);
    prop_assert_eq!(
        interpretive,
        lazy,
        "query {}: materializing {} vs compiled {} on {}",
        family.query,
        interpretive,
        lazy,
        db
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 192,
        failure_persistence: Some(FileFailurePersistence::WithSource("proptest-regressions")),
        ..ProptestConfig::default()
    })]

    #[test]
    fn compiled_plan_matches_materializing_on_nested_lemma45(picks in arb_picks()) {
        check(&NESTED, &picks)?;
    }

    #[test]
    fn compiled_plan_matches_materializing_on_nonmatching_blocks(picks in arb_picks()) {
        check(&NONMATCHING, &picks)?;
    }

    #[test]
    fn compiled_plan_matches_materializing_under_block_filters(picks in arb_picks()) {
        check(&FILTERED, &picks)?;
    }

    #[test]
    fn answer_many_matches_per_instance_answers(
        batches in proptest::collection::vec(arb_picks(), 1..4)
    ) {
        // The batched engine surface over one compiled plan agrees with
        // both executors per instance.
        let schema = Arc::new(parse_schema(NESTED.schema).unwrap());
        let q = parse_query(&schema, NESTED.query).unwrap();
        let fks = parse_fks(&schema, NESTED.fks).unwrap();
        let engine = CertainEngine::try_new(Problem::new(q, fks).unwrap()).unwrap();
        prop_assert!(engine.compiled_plan().is_some(), "compiles for the nested family");
        let dbs: Vec<Instance> = batches
            .iter()
            .map(|p| instance_for(&schema, NESTED.rels, p))
            .collect();
        let batched = engine.answer_many(&dbs);
        prop_assert_eq!(batched.len(), dbs.len());
        for (db, &got) in dbs.iter().zip(&batched) {
            prop_assert_eq!(got, engine.answer_materialized(db), "on {}", db);
        }
    }
}

/// The renaming table of a long-lived plan must stop growing once it has
/// seen every (value, expected-term) pair — repeated `answer()` calls may
/// not mint fresh interner symbols per call (the unbounded-growth bug this
/// PR fixes on the interpretive path).
#[test]
fn interpretive_rename_constants_are_recycled() {
    let (plan, _, schema) = build(&NESTED);
    let db = parse_instance(
        &schema,
        "N(c,a) N(c,b) O(a) O(b) M(a,1) M(b,1) Q(1) P(1)",
    )
    .unwrap();
    plan.answer(&db); // warm: the tables now hold every pair
    let tables: Vec<usize> = rename_table_sizes(&plan);
    for _ in 0..50 {
        plan.answer(&db);
    }
    assert_eq!(
        tables,
        rename_table_sizes(&plan),
        "repeated answers must reuse the memoized renaming constants"
    );
}

/// Collects the sizes of every rename table in the plan (nested tails
/// included).
fn rename_table_sizes(plan: &RewritePlan) -> Vec<usize> {
    let mut out = Vec::new();
    let mut cur = plan;
    loop {
        match &cur.tail {
            cqa::core::pipeline::Tail::Kw { .. } => break,
            cqa::core::pipeline::Tail::Lemma45(step) => {
                out.push(step.rename_table.len());
                cur = &step.sub_plan;
            }
        }
    }
    out
}
