//! The `closure_ablation` experiment (DESIGN.md §3): Theorem 7's syntactic
//! obedience test must agree with Definition 5's *semantic* test — the
//! entailment `(q ∖ q^FK_P) ∪ {F_P} ⊨_FK q`, decided by chasing the
//! left-hand query (variables read as distinct fresh constants) and checking
//! `q`. The chase terminates whenever the dependency graph is acyclic; for
//! the query shapes below it always does.
//!
//! We enumerate queries over a 3-relation signature with terms drawn from a
//! small pool, derive every foreign-key set that is about the query, and
//! compare the two tests on every non-key position.

use cqa::core::obedience::{is_obedient_position, qfk_atoms};
use cqa::prelude::*;
use cqa_repair::chase::chase_entails;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Semantic obedience per Definition 5, via the bounded chase.
/// Returns `None` when the chase hits the cap.
fn semantic_obedient(q: &Query, fks: &FkSet, pos: cqa_model::Position) -> Option<bool> {
    let p: BTreeSet<cqa_model::Position> = [pos].into_iter().collect();
    let removed = qfk_atoms(q, fks, &p);

    // F_P: the atom with fresh variables at the positions of P.
    let atom = q.atom(pos.rel)?.clone();
    let mut terms = atom.terms.clone();
    terms[pos.idx - 1] = Term::Var(Var::fresh("fresh"));
    let f_p = Atom::new(atom.rel, terms);

    // q′ = (q ∖ q^FK_P) ∪ {F_P}.
    let mut atoms: Vec<Atom> = q
        .atoms()
        .iter()
        .filter(|a| !removed.contains(&a.rel) && a.rel != pos.rel)
        .cloned()
        .collect();
    atoms.push(f_p);
    let q_prime = Query::new(q.schema().clone(), atoms).ok()?;

    // View q′ as a database: substitute a distinct fresh constant per
    // variable.
    let mut db = Instance::new(q.schema().clone());
    let val: cqa_model::Valuation = q_prime
        .vars()
        .into_iter()
        .map(|v| (v, Cst::fresh(&format!("c_{v}"))))
        .collect();
    for fact in cqa_model::eval::apply_query(&q_prime, &val)? {
        db.insert(fact).ok()?;
    }
    chase_entails(&db, fks, q, 40)
}

/// All foreign keys about `q` with unary-key targets (candidate set).
fn candidate_fks(q: &Query) -> Vec<ForeignKey> {
    let mut out = Vec::new();
    for from_atom in q.atoms() {
        for to_atom in q.atoms() {
            let to_sig = q.sig(to_atom.rel);
            if to_sig.key_len != 1 {
                continue;
            }
            let key_term = to_atom.terms[0];
            for (i, t) in from_atom.terms.iter().enumerate() {
                if *t == key_term {
                    out.push(ForeignKey::new(from_atom.rel, i + 1, to_atom.rel));
                }
            }
        }
    }
    out
}

#[test]
fn theorem7_matches_definition5() {
    let schema = Arc::new(parse_schema("N[2,1] O[1,1] T[2,1]").unwrap());
    let queries = [
        "N(x,y), O(y)",
        "N(x,y), O(y), T(y,z)",
        "N(x,y), O(y), T(x,y)",
        "N(x,'c'), O('c')",
        "N(x,y), O(y), T(z,y)",
        "N(x,x), O(x)",
        "N(x,y), T(y,z), O(z)",
        "N('a',y), O(y), T(y,y)",
        "N(x,y), O(x), T(x,z)",
    ];
    let mut compared = 0usize;
    for text in queries {
        let q = parse_query(&schema, text).unwrap();
        let candidates = candidate_fks(&q);
        // every subset of the (small) candidate set
        let n = candidates.len().min(4);
        for mask in 0..(1u32 << n) {
            let subset: Vec<ForeignKey> = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| candidates[i])
                .collect();
            let fks = FkSet::new(schema.clone(), subset).unwrap();
            if fks.check_about(&q).is_err() {
                continue;
            }
            // Skip sets whose dependency graph is cyclic: the chase-based
            // semantic test would be inconclusive.
            let dep = cqa::core::DepGraph::of(&fks);
            if dep.vertices().iter().any(|&p| dep.on_cycle(p)) {
                continue;
            }
            for rel in q.relations() {
                let sig = q.sig(rel);
                for i in sig.nonkey_positions() {
                    let pos = cqa_model::Position::new(rel, i);
                    let syntactic = is_obedient_position(&q, &fks, pos);
                    match semantic_obedient(&q, &fks, pos) {
                        Some(semantic) => {
                            assert_eq!(
                                syntactic, semantic,
                                "q = {q}, FK = {fks}, position {pos}"
                            );
                            compared += 1;
                        }
                        None => { /* chase capped; skip */ }
                    }
                }
            }
        }
    }
    assert!(compared >= 40, "only {compared} comparisons ran");
}

#[test]
fn obedient_positions_really_do_not_matter() {
    // Operational reading of obedience: if position (N,i) is obedient, then
    // scrambling the values at that position in a *consistent* database
    // never changes whether q is FK-entailed... we check the weaker, crisp
    // consequence used by the pipeline: for obedient O-atoms referenced by a
    // strong key, chasing a kept N-fact always satisfies the O-atom.
    let schema = Arc::new(parse_schema("N[2,1] O[2,1]").unwrap());
    let q = parse_query(&schema, "N(x,y), O(y,w)").unwrap();
    let fks = parse_fks(&schema, "N[2] -> O").unwrap();
    assert!(cqa::core::atom_obedient(&q, &fks, RelName::new("O")));

    let db = parse_instance(&schema, "N(a,b)").unwrap();
    let (chased, _) = cqa_repair::chase_fresh(&db, &fks, 8).unwrap();
    assert!(cqa_model::satisfies(&chased, &q), "fresh O-fact satisfies the obedient atom");

    // Contrast: with the disobedient O(y,'c') the chase does NOT satisfy q.
    let q_c = parse_query(&schema, "N(x,y), O(y,'c')").unwrap();
    assert!(!cqa::core::atom_obedient(&q_c, &fks, RelName::new("O")));
    assert!(!cqa_model::satisfies(&chased, &q_c));
}
