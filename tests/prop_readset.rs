//! Differential soundness harness for **static read-set inference**
//! (`cqa-analyze`): on randomized instances, every probe a real compiled
//! plan execution records through [`ReadLog`] must be covered by the
//! statically inferred [`ReadSet`] — and the recorded run must return the
//! same answer as the unrecorded one. Soundness is what lets the
//! incremental solver's *Unaffected* rung trust the read-set: a fact the
//! set says cannot be read really is never touched.
//!
//! The families mirror `prop_pipeline`'s shapes — §8's ground-key Lemma 45
//! plan, a depth-2 nested Lemma 45, and a Lemma 37/40 block-filter
//! composition — so the recorder sees block probes, whole-relation scans,
//! non-dangling witness probes and residual formula evaluation. A
//! deterministic test pins the strict-tightness claim: on §8 the inference
//! is per-block, provably tighter than the rel-level `reads()` set.

use cqa::core::compiled_plan::CompiledPlan;
use cqa::model::ReadLog;
use cqa::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// A family: schema, query, foreign keys, and the fact shapes the
/// instance generator may emit (relation, arity).
struct Family {
    schema: &'static str,
    query: &'static str,
    fks: &'static str,
    rels: &'static [(&'static str, usize)],
}

/// §8's query: a single ground-key Lemma 45 step — the family where the
/// inference proves block locality (`N: blocks {[c]}`).
const SECTION8: Family = Family {
    schema: "N[2,1] O[1,1] P[1,1]",
    query: "N('c',y), O(y), P(y)",
    fks: "N[2] -> O",
    rels: &[("N", 2), ("O", 1), ("P", 1)],
};

/// Depth-2 nested Lemma 45: the inner step's key holds a parameter, so
/// `M` degrades to a whole-relation read while `N` stays block-local.
const NESTED: Family = Family {
    schema: "N[2,1] M[2,1] Q[1,1] P[1,1] O[1,1]",
    query: "N('c',y), M(y,w), Q(w), P(w), O(y)",
    fks: "N[2] -> O, M[2] -> Q",
    rels: &[("N", 2), ("M", 2), ("Q", 1), ("P", 1), ("O", 1)],
};

/// Lemma 37 + Lemma 45 composition: block filtering (relevance /
/// non-dangling probes) upstream of the branching tail.
const FILTERED: Family = Family {
    schema: "N[2,1] O[2,1] Q[1,1]",
    query: "N('c',y), O(y,z), Q(z)",
    fks: "N[2] -> O, O[2] -> Q",
    rels: &[("N", 2), ("O", 2), ("Q", 1)],
};

fn build(family: &Family) -> (CompiledPlan, Arc<Schema>) {
    let schema = Arc::new(parse_schema(family.schema).unwrap());
    let q = parse_query(&schema, family.query).unwrap();
    let fks = parse_fks(&schema, family.fks).unwrap();
    let plan = match Problem::new(q, fks).unwrap().classify() {
        Classification::Fo(plan) => *plan,
        Classification::NotFo(r) => panic!("{}: expected FO, got {r}", family.query),
    };
    (CompiledPlan::compile(&plan).unwrap(), schema)
}

/// Value pool: the query constants occur often so key blocks fill up.
const POOL: [&str; 6] = ["c", "d", "a", "b", "e", "1"];

fn instance_for(
    schema: &Arc<Schema>,
    rels: &[(&str, usize)],
    picks: &[(usize, Vec<usize>)],
) -> Instance {
    let mut db = Instance::new(schema.clone());
    for (rel_pick, args) in picks {
        let (rel, arity) = rels[rel_pick % rels.len()];
        let args: Vec<&str> = (0..arity)
            .map(|i| POOL[args.get(i).copied().unwrap_or(0) % POOL.len()])
            .collect();
        db.insert_named(rel, &args).unwrap();
    }
    db
}

fn arb_picks() -> impl Strategy<Value = Vec<(usize, Vec<usize>)>> {
    proptest::collection::vec(
        (0..8usize, proptest::collection::vec(0..POOL.len(), 0..3)),
        0..14,
    )
}

/// The core soundness check: record a real execution and require every
/// recorded probe to be covered by the static inference, with identical
/// answers recorded vs. plain.
fn check_sound(family: &Family, picks: &[(usize, Vec<usize>)]) -> Result<(), TestCaseError> {
    let (compiled, schema) = build(family);
    let read_set = compiled.read_set();
    let db = instance_for(&schema, family.rels, picks);

    let log = Arc::new(ReadLog::new());
    let traced = compiled.answer_traced(&db, &log);
    prop_assert_eq!(
        traced,
        compiled.answer(&db),
        "recording changed the answer on {}",
        db
    );
    for (rel, key) in log.events() {
        prop_assert!(
            read_set.covers(rel, key.as_deref()),
            "query {}: execution read {}({:?}) but the inferred read-set {} does not cover it \
             (instance {})",
            family.query,
            rel,
            key,
            read_set,
            db
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 128,
        failure_persistence: Some(FileFailurePersistence::WithSource("proptest-regressions")),
        ..ProptestConfig::default()
    })]

    #[test]
    fn inferred_read_set_covers_every_probe_on_section8(picks in arb_picks()) {
        check_sound(&SECTION8, &picks)?;
    }

    #[test]
    fn inferred_read_set_covers_every_probe_on_nested_lemma45(picks in arb_picks()) {
        check_sound(&NESTED, &picks)?;
    }

    #[test]
    fn inferred_read_set_covers_every_probe_under_block_filters(picks in arb_picks()) {
        check_sound(&FILTERED, &picks)?;
    }
}

/// Strict tightness, deterministically: §8's inferred read-set bounds `N`
/// to the `'c'` block — a claim the rel-level `reads()` set cannot make —
/// while the recorder proves the bound is live (the plan really does probe
/// `N` by key, not scan it).
#[test]
fn section8_read_set_is_strictly_tighter_than_rels() {
    let (compiled, schema) = build(&SECTION8);
    let read_set = compiled.read_set();
    let n = RelName::new("N");

    // Tight on N, whole on the residual relations.
    assert!(read_set.may_read(n, &[Cst::new("c")]));
    assert!(!read_set.may_read(n, &[Cst::new("d")]));
    assert!(read_set.is_whole(RelName::new("O")));
    assert!(read_set.is_whole(RelName::new("P")));

    // The rel-level approximation reads N wholesale: the refinement is
    // strict.
    let q = parse_query(&schema, SECTION8.query).unwrap();
    let fks = parse_fks(&schema, SECTION8.fks).unwrap();
    let solver = Solver::new(Problem::new(q, fks).unwrap()).unwrap();
    let session = solver.incremental();
    assert!(session.reads().contains(&n));
    assert_eq!(session.read_set(), &read_set);

    // The recorder is live: a yes-instance execution records the N('c')
    // block probe and stays inside the inferred set.
    let db = parse_instance(&schema, "N(c,a) O(a) P(a) N(d,z)").unwrap();
    let log = Arc::new(ReadLog::new());
    assert!(compiled.answer_traced(&db, &log));
    assert!(!log.is_empty(), "execution recorded no probes");
    assert!(log
        .events()
        .iter()
        .any(|(rel, key)| *rel == n && key.as_deref() == Some(&[Cst::new("c")][..])));
    // The unread block is never probed.
    assert!(!log
        .events()
        .iter()
        .any(|(rel, key)| *rel == n && key.as_deref() == Some(&[Cst::new("d")][..])));
}

/// Uninstrumentable routes fall back to whole-relation read-sets over
/// exactly the rel-level `reads()` set — trivially sound.
#[test]
fn poly_and_fallback_routes_use_whole_relation_read_sets() {
    // Proposition 16 shape → reachability backend.
    let s = Arc::new(parse_schema("E[2,1] V[1,1]").unwrap());
    let q = parse_query(&s, "E(x,x), V(x)").unwrap();
    let fks = parse_fks(&s, "E[2] -> V").unwrap();
    let solver = Solver::new(Problem::new(q, fks).unwrap()).unwrap();
    assert_eq!(solver.route().kind(), RouteKind::PolyTime);
    let session = solver.incremental();
    for rel in session.reads() {
        assert!(session.read_set().is_whole(*rel), "{rel} must be whole");
    }
    assert_eq!(session.read_set().len(), session.reads().len());

    // Hard class under a budget → fallback oracle.
    let s = Arc::new(parse_schema("N[3,1] O[2,1]").unwrap());
    let q = parse_query(&s, "N(x,'c',y), O(y,w)").unwrap();
    let fks = parse_fks(&s, "N[3] -> O").unwrap();
    let solver = Solver::builder(Problem::new(q, fks).unwrap())
        .options(ExecOptions::default().with_fallback(SearchLimits::small()))
        .build()
        .unwrap();
    assert_eq!(solver.route().kind(), RouteKind::Fallback);
    let session = solver.incremental();
    for rel in session.reads() {
        assert!(session.read_set().is_whole(*rel), "{rel} must be whole");
    }
    assert_eq!(session.read_set().len(), session.reads().len());
}
