//! Solver-layer concurrency: one `Arc<Solver>` shared across many racing
//! threads must return verdicts identical to the sequential run — the
//! invariant the serve-mode plan cache stands on (`Solver: Send + Sync`
//! is pinned by a compile-time assertion in `cqa-core`; this test pins
//! the *behavioral* half). Extends the model-layer racing-reader tests
//! (`crates/model/tests/concurrency.rs`) to the solver.

use cqa::prelude::*;
use std::sync::Arc;

/// Deterministic pseudo-random instance stream over the given schema: a
/// mix of certain, not-certain and multi-block shapes.
fn instances(s: &Arc<Schema>) -> Vec<Instance> {
    let mut dbs = Vec::new();
    let texts = [
        "N(c,a) O(a) P(a)",
        "N(c,a) N(c,b) O(a) P(a)",
        "N(c,a) N(c,b) O(a) O(b) P(a) P(b)",
        "N(c,a) O(b) P(a)",
        "N(c,a) N(c,b) N(c,d) O(a) O(b) O(d) P(a) P(b) P(d)",
        "N(c,a) N(d,b) O(a) O(b) P(a) P(b)",
        "",
        "O(a) P(a)",
    ];
    for t in texts {
        dbs.push(parse_instance(s, t).unwrap());
    }
    // Widen the stream: shifted copies so each thread's interleaving hits
    // different instances at different times.
    for i in 0..24 {
        dbs.push(dbs[i % texts.len()].clone());
    }
    dbs
}

fn solver_for(s: &Arc<Schema>, query: &str, fks: &str, options: ExecOptions) -> Arc<Solver> {
    let q = parse_query(s, query).unwrap();
    let fks = parse_fks(s, fks).unwrap();
    Arc::new(
        Solver::builder(Problem::new(q, fks).unwrap())
            .options(options)
            .build()
            .unwrap(),
    )
}

/// Runs `solver` over `dbs` from `n_threads` racing threads, each with
/// its own interleaving, and checks every verdict against the sequential
/// baseline.
fn race(solver: &Arc<Solver>, dbs: &[Instance], n_threads: usize) {
    let baseline: Vec<Certainty> = dbs.iter().map(|db| solver.solve(db).certainty).collect();
    std::thread::scope(|scope| {
        for t in 0..n_threads {
            let solver = Arc::clone(solver);
            let baseline = &baseline;
            scope.spawn(move || {
                // A different traversal order per thread: stride by a
                // thread-dependent coprime step.
                let stride = [1, 3, 5, 7, 11, 13, 17, 19][t % 8];
                for i in 0..dbs.len() {
                    let idx = (i * stride + t) % dbs.len();
                    let verdict = solver.solve(&dbs[idx]);
                    assert_eq!(
                        verdict.certainty, baseline[idx],
                        "thread {t} disagrees with the sequential run on instance {idx}"
                    );
                }
            });
        }
    });
}

#[test]
fn shared_fo_solver_is_thread_consistent() {
    let s = Arc::new(parse_schema("N[2,1] O[1,1] P[1,1]").unwrap());
    let solver = solver_for(
        &s,
        "N('c',y), O(y), P(y)",
        "N[2] -> O",
        ExecOptions::sequential(),
    );
    assert_eq!(solver.route().kind(), RouteKind::Fo);
    race(&solver, &instances(&s), 8);
}

#[test]
fn shared_fo_solver_with_internal_fanout_is_thread_consistent() {
    // Threads racing *outside* the solver while the compiled plan also
    // fans out *inside* (threads > 1): the two levels of parallelism must
    // not interfere.
    let s = Arc::new(parse_schema("N[2,1] O[1,1] P[1,1]").unwrap());
    let solver = solver_for(
        &s,
        "N('c',y), O(y), P(y)",
        "N[2] -> O",
        ExecOptions::default().with_threads(4),
    );
    race(&solver, &instances(&s), 8);
}

#[test]
fn shared_polytime_solver_is_thread_consistent() {
    // Proposition 17 shape → dual-Horn backend.
    let s = Arc::new(parse_schema("N[3,1] O[1,1]").unwrap());
    let q = parse_query(&s, "N(x,'c',y), O(y)").unwrap();
    let fks = parse_fks(&s, "N[3] -> O").unwrap();
    let solver = Arc::new(Solver::new(Problem::new(q, fks).unwrap()).unwrap());
    assert_eq!(solver.route().kind(), RouteKind::PolyTime);
    let dbs: Vec<Instance> = [
        "N(b,c,1) O(1)",
        "N(b,c,1) N(b,c,2) O(1) O(2)",
        "N(b,c,1) N(b,d,2) O(1)",
        "N(a,c,1) N(b,c,1) O(1)",
        "",
    ]
    .iter()
    .map(|t| parse_instance(&s, t).unwrap())
    .collect();
    race(&solver, &dbs, 8);
}

#[test]
fn per_request_options_do_not_leak_across_threads() {
    // Serve-mode shape: racing threads call `solve_with` on ONE shared
    // solver, each pinning different runtime options. Verdicts must match
    // the sequential baseline regardless of which options each thread
    // pins — options are per-call, never process or solver state.
    let s = Arc::new(parse_schema("N[2,1] O[1,1] P[1,1]").unwrap());
    let solver = solver_for(
        &s,
        "N('c',y), O(y), P(y)",
        "N[2] -> O",
        ExecOptions::sequential(),
    );
    let dbs = instances(&s);
    let baseline: Vec<Certainty> = dbs.iter().map(|db| solver.solve(db).certainty).collect();
    std::thread::scope(|scope| {
        for t in 0..8 {
            let solver = Arc::clone(&solver);
            let dbs = &dbs;
            let baseline = &baseline;
            scope.spawn(move || {
                let options = ExecOptions::sequential().with_threads(1 + (t % 4));
                for (idx, db) in dbs.iter().enumerate() {
                    let verdict = solver.solve_with(db, &options);
                    assert_eq!(verdict.certainty, baseline[idx], "thread {t} instance {idx}");
                }
            });
        }
    });
}
