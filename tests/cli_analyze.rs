//! End-to-end tests for `cqa analyze`: the static auditor's CLI contract —
//! clean problems exit 0 with a readable report and read-set, every
//! built-in malformed fixture exits nonzero naming its diagnostic code,
//! and problem files parse. Exit codes follow the binary's convention:
//! 0 = clean/yes, 1 = violation/no, 2 = usage or input error.

use std::process::{Command, Output};

fn cqa(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cqa"))
        .args(args)
        .output()
        .expect("spawn cqa")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn clean_fo_problem_audits_clean_with_read_set() {
    let out = cqa(&[
        "analyze",
        "--schema",
        "N[2,1] O[1,1] P[1,1]",
        "--query",
        "N('c',y), O(y), P(y)",
        "--fks",
        "N[2] -> O",
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("audit clean"), "{text}");
    assert!(text.contains("read-set:"), "{text}");
    assert!(text.contains("N: blocks {[c]}"), "{text}");
    assert!(text.contains("O: *"), "{text}");
}

#[test]
fn non_fo_problem_reports_class_and_coarse_read_set() {
    let out = cqa(&[
        "analyze",
        "--schema",
        "E[2,1] V[1,1]",
        "--query",
        "E(x,x), V(x)",
        "--fks",
        "E[2] -> V",
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("not FO"), "{text}");
    assert!(text.contains("E: *"), "{text}");
    assert!(text.contains("V: *"), "{text}");
}

#[test]
fn every_fixture_is_rejected_naming_its_code() {
    for fixture in cqa::analyze::fixtures::all() {
        let out = cqa(&["analyze", "--fixture", fixture.name]);
        assert_eq!(
            out.status.code(),
            Some(1),
            "fixture {} must exit 1: {out:?}",
            fixture.name
        );
        let text = stdout(&out);
        assert!(
            text.contains(&fixture.expect.to_string()),
            "fixture {} output must name `{}`:\n{text}",
            fixture.name,
            fixture.expect
        );
        assert!(text.contains("audit FAILED"), "{text}");
    }
}

#[test]
fn fixture_list_enumerates_the_corpus() {
    let out = cqa(&["analyze", "--fixture", "list"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = stdout(&out);
    for fixture in cqa::analyze::fixtures::all() {
        assert!(text.contains(fixture.name), "missing {}:\n{text}", fixture.name);
    }
}

#[test]
fn unknown_fixture_is_a_usage_error() {
    let out = cqa(&["analyze", "--fixture", "no-such-fixture"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn missing_schema_is_a_usage_error() {
    let out = cqa(&["analyze"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn problem_files_parse_and_audit() {
    let dir = std::env::temp_dir().join(format!("cqa-analyze-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("section8.problem");
    std::fs::write(
        &path,
        "# a comment\nschema: N[2,1] O[1,1] P[1,1]\nquery: N('c',y), O(y), P(y)\nfks: N[2] -> O\n",
    )
    .unwrap();
    let out = cqa(&["analyze", "--problem", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(stdout(&out).contains("audit clean"), "{}", stdout(&out));

    let bad = dir.join("bad.problem");
    std::fs::write(&bad, "schema: N[2,1]\n").unwrap();
    let out = cqa(&["analyze", "--problem", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "missing query line: {out:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shipped_example_problems_audit_clean() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/problems");
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("examples/problems exists") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "problem") {
            continue;
        }
        seen += 1;
        let out = cqa(&["analyze", "--problem", path.to_str().unwrap()]);
        assert_eq!(out.status.code(), Some(0), "{path:?}: {out:?}");
    }
    assert!(seen >= 3, "expected a corpus, found {seen} problem files");
}
