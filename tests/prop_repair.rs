//! Property-based tests for the repair machinery: the oracle's PK-only path
//! agrees with direct repair enumeration, chases terminate and repair, and
//! ⊕-repair verification accepts exactly the enumerated PK repairs when
//! `FK = ∅`.

use cqa::prelude::*;
use cqa_repair::{chase_fresh, is_delta_repair, pk_certain, pk_repairs, SearchLimits};
use proptest::prelude::*;
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Arc::new(cqa::model::parser::parse_schema("R[2,1] S[2,1]").unwrap())
}

prop_compose! {
    fn arb_db(max: usize)(rows in proptest::collection::vec((0..2usize, 0..4u8, 0..4u8), 0..max)) -> Instance {
        let mut db = Instance::new(schema());
        let name = |v: u8| ["a", "b", "c", "d"][v as usize];
        for (rel, u, v) in rows {
            let r = if rel == 0 { "R" } else { "S" };
            db.insert_named(r, &[name(u), name(v)]).unwrap();
        }
        db
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        failure_persistence: Some(FileFailurePersistence::WithSource("proptest-regressions")),
        ..ProptestConfig::default()
    })]

    #[test]
    fn oracle_pk_path_equals_enumeration(db in arb_db(8)) {
        let q = cqa::model::parser::parse_query(&schema(), "R(x,y), S(y,z)").unwrap();
        let fks = FkSet::empty(schema());
        let oracle = CertaintyOracle::new();
        let by_oracle = oracle.is_certain(&db, &q, &fks).as_bool();
        prop_assert_eq!(by_oracle, Some(pk_certain(&db, &q)));
    }

    #[test]
    fn pk_repairs_pass_delta_verification_and_others_fail(db in arb_db(6)) {
        let fks = FkSet::empty(schema());
        let limits = SearchLimits::default();
        for r in pk_repairs(&db) {
            prop_assert_eq!(is_delta_repair(&db, &r, &fks, &limits), Some(true));
            // dropping any fact from a repair makes it non-maximal
            if let Some(f) = r.facts().next() {
                let mut smaller = r.clone();
                smaller.remove(&f).unwrap();
                prop_assert_eq!(is_delta_repair(&db, &smaller, &fks, &limits), Some(false));
            }
        }
    }

    #[test]
    fn chase_fixes_all_dangling_facts(db in arb_db(8)) {
        let fks = FkSet::new(
            schema(),
            vec![ForeignKey::from_names("R", 2, "S")],
        ).unwrap();
        if let Ok((chased, inserted)) = chase_fresh(&db, &fks, 32) {
            prop_assert!(chased.satisfies_fks(&fks));
            prop_assert!(db.subset_of(&chased));
            // Each inserted fact repairs a previously dangling value.
            for f in &inserted {
                prop_assert_eq!(f.rel, RelName::new("S"));
            }
            // Chase of a chased instance inserts nothing.
            let (again, more) = chase_fresh(&chased, &fks, 32).unwrap();
            prop_assert!(more.is_empty());
            prop_assert_eq!(again, chased);
        }
    }

    #[test]
    fn certainty_monotone_under_oracle_definite_answers(db in arb_db(6)) {
        // Sanity property: if the oracle says certain, then the (unique)
        // query embedding exists in every enumerated PK repair.
        let q = cqa::model::parser::parse_query(&schema(), "R(x,y), S(y,z)").unwrap();
        let fks = FkSet::empty(schema());
        if CertaintyOracle::new().is_certain(&db, &q, &fks).is_certain() {
            for r in pk_repairs(&db) {
                prop_assert!(cqa::model::satisfies(&r, &q));
            }
        }
    }

    #[test]
    fn falsifying_witness_is_a_real_repair(db in arb_db(6)) {
        let q = cqa::model::parser::parse_query(&schema(), "R(x,y), S(y,z)").unwrap();
        let fks = FkSet::new(
            schema(),
            vec![ForeignKey::from_names("R", 2, "S")],
        ).unwrap();
        let oracle = CertaintyOracle::new();
        if let OracleOutcome::NotCertain(witness) = oracle.is_certain(&db, &q, &fks) {
            prop_assert!(witness.is_consistent(&fks));
            prop_assert!(!cqa::model::satisfies(&witness, &q));
            prop_assert_eq!(
                is_delta_repair(&db, &witness, &fks, &SearchLimits::default()),
                Some(true)
            );
        }
    }
}
