//! Differential harness for the Yannakakis semijoin evaluator: on every
//! generated instance, [`CompiledQuery::satisfies_via`] must agree across
//! all three [`JoinStrategy`] pins AND with a brute-force oracle that
//! enumerates every assignment of the query variables over the active
//! domain. Witnesses from [`CompiledQuery::find_with_via`] may differ
//! between strategies, but each must actually embed the query.
//!
//! The families cover both sides of the GYO split:
//!
//! * acyclic shapes (chain, star, non-key joins) execute as bottom-up
//!   semijoin passes under `Semijoin`, so any unsoundness in the reduction
//!   (wrong semijoin keys, a missed pass, a stale column filter) diverges
//!   from the backtracking and brute-force answers;
//! * the cyclic triangle has no join forest — `SemijoinPlan::build`
//!   declines it and the `Semijoin` pin must still answer correctly by
//!   falling back to backtracking search (pinned structurally below).
//!
//! A solver-level family closes the loop end to end: `ExecOptions::with_join`
//! across all three strategies against the materializing
//! [`RewritePlan::answer`] oracle.

use cqa::model::eval::apply_query;
use cqa::model::{CompiledQuery, Valuation};
use cqa::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// A conjunctive-query family: schema, query, whether GYO accepts it, and
/// the fact shapes the generator may emit.
struct Family {
    schema: &'static str,
    query: &'static str,
    acyclic: bool,
    rels: &'static [(&'static str, usize)],
}

/// Key-joined chain `A(x,y), B(y,z), C(z,w)` — the textbook acyclic path.
const CHAIN: Family = Family {
    schema: "A[2,1] B[2,1] C[2,1]",
    query: "A(x,y), B(y,z), C(z,w)",
    acyclic: true,
    rels: &[("A", 2), ("B", 2), ("C", 2)],
};

/// Star `R(x,y), S(x,z), T(x,w)` — one hub variable, three ears.
const STAR: Family = Family {
    schema: "R[2,1] S[2,1] T[2,1]",
    query: "R(x,y), S(x,z), T(x,w)",
    acyclic: true,
    rels: &[("R", 2), ("S", 2), ("T", 2)],
};

/// Non-key join `A(x,u), B(y,u)`: the shared variable sits in *non-key*
/// position on both sides, so the backtracking search degenerates to a
/// scan×scan nested loop — exactly the shape the semijoin pass collapses.
const NONKEY: Family = Family {
    schema: "A[2,1] B[2,1]",
    query: "A(x,u), B(y,u)",
    acyclic: true,
    rels: &[("A", 2), ("B", 2)],
};

/// Triangle `E(x,y), F(y,z), G(z,x)` — the minimal cyclic hypergraph.
const TRIANGLE: Family = Family {
    schema: "E[2,1] F[2,1] G[2,1]",
    query: "E(x,y), F(y,z), G(z,x)",
    acyclic: false,
    rels: &[("E", 2), ("F", 2), ("G", 2)],
};

const FAMILIES: [&Family; 4] = [&CHAIN, &STAR, &NONKEY, &TRIANGLE];

const STRATEGIES: [JoinStrategy; 3] = [
    JoinStrategy::Auto,
    JoinStrategy::Backtracking,
    JoinStrategy::Semijoin,
];

/// Small value pool: collisions are frequent, so joins actually connect.
const POOL: [&str; 5] = ["a", "b", "c", "d", "e"];

fn build(family: &Family) -> (Query, CompiledQuery, Arc<Schema>) {
    let schema = Arc::new(parse_schema(family.schema).unwrap());
    let q = parse_query(&schema, family.query).unwrap();
    let cq = CompiledQuery::new(&q);
    (q, cq, schema)
}

fn instance_for(
    schema: &Arc<Schema>,
    rels: &[(&str, usize)],
    picks: &[(usize, Vec<usize>)],
) -> Instance {
    let mut db = Instance::new(schema.clone());
    for (rel_pick, args) in picks {
        let (rel, arity) = rels[rel_pick % rels.len()];
        let args: Vec<&str> = (0..arity)
            .map(|i| POOL[args.get(i).copied().unwrap_or(0) % POOL.len()])
            .collect();
        db.insert_named(rel, &args).unwrap();
    }
    db
}

fn arb_picks() -> impl Strategy<Value = Vec<(usize, Vec<usize>)>> {
    proptest::collection::vec(
        (0..8usize, proptest::collection::vec(0..POOL.len(), 0..3)),
        0..16,
    )
}

/// Brute-force oracle: some assignment of the query variables over the
/// active domain embeds every atom. Exponential, but |vars| ≤ 4 and the
/// domain is the five-constant pool.
fn brute_force(q: &Query, db: &Instance) -> bool {
    let vars: Vec<Var> = q.vars().into_iter().collect();
    let adom: Vec<Cst> = db.adom().iter().copied().collect();
    if vars.is_empty() {
        return q.atoms().is_empty();
    }
    if adom.is_empty() {
        return false;
    }
    let mut counters = vec![0usize; vars.len()];
    loop {
        let val: Valuation = vars
            .iter()
            .zip(&counters)
            .map(|(&v, &i)| (v, adom[i]))
            .collect();
        if let Some(facts) = apply_query(q, &val) {
            if facts.iter().all(|f| db.contains(f)) {
                return true;
            }
        }
        // Odometer increment over the assignment space.
        let mut pos = 0;
        loop {
            if pos == counters.len() {
                return false;
            }
            counters[pos] += 1;
            if counters[pos] < adom.len() {
                break;
            }
            counters[pos] = 0;
            pos += 1;
        }
    }
}

fn check(family: &Family, picks: &[(usize, Vec<usize>)]) -> Result<(), TestCaseError> {
    let (q, cq, schema) = build(family);
    prop_assert_eq!(cq.semijoin_plan().is_some(), family.acyclic);
    let db = instance_for(&schema, family.rels, picks);
    let expected = brute_force(&q, &db);
    for join in STRATEGIES {
        prop_assert_eq!(
            cq.satisfies_via(&db, join),
            expected,
            "{} via {} on {}",
            family.query,
            join,
            db
        );
        // The witness may differ per strategy; each must genuinely embed q.
        let witness = cq.find_with_via(&db, &Valuation::new(), join);
        prop_assert_eq!(witness.is_some(), expected);
        if let Some(val) = witness {
            let facts = apply_query(&q, &val).expect("witness grounds every atom");
            prop_assert!(
                facts.iter().all(|f| db.contains(f)),
                "{} via {}: witness {:?} not embedded in {}",
                family.query,
                join,
                val,
                db
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 96,
        failure_persistence: Some(FileFailurePersistence::WithSource("proptest-regressions")),
        ..ProptestConfig::default()
    })]

    #[test]
    fn chain_family_agrees_across_strategies(picks in arb_picks()) {
        check(&CHAIN, &picks)?;
    }

    #[test]
    fn star_family_agrees_across_strategies(picks in arb_picks()) {
        check(&STAR, &picks)?;
    }

    #[test]
    fn nonkey_join_family_agrees_across_strategies(picks in arb_picks()) {
        check(&NONKEY, &picks)?;
    }

    #[test]
    fn cyclic_triangle_routes_to_fallback_and_agrees(picks in arb_picks()) {
        check(&TRIANGLE, &picks)?;
    }

    #[test]
    fn solver_verdicts_agree_across_join_strategies(picks in arb_picks()) {
        // End to end: the unified solver pinned to each strategy against
        // the materializing plan oracle, on the depth-2 Lemma 45 family.
        let schema = Arc::new(parse_schema("N[2,1] M[2,1] Q[1,1] P[1,1] O[1,1]").unwrap());
        let rels: &[(&str, usize)] = &[("N", 2), ("M", 2), ("Q", 1), ("P", 1), ("O", 1)];
        let q = parse_query(&schema, "N('c',y), M(y,w), Q(w), P(w), O(y)").unwrap();
        let fks = parse_fks(&schema, "N[2] -> O, M[2] -> Q").unwrap();
        let plan = match Problem::new(q.clone(), fks.clone()).unwrap().classify() {
            Classification::Fo(plan) => *plan,
            Classification::NotFo(r) => panic!("expected FO, got {r}"),
        };
        let mut db = instance_for(&schema, rels, &picks);
        db.insert_named("N", &["c", "a"]).unwrap(); // the probed block is inhabited
        let expected = plan.answer(&db);
        for join in STRATEGIES {
            let solver = Solver::builder(Problem::new(q.clone(), fks.clone()).unwrap())
                .options(ExecOptions::sequential().with_join(join))
                .build()
                .unwrap();
            let verdict = solver.solve(&db);
            prop_assert_eq!(
                verdict.as_bool(),
                Some(expected),
                "solver via {} on {}",
                join,
                db
            );
            prop_assert_eq!(verdict.provenance.join, Some(join));
        }
    }
}

/// The structural pin behind the cyclic test: GYO declines the triangle,
/// so a `Semijoin` pin has no plan to route to and the fallback *is* the
/// backtracking search — there is no third path that could silently
/// answer wrong.
#[test]
fn triangle_has_no_semijoin_plan() {
    let (_, cq, _) = build(&TRIANGLE);
    assert!(cq.semijoin_plan().is_none());
    assert!(!cqa::model::is_acyclic(cq.atoms()));
}

/// Every acyclic family compiles a plan whose atoms are exactly the
/// query's, so the analyze-side read-set inference (which walks atoms)
/// covers the semijoin route with no special casing.
#[test]
fn acyclic_families_compile_semijoin_plans() {
    for family in FAMILIES {
        let (_, cq, _) = build(family);
        assert_eq!(
            cq.semijoin_plan().is_some(),
            family.acyclic,
            "{}",
            family.query
        );
        assert_eq!(cqa::model::is_acyclic(cq.atoms()), family.acyclic);
        if let Some(plan) = cq.semijoin_plan() {
            assert_eq!(plan.atoms().len(), cq.atoms().len());
        }
    }
}
