//! Property-based tests for the combinatorial solvers: dual-Horn / Horn
//! unit propagation against brute-force SAT, and the Figure 3 reduction
//! against ground-truth reachability on random DAGs.

use cqa::solvers::horn::{DualHornFormula, HornFormula};
use cqa::solvers::reach::DiGraph;
use cqa::solvers::{fig3, prop17};
use cqa_gen::graphs::random_dag;
use proptest::prelude::*;

prop_compose! {
    /// A random Horn clause over `n` variables: up to 3 negatives, ≤1
    /// positive.
    fn arb_horn_clause(n: usize)(neg in proptest::collection::vec(0..n, 0..3),
                                 pos in proptest::option::of(0..n)) -> (Vec<usize>, Vec<usize>) {
        (neg, pos.into_iter().collect())
    }
}

prop_compose! {
    fn arb_dual_clause(n: usize)(pos in proptest::collection::vec(0..n, 0..3),
                                 neg in proptest::option::of(0..n)) -> (Vec<usize>, Vec<usize>) {
        (neg.into_iter().collect(), pos)
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 256,
        failure_persistence: Some(FileFailurePersistence::WithSource("proptest-regressions")),
        ..ProptestConfig::default()
    })]

    #[test]
    fn horn_solver_matches_brute_force(clauses in proptest::collection::vec(arb_horn_clause(6), 0..8)) {
        let mut f = HornFormula::new();
        for (neg, pos) in &clauses {
            f.add_clause(neg.clone(), pos.clone());
        }
        prop_assert_eq!(f.solve().is_some(), f.brute_force_sat());
    }

    #[test]
    fn horn_minimal_model_is_a_model(clauses in proptest::collection::vec(arb_horn_clause(6), 0..8)) {
        let mut f = HornFormula::new();
        for (neg, pos) in &clauses {
            f.add_clause(neg.clone(), pos.clone());
        }
        if let Some(model) = f.solve() {
            for (neg, pos) in &clauses {
                let sat = pos.iter().any(|v| model.contains(v))
                    || neg.iter().any(|v| !model.contains(v));
                prop_assert!(sat, "clause (¬{neg:?} ∨ {pos:?}) unsatisfied by {model:?}");
            }
        }
    }

    #[test]
    fn dual_horn_solver_matches_brute_force(clauses in proptest::collection::vec(arb_dual_clause(6), 0..8)) {
        let mut f = DualHornFormula::new();
        for (neg, pos) in &clauses {
            f.add_clause(neg.clone(), pos.clone());
        }
        prop_assert_eq!(f.satisfiable(), f.brute_force_sat());
    }

    #[test]
    fn fig3_reduction_matches_reachability(n in 2usize..10, p in 0.0f64..0.5, seed in 0u64..500) {
        let spec = random_dag(n, p, seed);
        let mut g = DiGraph::new();
        for &v in &spec.vertices {
            g.add_vertex(v);
        }
        for &(u, v) in &spec.edges {
            g.add_edge(u, v);
        }
        let inst = fig3::reduce(&g, 0, n - 1);
        let certain = prop17::certain(&inst.db, cqa_model::Cst::new("c"));
        prop_assert_eq!(certain, !inst.reachable,
            "graph edges {:?}: no-instance iff 0 ⇝ {}", spec.edges, n - 1);
    }
}
