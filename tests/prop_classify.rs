//! Property-based tests for the classification machinery: attack graphs,
//! Corollary 8, invariance of the Theorem 12 decision under constant
//! renaming, and structural properties of built plans.

use cqa::core::obedience::{is_obedient_position, is_obedient_set, nonkey_positions};
use cqa::prelude::*;
use cqa_attack::AttackGraph;
use proptest::prelude::*;
use std::sync::Arc;

const TERMS: [&str; 5] = ["x", "y", "z", "'c'", "'d'"];

fn term_text(i: usize) -> &'static str {
    TERMS[i]
}

prop_compose! {
    /// A random 3-atom query N(t,t,t), O(t), T(t,t) over a small term pool.
    fn arb_query_text()(idx in proptest::collection::vec(0..TERMS.len(), 6)) -> String {
        format!(
            "N({}, {}, {}), O({}), T({}, {})",
            term_text(idx[0]), term_text(idx[1]), term_text(idx[2]),
            term_text(idx[3]), term_text(idx[4]), term_text(idx[5]),
        )
    }
}

fn schema() -> Arc<Schema> {
    Arc::new(cqa::model::parser::parse_schema("N[3,1] O[1,1] T[2,1]").unwrap())
}

/// Foreign keys about the query, derived from term coincidences.
fn about_fks(q: &Query) -> FkSet {
    let mut fks = Vec::new();
    for from in q.atoms() {
        for to in q.atoms() {
            if q.sig(to.rel).key_len != 1 {
                continue;
            }
            for (i, t) in from.terms.iter().enumerate() {
                if *t == to.terms[0] && !(from.rel == to.rel && i == 0) {
                    fks.push(ForeignKey::new(from.rel, i + 1, to.rel));
                }
            }
        }
    }
    FkSet::new(q.schema().clone(), fks).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 96,
        failure_persistence: Some(FileFailurePersistence::WithSource("proptest-regressions")),
        ..ProptestConfig::default()
    })]

    #[test]
    fn single_atom_queries_are_always_fo(idx in proptest::collection::vec(0..TERMS.len(), 3)) {
        let s = schema();
        let text = format!("N({}, {}, {})", term_text(idx[0]), term_text(idx[1]), term_text(idx[2]));
        let q = cqa::model::parser::parse_query(&s, &text).unwrap();
        let ag = AttackGraph::of(&q);
        prop_assert!(ag.is_acyclic());
        prop_assert!(ag.all_attacks().is_empty());
        prop_assert!(Problem::pk_only(q).classify().is_fo());
    }

    #[test]
    fn removing_unattacked_atom_preserves_acyclicity(text in arb_query_text()) {
        let s = schema();
        let q = cqa::model::parser::parse_query(&s, &text).unwrap();
        let ag = AttackGraph::of(&q);
        if ag.is_acyclic() {
            for rel in ag.unattacked() {
                // Freeze the removed atom's variables (as the KW recursion
                // does) and check acyclicity is preserved.
                let vars = q.atom(rel).unwrap().vars();
                let rest = q.without(rel).freeze(&vars);
                prop_assert!(
                    AttackGraph::of(&rest).is_acyclic(),
                    "removing {} from {} broke acyclicity", rel, q
                );
            }
        }
    }

    #[test]
    fn corollary_8_sets_vs_singletons(text in arb_query_text()) {
        let s = schema();
        let q = cqa::model::parser::parse_query(&s, &text).unwrap();
        let fks = about_fks(&q);
        for rel in q.relations() {
            let p = nonkey_positions(&q, rel);
            let whole = is_obedient_set(&q, &fks, &p);
            let each = p.iter().all(|&pos| is_obedient_position(&q, &fks, pos));
            prop_assert_eq!(whole, each, "Corollary 8 on {} with {}", q, fks);
        }
    }

    #[test]
    fn classification_invariant_under_constant_renaming(text in arb_query_text()) {
        let s = schema();
        let q = cqa::model::parser::parse_query(&s, &text).unwrap();
        let fks = about_fks(&q);
        let Ok(p) = Problem::new(q.clone(), fks.clone()) else { return Ok(()); };
        let before = p.classify().is_fo();

        // Rename 'c' ↦ 'e' (injective on this pool).
        let renamed_text = text.replace("'c'", "'e'");
        let q2 = cqa::model::parser::parse_query(&s, &renamed_text).unwrap();
        let fks2 = about_fks(&q2);
        let Ok(p2) = Problem::new(q2, fks2) else { return Ok(()); };
        prop_assert_eq!(before, p2.classify().is_fo(), "renaming changed the class of {}", text);
    }

    #[test]
    fn built_plans_terminate_with_empty_fk_residue(text in arb_query_text()) {
        let s = schema();
        let q = cqa::model::parser::parse_query(&s, &text).unwrap();
        let fks = about_fks(&q);
        let Ok(p) = Problem::new(q, fks) else { return Ok(()); };
        if let Classification::Fo(plan) = p.classify() {
            // Every step removes keys; the tail sees none (Kw) or branches
            // (Lemma 45, recursively the same).
            fn check(plan: &cqa::core::RewritePlan) -> bool {
                match &plan.tail {
                    cqa::core::pipeline::Tail::Kw { .. } => plan
                        .steps
                        .last()
                        .map(|s| s.fks_after.is_empty())
                        .unwrap_or(true),
                    cqa::core::pipeline::Tail::Lemma45(l) => check(&l.sub_plan),
                }
            }
            prop_assert!(check(&plan));
            // And the plan answers something on the empty database without
            // panicking.
            let db = Instance::new(schema());
            let _ = plan.answer(&db);
        }
    }
}
