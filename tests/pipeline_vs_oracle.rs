//! Randomized cross-validation: the constructed rewritings (interpretive
//! plan evaluation, the compiled view-backed plan, AND the flattened single
//! formula) must agree with the exhaustive ⊕-repair oracle on every
//! instance, for a corpus of FO-classified problems covering every
//! reduction lemma.
//!
//! This is the strongest correctness signal in the workspace: four
//! independent implementations of `CERTAINTY(q, FK)` (materializing paper
//! pipeline, compiled lazy-view pipeline, flattened FO formula, brute-force
//! repair search) computed four different ways.

use cqa::core::compiled_plan::CompiledPlan;
use cqa::core::flatten::flatten;
use cqa::prelude::*;
use cqa_fo::eval::{eval_with, Strategy};
use cqa_model::Valuation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

struct Case {
    name: &'static str,
    schema: &'static str,
    query: &'static str,
    fks: &'static str,
    /// relations and arities used by the random instance generator
    rels: &'static [(&'static str, usize)],
}

const CASES: &[Case] = &[
    Case {
        name: "lemma36 weak key",
        schema: "R[2,1] S[1,1]",
        query: "R(x,y), S(x)",
        fks: "R[1] -> S",
        rels: &[("R", 2), ("S", 1)],
    },
    Case {
        name: "lemma37 o→o (Example 13 q1)",
        schema: "N[3,1] O[2,1]",
        query: "N(x,u,y), O(y,w)",
        fks: "N[3] -> O",
        rels: &[("N", 3), ("O", 2)],
    },
    Case {
        name: "lemma39 d→d (Example 13 q3)",
        schema: "N[3,1] O[2,1]",
        query: "N(x,'c',y), O(y,'c')",
        fks: "N[3] -> O",
        rels: &[("N", 3), ("O", 2)],
    },
    Case {
        name: "lemma45 (§8 example)",
        schema: "N[2,1] O[1,1] P[1,1]",
        query: "N('c',y), O(y), P(y)",
        fks: "N[2] -> O",
        rels: &[("N", 2), ("O", 1), ("P", 1)],
    },
    Case {
        name: "lemma40 d→o",
        schema: "N[2,1] O[1,1] T[2,1] U[2,1]",
        query: "N(x,y), O(y), T(z,y), U(z,y)",
        fks: "N[2] -> O",
        rels: &[("N", 2), ("O", 1), ("T", 2), ("U", 2)],
    },
    Case {
        name: "simple o→o into unary",
        schema: "N[2,1] O[1,1]",
        query: "N(x,y), O(y)",
        fks: "N[2] -> O",
        rels: &[("N", 2), ("O", 1)],
    },
    Case {
        name: "chained keys with closure",
        schema: "A[2,1] B[2,1] C[1,1] D[2,1]",
        query: "A(x,y), B(y,z), C(y), D(z,'k')",
        fks: "A[2] -> B, B[1] -> C, B[2] -> D",
        rels: &[("A", 2), ("B", 2), ("C", 1), ("D", 2)],
    },
    Case {
        name: "pk-only baseline",
        schema: "R[2,1] S[2,1]",
        query: "R(x,y), S(y,'v')",
        fks: "",
        rels: &[("R", 2), ("S", 2)],
    },
    Case {
        name: "composite key source",
        schema: "N[3,2] O[1,1]",
        query: "N(x,y,z), O(z)",
        fks: "N[3] -> O",
        rels: &[("N", 3), ("O", 1)],
    },
    Case {
        name: "two strong keys from one atom",
        schema: "A[3,1] B[1,1] C[1,1]",
        query: "A(x,y,z), B(y), C(z)",
        fks: "A[2] -> B, A[3] -> C",
        rels: &[("A", 3), ("B", 1), ("C", 1)],
    },
    Case {
        name: "strong key chain",
        schema: "A[2,1] B[2,1] C[1,1]",
        query: "A(x,y), B(y,z), C(z)",
        fks: "A[2] -> B, B[2] -> C",
        rels: &[("A", 2), ("B", 2), ("C", 1)],
    },
    Case {
        name: "lemma45 followed by a strong key",
        schema: "N[2,1] O[2,1] Q[1,1]",
        query: "N('c',y), O(y,z), Q(z)",
        fks: "N[2] -> O, O[2] -> Q",
        rels: &[("N", 2), ("O", 2), ("Q", 1)],
    },
    Case {
        name: "weak key from a composite key",
        schema: "N[2,2] O[1,1]",
        query: "N(x,'k'), O(x)",
        fks: "N[1] -> O",
        rels: &[("N", 2), ("O", 1)],
    },
    Case {
        name: "disobedient target constant",
        schema: "A[2,1] B[2,1]",
        query: "A(x,y), B(y,'m')",
        fks: "A[2] -> B",
        rels: &[("A", 2), ("B", 2)],
    },
];

/// Random instance over the case's relations with a small shared domain, so
/// that joins, blocks and dangling references all occur with high
/// probability.
fn random_instance(
    schema: &Arc<Schema>,
    rels: &[(&str, usize)],
    rng: &mut StdRng,
    max_facts: usize,
) -> Instance {
    let pool = ["a", "b", "c", "v", "k", "1"];
    let mut db = Instance::new(schema.clone());
    let n = rng.gen_range(0..=max_facts);
    for _ in 0..n {
        let (rel, arity) = rels[rng.gen_range(0..rels.len())];
        let args: Vec<&str> = (0..arity).map(|_| pool[rng.gen_range(0..pool.len())]).collect();
        db.insert_named(rel, &args).unwrap();
    }
    db
}

#[test]
fn rewriting_matches_oracle_on_random_instances() {
    let oracle = CertaintyOracle::new();
    let mut rng = StdRng::seed_from_u64(2022);
    let mut checked = 0usize;
    let mut inconclusive = 0usize;

    for case in CASES {
        let schema = Arc::new(parse_schema(case.schema).unwrap());
        let q = parse_query(&schema, case.query).unwrap();
        let fks = parse_fks(&schema, case.fks).unwrap();
        let problem = Problem::new(q, fks).unwrap();
        let plan = match problem.classify() {
            Classification::Fo(plan) => plan,
            Classification::NotFo(r) => panic!("{}: expected FO, got {r}", case.name),
        };
        let formula = flatten(&plan)
            .unwrap_or_else(|e| panic!("{}: flatten failed: {e}", case.name));
        assert!(formula.is_closed(), "{}: open formula {formula}", case.name);
        let compiled = CompiledPlan::compile(&plan)
            .unwrap_or_else(|e| panic!("{}: compile failed: {e}", case.name));

        for round in 0..60 {
            let db = random_instance(&schema, case.rels, &mut rng, 7);
            let by_plan = plan.answer(&db);
            let by_compiled = compiled.answer(&db);
            let by_formula_guarded =
                eval_with(&db, &formula, &Valuation::new(), Strategy::Guarded);
            let by_formula_naive = eval_with(&db, &formula, &Valuation::new(), Strategy::Naive);
            assert_eq!(
                by_formula_guarded, by_formula_naive,
                "{} round {round}: evaluator strategies disagree on {db} for {formula}",
                case.name
            );
            assert_eq!(
                by_plan, by_compiled,
                "{} round {round}: materializing plan vs compiled plan on {db}",
                case.name
            );
            assert_eq!(
                by_plan, by_formula_guarded,
                "{} round {round}: plan vs flattened formula on {db}\nformula: {formula}",
                case.name
            );
            match oracle.is_certain(&db, problem.query(), problem.fks()) {
                OracleOutcome::Certain => {
                    assert!(
                        by_plan,
                        "{} round {round}: oracle certain, plan says no on {db}",
                        case.name
                    );
                    checked += 1;
                }
                OracleOutcome::NotCertain(witness) => {
                    assert!(
                        !by_plan,
                        "{} round {round}: oracle found falsifying repair {witness} on {db}",
                        case.name
                    );
                    checked += 1;
                }
                OracleOutcome::Inconclusive(_) => {
                    inconclusive += 1;
                }
            }
        }
    }
    assert!(
        checked >= 300,
        "too few conclusive oracle comparisons: {checked} (inconclusive {inconclusive})"
    );
}

#[test]
fn inconclusive_oracle_outcomes_are_skipped_not_passed() {
    // The cross-validation above SKIPS inconclusive oracle outcomes. This
    // test pins that contract under deliberately tiny limits: on instances
    // whose candidate space exceeds the limit the oracle must return
    // `Inconclusive` (`as_bool() == None`, so the harness cannot count it
    // as agreement), and every verdict that IS conclusive must still match
    // the rewriting plan. A limit that never bites would silently weaken
    // the suite, so we also require that some instances were skipped.
    let tight = CertaintyOracle::with_limits(cqa_repair::SearchLimits {
        max_candidates: 6,
        ..cqa_repair::SearchLimits::default()
    });
    let mut rng = StdRng::seed_from_u64(45);
    let mut skipped = 0usize;
    let mut conclusive = 0usize;
    for case in CASES.iter().take(6) {
        let schema = Arc::new(parse_schema(case.schema).unwrap());
        let q = parse_query(&schema, case.query).unwrap();
        let fks = parse_fks(&schema, case.fks).unwrap();
        let problem = Problem::new(q, fks).unwrap();
        let plan = match problem.classify() {
            Classification::Fo(plan) => plan,
            Classification::NotFo(r) => panic!("{}: expected FO, got {r}", case.name),
        };
        for _ in 0..40 {
            let db = random_instance(&schema, case.rels, &mut rng, 8);
            match tight.is_certain(&db, problem.query(), problem.fks()) {
                OracleOutcome::Inconclusive(why) => {
                    // Skipped — but never silently: the reason is real.
                    assert!(!why.is_empty());
                    skipped += 1;
                }
                outcome => {
                    let truth = outcome.as_bool().expect("conclusive outcome");
                    assert_eq!(
                        truth,
                        plan.answer(&db),
                        "{}: conclusive oracle verdict disagrees with plan on {db}",
                        case.name
                    );
                    conclusive += 1;
                }
            }
        }
    }
    assert!(skipped > 0, "the tiny limit never applied — test is vacuous");
    assert!(conclusive > 0, "everything skipped — test is vacuous");
}

#[test]
fn nl_p_solvers_match_oracle_on_random_instances() {
    let oracle = CertaintyOracle::new();
    let mut rng = StdRng::seed_from_u64(16);

    // Proposition 16 random instances.
    let s16 = Arc::new(parse_schema(cqa::solvers::prop16::SCHEMA).unwrap());
    let q16 = parse_query(&s16, cqa::solvers::prop16::QUERY).unwrap();
    let k16 = parse_fks(&s16, cqa::solvers::prop16::FKS).unwrap();
    let pool = ["a", "b", "c", "d"];
    for _ in 0..120 {
        let mut db = Instance::new(s16.clone());
        for _ in 0..rng.gen_range(0..8) {
            let u = pool[rng.gen_range(0..pool.len())];
            let v = pool[rng.gen_range(0..pool.len())];
            db.insert_named("N", &[u, v]).unwrap();
        }
        for _ in 0..rng.gen_range(0..3) {
            db.insert_named("O", &[pool[rng.gen_range(0..pool.len())]])
                .unwrap();
        }
        let fast = cqa::solvers::prop16::certain(&db);
        let via_reach = cqa::solvers::prop16::certain_via_reachability(&db);
        assert_eq!(fast, via_reach, "prop16 criteria disagree on {db}");
        if let Some(truth) = oracle.is_certain(&db, &q16, &k16).as_bool() {
            assert_eq!(fast, truth, "prop16 vs oracle on {db}");
        }
    }

    // Proposition 17 random instances.
    let s17 = Arc::new(parse_schema(cqa::solvers::prop17::SCHEMA).unwrap());
    let q17 = parse_query(&s17, cqa::solvers::prop17::QUERY).unwrap();
    let k17 = parse_fks(&s17, cqa::solvers::prop17::FKS).unwrap();
    let mids = ["c", "d"];
    let vals = ["1", "2", "3"];
    for _ in 0..120 {
        let mut db = Instance::new(s17.clone());
        for _ in 0..rng.gen_range(0..7) {
            let key = pool[rng.gen_range(0..pool.len())];
            let mid = mids[rng.gen_range(0..mids.len())];
            let val = vals[rng.gen_range(0..vals.len())];
            db.insert_named("N", &[key, mid, val]).unwrap();
        }
        for _ in 0..rng.gen_range(0..3) {
            db.insert_named("O", &[vals[rng.gen_range(0..vals.len())]])
                .unwrap();
        }
        let fast = cqa::solvers::prop17::certain(&db, Cst::new("c"));
        if let Some(truth) = oracle.is_certain(&db, &q17, &k17).as_bool() {
            assert_eq!(fast, truth, "prop17 vs oracle on {db}");
        }
    }
}

#[test]
fn pk_only_rewriting_matches_enumeration_on_random_instances() {
    // Theorem 2's FO side: the Koutris–Wijsen rewriting vs. exhaustive
    // primary-key repair enumeration, over several acyclic queries.
    let mut rng = StdRng::seed_from_u64(7);
    let corpus = [
        ("R[2,1] S[2,1]", "R(x,y), S(y,z)", &[("R", 2), ("S", 2)][..]),
        ("R[2,1] S[2,1]", "R(x,y), S(y,'v')", &[("R", 2), ("S", 2)][..]),
        ("R[3,1]", "R(x,y,y)", &[("R", 3)][..]),
        ("R[2,1] S[2,1] T[2,1]", "R(x,y), S(y,z), T(z,u)", &[("R", 2), ("S", 2), ("T", 2)][..]),
        ("R[2,2] S[2,1]", "R(x,y), S(y,z)", &[("R", 2), ("S", 2)][..]),
    ];
    for (schema_text, query_text, rels) in corpus {
        let schema = Arc::new(parse_schema(schema_text).unwrap());
        let q = parse_query(&schema, query_text).unwrap();
        let f = kw_rewrite(&q).unwrap();
        for _ in 0..80 {
            let db = random_instance(&schema, rels, &mut rng, 8);
            let by_formula = cqa::fo::eval::eval_closed(&db, &f);
            let by_enumeration = cqa_repair::pk_certain(&db, &q);
            assert_eq!(
                by_formula, by_enumeration,
                "query {query_text} instance {db}\nformula {f}"
            );
        }
    }
}
