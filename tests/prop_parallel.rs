//! Differential determinism harness for shard-parallel plan execution:
//! [`CompiledPlan::answer_parallel`] must agree with the sequential
//! [`CompiledPlan::answer`] AND with the materializing
//! [`RewritePlan::answer`] oracle on arbitrary instances, across thread
//! counts {1, 2, 8} and with the fan-out threshold forced to 1 (so the
//! Lemma 45 block-fact shards and the partitioned filter-step loops engage
//! even on tiny generated instances).
//!
//! The generated families mirror `tests/prop_pipeline.rs` — exactly the
//! shapes where the executors take maximally different routes (nested
//! Lemma 45, non-matching block facts, filter steps upstream of the
//! branching tail) — so any scheduling-dependent divergence (a lost
//! short-circuit, a shard reading a half-filtered view, a racy first
//! touch of the instance index) shows up as a three-way disagreement.

// The deprecated engine batch surface is exercised deliberately: its
// sharding machinery now also backs `Solver::solve_many`, and this harness
// is the determinism pin for both.
#![allow(deprecated)]

use cqa::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// A case: schema, query, foreign keys, and the fact shapes the instance
/// generator may emit (relation, arity).
struct Family {
    schema: &'static str,
    query: &'static str,
    fks: &'static str,
    rels: &'static [(&'static str, usize)],
}

/// Depth-2 nested Lemma 45: `N('c',y)` binds `y`, the frozen residual
/// `M(§y,w)` binds `w`, and the tail is the KW rewriting of `P`.
const NESTED: Family = Family {
    schema: "N[2,1] M[2,1] Q[1,1] P[1,1] O[1,1]",
    query: "N('c',y), M(y,w), Q(w), P(w), O(y)",
    fks: "N[2] -> O, M[2] -> Q",
    rels: &[("N", 2), ("M", 2), ("Q", 1), ("P", 1), ("O", 1)],
};

/// Lemma 45 with a constant non-key term: block facts `N(c, y, ≠d)` do not
/// match the atom and must short-circuit the parallel conjunction exactly
/// like the sequential loop.
const NONMATCHING: Family = Family {
    schema: "N[3,1] O[1,1] P[1,1]",
    query: "N('c',y,'d'), O(y), P(y)",
    fks: "N[2] -> O",
    rels: &[("N", 3), ("O", 1), ("P", 1)],
};

/// Lemma 37 + Lemma 45 composition: exercises the partitioned block-filter
/// loops upstream of the branching tail.
const FILTERED: Family = Family {
    schema: "N[2,1] O[2,1] Q[1,1]",
    query: "N('c',y), O(y,z), Q(z)",
    fks: "N[2] -> O, O[2] -> Q",
    rels: &[("N", 2), ("O", 2), ("Q", 1)],
};

/// The thread widths every case is checked under (1 = the inline path).
const WIDTHS: [usize; 3] = [1, 2, 8];

fn build(family: &Family) -> (RewritePlan, CompiledPlan, Arc<Schema>) {
    let schema = Arc::new(parse_schema(family.schema).unwrap());
    let q = parse_query(&schema, family.query).unwrap();
    let fks = parse_fks(&schema, family.fks).unwrap();
    let plan = match Problem::new(q, fks).unwrap().classify() {
        Classification::Fo(plan) => *plan,
        Classification::NotFo(r) => panic!("{}: expected FO, got {r}", family.query),
    };
    let compiled = CompiledPlan::compile(&plan).unwrap();
    (plan, compiled, schema)
}

/// Value pool: the query constants `c`/`d` occur often (so key blocks fill
/// up and non-key constants match and mismatch), plus a handful of others.
const POOL: [&str; 6] = ["c", "d", "a", "b", "e", "1"];

fn instance_for(
    schema: &Arc<Schema>,
    rels: &[(&str, usize)],
    picks: &[(usize, Vec<usize>)],
) -> Instance {
    let mut db = Instance::new(schema.clone());
    for (rel_pick, args) in picks {
        let (rel, arity) = rels[rel_pick % rels.len()];
        let args: Vec<&str> = (0..arity)
            .map(|i| POOL[args.get(i).copied().unwrap_or(0) % POOL.len()])
            .collect();
        db.insert_named(rel, &args).unwrap();
    }
    db
}

fn arb_picks() -> impl Strategy<Value = Vec<(usize, Vec<usize>)>> {
    proptest::collection::vec(
        (0..8usize, proptest::collection::vec(0..POOL.len(), 0..3)),
        0..14,
    )
}

fn check(family: &Family, picks: &[(usize, Vec<usize>)]) -> Result<(), TestCaseError> {
    let (plan, compiled, schema) = build(family);
    let db = instance_for(&schema, family.rels, picks);
    let oracle = plan.answer(&db);
    let sequential = compiled.answer(&db);
    prop_assert_eq!(
        oracle,
        sequential,
        "query {}: materializing {} vs compiled {} on {}",
        family.query,
        oracle,
        sequential,
        db
    );
    for threads in WIDTHS {
        let policy = ParallelPolicy::with_threads(threads).fan_out_at(1);
        let parallel = compiled.answer_parallel(&db, &policy);
        prop_assert_eq!(
            parallel,
            sequential,
            "query {}: parallel({} threads) {} vs sequential {} on {}",
            family.query,
            threads,
            parallel,
            sequential,
            db
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 128,
        failure_persistence: Some(FileFailurePersistence::WithSource("proptest-regressions")),
        ..ProptestConfig::default()
    })]

    #[test]
    fn parallel_matches_sequential_and_oracle_on_nested_lemma45(picks in arb_picks()) {
        check(&NESTED, &picks)?;
    }

    #[test]
    fn parallel_matches_sequential_and_oracle_on_nonmatching_blocks(picks in arb_picks()) {
        check(&NONMATCHING, &picks)?;
    }

    #[test]
    fn parallel_matches_sequential_and_oracle_under_block_filters(picks in arb_picks()) {
        check(&FILTERED, &picks)?;
    }

    #[test]
    fn sharded_answer_many_matches_sequential_in_input_order(
        batches in proptest::collection::vec(arb_picks(), 1..6)
    ) {
        // The batched engine surface sharded across 8 threads must return
        // the same verdicts as per-instance evaluation, in input order.
        let schema = Arc::new(parse_schema(NESTED.schema).unwrap());
        let q = parse_query(&schema, NESTED.query).unwrap();
        let fks = parse_fks(&schema, NESTED.fks).unwrap();
        let engine = CertainEngine::try_new(Problem::new(q, fks).unwrap()).unwrap();
        let dbs: Vec<Instance> = batches
            .iter()
            .map(|p| instance_for(&schema, NESTED.rels, p))
            .collect();
        let expected: Vec<bool> = dbs.iter().map(|db| engine.answer(db)).collect();
        let sharded =
            engine.answer_many_with(&dbs, &ParallelPolicy::with_threads(8).fan_out_at(1));
        prop_assert_eq!(sharded, expected);
    }
}

/// Regression for `answer_many` output-order determinism: a batch with a
/// *known, position-dependent* answer pattern must come back in input
/// order under every policy, including widths that give every instance its
/// own shard and widths that leave shards ragged. A scheduling-dependent
/// join would scramble yes/no across positions on some iteration.
#[test]
fn answer_many_returns_input_order_regardless_of_shard_completion() {
    let schema = Arc::new(parse_schema(NESTED.schema).unwrap());
    let q = parse_query(&schema, NESTED.query).unwrap();
    let fks = parse_fks(&schema, NESTED.fks).unwrap();
    let engine = CertainEngine::try_new(Problem::new(q, fks).unwrap()).unwrap();
    assert!(engine.compiled_plan().is_some());

    // Instance i is a yes-instance iff i is even; odd instances lose one
    // P-witness. Sizes vary so shard workloads are deliberately skewed.
    let mut dbs = Vec::new();
    let mut expected = Vec::new();
    for i in 0..13usize {
        let mut db = Instance::new(schema.clone());
        for j in 0..=(i % 5) {
            db.insert_named("N", &["c", &format!("y{j}")]).unwrap();
            db.insert_named("O", &[&format!("y{j}")]).unwrap();
            db.insert_named("M", &[&format!("y{j}"), &format!("w{j}")]).unwrap();
            db.insert_named("Q", &[&format!("w{j}")]).unwrap();
            if i % 2 == 0 || j > 0 {
                db.insert_named("P", &[&format!("w{j}")]).unwrap();
            }
        }
        expected.push(engine.answer_materialized(&db));
        dbs.push(db);
    }
    assert!(expected.iter().any(|&b| b) && expected.iter().any(|&b| !b));

    for threads in [2usize, 3, 8, 64] {
        let policy = ParallelPolicy::with_threads(threads).fan_out_at(1);
        for round in 0..8 {
            assert_eq!(
                engine.answer_many_with(&dbs, &policy),
                expected,
                "threads={threads} round={round}: answers out of input order"
            );
        }
    }
    // The default policy (environment-driven width) agrees too.
    assert_eq!(engine.answer_many(&dbs), expected);
}
