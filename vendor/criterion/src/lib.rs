//! Offline shim for the subset of `criterion` 0.5 this workspace uses.
//!
//! Provides [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher`],
//! [`black_box`] and the [`criterion_group!`]/[`criterion_main!`] macros.
//! Measurement is a simple calibrated wall-clock loop (median of a few
//! batches) printed as `bench: <group>/<id> ... <time>/iter` — no statistics
//! machinery, no HTML reports, but enough to compare hot paths locally and
//! to keep `cargo bench` targets compiling and runnable offline.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time to spend measuring a single benchmark.
const TARGET_MEASURE: Duration = Duration::from_millis(200);

/// An identifier for a parameterized benchmark: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    /// Best observed per-iteration time, set by [`Bencher::iter`].
    per_iter: Option<Duration>,
    /// Test mode (`-- --test`): run the routine once, skip measurement.
    quick: bool,
}

impl Bencher {
    /// Runs `routine` in a calibrated loop and records its per-iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.quick {
            // Test mode: run exactly once, skip the measurement loops.
            let start = Instant::now();
            black_box(routine());
            self.per_iter = Some(start.elapsed().max(Duration::from_nanos(1)));
            return;
        }
        self.per_iter = Some(measure_best(TARGET_MEASURE, || {
            black_box(routine());
        }));
    }
}

/// Calibrated best-of-batches measurement: runs `routine` once to size the
/// batches, then reports the best per-iteration time over 5 batches
/// targeting roughly `target` of total measurement time. This is the one
/// measurement loop of the workspace — [`Bencher::iter`] and external
/// harnesses (e.g. the `BENCH_eval.json` snapshot in `cqa-bench`) share it
/// so their numbers stay comparable.
pub fn measure_best(target: Duration, mut routine: impl FnMut()) -> Duration {
    let start = Instant::now();
    routine();
    let once = start.elapsed().max(Duration::from_nanos(1));
    let batch = (target.as_nanos() / 5 / once.as_nanos()).clamp(1, 1_000_000) as u64;
    let mut best = Duration::MAX;
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..batch {
            routine();
        }
        let per = start.elapsed() / u32::try_from(batch).expect("batch fits in u32");
        best = best.min(per);
    }
    best
}

fn fmt_per_iter(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if ns >= 1_000 {
        format!("{:.3} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{ns} ns")
    }
}

fn run_one(group: Option<&str>, id: &BenchmarkId, quick: bool, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        per_iter: None,
        quick,
    };
    f(&mut b);
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let mode = if quick { " (test mode)" } else { "" };
    match b.per_iter {
        Some(t) => println!("bench: {label:<60} {:>12}/iter{mode}", fmt_per_iter(t)),
        None => println!("bench: {label:<60} (no measurement)"),
    }
}

/// The benchmark manager (shim for `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    quick: bool,
}

impl Criterion {
    /// Applies command-line configuration. The shim understands `--test`
    /// (run every routine exactly once, like upstream criterion's test
    /// mode — used by the CI bench-smoke step) and accepts/ignores the
    /// `--bench`/filter arguments cargo passes.
    pub fn configure_from_args(mut self) -> Criterion {
        self.quick = std::env::args().any(|a| a == "--test");
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        let quick = self.quick;
        BenchmarkGroup {
            _criterion: self,
            name: group_name.into(),
            quick,
        }
    }

    /// Benchmarks a single function.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        let mut f = f;
        run_one(None, &id.into(), self.quick, |b| f(b));
        self
    }

    /// Benchmarks a function with an input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Criterion {
        run_one(None, &id, self.quick, |b| f(b, input));
        self
    }

    /// Prints the final summary (a no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks (shim for `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    quick: bool,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted and ignored by the shim's loop).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted and ignored by the shim's loop).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks a function within the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(Some(&self.name), &id.into(), self.quick, |b| f(b));
        self
    }

    /// Benchmarks a function with an input value within the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(Some(&self.name), &id, self.quick, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions (shim for `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point (shim for `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_time() {
        let mut b = Bencher {
            per_iter: None,
            quick: false,
        };
        b.iter(|| black_box(3u64).wrapping_mul(7));
        assert!(b.per_iter.is_some());
    }

    #[test]
    fn quick_mode_runs_once() {
        let mut b = Bencher {
            per_iter: None,
            quick: true,
        };
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(calls, 1, "test mode must run the routine exactly once");
        assert!(b.per_iter.is_some());
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn duration_formats() {
        assert_eq!(fmt_per_iter(Duration::from_nanos(500)), "500 ns");
        assert!(fmt_per_iter(Duration::from_micros(12)).ends_with("µs"));
        assert!(fmt_per_iter(Duration::from_millis(12)).ends_with("ms"));
        assert!(fmt_per_iter(Duration::from_secs(2)).ends_with(" s"));
    }
}
