//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! Backed by `std::sync`; the `parking_lot` ergonomics (no lock poisoning —
//! `read()`/`write()`/`lock()` return guards directly) are recovered by
//! clearing poison on panic-while-locked, matching upstream's behavior of
//! simply releasing the lock.

#![forbid(unsafe_code)]

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A reader-writer lock that does not poison (shim over [`std::sync::RwLock`]).
#[derive(Debug, Default)]
pub struct RwLock<T>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(StdRwLock::new(value))
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| {
            self.0.clear_poison();
            e.into_inner()
        })
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| {
            self.0.clear_poison();
            e.into_inner()
        })
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutex that does not poison (shim over [`std::sync::Mutex`]).
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(StdMutex::new(value))
    }

    /// Acquires the mutex.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| {
            self.0.clear_poison();
            e.into_inner()
        })
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new("a".to_string());
        m.lock().push('b');
        assert_eq!(m.into_inner(), "ab");
    }
}
