//! Offline shim for the subset of `serde_json` this workspace uses:
//! [`to_string`] and [`to_string_pretty`] over the JSON-only `serde` shim
//! trait. Pretty printing reformats the compact fragment with 2-space
//! indentation, string-literal aware.

#![forbid(unsafe_code)]

use serde::Serialize;
use std::fmt;

/// A serialization error. The shim serializer is infallible, so this is
/// never constructed; it exists to keep the upstream `Result` signatures.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let compact = to_string(value)?;
    Ok(pretty(&compact))
}

fn pretty(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut indent = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let push_indent = |out: &mut String, indent: usize| {
        out.push('\n');
        for _ in 0..indent {
            out.push_str("  ");
        }
    };
    let mut chars = compact.chars().peekable();
    while let Some(c) = chars.next() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                // Keep empty containers on one line.
                if chars.peek() == Some(&'}') || chars.peek() == Some(&']') {
                    out.push(chars.next().expect("peeked"));
                } else {
                    indent += 1;
                    push_indent(&mut out, indent);
                }
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                push_indent(&mut out, indent);
                out.push(c);
            }
            ',' => {
                out.push(c);
                push_indent(&mut out, indent);
            }
            ':' => {
                out.push_str(": ");
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested() {
        let got = pretty(r#"{"a":[1,2],"b":{},"c":"x:,y"}"#);
        let want = "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": {},\n  \"c\": \"x:,y\"\n}";
        assert_eq!(got, want);
    }

    #[test]
    fn to_string_compact() {
        assert_eq!(to_string(&vec![1u8, 2]).unwrap(), "[1,2]");
    }
}
