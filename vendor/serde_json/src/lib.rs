//! Offline shim for the subset of `serde_json` this workspace uses:
//! [`to_string`] and [`to_string_pretty`] over the JSON-only `serde` shim
//! trait, plus a dynamically typed [`Value`] with a strict recursive-descent
//! parser ([`from_str`]) for the line-delimited protocol of `cqa serve`.
//! Pretty printing reformats the compact fragment with 2-space indentation,
//! string-literal aware.

#![forbid(unsafe_code)]

use serde::Serialize;
use std::fmt;

/// A serialization error. The shim serializer is infallible, so this is
/// never constructed; it exists to keep the upstream `Result` signatures.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let compact = to_string(value)?;
    Ok(pretty(&compact))
}

fn pretty(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut indent = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let push_indent = |out: &mut String, indent: usize| {
        out.push('\n');
        for _ in 0..indent {
            out.push_str("  ");
        }
    };
    let mut chars = compact.chars().peekable();
    while let Some(c) = chars.next() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                // Keep empty containers on one line.
                if chars.peek() == Some(&'}') || chars.peek() == Some(&']') {
                    out.push(chars.next().expect("peeked"));
                } else {
                    indent += 1;
                    push_indent(&mut out, indent);
                }
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                push_indent(&mut out, indent);
                out.push(c);
            }
            ',' => {
                out.push(c);
                push_indent(&mut out, indent);
            }
            ':' => {
                out.push_str(": ");
            }
            c => out.push(c),
        }
    }
    out
}

/// A dynamically typed JSON value — the parse target of [`from_str`] and a
/// convenient builder for protocol responses (it implements the shim's
/// `Serialize`, so [`to_string`] round-trips it).
///
/// Numbers are stored as `f64` (as in browsers' JSON); [`Value::as_u64`]
/// recovers exact non-negative integers up to 2^53.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; keys are sorted (`BTreeMap`), so serialization is
    /// deterministic.
    Object(std::collections::BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects; `None` on every other variant.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// This number as an exact non-negative integer (no fractional part,
    /// within 2^53), if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.0e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

impl Serialize for Value {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => b.serialize_json(out),
            Value::Number(n) => n.serialize_json(out),
            Value::String(s) => s.serialize_json(out),
            Value::Array(items) => items.serialize_json(out),
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    serde::write_json_str(out, k);
                    out.push(':');
                    v.serialize_json(out);
                }
                out.push('}');
            }
        }
    }
}

/// Why [`from_str`] rejected its input: a message plus the byte offset of
/// the offending character.
#[derive(Debug)]
pub struct ParseError {
    msg: String,
    at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document. Strict: the whole input must be consumed
/// (trailing non-whitespace is an error), literals are exact, and strings
/// understand the standard escapes including `\uXXXX` (surrogate pairs
/// included).
pub fn from_str(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

/// Nesting depth cap: a protocol parser must not let `[[[[…` overflow the
/// stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            msg: msg.into(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = std::collections::BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: require the paired low
                                // surrogate escape.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let second = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&second) {
                                        return Err(self.err("unpaired surrogate"));
                                    }
                                    let cp = 0x10000
                                        + ((first - 0xD800) << 10)
                                        + (second - 0xDC00);
                                    char::from_u32(cp)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                char::from_u32(first)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            // hex4 consumed its digits; skip the +1 below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // boundaries are valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Four hex digits, advancing past them; returns the code unit.
    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let unit =
            u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(unit)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ASCII digits are valid UTF-8");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested() {
        let got = pretty(r#"{"a":[1,2],"b":{},"c":"x:,y"}"#);
        let want = "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": {},\n  \"c\": \"x:,y\"\n}";
        assert_eq!(got, want);
    }

    #[test]
    fn to_string_compact() {
        assert_eq!(to_string(&vec![1u8, 2]).unwrap(), "[1,2]");
    }

    #[test]
    fn parses_and_reserializes_a_request() {
        let v = from_str(r#" {"op":"solve","threads":4,"deep":[true,null,-1.5e2]} "#).unwrap();
        assert_eq!(v.get("op").and_then(Value::as_str), Some("solve"));
        assert_eq!(v.get("threads").and_then(Value::as_u64), Some(4));
        let deep = v.get("deep").and_then(Value::as_array).unwrap();
        assert_eq!(deep[0].as_bool(), Some(true));
        assert_eq!(deep[1], Value::Null);
        assert_eq!(deep[2].as_f64(), Some(-150.0));
        // Deterministic (sorted-key) round trip through the serializer.
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"deep":[true,null,-150],"op":"solve","threads":4}"#
        );
    }

    #[test]
    fn parses_string_escapes_including_surrogate_pairs() {
        let v = from_str(r#""a\n\t\"\\\u0041\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\A\u{1F600}"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "\"\\ud800\"",
            "nan",
        ] {
            assert!(from_str(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_cap_prevents_stack_overflow() {
        let deep = "[".repeat(400) + &"]".repeat(400);
        assert!(from_str(&deep).is_err());
    }
}
