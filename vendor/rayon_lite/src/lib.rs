//! Offline scoped-threadpool shim — the fork-join subset of `rayon` this
//! workspace uses, **without work stealing**.
//!
//! A [`ThreadPool`] is only a thread *count*: every parallel call spawns
//! scoped worker threads ([`std::thread::scope`]), splits the input slice
//! into at most `threads` contiguous chunks, runs one chunk per worker (the
//! first chunk on the calling thread), and joins in chunk order. There are
//! no persistent workers, no task queues and no stealing, which buys three
//! properties the CQA engine's differential test harness relies on:
//!
//! * **deterministic reduction order** — [`ThreadPool::map`] returns results
//!   in input order (chunks are concatenated in slice order, regardless of
//!   which worker finishes first), and [`ThreadPool::all`] is a plain
//!   conjunction, so every reduction is independent of scheduling;
//! * **borrow-only sharing** — scoped spawns let workers borrow the inputs
//!   and the closure directly; nothing is cloned or sent `'static`;
//! * **no hidden global state** — a pool of `n` threads does exactly `n - 1`
//!   spawns per call and nothing outside the call.
//!
//! The thread count defaults to the `CQA_THREADS` environment variable when
//! set (clamped to `[1, 64]`), else [`std::thread::available_parallelism`].
//! The environment is consulted exactly **once** per process
//! ([`current_num_threads`] caches the resolution) and an unparsable value
//! emits a one-time warning on stderr instead of being silently ignored;
//! strict consumers (a long-lived server refusing to start on a typo) use
//! [`env_threads`] instead. Worker panics are propagated to the caller
//! after all workers joined.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Upper bound on the resolved thread count (a `CQA_THREADS=100000` typo
/// must not spawn a hundred thousand threads per call).
const MAX_THREADS: usize = 64;

/// Strictly parses a `CQA_THREADS` setting: a positive integer, clamped to
/// the hard cap of 64. `0`, negatives and non-numbers are errors — this is
/// the validation surface for callers that must refuse bad configuration
/// instead of degrading (e.g. `cqa serve` at startup).
pub fn parse_threads(raw: &str) -> Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n.min(MAX_THREADS)),
        Ok(_) => Err(format!("CQA_THREADS must be at least 1, got {raw:?}")),
        Err(_) => Err(format!(
            "CQA_THREADS must be a positive integer, got {raw:?}"
        )),
    }
}

/// Strict read of the `CQA_THREADS` environment variable: `Ok(None)` when
/// unset, `Ok(Some(width))` when set to a valid value, `Err` when set but
/// unparsable. Unlike [`current_num_threads`] this never falls back — it is
/// how a long-lived service validates its environment before serving.
pub fn env_threads() -> Result<Option<usize>, String> {
    match std::env::var("CQA_THREADS") {
        Ok(v) => parse_threads(&v).map(Some),
        Err(_) => Ok(None),
    }
}

/// The machine's available parallelism, clamped to the hard cap.
fn hardware_width() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(MAX_THREADS))
        .unwrap_or(1)
}

/// Pure resolution of the default width from an optional raw `CQA_THREADS`
/// value: the resolved width plus a warning when the value was set but
/// unparsable (the lenient path falls back to the hardware width rather
/// than dying, but it must *say so*). This is the injectable seam the tests
/// use instead of mutating the process environment — `std::env::set_var`
/// races the multithreaded test harness and is `unsafe` on newer
/// toolchains.
pub fn resolve_width(raw: Option<&str>) -> (usize, Option<String>) {
    match raw {
        Some(v) => match parse_threads(v) {
            Ok(n) => (n, None),
            Err(msg) => (
                hardware_width(),
                Some(format!("{msg}; falling back to the machine width")),
            ),
        },
        None => (hardware_width(), None),
    }
}

/// The default degree of parallelism: `CQA_THREADS` when set to a positive
/// integer (clamped to 64), else the machine's available parallelism (else
/// one). Resolved **once** per process and cached — a long-lived server
/// must never have its per-request configuration silently overridden by a
/// later environment mutation — and an unparsable value warns on stderr
/// exactly once before falling back.
pub fn current_num_threads() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| {
        let raw = std::env::var("CQA_THREADS").ok();
        let (width, warning) = resolve_width(raw.as_deref());
        if let Some(w) = warning {
            eprintln!("warning: {w}");
        }
        width
    })
}

/// A fixed-width scoped fork-join pool. See the crate docs: the pool holds
/// no threads, only the width used by [`ThreadPool::map`] and
/// [`ThreadPool::all`] when splitting work.
#[derive(Clone, Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// A pool of `threads` workers; `0` resolves to
    /// [`current_num_threads`].
    pub fn new(threads: usize) -> ThreadPool {
        ThreadPool {
            threads: match threads {
                0 => current_num_threads(),
                n => n.min(MAX_THREADS),
            },
        }
    }

    /// The one-thread pool: every call runs inline on the caller.
    pub fn sequential() -> ThreadPool {
        ThreadPool { threads: 1 }
    }

    /// The pool's width.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every item and returns the results **in input order**
    /// (chunk-ordered join, independent of worker completion order).
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        match self.split(items) {
            None => items.iter().map(&f).collect(),
            Some((first, rest)) => {
                let results = std::thread::scope(|s| {
                    let handles: Vec<_> = rest
                        .iter()
                        .map(|ch| s.spawn(|| ch.iter().map(&f).collect::<Vec<R>>()))
                        .collect();
                    let mut out: Vec<Vec<R>> = vec![first.iter().map(&f).collect()];
                    out.extend(handles.into_iter().map(join_propagating));
                    out
                });
                results.into_iter().flatten().collect()
            }
        }
    }

    /// Whether `f` holds for every item — the short-circuiting parallel
    /// conjunction: the first `false` raises a stop flag that the other
    /// workers poll between items, so a universal failure cuts the whole
    /// fan-out short. The result is a pure conjunction and therefore
    /// independent of scheduling.
    pub fn all<T, F>(&self, items: &[T], f: F) -> bool
    where
        T: Sync,
        F: Fn(&T) -> bool + Sync,
    {
        self.all_init(items, || (), |(), item| f(item))
    }

    /// [`ThreadPool::all`] with **per-worker state**: each worker calls
    /// `init` once and threads the state through its whole chunk (the
    /// `map_init` idiom — reusable scratch buffers instead of per-item
    /// allocations). Inline runs build the state once on the caller.
    pub fn all_init<T, S, I, F>(&self, items: &[T], init: I, f: F) -> bool
    where
        T: Sync,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, &T) -> bool + Sync,
    {
        match self.split(items) {
            None => {
                let mut state = init();
                items.iter().all(|item| f(&mut state, item))
            }
            Some((first, rest)) => {
                let stop = AtomicBool::new(false);
                let run = |ch: &[T]| -> bool {
                    let mut state = init();
                    for item in ch {
                        if stop.load(Ordering::Relaxed) {
                            return false;
                        }
                        if !f(&mut state, item) {
                            stop.store(true, Ordering::Relaxed);
                            return false;
                        }
                    }
                    true
                };
                std::thread::scope(|s| {
                    let handles: Vec<_> =
                        rest.iter().map(|ch| s.spawn(|| run(ch))).collect();
                    let head = run(first);
                    // Join every worker before deciding: a panic must not
                    // be masked by an early false.
                    let tail: Vec<bool> =
                        handles.into_iter().map(join_propagating).collect();
                    head && tail.into_iter().all(|b| b)
                })
            }
        }
    }

    /// Splits `items` into balanced contiguous chunks — one per worker,
    /// sizes differing by at most one, never more chunks than items — as
    /// `(first chunk, remaining chunks)`. `None` means the call should run
    /// inline (one worker, or too few items to split).
    fn split<'a, T>(&self, items: &'a [T]) -> Option<(&'a [T], Vec<&'a [T]>)> {
        if self.threads <= 1 || items.len() <= 1 {
            return None;
        }
        let parts = self.threads.min(items.len());
        let (base, extra) = (items.len() / parts, items.len() % parts);
        let mut rest = items;
        let mut chunks = Vec::with_capacity(parts);
        for i in 0..parts {
            let (chunk, tail) = rest.split_at(base + usize::from(i < extra));
            chunks.push(chunk);
            rest = tail;
        }
        let first = chunks.remove(0);
        Some((first, chunks))
    }
}

impl Default for ThreadPool {
    /// The [`current_num_threads`]-wide pool.
    fn default() -> ThreadPool {
        ThreadPool::new(0)
    }
}

/// Joins a scoped worker, re-raising its panic on the calling thread.
fn join_propagating<T>(handle: std::thread::ScopedJoinHandle<'_, T>) -> T {
    match handle.join() {
        Ok(v) => v,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        for threads in [1, 2, 3, 8, 64] {
            let pool = ThreadPool::new(threads);
            assert_eq!(pool.threads(), threads);
            let doubled = pool.map(&items, |&x| 2 * x);
            assert_eq!(doubled, (0..1000).map(|x| 2 * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_handles_small_and_empty_inputs() {
        let pool = ThreadPool::new(8);
        assert_eq!(pool.map(&[] as &[u8], |_| 0), Vec::<i32>::new());
        assert_eq!(pool.map(&[7], |&x| x + 1), vec![8]);
        assert_eq!(pool.map(&[1, 2], |&x| x), vec![1, 2]);
    }

    #[test]
    fn all_is_a_conjunction() {
        let items: Vec<usize> = (0..500).collect();
        for threads in [1, 2, 8] {
            let pool = ThreadPool::new(threads);
            assert!(pool.all(&items, |&x| x < 500));
            assert!(!pool.all(&items, |&x| x != 250));
            assert!(pool.all(&[] as &[u8], |_| false), "vacuous truth");
        }
    }

    #[test]
    fn chunks_are_balanced_and_cover_everything() {
        // len slightly above the width must still engage every worker
        // with sizes differing by at most one (9 items / 8 threads →
        // 8 chunks of [2,1,1,1,1,1,1,1], not 5 chunks of 2).
        let pool = ThreadPool::new(8);
        let items: Vec<usize> = (0..9).collect();
        let (first, rest) = pool.split(&items).expect("splits");
        let mut sizes = vec![first.len()];
        sizes.extend(rest.iter().map(|c| c.len()));
        assert_eq!(sizes.len(), 8);
        assert_eq!(sizes.iter().sum::<usize>(), 9);
        assert!(sizes.iter().all(|&s| s == 1 || s == 2));
        // And the concatenation preserves input order.
        let mut cat: Vec<usize> = first.to_vec();
        for c in rest {
            cat.extend_from_slice(c);
        }
        assert_eq!(cat, items);
    }

    #[test]
    fn all_init_builds_one_state_per_worker() {
        let inits = AtomicUsize::new(0);
        let pool = ThreadPool::new(4);
        let items: Vec<usize> = (0..100).collect();
        let ok = pool.all_init(
            &items,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                Vec::<usize>::new()
            },
            |scratch, &x| {
                scratch.clear();
                scratch.push(x);
                true
            },
        );
        assert!(ok);
        assert_eq!(
            inits.load(Ordering::Relaxed),
            4,
            "one init per worker, not per item"
        );
        // Inline runs build exactly one state.
        let inits = AtomicUsize::new(0);
        ThreadPool::sequential().all_init(
            &items,
            || inits.fetch_add(1, Ordering::Relaxed),
            |_, _| true,
        );
        assert_eq!(inits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn all_short_circuits_on_failure() {
        // With the failing item first in the first chunk, the other
        // workers must observe the stop flag and skip most of their work.
        let items: Vec<usize> = (0..100_000).collect();
        let evaluated = AtomicUsize::new(0);
        let pool = ThreadPool::new(4);
        assert!(!pool.all(&items, |&x| {
            evaluated.fetch_add(1, Ordering::Relaxed);
            x != 0
        }));
        assert!(
            evaluated.load(Ordering::Relaxed) < items.len(),
            "stop flag must prune the fan-out"
        );
    }

    #[test]
    fn worker_panics_propagate() {
        let pool = ThreadPool::new(4);
        let items: Vec<usize> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            pool.map(&items, |&x| {
                if x == 63 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(result.is_err(), "worker panic must reach the caller");
    }

    #[test]
    fn zero_resolves_to_a_positive_width() {
        assert!(ThreadPool::new(0).threads() >= 1);
        assert!(ThreadPool::default().threads() >= 1);
        assert_eq!(ThreadPool::sequential().threads(), 1);
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn width_resolution_is_injectable_without_env_mutation() {
        // The resolver takes the raw value as an argument, so these cases
        // need no `std::env::set_var` (racy under the multithreaded test
        // harness, and `unsafe` on newer toolchains).
        assert_eq!(resolve_width(Some("3")), (3, None));
        assert_eq!(resolve_width(Some(" 8 ")), (8, None), "whitespace ok");
        assert_eq!(resolve_width(Some("100000")).0, 64, "clamped");
        let (fallback, warning) = resolve_width(Some("nonsense"));
        assert!(fallback >= 1, "unparsable values fall back");
        let warning = warning.expect("unparsable values must warn");
        assert!(warning.contains("nonsense"), "{warning}");
        let (zero, warning) = resolve_width(Some("0"));
        assert!(zero >= 1);
        assert!(warning.is_some(), "zero is invalid, must warn");
        let (unset, warning) = resolve_width(None);
        assert!(unset >= 1);
        assert!(warning.is_none(), "unset is not an error");
    }

    #[test]
    fn strict_parse_rejects_what_the_lenient_path_warns_about() {
        assert_eq!(parse_threads("4"), Ok(4));
        assert_eq!(parse_threads("100000"), Ok(64), "clamped, not rejected");
        assert!(parse_threads("0").is_err());
        assert!(parse_threads("-2").is_err());
        assert!(parse_threads("four").is_err());
        assert!(parse_threads("").is_err());
        // env_threads is Ok in this process whatever the CI leg pins
        // CQA_THREADS to — the matrix only uses valid values.
        assert!(env_threads().is_ok());
    }
}
