//! Offline shim for `serde_derive`: a hand-rolled `#[derive(Serialize)]`.
//!
//! Supports exactly what the workspace derives on — non-generic structs with
//! named fields (unit structs degenerate to `{}`) — and emits an impl of the
//! JSON-only `serde::Serialize` shim trait. No `syn`/`quote`: the struct
//! header and field names are recovered by a direct walk of the token stream.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim `serde::Serialize` for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut tokens = input.into_iter().peekable();

    // Skip attributes (`#[...]`) and the visibility qualifier.
    let mut name: Option<String> = None;
    let mut body: Option<proc_macro::Group> = None;
    let mut saw_struct = false;
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Consume the bracketed attribute body.
                tokens.next();
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                // Consume a possible `(crate)` restriction.
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => saw_struct = true,
            TokenTree::Ident(id) if saw_struct && name.is_none() => {
                name = Some(id.to_string());
            }
            TokenTree::Punct(p) if name.is_some() && p.as_char() == '<' => {
                panic!("shim #[derive(Serialize)] does not support generic types");
            }
            TokenTree::Group(g)
                if name.is_some() && g.delimiter() == Delimiter::Brace =>
            {
                body = Some(g);
                break;
            }
            TokenTree::Punct(p) if name.is_some() && p.as_char() == ';' => break,
            _ => {
                if !saw_struct {
                    panic!("shim #[derive(Serialize)] only supports structs");
                }
            }
        }
    }
    let name = name.expect("shim #[derive(Serialize)]: no struct name found");
    let fields = body.map(|g| named_fields(g.stream())).unwrap_or_default();

    let mut writes = String::new();
    for (i, field) in fields.iter().enumerate() {
        if i > 0 {
            writes.push_str("__out.push(',');\n");
        }
        writes.push_str(&format!(
            "::serde::write_json_str(__out, \"{field}\");\n\
             __out.push(':');\n\
             ::serde::Serialize::serialize_json(&self.{field}, __out);\n"
        ));
    }

    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize_json(&self, __out: &mut ::std::string::String) {{\n\
                 __out.push('{{');\n\
                 {writes}\
                 __out.push('}}');\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("shim #[derive(Serialize)]: generated impl parses")
}

/// Extracts the field names from the token stream of a `{ ... }` struct body.
fn named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Field prelude: attributes, then visibility.
        let mut field_name: Option<String> = None;
        while let Some(tt) = tokens.next() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '#' => {
                    tokens.next();
                }
                TokenTree::Ident(id) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                TokenTree::Ident(id) => {
                    field_name = Some(id.to_string());
                    break;
                }
                other => panic!(
                    "shim #[derive(Serialize)]: unexpected token {other} in struct body \
                     (tuple structs and enums are unsupported)"
                ),
            }
        }
        let Some(field_name) = field_name else { break };
        fields.push(field_name);

        // Skip `: Type` up to the next top-level comma.
        let mut depth = 0i32;
        for tt in tokens.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}
