//! Regex-derived string generation for `&str` strategies.
//!
//! Supports the subset of regex syntax the workspace's tests use, plus the
//! obvious neighbors: literal characters, `.`, character classes
//! (`[a-z0-9_]`, ranges and singletons, negation unsupported), groups with
//! alternation (`(ab|cd)`), escapes (`\d`, `\w`, `\s`, `\\` and escaped
//! metacharacters), and the quantifiers `?`, `*`, `+`, `{n}`, `{m,n}`
//! (unbounded repetition is capped at 8).

use crate::test_runner::TestRng;
use rand::Rng;

/// Cap for `*` / `+` / `{m,}` repetition counts.
const UNBOUNDED_CAP: usize = 8;

/// Generates a string matching `pattern`. Panics on unsupported syntax —
/// a test-authoring error, not a runtime condition.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let (node, consumed) = parse_alternation(&chars, 0);
    assert!(
        consumed == chars.len(),
        "regex strategy: trailing input at {consumed} in {pattern:?}"
    );
    let mut out = String::new();
    node.generate(rng, &mut out);
    out
}

enum Node {
    /// A sequence of pieces.
    Seq(Vec<Node>),
    /// One of several alternatives.
    Alt(Vec<Node>),
    /// A set of candidate characters.
    Class(Vec<char>),
    /// A repeated piece with an inclusive count range.
    Repeat(Box<Node>, usize, usize),
}

impl Node {
    fn generate(&self, rng: &mut TestRng, out: &mut String) {
        match self {
            Node::Seq(parts) => {
                for p in parts {
                    p.generate(rng, out);
                }
            }
            Node::Alt(options) => {
                options[rng.0.gen_range(0..options.len())].generate(rng, out)
            }
            Node::Class(chars) => out.push(chars[rng.0.gen_range(0..chars.len())]),
            Node::Repeat(inner, lo, hi) => {
                let n = rng.0.gen_range(*lo..=*hi);
                for _ in 0..n {
                    inner.generate(rng, out);
                }
            }
        }
    }
}

/// Parses alternatives separated by `|` until end-of-input or `)`.
fn parse_alternation(chars: &[char], mut i: usize) -> (Node, usize) {
    let mut options = Vec::new();
    loop {
        let (seq, next) = parse_sequence(chars, i);
        options.push(seq);
        i = next;
        if i < chars.len() && chars[i] == '|' {
            i += 1;
        } else {
            break;
        }
    }
    let node = if options.len() == 1 {
        options.pop().expect("one option")
    } else {
        Node::Alt(options)
    };
    (node, i)
}

/// Parses a concatenation of quantified pieces.
fn parse_sequence(chars: &[char], mut i: usize) -> (Node, usize) {
    let mut parts = Vec::new();
    while i < chars.len() && chars[i] != '|' && chars[i] != ')' {
        let (piece, next) = parse_piece(chars, i);
        i = next;
        let (piece, next) = parse_quantifier(chars, i, piece);
        i = next;
        parts.push(piece);
    }
    (Node::Seq(parts), i)
}

/// Parses a single unquantified piece.
fn parse_piece(chars: &[char], i: usize) -> (Node, usize) {
    match chars[i] {
        '[' => parse_class(chars, i + 1),
        '(' => {
            let (inner, next) = parse_alternation(chars, i + 1);
            assert!(
                next < chars.len() && chars[next] == ')',
                "regex strategy: unclosed group"
            );
            (inner, next + 1)
        }
        '.' => (Node::Class(printable_ascii()), i + 1),
        '\\' => {
            let (set, next) = parse_escape(chars, i + 1);
            (Node::Class(set), next)
        }
        c => {
            assert!(
                !"?*+{".contains(c),
                "regex strategy: dangling quantifier {c:?}"
            );
            (Node::Class(vec![c]), i + 1)
        }
    }
}

fn printable_ascii() -> Vec<char> {
    (0x20u8..0x7f).map(char::from).collect()
}

/// Parses the body of a `[...]` class; `i` points after the `[`.
fn parse_class(chars: &[char], mut i: usize) -> (Node, usize) {
    assert!(
        i < chars.len() && chars[i] != '^',
        "regex strategy: negated classes are unsupported"
    );
    let mut set = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        if chars[i] == '\\' {
            let (sub, next) = parse_escape(chars, i + 1);
            set.extend(sub);
            i = next;
        } else if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            assert!(lo <= hi, "regex strategy: inverted range {lo}-{hi}");
            set.extend((lo..=hi).filter(char::is_ascii));
            i += 3;
        } else {
            set.push(chars[i]);
            i += 1;
        }
    }
    assert!(i < chars.len(), "regex strategy: unclosed class");
    assert!(!set.is_empty(), "regex strategy: empty class");
    (Node::Class(set), i + 1)
}

/// Parses an escape; `i` points after the backslash.
fn parse_escape(chars: &[char], i: usize) -> (Vec<char>, usize) {
    assert!(i < chars.len(), "regex strategy: trailing backslash");
    let set = match chars[i] {
        'd' => ('0'..='9').collect(),
        'w' => ('a'..='z')
            .chain('A'..='Z')
            .chain('0'..='9')
            .chain(['_'])
            .collect(),
        's' => vec![' ', '\t', '\n'],
        'n' => vec!['\n'],
        't' => vec!['\t'],
        c if !c.is_alphanumeric() => vec![c],
        c => panic!("regex strategy: unsupported escape \\{c}"),
    };
    (set, i + 1)
}

/// Wraps `piece` in a repeat node if a quantifier follows.
fn parse_quantifier(chars: &[char], i: usize, piece: Node) -> (Node, usize) {
    if i >= chars.len() {
        return (piece, i);
    }
    match chars[i] {
        '?' => (Node::Repeat(Box::new(piece), 0, 1), i + 1),
        '*' => (Node::Repeat(Box::new(piece), 0, UNBOUNDED_CAP), i + 1),
        '+' => (Node::Repeat(Box::new(piece), 1, UNBOUNDED_CAP), i + 1),
        '{' => {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .expect("regex strategy: unclosed {} quantifier");
            let body: String = chars[i + 1..close].iter().collect();
            let (lo, hi) = match body.split_once(',') {
                None => {
                    let n = body.trim().parse().expect("regex strategy: bad {n}");
                    (n, n)
                }
                Some((lo, "")) => {
                    let lo = lo.trim().parse().expect("regex strategy: bad {m,}");
                    (lo, lo + UNBOUNDED_CAP)
                }
                Some((lo, hi)) => (
                    lo.trim().parse().expect("regex strategy: bad {m,n}"),
                    hi.trim().parse().expect("regex strategy: bad {m,n}"),
                ),
            };
            assert!(lo <= hi, "regex strategy: inverted {{m,n}}");
            (Node::Repeat(Box::new(piece), lo, hi), close + 1)
        }
        _ => (piece, i),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn gen_many(pattern: &str) -> Vec<String> {
        let mut rng = TestRng::from_seed(0xF00D);
        (0..200).map(|_| generate(pattern, &mut rng)).collect()
    }

    #[test]
    fn identifier_pattern() {
        for s in gen_many("[a-z][a-z0-9_]{0,12}") {
            assert!(!s.is_empty() && s.len() <= 13, "bad length: {s:?}");
            let mut cs = s.chars();
            assert!(cs.next().expect("nonempty").is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn alternation_and_literals() {
        for s in gen_many("(ab|cd)x?") {
            assert!(["ab", "cd", "abx", "cdx"].contains(&s.as_str()), "{s:?}");
        }
    }

    #[test]
    fn escapes_and_counts() {
        for s in gen_many(r"\d{3}") {
            assert_eq!(s.len(), 3);
            assert!(s.chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn plus_is_capped_but_nonempty() {
        for s in gen_many("z+") {
            assert!(!s.is_empty() && s.len() <= UNBOUNDED_CAP);
            assert!(s.chars().all(|c| c == 'z'));
        }
    }
}
