//! The deterministic test runner and failure-seed persistence.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs;
use std::path::{Path, PathBuf};

/// The RNG handed to strategies. Deterministic: a given seed always yields
/// the same value stream, so persisted failure seeds replay exactly.
pub struct TestRng(pub(crate) StdRng);

impl TestRng {
    /// Creates an RNG from a case seed.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng(StdRng::seed_from_u64(seed))
    }
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property was falsified.
    Fail(String),
    /// The case was rejected by `prop_assume!` and should be replaced.
    Reject(String),
}

impl TestCaseError {
    /// A falsification with a message.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection with a message.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

/// Where to persist seeds of failing cases.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileFailurePersistence {
    /// In `<dir-of-source-file>/<given-dir>/<source-stem>.txt`, the upstream
    /// layout (e.g. `tests/proptest-regressions/prop_model.txt`).
    WithSource(&'static str),
    /// Do not persist.
    Off,
}

/// Runner configuration (shim for `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    /// Overridable at run time via the `PROPTEST_CASES` env var.
    pub cases: u32,
    /// Maximum number of `prop_assume!` rejections across the whole run.
    pub max_global_rejects: u32,
    /// Failure-seed persistence; `None` disables it.
    pub failure_persistence: Option<FileFailurePersistence>,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig {
            cases,
            max_global_rejects: 1024,
            failure_persistence: Some(FileFailurePersistence::WithSource(
                "proptest-regressions",
            )),
        }
    }
}

impl ProptestConfig {
    /// A default configuration with the given case count.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// FNV-1a, used to derive a stable per-test base seed from the test name.
fn fnv1a(data: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in data.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Resolves the regression file for a test source.
///
/// `source_file` comes from `file!()`, which is *workspace-root*-relative,
/// while the test binary runs with the *package* directory as cwd. Anchoring
/// at `manifest_dir` (the test crate's `CARGO_MANIFEST_DIR`) and stripping
/// the package's own path prefix from the source path keeps the file next to
/// the source for root and nested packages alike.
fn regression_path(manifest_dir: &str, source_file: &str, dir: &str) -> PathBuf {
    let manifest = Path::new(manifest_dir);
    let source = Path::new(source_file);
    let mut rel = source;
    if source.is_absolute() {
        // e.g. --remap-path-prefix builds: trust the absolute path.
        return source
            .parent()
            .unwrap_or_else(|| Path::new("."))
            .join(dir)
            .join(Path::new(source.file_stem().unwrap_or_default()).with_extension("txt"));
    }
    // Longest suffix of manifest_dir that prefixes the source path is the
    // package's location inside the workspace (empty for the root package).
    let comps: Vec<_> = manifest.components().collect();
    for start in 0..comps.len() {
        let suffix: PathBuf = comps[start..].iter().collect();
        if let Ok(stripped) = source.strip_prefix(&suffix) {
            rel = stripped;
            break;
        }
    }
    let stem = rel.file_stem().unwrap_or_default();
    manifest
        .join(rel.parent().unwrap_or_else(|| Path::new(".")))
        .join(dir)
        .join(Path::new(stem).with_extension("txt"))
}

/// Loads persisted failure seeds for `test_name` from `path`.
fn load_seeds(path: &Path, test_name: &str) -> Vec<u64> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let mut fields = line.split_whitespace();
            if fields.next() != Some("xs") {
                return None;
            }
            let seed = u64::from_str_radix(fields.next()?, 16).ok()?;
            (fields.next() == Some(test_name)).then_some(seed)
        })
        .collect()
}

/// Appends a failure seed for `test_name` to `path`.
fn save_seed(path: &Path, test_name: &str, seed: u64) {
    if let Some(parent) = path.parent() {
        let _ = fs::create_dir_all(parent);
    }
    let mut text = fs::read_to_string(path).unwrap_or_else(|_| {
        "# Seeds for failure cases persisted by the proptest shim.\n\
         # Each line is `xs <seed-hex> <test-name>`; the runner replays these\n\
         # before generating new cases. Check this file into git.\n"
            .to_string()
    });
    let line = format!("xs {seed:016x} {test_name}");
    if !text.lines().any(|l| l == line) {
        text.push_str(&line);
        text.push('\n');
        let _ = fs::write(path, text);
    }
}

/// Runs a property: replays persisted failure seeds, then `config.cases`
/// freshly generated cases. `case` generates its inputs from the given RNG
/// and returns `Err(TestCaseError::Fail)` to falsify the property.
///
/// `manifest_dir` must be the **test crate's** `CARGO_MANIFEST_DIR` (the
/// `proptest!` macro passes it) so regression files resolve correctly for
/// packages nested inside a workspace.
///
/// Panics (failing the enclosing `#[test]`) on the first falsified case,
/// after persisting its seed.
pub fn run<F>(
    config: ProptestConfig,
    manifest_dir: &str,
    source_file: &str,
    test_name: &str,
    mut case: F,
) where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let regressions = match config.failure_persistence {
        Some(FileFailurePersistence::WithSource(dir)) => {
            Some(regression_path(manifest_dir, source_file, dir))
        }
        Some(FileFailurePersistence::Off) | None => None,
    };

    // Phase 1: replay persisted failures.
    if let Some(path) = &regressions {
        for seed in load_seeds(path, test_name) {
            let mut rng = TestRng::from_seed(seed);
            match case(&mut rng) {
                Ok(()) | Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(msg)) => panic!(
                    "[{test_name}] persisted regression still fails \
                     (seed 0x{seed:016x} from {}): {msg}",
                    path.display()
                ),
            }
        }
    }

    // Phase 2: fresh cases, deterministically derived from the test name.
    let base = fnv1a(test_name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut case_index = 0u64;
    while passed < config.cases {
        let seed = base ^ case_index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        case_index += 1;
        let mut rng = TestRng::from_seed(seed);
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(why)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "[{test_name}] too many prop_assume! rejections \
                         ({rejected}; last: {why})"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                if let Some(path) = &regressions {
                    save_seed(path, test_name, seed);
                }
                let saved = regressions
                    .as_ref()
                    .map(|p| format!("; seed persisted to {}", p.display()))
                    .unwrap_or_default();
                panic!(
                    "[{test_name}] falsified after {passed} passing case(s) \
                     (seed 0x{seed:016x}{saved}): {msg}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0;
        run(
            ProptestConfig {
                cases: 50,
                failure_persistence: None,
                ..ProptestConfig::default()
            },
            env!("CARGO_MANIFEST_DIR"),
            file!(),
            "passing_property_runs_all_cases",
            |rng| {
                count += 1;
                let v = (0..10usize).new_value(rng);
                if v < 10 {
                    Ok(())
                } else {
                    Err(TestCaseError::fail("out of range"))
                }
            },
        );
        assert_eq!(count, 50);
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failing_property_panics() {
        run(
            ProptestConfig {
                cases: 50,
                failure_persistence: None,
                ..ProptestConfig::default()
            },
            env!("CARGO_MANIFEST_DIR"),
            file!(),
            "failing_property_panics",
            |rng| {
                let v = (0..10usize).new_value(rng);
                if v < 5 {
                    Ok(())
                } else {
                    Err(TestCaseError::fail(format!("{v} too big")))
                }
            },
        );
    }

    #[test]
    fn rejects_are_replaced() {
        let mut passed = 0;
        run(
            ProptestConfig {
                cases: 20,
                failure_persistence: None,
                ..ProptestConfig::default()
            },
            env!("CARGO_MANIFEST_DIR"),
            file!(),
            "rejects_are_replaced",
            |rng| {
                let v = (0..10usize).new_value(rng);
                if v % 2 == 0 {
                    passed += 1;
                    Ok(())
                } else {
                    Err(TestCaseError::reject("odd"))
                }
            },
        );
        assert_eq!(passed, 20);
    }

    #[test]
    fn regression_paths_for_root_and_nested_packages() {
        // Root package: manifest dir has no overlap with the source path.
        assert_eq!(
            regression_path("/ws", "tests/prop_model.rs", "proptest-regressions"),
            Path::new("/ws/tests/proptest-regressions/prop_model.txt")
        );
        // Nested package: file!() repeats the package's workspace-relative
        // path, which must not be doubled.
        assert_eq!(
            regression_path(
                "/ws/crates/model",
                "crates/model/tests/parser_roundtrip.rs",
                "proptest-regressions"
            ),
            Path::new("/ws/crates/model/tests/proptest-regressions/parser_roundtrip.txt")
        );
    }

    #[test]
    fn seed_file_round_trip() {
        let dir = std::env::temp_dir().join("cqa-proptest-shim-test");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("regress.txt");
        save_seed(&path, "t1", 0xDEAD);
        save_seed(&path, "t2", 0xBEEF);
        save_seed(&path, "t1", 0xDEAD); // dedup
        assert_eq!(load_seeds(&path, "t1"), vec![0xDEAD]);
        assert_eq!(load_seeds(&path, "t2"), vec![0xBEEF]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn deterministic_across_runs() {
        let mut first = Vec::new();
        let mut second = Vec::new();
        for sink in [&mut first, &mut second] {
            run(
                ProptestConfig {
                    cases: 10,
                    failure_persistence: None,
                    ..ProptestConfig::default()
                },
                env!("CARGO_MANIFEST_DIR"),
                file!(),
                "deterministic_across_runs",
                |rng| {
                    sink.push((0..1000usize).new_value(rng));
                    Ok(())
                },
            );
        }
        assert_eq!(first, second);
    }
}
