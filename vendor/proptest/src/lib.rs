//! Offline shim for the subset of `proptest` 1.x this workspace uses.
//!
//! Implements the [`strategy::Strategy`] combinator surface (`prop_map`,
//! `prop_recursive`, `boxed`, ranges, tuples, regex-derived strings,
//! [`collection::vec`], [`option::of`]), the [`proptest!`], [`prop_compose!`],
//! [`prop_oneof!`] and `prop_assert*` macros, and a deterministic
//! [`test_runner`] with failure-seed persistence compatible in spirit with
//! upstream's `proptest-regressions/` files.
//!
//! Deliberate divergences from upstream (documented in `vendor/README.md`):
//! no shrinking (the persisted seed replays the exact failing case instead),
//! and the RNG stream is the workspace's deterministic xoshiro, so a given
//! (test, case index) pair always sees the same inputs across runs and
//! machines.

#![forbid(unsafe_code)]

pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{FileFailurePersistence, ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof, proptest};
}

/// Defines property tests (shim for `proptest::proptest!`).
///
/// Supports the upstream form used in this workspace: an optional leading
/// `#![proptest_config(expr)]`, then one or more `#[test] fn name(var in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            config = (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default());
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (config = ($config:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($var:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                $crate::test_runner::run(
                    __config,
                    env!("CARGO_MANIFEST_DIR"),
                    file!(),
                    stringify!($name),
                    |__rng| {
                    $(let $var = $crate::strategy::Strategy::new_value(&($strat), __rng);)+
                    #[allow(unreachable_code)]
                    {
                        $body
                        ::std::result::Result::Ok(())
                    }
                });
            }
        )*
    };
}

/// Composes strategies into a named generator function (shim for
/// `proptest::prop_compose!`).
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($arg:ident: $argty:ty),* $(,)?)
     ($($var:ident in $strat:expr),+ $(,)?) -> $out:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($arg: $argty),*)
            -> impl $crate::strategy::Strategy<Value = $out>
        {
            $crate::strategy::Strategy::prop_map(
                ($($strat,)+),
                move |($($var,)+)| $body,
            )
        }
    };
}

/// Picks uniformly between strategies of a common value type (shim for
/// `proptest::prop_oneof!`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a property test, failing the case (not the
/// whole process) so the runner can report the persisted seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`: {}", left, right, format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`: {}", left, right, format!($($fmt)*)
        );
    }};
}

/// Rejects the current case unless the precondition holds; the runner
/// generates a replacement case instead of failing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(stringify!($cond)),
            );
        }
    };
}
