//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;
use std::rc::Rc;

/// A generator of random values of type [`Strategy::Value`].
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// maps an RNG state directly to a value, and the runner persists the RNG
/// seed of a failing case instead of shrinking it.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Keeps only values satisfying `f`, rejecting after a bounded number of
    /// attempts (the runner treats exhaustion as a panic, like upstream's
    /// "too many local rejects").
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence,
            f,
        }
    }

    /// Erases the strategy's type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Builds recursive values: `recurse` receives the strategy for the
    /// previous depth level and returns the strategy for the next one.
    /// `depth` bounds the nesting; the upstream size/branch hints are
    /// accepted for API compatibility but unused (there is no shrinking
    /// budget to spend them on).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut current = self.boxed();
        for _ in 0..depth {
            current = recurse(current).boxed();
        }
        current
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
}

/// Always produces a clone of a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// The [`Strategy::prop_filter`] combinator.
#[derive(Clone)]
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter: too many rejects ({})", self.whence);
    }
}

/// Uniform (or weighted) choice between strategies of one value type, the
/// engine behind [`crate::prop_oneof!`].
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Uniform choice.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        Union::new_weighted(options.into_iter().map(|s| (1, s)).collect())
    }

    /// Weighted choice.
    pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof: no options");
        let total_weight = options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof: zero total weight");
        Union {
            options,
            total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.0.gen_range(0..self.total_weight);
        for (w, s) in &self.options {
            let w = u64::from(*w);
            if pick < w {
                return s.new_value(rng);
            }
            pick -= w;
        }
        unreachable!("prop_oneof: weight bookkeeping")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, f64);

// Signed ranges, offset through the unsigned sampler.
macro_rules! impl_signed_range_strategy {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                self.start.wrapping_add(rng.0.gen_range(0..span) as $t)
            }
        }
    )*};
}

impl_signed_range_strategy!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl Strategy for Range<char> {
    type Value = char;

    fn new_value(&self, rng: &mut TestRng) -> char {
        assert!(self.start < self.end, "strategy range is empty");
        loop {
            let c = rng.0.gen_range(self.start as u32..self.end as u32);
            if let Some(c) = char::from_u32(c) {
                return c;
            }
        }
    }
}

/// A string literal is a strategy for strings matching it as a regex
/// (see [`crate::string`] for the supported subset).
impl Strategy for &str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

impl Strategy for bool {
    type Value = bool;

    /// `bool` as a strategy ignores its own value and flips a fair coin,
    /// matching upstream's `any::<bool>()` through the blanket `Arbitrary`.
    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.0.gen_bool(0.5)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_maps() {
        let mut rng = TestRng::from_seed(1);
        let s = (0..10usize).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    fn union_hits_all_options() {
        let mut rng = TestRng::from_seed(2);
        let s = Union::new(vec![(0..1usize).boxed(), (10..11usize).boxed()]);
        let mut seen = [false; 2];
        for _ in 0..100 {
            match s.new_value(&mut rng) {
                0 => seen[0] = true,
                10 => seen[1] = true,
                other => panic!("unexpected {other}"),
            }
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn recursive_bounds_depth() {
        #[derive(Debug)]
        enum Tree {
            Leaf(#[allow(dead_code)] u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (0..4u8).prop_map(Tree::Leaf);
        let tree = leaf.prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::from_seed(3);
        for _ in 0..50 {
            assert!(depth(&tree.new_value(&mut rng)) <= 3);
        }
    }

    #[test]
    fn tuples_and_just() {
        let mut rng = TestRng::from_seed(4);
        let s = (Just(7u8), 0..3usize);
        let (a, b) = s.new_value(&mut rng);
        assert_eq!(a, 7);
        assert!(b < 3);
    }

    #[test]
    fn filter_respects_predicate() {
        let mut rng = TestRng::from_seed(5);
        let s = (0..100u8).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..50 {
            assert_eq!(s.new_value(&mut rng) % 2, 0);
        }
    }
}
