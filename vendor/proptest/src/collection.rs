//! Collection strategies (shim for `proptest::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// An inclusive-exclusive size specification for generated collections.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> SizeRange {
        SizeRange {
            lo: exact,
            hi: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "collection size range is empty");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "collection size range is empty");
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// A strategy for `Vec<T>` with element strategy `S`.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.0.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Generates `Vec`s of `element` values with a length drawn from `size`
/// (a `usize` for an exact length, or a range).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_spec() {
        let mut rng = TestRng::from_seed(11);
        let ranged = vec(0..5u8, 1..4);
        let exact = vec(0..5u8, 3usize);
        for _ in 0..100 {
            let v = ranged.new_value(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
            assert_eq!(exact.new_value(&mut rng).len(), 3);
        }
    }
}
