//! Option strategies (shim for `proptest::option`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// A strategy for `Option<T>` producing `Some` half the time.
#[derive(Clone, Debug)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
        rng.0.gen_bool(0.5).then(|| self.inner.new_value(rng))
    }
}

/// Generates `Option` values over `inner` (`Some` with probability 1/2).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_variants_occur() {
        let mut rng = TestRng::from_seed(9);
        let s = of(0..3usize);
        let (mut some, mut none) = (0, 0);
        for _ in 0..200 {
            match s.new_value(&mut rng) {
                Some(v) => {
                    assert!(v < 3);
                    some += 1;
                }
                None => none += 1,
            }
        }
        assert!(some > 50 && none > 50, "skewed: {some} Some / {none} None");
    }
}
