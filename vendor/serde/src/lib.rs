//! Offline shim for the subset of `serde` this workspace uses.
//!
//! Only serialization, and only to JSON: [`Serialize`] writes a compact JSON
//! fragment into a `String`; the companion `serde_json` shim wraps and
//! pretty-prints it. The derive macro (from the sibling `serde_derive` shim)
//! supports plain non-generic structs with named fields, which is all the
//! workspace derives on.

#![forbid(unsafe_code)]

pub use serde_derive::Serialize;

/// A type that can be serialized to JSON.
pub trait Serialize {
    /// Appends `self` as a compact JSON fragment to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// Appends `s` as a JSON string literal (with escaping) to `out`.
pub fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_json_str(out, self);
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_json_str(out, self);
    }
}

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

macro_rules! impl_serialize_display {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}

impl_serialize_display!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String) {
        if self.is_finite() {
            out.push_str(&self.to_string());
        } else {
            out.push_str("null");
        }
    }
}

impl Serialize for f32 {
    fn serialize_json(&self, out: &mut String) {
        f64::from(*self).serialize_json(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            item.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn json<T: Serialize>(v: T) -> String {
        let mut out = String::new();
        v.serialize_json(&mut out);
        out
    }

    #[test]
    fn primitives() {
        assert_eq!(json("a\"b".to_string()), r#""a\"b""#);
        assert_eq!(json(true), "true");
        assert_eq!(json(42u64), "42");
        assert_eq!(json(None::<u8>), "null");
        assert_eq!(json(vec![1u8, 2]), "[1,2]");
    }

    #[test]
    fn control_chars_escaped() {
        assert_eq!(json("a\nb\u{1}".to_string()), "\"a\\nb\\u0001\"");
    }
}
