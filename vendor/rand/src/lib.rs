//! Offline shim for the subset of `rand` 0.8 this workspace uses.
//!
//! Provides [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] methods `gen_range` / `gen_bool` / `gen`. The generator is
//! xoshiro256** seeded through splitmix64 — deterministic for a given seed,
//! which is all the workspace relies on (the stream does not match upstream
//! `StdRng`, which is explicitly *not* guaranteed stable across rand
//! versions either).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A random number generator seedable from integers.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a value from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a `u64` uniformly from `[0, bound)` via Lemire-style rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is fair.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience methods on random number generators.
pub trait Rng: RngCore {
    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0,1]");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// Returns a uniformly random `u64`.
    fn gen(&mut self) -> u64 {
        self.next_u64()
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256** generator (shim for `rand::rngs::StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=5usize);
            assert!(w <= 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn all_residues_reachable() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
