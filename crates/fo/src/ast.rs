//! The first-order formula AST.
//!
//! Formulas are built over the atoms of `cqa-model`; equality atoms compare
//! terms. Smart constructors perform light on-the-fly normalization (empty
//! quantifier lists vanish, `And`/`Or` of a singleton collapse) so that
//! generated rewritings stay readable.

use cqa_model::{Atom, Cst, Term, Var};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A first-order formula over relational atoms and term equality.
#[derive(Clone, PartialEq, Eq)]
pub enum Formula {
    /// Truth.
    True,
    /// Falsity.
    False,
    /// A relational atom `R(t₁, …, tₙ)`.
    Atom(Atom),
    /// Term equality `t₁ = t₂`.
    Eq(Term, Term),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction (n-ary).
    And(Vec<Formula>),
    /// Disjunction (n-ary).
    Or(Vec<Formula>),
    /// Implication.
    Implies(Box<Formula>, Box<Formula>),
    /// Existential quantification over a block of variables.
    Exists(Vec<Var>, Box<Formula>),
    /// Universal quantification over a block of variables.
    Forall(Vec<Var>, Box<Formula>),
}

impl Formula {
    /// Smart conjunction: drops `True`, short-circuits `False`, flattens.
    pub fn and(parts: impl IntoIterator<Item = Formula>) -> Formula {
        let mut out = Vec::new();
        for p in parts {
            match p {
                Formula::True => {}
                Formula::False => return Formula::False,
                Formula::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::True,
            1 => out.pop().expect("len checked"),
            _ => Formula::And(out),
        }
    }

    /// Smart disjunction: drops `False`, short-circuits `True`, flattens.
    pub fn or(parts: impl IntoIterator<Item = Formula>) -> Formula {
        let mut out = Vec::new();
        for p in parts {
            match p {
                Formula::False => {}
                Formula::True => return Formula::True,
                Formula::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::False,
            1 => out.pop().expect("len checked"),
            _ => Formula::Or(out),
        }
    }

    /// Smart negation: collapses double negation and constants.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Formula {
        match f {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(inner) => *inner,
            other => Formula::Not(Box::new(other)),
        }
    }

    /// Smart implication.
    pub fn implies(lhs: Formula, rhs: Formula) -> Formula {
        match (lhs, rhs) {
            (Formula::True, r) => r,
            (Formula::False, _) => Formula::True,
            (_, Formula::True) => Formula::True,
            (l, Formula::False) => Formula::not(l),
            (l, r) => Formula::Implies(Box::new(l), Box::new(r)),
        }
    }

    /// Smart existential quantifier: drops variables that do not occur free
    /// in the body, merges nested `Exists`.
    pub fn exists(vars: impl IntoIterator<Item = Var>, body: Formula) -> Formula {
        let free = body.free_vars();
        let mut vs: Vec<Var> = vars.into_iter().filter(|v| free.contains(v)).collect();
        vs.dedup();
        if vs.is_empty() {
            return body;
        }
        match body {
            Formula::Exists(inner_vars, inner) => {
                let mut all = vs;
                all.extend(inner_vars);
                Formula::Exists(all, inner)
            }
            other => Formula::Exists(vs, Box::new(other)),
        }
    }

    /// Smart universal quantifier: drops variables that do not occur free in
    /// the body, merges nested `Forall`.
    pub fn forall(vars: impl IntoIterator<Item = Var>, body: Formula) -> Formula {
        let free = body.free_vars();
        let mut vs: Vec<Var> = vars.into_iter().filter(|v| free.contains(v)).collect();
        vs.dedup();
        if vs.is_empty() {
            return body;
        }
        match body {
            Formula::Forall(inner_vars, inner) => {
                let mut all = vs;
                all.extend(inner_vars);
                Formula::Forall(all, inner)
            }
            other => Formula::Forall(vs, Box::new(other)),
        }
    }

    /// Equality, collapsing the reflexive case.
    pub fn eq(a: Term, b: Term) -> Formula {
        if a == b {
            Formula::True
        } else {
            Formula::Eq(a, b)
        }
    }

    /// The free variables of the formula.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        fn go(f: &Formula, bound: &mut Vec<Var>, out: &mut BTreeSet<Var>) {
            match f {
                Formula::True | Formula::False => {}
                Formula::Atom(a) => {
                    for v in a.vars() {
                        if !bound.contains(&v) {
                            out.insert(v);
                        }
                    }
                }
                Formula::Eq(s, t) => {
                    for term in [s, t] {
                        if let Term::Var(v) = term {
                            if !bound.contains(v) {
                                out.insert(*v);
                            }
                        }
                    }
                }
                Formula::Not(g) => go(g, bound, out),
                Formula::And(gs) | Formula::Or(gs) => {
                    for g in gs {
                        go(g, bound, out);
                    }
                }
                Formula::Implies(l, r) => {
                    go(l, bound, out);
                    go(r, bound, out);
                }
                Formula::Exists(vs, g) | Formula::Forall(vs, g) => {
                    let n = bound.len();
                    bound.extend(vs.iter().copied());
                    go(g, bound, out);
                    bound.truncate(n);
                }
            }
        }
        let mut out = BTreeSet::new();
        go(self, &mut Vec::new(), &mut out);
        out
    }

    /// Whether the formula is a sentence (no free variables).
    pub fn is_closed(&self) -> bool {
        self.free_vars().is_empty()
    }

    /// All constants occurring in the formula.
    pub fn consts(&self) -> BTreeSet<Cst> {
        let mut out = BTreeSet::new();
        self.visit(&mut |f| match f {
            Formula::Atom(a) => out.extend(a.consts()),
            Formula::Eq(s, t) => {
                for term in [s, t] {
                    if let Term::Cst(c) = term {
                        out.insert(*c);
                    }
                }
            }
            _ => {}
        });
        out
    }

    /// All relation names occurring in the formula.
    pub fn relations(&self) -> BTreeSet<cqa_model::RelName> {
        let mut out = BTreeSet::new();
        self.visit(&mut |f| {
            if let Formula::Atom(a) = f {
                out.insert(a.rel);
            }
        });
        out
    }

    /// Visits every subformula, pre-order.
    pub fn visit(&self, f: &mut impl FnMut(&Formula)) {
        f(self);
        match self {
            Formula::True | Formula::False | Formula::Atom(_) | Formula::Eq(_, _) => {}
            Formula::Not(g) => g.visit(f),
            Formula::And(gs) | Formula::Or(gs) => {
                for g in gs {
                    g.visit(f);
                }
            }
            Formula::Implies(l, r) => {
                l.visit(f);
                r.visit(f);
            }
            Formula::Exists(_, g) | Formula::Forall(_, g) => g.visit(f),
        }
    }

    /// Substitutes free occurrences of variables by terms.
    ///
    /// The construction code in this workspace always substitutes either
    /// constants or globally fresh variables, so variable capture cannot
    /// occur; a debug assertion guards against accidental capture.
    pub fn substitute(&self, map: &BTreeMap<Var, Term>) -> Formula {
        fn go(f: &Formula, map: &BTreeMap<Var, Term>) -> Formula {
            match f {
                Formula::True => Formula::True,
                Formula::False => Formula::False,
                Formula::Atom(a) => Formula::Atom(a.substitute(map)),
                Formula::Eq(s, t) => {
                    let sub = |term: &Term| match term {
                        Term::Var(v) => map.get(v).copied().unwrap_or(*term),
                        Term::Cst(_) => *term,
                    };
                    Formula::eq(sub(s), sub(t))
                }
                Formula::Not(g) => Formula::not(go(g, map)),
                Formula::And(gs) => Formula::and(gs.iter().map(|g| go(g, map))),
                Formula::Or(gs) => Formula::or(gs.iter().map(|g| go(g, map))),
                Formula::Implies(l, r) => Formula::implies(go(l, map), go(r, map)),
                Formula::Exists(vs, g) | Formula::Forall(vs, g) => {
                    debug_assert!(
                        map.values()
                            .all(|t| t.as_var().map(|v| !vs.contains(&v)).unwrap_or(true)),
                        "substitution would be captured by a quantifier"
                    );
                    let mut inner_map = map.clone();
                    for v in vs {
                        inner_map.remove(v);
                    }
                    let body = go(g, &inner_map);
                    match f {
                        Formula::Exists(..) => Formula::exists(vs.iter().copied(), body),
                        _ => Formula::forall(vs.iter().copied(), body),
                    }
                }
            }
        }
        go(self, map)
    }

    /// Replaces *parameter constants* (frozen variables, see
    /// [`Cst::as_param`]) back by their variables. Used when emitting
    /// rewriting formulas built over frozen queries.
    pub fn unfreeze(&self) -> Formula {
        fn unfreeze_term(t: Term) -> Term {
            match t {
                Term::Cst(c) => match c.as_param() {
                    Some(v) => Term::Var(v),
                    None => t,
                },
                Term::Var(_) => t,
            }
        }
        match self {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Atom(a) => Formula::Atom(Atom::new(
                a.rel,
                a.terms.iter().map(|t| unfreeze_term(*t)).collect(),
            )),
            Formula::Eq(s, t) => Formula::eq(unfreeze_term(*s), unfreeze_term(*t)),
            Formula::Not(g) => Formula::not(g.unfreeze()),
            Formula::And(gs) => Formula::and(gs.iter().map(|g| g.unfreeze())),
            Formula::Or(gs) => Formula::or(gs.iter().map(|g| g.unfreeze())),
            Formula::Implies(l, r) => Formula::implies(l.unfreeze(), r.unfreeze()),
            Formula::Exists(vs, g) => Formula::exists(vs.iter().copied(), g.unfreeze()),
            Formula::Forall(vs, g) => Formula::forall(vs.iter().copied(), g.unfreeze()),
        }
    }

    /// Renders with ASCII connectives (`exists`, `forall`, `&`, `|`, `~`).
    pub fn ascii(&self) -> String {
        let mut s = String::new();
        self.render(&mut s, false).expect("string write");
        s
    }

    fn render(&self, out: &mut impl fmt::Write, unicode: bool) -> fmt::Result {
        let (ex, fa, and, or, not, imp) = if unicode {
            ("∃", "∀", " ∧ ", " ∨ ", "¬", " → ")
        } else {
            ("exists ", "forall ", " & ", " | ", "~", " -> ")
        };
        match self {
            Formula::True => write!(out, "true"),
            Formula::False => write!(out, "false"),
            Formula::Atom(a) => write!(out, "{a}"),
            Formula::Eq(s, t) => write!(out, "{s} = {t}"),
            Formula::Not(g) => {
                write!(out, "{not}")?;
                g.render_child(out, unicode)
            }
            Formula::And(gs) => {
                for (i, g) in gs.iter().enumerate() {
                    if i > 0 {
                        write!(out, "{and}")?;
                    }
                    g.render_child(out, unicode)?;
                }
                Ok(())
            }
            Formula::Or(gs) => {
                for (i, g) in gs.iter().enumerate() {
                    if i > 0 {
                        write!(out, "{or}")?;
                    }
                    g.render_child(out, unicode)?;
                }
                Ok(())
            }
            Formula::Implies(l, r) => {
                l.render_child(out, unicode)?;
                write!(out, "{imp}")?;
                r.render_child(out, unicode)
            }
            Formula::Exists(vs, g) | Formula::Forall(vs, g) => {
                let q = if matches!(self, Formula::Exists(..)) { ex } else { fa };
                write!(out, "{q}")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(out, " ")?;
                        if !unicode {
                            // keep `exists x y` readable
                        }
                    }
                    write!(out, "{v}")?;
                }
                write!(out, " ")?;
                g.render_child(out, unicode)
            }
        }
    }

    fn render_child(&self, out: &mut impl fmt::Write, unicode: bool) -> fmt::Result {
        fn is_atomic(f: &Formula) -> bool {
            matches!(
                f,
                Formula::True | Formula::False | Formula::Atom(_) | Formula::Eq(_, _)
            )
        }
        let atomic = is_atomic(self)
            || matches!(self, Formula::Not(inner) if is_atomic(inner));
        if atomic {
            self.render(out, unicode)
        } else {
            write!(out, "(")?;
            self.render(out, unicode)?;
            write!(out, ")")
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.render(&mut s, true)?;
        write!(f, "{s}")
    }
}

impl fmt::Debug for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_model::RelName;

    fn atom(rel: &str, terms: Vec<Term>) -> Formula {
        Formula::Atom(Atom::new(RelName::new(rel), terms))
    }

    #[test]
    fn smart_and_or() {
        assert_eq!(Formula::and([]), Formula::True);
        assert_eq!(Formula::or([]), Formula::False);
        assert_eq!(
            Formula::and([Formula::True, Formula::False]),
            Formula::False
        );
        assert_eq!(Formula::or([Formula::False, Formula::True]), Formula::True);
        let a = atom("R", vec![Term::var("x")]);
        assert_eq!(Formula::and([Formula::True, a.clone()]), a);
    }

    #[test]
    fn smart_not_and_implies() {
        let a = atom("R", vec![Term::var("x")]);
        assert_eq!(Formula::not(Formula::not(a.clone())), a);
        assert_eq!(Formula::implies(Formula::True, a.clone()), a);
        assert_eq!(Formula::implies(a.clone(), Formula::True), Formula::True);
        assert_eq!(
            Formula::implies(a.clone(), Formula::False),
            Formula::not(a)
        );
    }

    #[test]
    fn quantifiers_drop_unused_vars() {
        let a = atom("R", vec![Term::var("x")]);
        let f = Formula::exists([Var::new("x"), Var::new("zzz")], a.clone());
        match &f {
            Formula::Exists(vs, _) => assert_eq!(vs, &vec![Var::new("x")]),
            _ => panic!("expected Exists"),
        }
        assert_eq!(Formula::forall([Var::new("zzz")], a.clone()), a);
    }

    #[test]
    fn nested_quantifiers_merge() {
        let a = atom("R", vec![Term::var("x"), Term::var("y")]);
        let f = Formula::exists([Var::new("x")], Formula::exists([Var::new("y")], a));
        match &f {
            Formula::Exists(vs, _) => assert_eq!(vs.len(), 2),
            _ => panic!("expected merged Exists"),
        }
    }

    #[test]
    fn free_vars_respect_binders() {
        let a = atom("R", vec![Term::var("x"), Term::var("y")]);
        let f = Formula::exists([Var::new("x")], a);
        assert_eq!(f.free_vars(), [Var::new("y")].into_iter().collect());
        assert!(!f.is_closed());
        let g = Formula::forall([Var::new("y")], f);
        assert!(g.is_closed());
    }

    #[test]
    fn substitution() {
        let a = atom("R", vec![Term::var("x"), Term::var("y")]);
        let f = Formula::exists([Var::new("y")], a);
        let mut m = BTreeMap::new();
        m.insert(Var::new("x"), Term::cst("c"));
        // y is bound; substituting y must not touch it.
        m.insert(Var::new("y"), Term::cst("d"));
        let g = f.substitute(&m);
        assert_eq!(g.free_vars().len(), 0);
        assert!(g.consts().contains(&Cst::new("c")));
        assert!(!g.consts().contains(&Cst::new("d")));
    }

    #[test]
    fn unfreeze_restores_params() {
        let p = Cst::param(Var::new("x"));
        let f = atom("R", vec![Term::Cst(p)]);
        let g = f.unfreeze();
        assert_eq!(g.free_vars(), [Var::new("x")].into_iter().collect());
    }

    #[test]
    fn display_unicode_and_ascii() {
        let a = atom("R", vec![Term::var("x")]);
        let f = Formula::exists(
            [Var::new("x")],
            Formula::and([a.clone(), Formula::not(a)]),
        );
        assert_eq!(f.to_string(), "∃x (R(x) ∧ ¬R(x))");
        assert_eq!(f.ascii(), "exists x (R(x) & ~R(x))");
    }

    #[test]
    fn eq_collapses_reflexivity() {
        assert_eq!(Formula::eq(Term::var("x"), Term::var("x")), Formula::True);
        assert!(matches!(
            Formula::eq(Term::var("x"), Term::var("y")),
            Formula::Eq(_, _)
        ));
    }

    #[test]
    fn relations_and_consts_collection() {
        let f = Formula::and([
            atom("R", vec![Term::cst("a")]),
            Formula::not(atom("S", vec![Term::var("x")])),
        ]);
        assert_eq!(f.relations().len(), 2);
        assert_eq!(f.consts(), [Cst::new("a")].into_iter().collect());
    }
}
