//! Rendering closed formulas to SQL.
//!
//! Consistent first-order rewritings are exactly the queries a production
//! system would push into a relational engine (cf. the CQA prototype systems
//! surveyed in the paper's §2: ConQuer and successors). The translation below
//! follows the classical relational-calculus-to-SQL scheme under
//! active-domain semantics:
//!
//! * a view `adom(v)` collects every constant of the database;
//! * `∃x φ` becomes `EXISTS (SELECT 1 FROM adom dx WHERE φ′)`;
//! * `∀x φ` becomes `NOT EXISTS (SELECT 1 FROM adom dx WHERE NOT φ′)`;
//! * an atom `R(t₁, …, tₙ)` becomes
//!   `EXISTS (SELECT 1 FROM R WHERE a1 = t₁ AND … AND an = tₙ)`.
//!
//! Guarded quantifiers produced by the rewriting pipeline could be translated
//! to joins directly; the uniform scheme keeps the translation simple and
//! obviously correct, and is what the tests check.
//!
//! Only **closed** formulas have a database-independent SQL reading: a free
//! variable has no quantifier to introduce its `adom` alias, so rendering
//! one is a caller error reported as [`SqlError::UnboundVariable`] (it used
//! to panic, which took down callers feeding user-supplied formulas —
//! `cqa-emit` routes every artifact through this translation and must get
//! an error value instead).

use crate::ast::Formula;
use cqa_model::{Schema, Term, Var};
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write;

/// Why a formula could not be rendered as SQL.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SqlError {
    /// The formula is open: this variable occurs free, so no enclosing
    /// quantifier ever bound a SQL alias for it.
    UnboundVariable(Var),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::UnboundVariable(v) => write!(
                f,
                "unbound variable {v} in SQL rendering (the formula is not closed)"
            ),
        }
    }
}

impl std::error::Error for SqlError {}

/// Renders a closed formula as a SQL boolean expression, together with the
/// DDL for the active-domain view. Returns `(ddl, where_expression)`, or
/// [`SqlError::UnboundVariable`] if `f` is open.
pub fn to_sql(schema: &Schema, f: &Formula) -> Result<(String, String), SqlError> {
    let mut ddl = String::new();
    writeln!(ddl, "-- Active domain: one row per constant in the database.").expect("write");
    write!(ddl, "CREATE VIEW adom(v) AS").expect("write");
    let mut first = true;
    for (rel, sig) in schema.relations() {
        for i in 1..=sig.arity {
            if !first {
                write!(ddl, "\n  UNION").expect("write");
            }
            write!(ddl, "\n  SELECT a{i} FROM {rel}").expect("write");
            first = false;
        }
    }
    writeln!(ddl, ";").expect("write");

    let mut ctx = SqlCtx {
        names: BTreeMap::new(),
        counter: 0,
    };
    let expr = ctx.render(f)?;
    Ok((ddl, expr))
}

struct SqlCtx {
    names: BTreeMap<Var, String>,
    counter: usize,
}

impl SqlCtx {
    fn term(&self, t: &Term) -> Result<String, SqlError> {
        match t {
            Term::Cst(c) => Ok(format!("'{}'", c.name().replace('\'', "''"))),
            Term::Var(v) => self
                .names
                .get(v)
                .cloned()
                .ok_or(SqlError::UnboundVariable(*v)),
        }
    }

    fn render(&mut self, f: &Formula) -> Result<String, SqlError> {
        Ok(match f {
            Formula::True => "(1=1)".to_string(),
            Formula::False => "(1=0)".to_string(),
            Formula::Eq(s, t) => format!("({} = {})", self.term(s)?, self.term(t)?),
            Formula::Atom(a) => {
                let conds: Vec<String> = a
                    .terms
                    .iter()
                    .enumerate()
                    .map(|(i, t)| Ok(format!("a{} = {}", i + 1, self.term(t)?)))
                    .collect::<Result<_, SqlError>>()?;
                format!(
                    "EXISTS (SELECT 1 FROM {} WHERE {})",
                    a.rel,
                    conds.join(" AND ")
                )
            }
            Formula::Not(g) => format!("NOT {}", self.render(g)?),
            Formula::And(gs) => {
                let parts: Vec<String> =
                    gs.iter().map(|g| self.render(g)).collect::<Result<_, _>>()?;
                format!("({})", parts.join(" AND "))
            }
            Formula::Or(gs) => {
                let parts: Vec<String> =
                    gs.iter().map(|g| self.render(g)).collect::<Result<_, _>>()?;
                format!("({})", parts.join(" OR "))
            }
            Formula::Implies(l, r) => {
                let l = self.render(l)?;
                let r = self.render(r)?;
                format!("(NOT {l} OR {r})")
            }
            Formula::Exists(vs, g) => self.quantifier(vs, g, false)?,
            Formula::Forall(vs, g) => self.quantifier(vs, g, true)?,
        })
    }

    fn quantifier(
        &mut self,
        vs: &[Var],
        body: &Formula,
        universal: bool,
    ) -> Result<String, SqlError> {
        let mut aliases = Vec::new();
        let mut saved = Vec::new();
        for v in vs {
            self.counter += 1;
            let alias = format!("d{}", self.counter);
            aliases.push(alias.clone());
            saved.push((*v, self.names.insert(*v, format!("{alias}.v"))));
        }
        let inner = self.render(body);
        for (v, prev) in saved {
            match prev {
                Some(p) => {
                    self.names.insert(v, p);
                }
                None => {
                    self.names.remove(&v);
                }
            }
        }
        let inner = inner?;
        let from: Vec<String> = aliases.iter().map(|a| format!("adom {a}")).collect();
        Ok(if universal {
            format!(
                "NOT EXISTS (SELECT 1 FROM {} WHERE NOT {})",
                from.join(", "),
                inner
            )
        } else {
            format!("EXISTS (SELECT 1 FROM {} WHERE {})", from.join(", "), inner)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_model::parser::parse_schema;
    use cqa_model::{Atom, RelName};

    #[test]
    fn renders_guarded_rewriting() {
        let schema = parse_schema("R[2,1]").unwrap();
        // ∃x (∃w R(x,w) ∧ ∀y (R(x,y) → y = 'b'))
        let f = Formula::exists(
            [Var::new("x")],
            Formula::and([
                Formula::exists(
                    [Var::new("w")],
                    Formula::Atom(Atom::new(
                        RelName::new("R"),
                        vec![Term::var("x"), Term::var("w")],
                    )),
                ),
                Formula::forall(
                    [Var::new("y")],
                    Formula::implies(
                        Formula::Atom(Atom::new(
                            RelName::new("R"),
                            vec![Term::var("x"), Term::var("y")],
                        )),
                        Formula::eq(Term::var("y"), Term::cst("b")),
                    ),
                ),
            ]),
        );
        let (ddl, expr) = to_sql(&schema, &f).unwrap();
        assert!(ddl.contains("CREATE VIEW adom"));
        assert!(ddl.contains("SELECT a1 FROM R"));
        assert!(ddl.contains("SELECT a2 FROM R"));
        assert!(expr.contains("EXISTS"));
        assert!(expr.contains("NOT EXISTS"));
        assert!(expr.contains("= 'b'"));
    }

    #[test]
    fn quotes_are_escaped() {
        let schema = parse_schema("R[1,1]").unwrap();
        let f = Formula::Atom(Atom::new(
            RelName::new("R"),
            vec![Term::Cst(cqa_model::Cst::new("O'Brien"))],
        ));
        let (_, expr) = to_sql(&schema, &f).unwrap();
        assert!(expr.contains("'O''Brien'"));
    }

    #[test]
    fn constants_render() {
        let schema = parse_schema("R[1,1]").unwrap();
        let (_, t) = to_sql(&schema, &Formula::True).unwrap();
        assert_eq!(t, "(1=1)");
        let (_, f) = to_sql(&schema, &Formula::False).unwrap();
        assert_eq!(f, "(1=0)");
    }

    #[test]
    fn open_formula_is_a_typed_error_not_a_panic() {
        // Regression: `R(x)` with x free used to panic inside rendering.
        let schema = parse_schema("R[1,1]").unwrap();
        let open = Formula::Atom(Atom::new(RelName::new("R"), vec![Term::var("x")]));
        assert_eq!(
            to_sql(&schema, &open),
            Err(SqlError::UnboundVariable(Var::new("x")))
        );
        // A variable that leaks out of its quantifier's scope is also
        // caught: ∃y R(y) ∧ R(x) — only x is unbound.
        let mixed = Formula::and([
            Formula::exists(
                [Var::new("y")],
                Formula::Atom(Atom::new(RelName::new("R"), vec![Term::var("y")])),
            ),
            Formula::Atom(Atom::new(RelName::new("R"), vec![Term::var("x")])),
        ]);
        assert_eq!(
            to_sql(&schema, &mixed),
            Err(SqlError::UnboundVariable(Var::new("x")))
        );
        // And the closed variant still renders.
        let closed = Formula::exists(
            [Var::new("x")],
            Formula::Atom(Atom::new(RelName::new("R"), vec![Term::var("x")])),
        );
        assert!(to_sql(&schema, &closed).is_ok());
    }
}
