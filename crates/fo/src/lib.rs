//! # cqa-fo
//!
//! A first-order logic engine over the `cqa-model` data model: formula AST,
//! substitution, simplification, evaluation and SQL rendering.
//!
//! Consistent first-order rewritings — the output of the paper's Theorem 12
//! when `CERTAINTY(q, FK)` is in `FO` — are values of type [`ast::Formula`].
//! They can be pretty-printed (Unicode or ASCII), simplified, evaluated over
//! an [`cqa_model::Instance`] (naive active-domain semantics or a guarded
//! top-down strategy that exploits the ∃/∀-guard structure of rewritings),
//! and rendered to SQL.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod compile;
pub mod eval;
pub mod interp;
pub mod simplify;
pub mod sql;
pub mod stats;

pub use ast::Formula;
pub use compile::CompiledFormula;
pub use eval::{eval_closed, eval_with, Strategy};
pub use simplify::simplify;
pub use sql::{to_sql, SqlError};
pub use stats::{stats, FormulaStats};
