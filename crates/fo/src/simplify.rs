//! Logical simplification of formulas.
//!
//! The rewriting constructions generate formulas with vacuous parts (e.g.
//! `∀⃗y (R(⃗x, ⃗y) → true)` when the recursion bottoms out). [`simplify`]
//! normalizes them so that printed rewritings match the compact forms shown
//! in the paper. Simplification is purely equivalence-preserving.

use crate::ast::Formula;

/// Simplifies a formula to a fixpoint of local rewrite rules:
///
/// * constant folding through all connectives (via the smart constructors);
/// * `∀⃗y (φ → true) ⇒ true`, `∃⃗x true ⇒ true`;
/// * unit `And`/`Or` collapse, nested quantifier merging;
/// * `¬¬φ ⇒ φ`, reflexive equality elimination;
/// * duplicate conjunct/disjunct elimination.
pub fn simplify(f: &Formula) -> Formula {
    let mut cur = f.clone();
    loop {
        let next = pass(&cur);
        if next == cur {
            return cur;
        }
        cur = next;
    }
}

fn pass(f: &Formula) -> Formula {
    match f {
        Formula::True => Formula::True,
        Formula::False => Formula::False,
        Formula::Atom(a) => Formula::Atom(a.clone()),
        Formula::Eq(s, t) => Formula::eq(*s, *t),
        Formula::Not(g) => Formula::not(pass(g)),
        Formula::And(gs) => {
            let mut seen = Vec::new();
            for g in gs {
                let s = pass(g);
                if s == Formula::False {
                    return Formula::False;
                }
                if s != Formula::True && !seen.contains(&s) {
                    seen.push(s);
                }
            }
            Formula::and(seen)
        }
        Formula::Or(gs) => {
            let mut seen = Vec::new();
            for g in gs {
                let s = pass(g);
                if s == Formula::True {
                    return Formula::True;
                }
                if s != Formula::False && !seen.contains(&s) {
                    seen.push(s);
                }
            }
            Formula::or(seen)
        }
        Formula::Implies(l, r) => Formula::implies(pass(l), pass(r)),
        Formula::Exists(vs, g) => Formula::exists(vs.iter().copied(), pass(g)),
        Formula::Forall(vs, g) => Formula::forall(vs.iter().copied(), pass(g)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_model::{Atom, RelName, Term, Var};

    fn atom(rel: &str, vars: &[&str]) -> Formula {
        Formula::Atom(Atom::new(
            RelName::new(rel),
            vars.iter().map(|v| Term::var(v)).collect(),
        ))
    }

    #[test]
    fn vacuous_forall_collapses() {
        // ∃x (∃w R(x,w) ∧ ∀y (R(x,y) → true))  ⇒  ∃x w R(x,w)
        let f = Formula::Exists(
            vec![Var::new("x")],
            Box::new(Formula::And(vec![
                Formula::Exists(vec![Var::new("w")], Box::new(atom("R", &["x", "w"]))),
                Formula::Forall(
                    vec![Var::new("y")],
                    Box::new(Formula::Implies(
                        Box::new(atom("R", &["x", "y"])),
                        Box::new(Formula::True),
                    )),
                ),
            ])),
        );
        let s = simplify(&f);
        assert_eq!(s.to_string(), "∃x w R(x, w)");
    }

    #[test]
    fn duplicates_removed() {
        let a = atom("R", &["x"]);
        let f = Formula::And(vec![a.clone(), a.clone(), a.clone()]);
        assert_eq!(simplify(&f), a);
        let g = Formula::Or(vec![a.clone(), a.clone()]);
        assert_eq!(simplify(&g), a);
    }

    #[test]
    fn constant_folding() {
        let f = Formula::Implies(Box::new(Formula::False), Box::new(atom("R", &["x"])));
        assert_eq!(simplify(&f), Formula::True);
        let g = Formula::Not(Box::new(Formula::Not(Box::new(atom("R", &["x"])))));
        assert_eq!(simplify(&g), atom("R", &["x"]));
    }

    #[test]
    fn simplification_is_idempotent() {
        let f = Formula::Forall(
            vec![Var::new("y")],
            Box::new(Formula::Implies(
                Box::new(atom("R", &["y"])),
                Box::new(Formula::Or(vec![Formula::True, atom("S", &["y"])])),
            )),
        );
        let once = simplify(&f);
        assert_eq!(once, simplify(&once));
        assert_eq!(once, Formula::True);
    }
}
