//! The interpretive (pre-compilation) formula evaluator, kept as a
//! reference implementation.
//!
//! This is the original tree-walking evaluator: every quantifier re-walks
//! the AST, guard candidates clone `BTreeMap` valuations and re-materialize
//! the residual conjunction per fact, and candidate facts are collected into
//! `Vec<Fact>`. It is retained — unchanged in algorithm — for two reasons:
//!
//! * **differential testing**: the property suites check the compiled
//!   evaluator ([`crate::compile::CompiledFormula`]) against this
//!   interpreter on arbitrary formulas, strategies and bindings;
//! * **ablation benchmarking**: `benches/ablations.rs` and `paper-eval`'s
//!   `BENCH_eval.json` measure the compiled-vs-interpreted speedup against
//!   this baseline.
//!
//! The only semantic change from its pre-compilation form is the
//! active-domain soundness fix shared with the compiled path: the
//! quantifier domain is `adom(db) ∪ const(φ) ∪ const(θ↾free(φ))`, i.e.
//! constants bound to free variables by the caller count as active.

use crate::ast::Formula;
use crate::eval::Strategy;
use cqa_model::eval::unify;
use cqa_model::{Cst, Instance, Term, Valuation, Var};

/// Evaluates a closed formula over `db` with the guarded strategy
/// (interpretive reference implementation).
pub fn eval_closed(db: &Instance, f: &Formula) -> bool {
    debug_assert!(f.is_closed(), "eval_closed requires a sentence: {f}");
    eval_with(db, f, &Valuation::new(), Strategy::Guarded)
}

/// Evaluates `f` under a binding of its free variables (interpretive
/// reference implementation).
pub fn eval_with(db: &Instance, f: &Formula, binding: &Valuation, strategy: Strategy) -> bool {
    let domain: Vec<Cst> = {
        let mut d = db.adom().clone();
        d.extend(f.consts());
        // Soundness fix (shared with the compiled path): constants the
        // caller bound to free variables are active too.
        for v in f.free_vars() {
            if let Some(&c) = binding.get(&v) {
                d.insert(c);
            }
        }
        d.into_iter().collect()
    };
    let mut binding = binding.clone();
    Evaluator {
        db,
        domain,
        strategy,
    }
    .eval(f, &mut binding)
}

struct Evaluator<'a> {
    db: &'a Instance,
    domain: Vec<Cst>,
    strategy: Strategy,
}

impl Evaluator<'_> {
    fn resolve(&self, t: Term, binding: &Valuation) -> Option<Cst> {
        match t {
            Term::Cst(c) => Some(c),
            Term::Var(v) => binding.get(&v).copied(),
        }
    }

    fn eval(&self, f: &Formula, binding: &mut Valuation) -> bool {
        match f {
            Formula::True => true,
            Formula::False => false,
            Formula::Atom(a) => {
                let fact = cqa_model::eval::apply_atom(a, binding)
                    .expect("atom variables must be bound during evaluation");
                self.db.contains(&fact)
            }
            Formula::Eq(s, t) => {
                let a = self
                    .resolve(*s, binding)
                    .expect("equality term must be bound");
                let b = self
                    .resolve(*t, binding)
                    .expect("equality term must be bound");
                a == b
            }
            Formula::Not(g) => !self.eval(g, binding),
            Formula::And(gs) => gs.iter().all(|g| self.eval(g, binding)),
            Formula::Or(gs) => gs.iter().any(|g| self.eval(g, binding)),
            Formula::Implies(l, r) => !self.eval(l, binding) || self.eval(r, binding),
            Formula::Exists(vs, g) => {
                // Quantifiers shadow outer bindings of the same variables.
                let mut inner = binding.clone();
                for v in vs {
                    inner.remove(v);
                }
                self.eval_exists(vs, g, &mut inner)
            }
            Formula::Forall(vs, g) => {
                let mut inner = binding.clone();
                for v in vs {
                    inner.remove(v);
                }
                self.eval_forall(vs, g, &mut inner)
            }
        }
    }

    /// Finds a positive atom conjunct of `g` usable as a guard for the
    /// quantified variables `vs`: returns `(guard, rest)`.
    fn split_guard<'f>(
        &self,
        vs: &[Var],
        g: &'f Formula,
    ) -> Option<(&'f cqa_model::Atom, Vec<&'f Formula>)> {
        let parts: Vec<&Formula> = match g {
            Formula::And(gs) => gs.iter().collect(),
            other => vec![other],
        };
        let idx = parts.iter().position(|p| match p {
            Formula::Atom(a) => a.vars().iter().any(|v| vs.contains(v)),
            _ => false,
        })?;
        let Formula::Atom(a) = parts[idx] else {
            unreachable!("position found an Atom");
        };
        let rest = parts
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != idx)
            .map(|(_, p)| *p)
            .collect();
        Some((a, rest))
    }

    fn eval_exists(&self, vs: &[Var], g: &Formula, binding: &mut Valuation) -> bool {
        if self.strategy == Strategy::Guarded {
            if let Some((guard, rest)) = self.split_guard(vs, g) {
                // ∃vs (guard ∧ rest): iterate over facts matching the guard.
                let remaining: Vec<Var> = vs
                    .iter()
                    .copied()
                    .filter(|v| !guard.vars().contains(v))
                    .collect();
                for fact in self.candidates(guard, binding) {
                    if let Some(mut next) = unify(guard, &fact, binding) {
                        let rest_formula = Formula::and(rest.iter().map(|p| (*p).clone()));
                        if self.eval_exists(&remaining, &rest_formula, &mut next) {
                            return true;
                        }
                    }
                }
                return false;
            }
        }
        // Active-domain fallback, one variable at a time.
        match vs.split_first() {
            None => self.eval(g, binding),
            Some((&v, rest)) => {
                for &c in &self.domain {
                    let prev = binding.insert(v, c);
                    let ok = self.eval_exists(rest, g, binding);
                    match prev {
                        Some(p) => {
                            binding.insert(v, p);
                        }
                        None => {
                            binding.remove(&v);
                        }
                    }
                    if ok {
                        return true;
                    }
                }
                false
            }
        }
    }

    fn eval_forall(&self, vs: &[Var], g: &Formula, binding: &mut Valuation) -> bool {
        if self.strategy == Strategy::Guarded {
            if let Formula::Implies(lhs, rhs) = g {
                if let Formula::Atom(guard) = lhs.as_ref() {
                    let covered: Vec<Var> = vs
                        .iter()
                        .copied()
                        .filter(|v| guard.vars().contains(v))
                        .collect();
                    let uncovered: Vec<Var> = vs
                        .iter()
                        .copied()
                        .filter(|v| !guard.vars().contains(v))
                        .collect();
                    if uncovered.is_empty() && !covered.is_empty() {
                        // ∀vs (guard → rhs): values outside the guard hold
                        // vacuously, so only matching facts matter.
                        for fact in self.candidates(guard, binding) {
                            if let Some(mut next) = unify(guard, &fact, binding) {
                                if !self.eval(rhs, &mut next) {
                                    return false;
                                }
                            }
                        }
                        return true;
                    }
                }
            }
        }
        match vs.split_first() {
            None => self.eval(g, binding),
            Some((&v, rest)) => {
                for &c in &self.domain {
                    let prev = binding.insert(v, c);
                    let ok = self.eval_forall(rest, g, binding);
                    match prev {
                        Some(p) => {
                            binding.insert(v, p);
                        }
                        None => {
                            binding.remove(&v);
                        }
                    }
                    if !ok {
                        return false;
                    }
                }
                true
            }
        }
    }

    /// Candidate facts for a guard atom: the block when the key prefix is
    /// ground under `binding`, otherwise a relation scan.
    fn candidates(&self, atom: &cqa_model::Atom, binding: &Valuation) -> Vec<cqa_model::Fact> {
        let Some(sig) = self.db.schema().signature(atom.rel) else {
            return Vec::new();
        };
        if sig.arity != atom.arity() {
            return Vec::new();
        }
        let mut key: Vec<Cst> = Vec::with_capacity(sig.key_len);
        for t in atom.key_terms(sig) {
            match self.resolve(*t, binding) {
                Some(c) => key.push(c),
                None => return self.db.facts_of(atom.rel).collect(),
            }
        }
        self.db.block(atom.rel, &key)
    }
}
