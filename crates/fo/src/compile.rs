//! Compiling formulas for slot-based evaluation.
//!
//! [`CompiledFormula::compile`] performs, once per formula, all the work the
//! interpretive evaluator ([`crate::interp`]) used to redo per candidate:
//!
//! * **slot numbering** — every variable occurrence is resolved to a dense
//!   [`Binding`] slot. Quantifiers that rebind an outer variable get a
//!   *fresh* slot (compile-time α-renaming), so shadowing needs no runtime
//!   bookkeeping and the hot loops never clone a `BTreeMap` valuation;
//! * **guard pre-splitting** — for each `∃⃗x (R(…) ∧ ρ)` the guard atom and
//!   the residual conjunction are split at compile time into a chain of
//!   `Node::ExistsGuarded` steps (and dually `∀⃗y (R(…) → ρ)` into
//!   `Node::ForallGuarded`), instead of re-scanning conjuncts and
//!   re-materializing `Formula::and(rest)` on every candidate fact;
//! * **index-backed candidates** — guard lookups go through
//!   [`cqa_model::InstanceIndex`]: a hash probe on the primary-key block
//!   when the key prefix is ground, a borrowed row slice otherwise — no
//!   `Vec<Fact>` is materialized and no row is cloned.
//!
//! The guard structure is strategy-specific, so a compiled formula fixes its
//! [`Strategy`] at compile time; [`crate::eval::eval_with`] stays the
//! convenience entry point that compiles and runs in one call.
//!
//! **Parameter slots and views.** Evaluation is generic over a
//! [`cqa_model::FactSource`], so one compiled tree runs against a full
//! database index or a lazy [`cqa_model::InstanceView`] of the reduction
//! pipeline. The free variables double as *parameter slots*:
//! [`CompiledFormula::eval_params`] rebinds them from a plain argument
//! slice — the Lemma 45 residual rewriting is compiled once with `θ(⃗x)` as
//! parameters and re-evaluated per block fact by slot rebinding, no
//! `Valuation` maps and no re-compilation.
//!
//! **Quantifier domain.** Evaluation uses active-domain semantics over
//! `adom(db) ∪ const(φ) ∪ const(θ↾free(φ))` where `θ` is the caller's
//! binding of free variables. The last term is deliberate: a free variable
//! may be bound to a constant that occurs in neither the database nor the
//! formula, and quantifiers must still range over it (this fixes a
//! soundness gap in the original interpreter, which dropped such
//! constants).

use crate::ast::Formula;
use crate::eval::Strategy;
use cqa_model::binding::CompiledAtom;
use cqa_model::instance::Candidates;
use cqa_model::{
    Atom, Binding, Cst, FactSource, Instance, JoinStrategy, SemijoinPlan, Slot, SlotTerm, Term,
    Trail, Valuation, Var,
};
use std::collections::BTreeSet;

/// A compiled formula node. Guard-directed quantifier nodes only appear in
/// trees compiled with [`Strategy::Guarded`].
#[derive(Clone, Debug)]
enum Node {
    True,
    False,
    Atom(CompiledAtom),
    Eq(SlotTerm, SlotTerm),
    Not(Box<Node>),
    And(Vec<Node>),
    Or(Vec<Node>),
    Implies(Box<Node>, Box<Node>),
    /// `∃ slots`: iterate the active domain per slot.
    Exists(Vec<Slot>, Box<Node>),
    /// `∃ (guard ∧ rest)`: iterate candidate rows of the guard, unify, and
    /// continue with the pre-split continuation.
    ExistsGuarded(CompiledAtom, Box<Node>),
    /// `∃⃗x (⋀ atoms)` over an acyclic conjunction of positive atoms
    /// covering every quantified variable: executed as one Yannakakis
    /// semijoin pass ([`SemijoinPlan`]). `force` pins the semijoin
    /// ([`JoinStrategy::Semijoin`]); otherwise the
    /// [`SemijoinPlan::prefers_semijoin`] heuristic may fall back to the
    /// backtracking join over the same atoms.
    SemijoinExists {
        /// The compiled join plan.
        plan: SemijoinPlan,
        /// Skip the auto heuristic and always run the semijoin pass.
        force: bool,
    },
    /// `∀ slots`: iterate the active domain per slot.
    Forall(Vec<Slot>, Box<Node>),
    /// `∀ (guard → body)` with the guard covering every quantified
    /// variable: only rows matching the guard matter.
    ForallGuarded(CompiledAtom, Box<Node>),
}

/// A formula compiled for a fixed evaluation strategy.
///
/// Compile once, evaluate many times: the compiled tree is immutable and
/// shareable, and [`CompiledFormula::eval`] only allocates the quantifier
/// domain and the slot array per call.
#[derive(Clone, Debug)]
pub struct CompiledFormula {
    root: Node,
    strategy: Strategy,
    n_slots: usize,
    /// Free variables in canonical order, with their slots.
    free: Vec<(Var, Slot)>,
    /// The constants of the formula (part of the quantifier domain).
    consts: Vec<Cst>,
    /// Whether any node iterates the active domain. A fully guard-directed
    /// tree (the common case for constructed rewritings) never reads it,
    /// so evaluation skips building the domain entirely.
    uses_domain: bool,
}

impl CompiledFormula {
    /// Compiles `f` for `strategy`, with the join strategy taken from the
    /// process default ([`JoinStrategy::from_env`]).
    pub fn compile(f: &Formula, strategy: Strategy) -> CompiledFormula {
        CompiledFormula::compile_with(f, strategy, JoinStrategy::from_env())
    }

    /// Compiles `f` for `strategy` under an explicit [`JoinStrategy`].
    /// Unless pinned to backtracking, existentials over acyclic positive
    /// conjunctions compile to a semijoin-exists node (Yannakakis
    /// execution); [`Strategy::Naive`] trees never do — they stay the pure
    /// differential baseline.
    pub fn compile_with(f: &Formula, strategy: Strategy, join: JoinStrategy) -> CompiledFormula {
        let mut c = Compiler {
            strategy,
            join,
            env: Vec::new(),
            n_slots: 0,
        };
        let free: Vec<(Var, Slot)> = f
            .free_vars()
            .into_iter()
            .map(|v| (v, c.push_var(v)))
            .collect();
        let root = c.go(f);
        debug_assert!(c.env.len() == free.len(), "scopes must be balanced");
        let uses_domain = uses_domain(&root);
        let compiled = CompiledFormula {
            root,
            strategy,
            n_slots: c.n_slots,
            free,
            consts: f.consts().into_iter().collect(),
            uses_domain,
        };
        #[cfg(debug_assertions)]
        {
            let report = compiled.audit();
            debug_assert!(
                report.is_clean(),
                "compiled formula failed its IR audit:\n{report}"
            );
        }
        compiled
    }

    /// Converts the compiled tree into the neutral `cqa-analyze` IR.
    pub fn to_ir(&self) -> cqa_analyze::FormulaIr {
        cqa_analyze::FormulaIr {
            root: node_ir(&self.root),
            n_slots: self.n_slots,
            params: self.free.iter().map(|&(_, s)| s).collect(),
            uses_domain: self.uses_domain,
        }
    }

    /// Audits the compiled tree's slot/binder/range-restriction invariants
    /// (see `cqa_analyze::checks`). Run behind `debug_assert!` at every
    /// compile; callable explicitly for reports.
    pub fn audit(&self) -> cqa_analyze::AuditReport {
        cqa_analyze::audit_formula(&self.to_ir())
    }

    /// The strategy this formula was compiled for.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Whether any node of the tree executes as a Yannakakis semijoin pass
    /// — recorded in solver provenance so verdicts say which join strategy
    /// was in play.
    pub fn uses_semijoin(&self) -> bool {
        has_semijoin(&self.root)
    }

    /// The free variables, in canonical order.
    pub fn free_vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.free.iter().map(|&(v, _)| v)
    }

    /// Evaluates the formula over `db` under a binding of its free
    /// variables.
    pub fn eval(&self, db: &Instance, binding: &Valuation) -> bool {
        let mut b = Binding::new(self.n_slots);
        let mut bound: Vec<Cst> = Vec::new();
        for &(v, s) in &self.free {
            if let Some(&c) = binding.get(&v) {
                b.set(s, c);
                bound.push(c);
            }
        }
        self.run(db.index(), b, &bound)
    }

    /// Evaluates a closed formula over `db`.
    pub fn eval_closed(&self, db: &Instance) -> bool {
        debug_assert!(self.free.is_empty(), "eval_closed requires a sentence");
        self.eval(db, &Valuation::new())
    }

    /// Evaluates over an arbitrary [`FactSource`] (a full
    /// [`cqa_model::InstanceIndex`] or a lazy [`cqa_model::InstanceView`])
    /// with the free variables used as **parameter slots**: `args[i]` binds
    /// the `i`-th free variable in canonical ([`CompiledFormula::free_vars`])
    /// order. This is the per-block-fact rebinding entry point of the
    /// compiled reduction pipeline: no `Valuation` map, no per-call
    /// allocation beyond the slot array (and the quantifier domain when the
    /// tree is not fully guard-directed).
    pub fn eval_params<S: FactSource + ?Sized>(&self, src: &S, args: &[Cst]) -> bool {
        assert_eq!(
            args.len(),
            self.free.len(),
            "one argument per parameter slot"
        );
        let mut b = Binding::new(self.n_slots);
        for (&(_, s), &c) in self.free.iter().zip(args) {
            b.set(s, c);
        }
        self.run(src, b, args)
    }

    /// Shared evaluation core: `bound` are the constants already placed in
    /// parameter slots (they join the quantifier domain — the soundness rule
    /// for out-of-domain bindings, see the module docs).
    fn run<S: FactSource + ?Sized>(&self, src: &S, b: Binding, bound: &[Cst]) -> bool {
        let domain: Vec<Cst> = if self.uses_domain {
            let mut dom: BTreeSet<Cst> = BTreeSet::new();
            src.extend_adom(&mut dom);
            dom.extend(self.consts.iter().copied());
            dom.extend(bound.iter().copied());
            dom.into_iter().collect()
        } else {
            // Fully guard-directed tree: no quantifier reads the domain.
            Vec::new()
        };
        let ctx = EvalCtx {
            src,
            domain: &domain,
        };
        let mut st = EvalState {
            b,
            trail: Trail::new(),
            scratch: Vec::new(),
        };
        ctx.eval(&self.root, &mut st)
    }
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

struct Compiler {
    strategy: Strategy,
    join: JoinStrategy,
    /// Scope stack; lookups scan from the end so inner quantifiers shadow.
    env: Vec<(Var, Slot)>,
    n_slots: usize,
}

impl Compiler {
    fn push_var(&mut self, v: Var) -> Slot {
        let s = u32::try_from(self.n_slots).expect("slot count fits in u32");
        self.n_slots += 1;
        self.env.push((v, s));
        s
    }

    fn lookup(&self, v: Var) -> Slot {
        self.env
            .iter()
            .rev()
            .find(|&&(w, _)| w == v)
            .map(|&(_, s)| s)
            .expect("every variable is quantified or free")
    }

    fn term(&self, t: Term) -> SlotTerm {
        match t {
            Term::Cst(c) => SlotTerm::Cst(c),
            Term::Var(v) => SlotTerm::Slot(self.lookup(v)),
        }
    }

    fn atom(&self, a: &Atom) -> CompiledAtom {
        CompiledAtom {
            rel: a.rel,
            terms: a.terms.iter().map(|&t| self.term(t)).collect(),
        }
    }

    fn go(&mut self, f: &Formula) -> Node {
        match f {
            Formula::True => Node::True,
            Formula::False => Node::False,
            Formula::Atom(a) => Node::Atom(self.atom(a)),
            Formula::Eq(s, t) => Node::Eq(self.term(*s), self.term(*t)),
            Formula::Not(g) => Node::Not(Box::new(self.go(g))),
            Formula::And(gs) => Node::And(gs.iter().map(|g| self.go(g)).collect()),
            Formula::Or(gs) => Node::Or(gs.iter().map(|g| self.go(g)).collect()),
            Formula::Implies(l, r) => {
                Node::Implies(Box::new(self.go(l)), Box::new(self.go(r)))
            }
            Formula::Exists(vs, g) => {
                let scope = self.env.len();
                let quant: Vec<(Var, Slot)> =
                    vs.iter().map(|&v| (v, self.push_var(v))).collect();
                let node = match self.strategy {
                    Strategy::Guarded => {
                        let mut parts = Vec::new();
                        flatten_and(g, &mut parts);
                        self.guarded_exists(quant, parts)
                    }
                    Strategy::Naive => {
                        let slots = quant.iter().map(|&(_, s)| s).collect();
                        Node::Exists(slots, Box::new(self.go(g)))
                    }
                };
                self.env.truncate(scope);
                node
            }
            Formula::Forall(vs, g) => {
                let scope = self.env.len();
                let quant: Vec<(Var, Slot)> =
                    vs.iter().map(|&v| (v, self.push_var(v))).collect();
                let node = self.forall(quant, g);
                self.env.truncate(scope);
                node
            }
        }
    }

    /// Compiles `∃ quant (⋀ parts)` as a chain of guard steps: at each step
    /// the first *usable* guard — a positive atom conjunct covering at least
    /// one still-unguarded quantified variable — drives candidate
    /// iteration, and the residual conjunction continues. Constant-only
    /// atoms and atoms over already-covered variables are never selected as
    /// guards (they stay in the residual), and duplicate conjuncts are
    /// harmless: the duplicate simply remains a membership test in the
    /// continuation.
    fn guarded_exists(&mut self, quant: Vec<(Var, Slot)>, parts: Vec<&Formula>) -> Node {
        if quant.is_empty() {
            return self.conj(parts);
        }
        if let Some(node) = self.semijoin_exists(&quant, &parts) {
            return node;
        }
        let guard_pos = parts.iter().position(|p| match p {
            Formula::Atom(a) => a.vars().iter().any(|v| quant.iter().any(|&(w, _)| w == *v)),
            _ => false,
        });
        match guard_pos {
            None => {
                let slots = quant.iter().map(|&(_, s)| s).collect();
                Node::Exists(slots, Box::new(self.conj(parts)))
            }
            Some(i) => {
                let Formula::Atom(guard) = parts[i] else {
                    unreachable!("position found an Atom");
                };
                let catom = self.atom(guard);
                let guard_vars = guard.vars();
                let remaining: Vec<(Var, Slot)> = quant
                    .into_iter()
                    .filter(|&(v, _)| !guard_vars.contains(&v))
                    .collect();
                let rest: Vec<&Formula> = parts
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, p)| *p)
                    .collect();
                let cont = self.guarded_exists(remaining, rest);
                Node::ExistsGuarded(catom, Box::new(cont))
            }
        }
    }

    /// The Yannakakis fast path for `∃ quant (⋀ parts)`: applies when the
    /// join strategy allows it, every part is a positive atom, every
    /// quantified variable occurs in some atom (so the pass binds all of
    /// them — no active-domain residue), and the atom hypergraph is
    /// acyclic. Cyclic conjunctions and mixed residuals return `None` and
    /// keep the per-guard chain.
    fn semijoin_exists(&mut self, quant: &[(Var, Slot)], parts: &[&Formula]) -> Option<Node> {
        if self.join == JoinStrategy::Backtracking || parts.is_empty() {
            return None;
        }
        let mut atoms: Vec<&Atom> = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Formula::Atom(a) => atoms.push(a),
                _ => return None,
            }
        }
        let covered = quant
            .iter()
            .all(|&(v, _)| atoms.iter().any(|a| a.vars().contains(&v)));
        if !covered {
            return None;
        }
        let catoms: Vec<CompiledAtom> = atoms.iter().map(|a| self.atom(a)).collect();
        let plan = SemijoinPlan::build(&catoms)?;
        Some(Node::SemijoinExists {
            plan,
            force: self.join == JoinStrategy::Semijoin,
        })
    }

    fn conj(&mut self, parts: Vec<&Formula>) -> Node {
        match parts.len() {
            0 => Node::True,
            1 => self.go(parts[0]),
            _ => Node::And(parts.into_iter().map(|p| self.go(p)).collect()),
        }
    }

    fn forall(&mut self, quant: Vec<(Var, Slot)>, g: &Formula) -> Node {
        if self.strategy == Strategy::Guarded {
            if let Formula::Implies(lhs, rhs) = g {
                if let Formula::Atom(guard) = lhs.as_ref() {
                    let guard_vars = guard.vars();
                    let all_covered =
                        quant.iter().all(|&(v, _)| guard_vars.contains(&v));
                    if all_covered && !quant.is_empty() {
                        // ∀⃗y (guard → rhs): values outside the guard hold
                        // vacuously, so only matching rows matter.
                        let catom = self.atom(guard);
                        return Node::ForallGuarded(catom, Box::new(self.go(rhs)));
                    }
                }
            }
        }
        let slots = quant.iter().map(|&(_, s)| s).collect();
        Node::Forall(slots, Box::new(self.go(g)))
    }
}

/// Whether any node of the tree iterates the active domain.
/// Mirrors the private [`Node`] tree into the analysis IR.
fn node_ir(n: &Node) -> cqa_analyze::FNode {
    use cqa_analyze::FNode;
    match n {
        Node::True => FNode::True,
        Node::False => FNode::False,
        Node::Atom(a) => FNode::Atom(a.clone()),
        Node::Eq(l, r) => FNode::Eq(*l, *r),
        Node::Not(g) => FNode::Not(Box::new(node_ir(g))),
        Node::And(gs) => FNode::And(gs.iter().map(node_ir).collect()),
        Node::Or(gs) => FNode::Or(gs.iter().map(node_ir).collect()),
        Node::Implies(l, r) => FNode::Implies(Box::new(node_ir(l)), Box::new(node_ir(r))),
        Node::Exists(slots, b) => FNode::Exists(slots.clone(), Box::new(node_ir(b))),
        Node::ExistsGuarded(g, b) => FNode::ExistsGuarded(g.clone(), Box::new(node_ir(b))),
        Node::SemijoinExists { plan, .. } => FNode::SemijoinExists(plan.atoms().to_vec()),
        Node::Forall(slots, b) => FNode::Forall(slots.clone(), Box::new(node_ir(b))),
        Node::ForallGuarded(g, b) => FNode::ForallGuarded(g.clone(), Box::new(node_ir(b))),
    }
}

/// Whether any node of the tree is a [`Node::SemijoinExists`].
fn has_semijoin(node: &Node) -> bool {
    match node {
        Node::True | Node::False | Node::Atom(_) | Node::Eq(_, _) => false,
        Node::SemijoinExists { .. } => true,
        Node::Not(g) => has_semijoin(g),
        Node::And(gs) | Node::Or(gs) => gs.iter().any(has_semijoin),
        Node::Implies(l, r) => has_semijoin(l) || has_semijoin(r),
        Node::Exists(_, b) | Node::Forall(_, b) => has_semijoin(b),
        Node::ExistsGuarded(_, b) | Node::ForallGuarded(_, b) => has_semijoin(b),
    }
}

fn uses_domain(node: &Node) -> bool {
    match node {
        Node::True | Node::False | Node::Atom(_) | Node::Eq(_, _) => false,
        // Quantifiers with no slots left still skip the domain loop.
        Node::Exists(slots, body) | Node::Forall(slots, body) => {
            !slots.is_empty() || uses_domain(body)
        }
        Node::Not(g) => uses_domain(g),
        Node::And(gs) | Node::Or(gs) => gs.iter().any(uses_domain),
        Node::Implies(l, r) => uses_domain(l) || uses_domain(r),
        Node::ExistsGuarded(_, cont) | Node::ForallGuarded(_, cont) => uses_domain(cont),
        Node::SemijoinExists { .. } => false,
    }
}

/// Flattens nested conjunctions into a part list (the interpretive
/// evaluator flattened one level per recursion step; flattening fully here
/// only exposes more guard opportunities and cannot change semantics).
fn flatten_and<'f>(f: &'f Formula, out: &mut Vec<&'f Formula>) {
    match f {
        Formula::And(gs) => {
            for g in gs {
                flatten_and(g, out);
            }
        }
        other => out.push(other),
    }
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

struct EvalCtx<'a, S: FactSource + ?Sized> {
    src: &'a S,
    domain: &'a [Cst],
}

struct EvalState {
    b: Binding,
    trail: Trail,
    /// Scratch for resolved atom arguments and ground key prefixes.
    scratch: Vec<Cst>,
}

impl<'a, S: FactSource + ?Sized> EvalCtx<'a, S> {
    fn eval(&self, node: &Node, st: &mut EvalState) -> bool {
        match node {
            Node::True => true,
            Node::False => false,
            Node::Atom(a) => {
                st.scratch.clear();
                for &t in &a.terms {
                    let c = st
                        .b
                        .resolve(t)
                        .expect("atom variables must be bound during evaluation");
                    st.scratch.push(c);
                }
                self.src.contains_row(a.rel, &st.scratch)
            }
            Node::Eq(s, t) => {
                let a = st.b.resolve(*s).expect("equality term must be bound");
                let b = st.b.resolve(*t).expect("equality term must be bound");
                a == b
            }
            Node::Not(g) => !self.eval(g, st),
            Node::And(gs) => gs.iter().all(|g| self.eval(g, st)),
            Node::Or(gs) => gs.iter().any(|g| self.eval(g, st)),
            Node::Implies(l, r) => !self.eval(l, st) || self.eval(r, st),
            Node::Exists(slots, body) => self.exists_domain(slots, body, st),
            Node::Forall(slots, body) => self.forall_domain(slots, body, st),
            Node::ExistsGuarded(guard, cont) => {
                let cands = self.guard_candidates(guard, st);
                for row in cands {
                    let frame = st.trail.frame();
                    if st.b.unify_row(&guard.terms, row, &mut st.trail)
                        && self.eval(cont, st)
                    {
                        st.trail.undo_to(frame, &mut st.b);
                        return true;
                    }
                    st.trail.undo_to(frame, &mut st.b);
                }
                false
            }
            Node::SemijoinExists { plan, force } => {
                plan.eval_exists(self.src, &mut st.b, &mut st.trail, &mut st.scratch, *force)
            }
            Node::ForallGuarded(guard, body) => {
                let cands = self.guard_candidates(guard, st);
                for row in cands {
                    let frame = st.trail.frame();
                    if st.b.unify_row(&guard.terms, row, &mut st.trail)
                        && !self.eval(body, st)
                    {
                        st.trail.undo_to(frame, &mut st.b);
                        return false;
                    }
                    st.trail.undo_to(frame, &mut st.b);
                }
                true
            }
        }
    }

    fn exists_domain(&self, slots: &[Slot], body: &Node, st: &mut EvalState) -> bool {
        match slots.split_first() {
            None => self.eval(body, st),
            Some((&s, rest)) => {
                for &c in self.domain {
                    st.b.set(s, c);
                    if self.exists_domain(rest, body, st) {
                        st.b.clear(s);
                        return true;
                    }
                }
                st.b.clear(s);
                false
            }
        }
    }

    fn forall_domain(&self, slots: &[Slot], body: &Node, st: &mut EvalState) -> bool {
        match slots.split_first() {
            None => self.eval(body, st),
            Some((&s, rest)) => {
                for &c in self.domain {
                    st.b.set(s, c);
                    if !self.forall_domain(rest, body, st) {
                        st.b.clear(s);
                        return false;
                    }
                }
                st.b.clear(s);
                true
            }
        }
    }

    /// Candidate rows for a guard atom: the shared ground-key-prefix
    /// resolution of [`FactSource::guarded_candidates`].
    fn guard_candidates(&self, guard: &CompiledAtom, st: &mut EvalState) -> Candidates<'a> {
        self.src.guarded_candidates(guard, &st.b, &mut st.scratch)
    }
}
