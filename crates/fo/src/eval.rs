//! Formula evaluation over database instances.
//!
//! Two strategies are provided:
//!
//! * [`Strategy::Naive`] — textbook active-domain semantics: every quantifier
//!   ranges over `adom(db) ∪ const(φ) ∪ const(θ↾free(φ))`. Correct for any
//!   formula, but each quantifier costs a full domain sweep.
//! * [`Strategy::Guarded`] — exploits the guard structure of consistent
//!   rewritings: `∃⃗x (R(…) ∧ ρ)` iterates only over matching `R`-facts
//!   (using the primary-key block index when the key prefix is ground), and
//!   `∀⃗y (R(…) → ρ)` iterates only over the facts of the guard. Variables
//!   not covered by a guard fall back to the active domain, so the strategy
//!   is correct for all formulas and *fast* for all formulas this workspace
//!   generates.
//!
//! Both strategies agree on every formula (property-tested); the performance
//! gap between them is one of the ablation benchmarks (`DESIGN.md` §3).
//!
//! The entry points below compile the formula
//! ([`crate::compile::CompiledFormula`]) and evaluate the compiled form:
//! variables become dense binding slots, guards are pre-split per
//! quantifier, and candidate lookups go through the instance's hash
//! indexes. Callers that evaluate one formula many times should compile
//! once and reuse; the original tree-walking interpreter survives as
//! [`crate::interp`] for differential testing and ablation baselines.

use crate::ast::Formula;
use crate::compile::CompiledFormula;
use cqa_model::{Instance, Valuation};

/// Evaluation strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Active-domain semantics for every quantifier.
    Naive,
    /// Guard-directed evaluation with active-domain fallback.
    Guarded,
}

/// Evaluates a closed formula over `db` with the guarded strategy.
pub fn eval_closed(db: &Instance, f: &Formula) -> bool {
    debug_assert!(f.is_closed(), "eval_closed requires a sentence: {f}");
    CompiledFormula::compile(f, Strategy::Guarded).eval_closed(db)
}

/// Evaluates `f` under a binding of its free variables.
///
/// Quantifiers range over `adom(db) ∪ const(f)` plus every constant the
/// binding assigns to a free variable of `f` — a constant outside the
/// database's active domain is still *active* once a free variable is bound
/// to it.
pub fn eval_with(db: &Instance, f: &Formula, binding: &Valuation, strategy: Strategy) -> bool {
    CompiledFormula::compile(f, strategy).eval(db, binding)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp;
    use cqa_model::parser::{parse_instance, parse_query, parse_schema};
    use cqa_model::{Atom, Cst, RelName, Schema, Term, Var};
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Arc::new(parse_schema("R[2,1] S[2,1] T[1,1]").unwrap())
    }

    fn db() -> Instance {
        parse_instance(&schema(), "R(a,b) R(a,c) R(d,b) S(b,e) T(e)").unwrap()
    }

    fn fatom(s: &Arc<Schema>, text: &str) -> Formula {
        let q = parse_query(s, text).unwrap();
        Formula::Atom(q.atoms()[0].clone())
    }

    /// Evaluates with all four engines (compiled/interpreted × both
    /// strategies) under a binding and asserts they agree.
    fn all_engines(db: &Instance, f: &Formula, b: &Valuation) -> bool {
        let compiled_g = eval_with(db, f, b, Strategy::Guarded);
        let compiled_n = eval_with(db, f, b, Strategy::Naive);
        let interp_g = interp::eval_with(db, f, b, Strategy::Guarded);
        let interp_n = interp::eval_with(db, f, b, Strategy::Naive);
        assert_eq!(compiled_g, compiled_n, "strategies disagree on {f}");
        assert_eq!(compiled_g, interp_g, "compiled vs interp (guarded) on {f}");
        assert_eq!(compiled_n, interp_n, "compiled vs interp (naive) on {f}");
        compiled_g
    }

    fn both(db: &Instance, f: &Formula) -> bool {
        all_engines(db, f, &Valuation::new())
    }

    #[test]
    fn ground_atoms() {
        let s = schema();
        let f = fatom(&s, "R('a','b')");
        assert!(both(&db(), &f));
        let g = fatom(&s, "R('a','zzz')");
        assert!(!both(&db(), &g));
    }

    #[test]
    fn exists_guarded() {
        let s = schema();
        // ∃x∃y (R(x,y) ∧ S(y,e-var)) — the classical chain.
        let r = fatom(&s, "R(x,y)");
        let sf = fatom(&s, "S(y,z)");
        let f = Formula::exists(
            [Var::new("x"), Var::new("y"), Var::new("z")],
            Formula::and([r, sf]),
        );
        assert!(f.is_closed());
        assert!(both(&db(), &f));
    }

    #[test]
    fn forall_guarded() {
        let s = schema();
        // ∀x∀y (R(x,y) → y = 'b'): false, because R(a,c) exists.
        let r = fatom(&s, "R(x,y)");
        let f = Formula::forall(
            [Var::new("x"), Var::new("y")],
            Formula::implies(r.clone(), Formula::eq(Term::var("y"), Term::cst("b"))),
        );
        assert!(!both(&db(), &f));

        // ∀x∀y (R(x,y) → ∃z S(y,z)): false because S(c,·) is missing.
        let sf = fatom(&s, "S(y,z)");
        let g = Formula::forall(
            [Var::new("x"), Var::new("y")],
            Formula::implies(r, Formula::exists([Var::new("z")], sf)),
        );
        assert!(!both(&db(), &g));
    }

    #[test]
    fn paper_section8_rewriting_shape() {
        // ∃y (N(c,y) ∧ O(y)) ∧ ∀y (N(c,y) → P(y)) over the paper's instance.
        let s = Arc::new(parse_schema("N[2,1] O[1,1] P[1,1]").unwrap());
        let d = parse_instance(&s, "N(c,a) N(c,b) O(a) P(a) P(b)").unwrap();
        let n = |t: &str| {
            Formula::Atom(Atom::new(
                RelName::new("N"),
                vec![Term::cst("c"), Term::var(t)],
            ))
        };
        let o = Formula::Atom(Atom::new(RelName::new("O"), vec![Term::var("y")]));
        let p = Formula::Atom(Atom::new(RelName::new("P"), vec![Term::var("y")]));
        let f = Formula::and([
            Formula::exists([Var::new("y")], Formula::and([n("y"), o])),
            Formula::forall([Var::new("y")], Formula::implies(n("y"), p)),
        ]);
        assert!(both(&d, &f), "paper says this is a yes-instance");

        // Removing either P-fact turns it into a no-instance.
        for removed in ["a", "b"] {
            let mut d2 = d.clone();
            d2.remove(&cqa_model::Fact::from_names("P", &[removed])).unwrap();
            assert!(!both(&d2, &f), "removing P({removed}) must flip the answer");
        }
    }

    #[test]
    fn quantifier_over_unguarded_var_falls_back() {
        let _s = schema();
        // ∃x (x = 'a'): no guard atom; relies on active-domain fallback.
        let f = Formula::exists(
            [Var::new("x")],
            Formula::Eq(Term::var("x"), Term::cst("a")),
        );
        assert!(both(&db(), &f));
    }

    #[test]
    fn negation_and_implication() {
        let s = schema();
        let f = Formula::not(fatom(&s, "T('zzz')"));
        assert!(both(&db(), &f));
        let g = Formula::implies(fatom(&s, "T('e')"), fatom(&s, "T('zzz')"));
        assert!(!both(&db(), &g));
    }

    #[test]
    fn empty_instance() {
        let s = schema();
        let d = Instance::new(s.clone());
        let f = Formula::exists([Var::new("x"), Var::new("y")], fatom(&s, "R(x,y)"));
        assert!(!both(&d, &f));
        let g = Formula::forall(
            [Var::new("x"), Var::new("y")],
            Formula::implies(fatom(&s, "R(x,y)"), Formula::False),
        );
        assert!(both(&d, &g));
    }

    #[test]
    fn quantifier_shadowing() {
        // Regression (found by proptest): ∃x (¬S(x) ∧ ∃x S(x)) — the inner
        // quantifier must shadow the outer binding of x, in the guarded
        // strategy too.
        let s = Arc::new(parse_schema("R[2,1] S[1,1]").unwrap());
        let d = parse_instance(&s, "R(a,b) S(a)").unwrap();
        let sx = Formula::Atom(Atom::new(RelName::new("S"), vec![Term::var("x")]));
        let f = Formula::Exists(
            vec![Var::new("x")],
            Box::new(Formula::And(vec![
                Formula::not(sx.clone()),
                Formula::Exists(vec![Var::new("x")], Box::new(sx)),
            ])),
        );
        assert!(both(&d, &f), "x = b satisfies ¬S(x), and S(a) witnesses ∃x S(x)");
    }

    #[test]
    fn free_variable_binding_respected() {
        let s = schema();
        let f = fatom(&s, "R(x,y)"); // free x, y
        let mut b = Valuation::new();
        b.insert(Var::new("x"), Cst::new("a"));
        b.insert(Var::new("y"), Cst::new("b"));
        assert!(eval_with(&db(), &f, &b, Strategy::Guarded));
        b.insert(Var::new("y"), Cst::new("zzz"));
        assert!(!eval_with(&db(), &f, &b, Strategy::Guarded));
    }

    #[test]
    fn binding_to_constant_outside_adom_is_active() {
        // Regression for the active-domain soundness gap: with the free
        // variable x bound to a constant that occurs in neither the
        // database nor the formula, ∃y (y = x) must hold — the quantifier
        // domain includes the constants of the incoming binding. Before
        // the fix the domain was adom(db) ∪ const(φ) only, so *both*
        // strategies returned false here.
        let s = schema();
        let d = db();
        let f = Formula::exists(
            [Var::new("y")],
            Formula::Eq(Term::var("y"), Term::var("x")),
        );
        let mut b = Valuation::new();
        b.insert(Var::new("x"), Cst::new("outside-adom"));
        assert!(all_engines(&d, &f, &b), "x's constant must be active");

        // Dually: ∀y (y = x → y = x) stays true, and ∀y (y = x → T(y))
        // must now be *false* — the domain contains x's constant, which is
        // not a T-fact.
        let g = Formula::forall(
            [Var::new("y")],
            Formula::implies(
                Formula::Eq(Term::var("y"), Term::var("x")),
                fatom(&s, "T(y)"),
            ),
        );
        assert!(!all_engines(&d, &g, &b));

        // A binding inside the active domain is unchanged by the fix.
        let mut inside = Valuation::new();
        inside.insert(Var::new("x"), Cst::new("e"));
        assert!(all_engines(&d, &f, &inside));
    }

    #[test]
    fn guard_selection_with_repeated_atoms() {
        // Duplicate conjuncts under the same ∧: the guard is one copy, the
        // duplicate stays a membership test in the continuation; guarded
        // and naive must agree on every such shape.
        let s = schema();
        let r = || fatom(&s, "R(x,y)");
        let dup = Formula::Exists(
            vec![Var::new("x"), Var::new("y")],
            Box::new(Formula::And(vec![r(), r()])),
        );
        assert!(both(&db(), &dup));

        // Duplicated guard covering only part of the prefix plus a chained
        // second guard.
        let chain = Formula::Exists(
            vec![Var::new("x"), Var::new("y"), Var::new("z")],
            Box::new(Formula::And(vec![
                r(),
                r(),
                fatom(&s, "S(y,z)"),
                fatom(&s, "S(y,z)"),
            ])),
        );
        assert!(both(&db(), &chain));

        // Duplicates that cannot be satisfied: still agree.
        let never = Formula::Exists(
            vec![Var::new("x")],
            Box::new(Formula::And(vec![
                fatom(&s, "T(x)"),
                fatom(&s, "T(x)"),
                fatom(&s, "R(x,x)"),
            ])),
        );
        assert!(!both(&db(), &never));
    }

    #[test]
    fn guard_selection_skips_constant_only_atoms() {
        // A conjunct with no variables must never be chosen as the guard —
        // the quantified variable is guarded by T(x), and the ground atom
        // R('a','b') is just a conjunct.
        let s = schema();
        let f = Formula::Exists(
            vec![Var::new("x")],
            Box::new(Formula::And(vec![
                fatom(&s, "R('a','b')"),
                fatom(&s, "T(x)"),
            ])),
        );
        assert!(both(&db(), &f));

        // With a false ground conjunct the whole ∃ is false.
        let g = Formula::Exists(
            vec![Var::new("x")],
            Box::new(Formula::And(vec![
                fatom(&s, "R('a','zzz')"),
                fatom(&s, "T(x)"),
            ])),
        );
        assert!(!both(&db(), &g));

        // Only constant-only atoms: no guard exists, the quantifier falls
        // back to the domain (and the body is variable-free).
        let h = Formula::Exists(
            vec![Var::new("x")],
            Box::new(fatom(&s, "R('a','b')")),
        );
        assert!(both(&db(), &h));
    }

    #[test]
    fn compiled_formula_is_reusable() {
        use crate::compile::CompiledFormula;
        let s = schema();
        let r = fatom(&s, "R(x,y)");
        let f = Formula::exists([Var::new("x"), Var::new("y")], r);
        let compiled = CompiledFormula::compile(&f, Strategy::Guarded);
        assert!(compiled.eval_closed(&db()));
        let empty = Instance::new(s);
        assert!(!compiled.eval_closed(&empty));
        // Same compiled value, instance mutated in between.
        let mut d = db();
        for fact in d.facts().collect::<Vec<_>>() {
            d.remove(&fact).unwrap();
        }
        assert!(!compiled.eval_closed(&d));
    }
}
