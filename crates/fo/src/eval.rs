//! Formula evaluation over database instances.
//!
//! Two strategies are provided:
//!
//! * [`Strategy::Naive`] — textbook active-domain semantics: every quantifier
//!   ranges over `adom(db) ∪ const(φ)`. Correct for any formula, but each
//!   quantifier costs a full domain sweep.
//! * [`Strategy::Guarded`] — exploits the guard structure of consistent
//!   rewritings: `∃⃗x (R(…) ∧ ρ)` iterates only over matching `R`-facts
//!   (using the primary-key block index when the key prefix is ground), and
//!   `∀⃗y (R(…) → ρ)` iterates only over the facts of the guard. Variables
//!   not covered by a guard fall back to the active domain, so the strategy
//!   is correct for all formulas and *fast* for all formulas this workspace
//!   generates.
//!
//! Both strategies agree on every formula (property-tested); the performance
//! gap between them is one of the ablation benchmarks (`DESIGN.md` §3).

use crate::ast::Formula;
use cqa_model::eval::unify;
use cqa_model::{Cst, Instance, Term, Valuation, Var};

/// Evaluation strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Active-domain semantics for every quantifier.
    Naive,
    /// Guard-directed evaluation with active-domain fallback.
    Guarded,
}

/// Evaluates a closed formula over `db` with the guarded strategy.
pub fn eval_closed(db: &Instance, f: &Formula) -> bool {
    debug_assert!(f.is_closed(), "eval_closed requires a sentence: {f}");
    eval_with(db, f, &Valuation::new(), Strategy::Guarded)
}

/// Evaluates `f` under a binding of its free variables.
pub fn eval_with(db: &Instance, f: &Formula, binding: &Valuation, strategy: Strategy) -> bool {
    let domain: Vec<Cst> = {
        let mut d = db.adom();
        d.extend(f.consts());
        d.into_iter().collect()
    };
    let mut binding = binding.clone();
    Evaluator {
        db,
        domain,
        strategy,
    }
    .eval(f, &mut binding)
}

struct Evaluator<'a> {
    db: &'a Instance,
    domain: Vec<Cst>,
    strategy: Strategy,
}

impl Evaluator<'_> {
    fn resolve(&self, t: Term, binding: &Valuation) -> Option<Cst> {
        match t {
            Term::Cst(c) => Some(c),
            Term::Var(v) => binding.get(&v).copied(),
        }
    }

    fn eval(&self, f: &Formula, binding: &mut Valuation) -> bool {
        match f {
            Formula::True => true,
            Formula::False => false,
            Formula::Atom(a) => {
                let fact = cqa_model::eval::apply_atom(a, binding)
                    .expect("atom variables must be bound during evaluation");
                self.db.contains(&fact)
            }
            Formula::Eq(s, t) => {
                let a = self
                    .resolve(*s, binding)
                    .expect("equality term must be bound");
                let b = self
                    .resolve(*t, binding)
                    .expect("equality term must be bound");
                a == b
            }
            Formula::Not(g) => !self.eval(g, binding),
            Formula::And(gs) => gs.iter().all(|g| self.eval(g, binding)),
            Formula::Or(gs) => gs.iter().any(|g| self.eval(g, binding)),
            Formula::Implies(l, r) => !self.eval(l, binding) || self.eval(r, binding),
            Formula::Exists(vs, g) => {
                // Quantifiers shadow outer bindings of the same variables.
                let mut inner = binding.clone();
                for v in vs {
                    inner.remove(v);
                }
                self.eval_exists(vs, g, &mut inner)
            }
            Formula::Forall(vs, g) => {
                let mut inner = binding.clone();
                for v in vs {
                    inner.remove(v);
                }
                self.eval_forall(vs, g, &mut inner)
            }
        }
    }

    /// Finds a positive atom conjunct of `g` usable as a guard for the
    /// quantified variables `vs`: returns `(guard, rest)`.
    fn split_guard<'f>(&self, vs: &[Var], g: &'f Formula) -> Option<(&'f cqa_model::Atom, Vec<&'f Formula>)> {
        let parts: Vec<&Formula> = match g {
            Formula::And(gs) => gs.iter().collect(),
            other => vec![other],
        };
        let idx = parts.iter().position(|p| match p {
            Formula::Atom(a) => a.vars().iter().any(|v| vs.contains(v)),
            _ => false,
        })?;
        let Formula::Atom(a) = parts[idx] else {
            unreachable!("position found an Atom");
        };
        let rest = parts
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != idx)
            .map(|(_, p)| *p)
            .collect();
        Some((a, rest))
    }

    fn eval_exists(&self, vs: &[Var], g: &Formula, binding: &mut Valuation) -> bool {
        if self.strategy == Strategy::Guarded {
            if let Some((guard, rest)) = self.split_guard(vs, g) {
                // ∃vs (guard ∧ rest): iterate over facts matching the guard.
                let remaining: Vec<Var> = vs
                    .iter()
                    .copied()
                    .filter(|v| !guard.vars().contains(v))
                    .collect();
                for fact in self.candidates(guard, binding) {
                    if let Some(mut next) = unify(guard, &fact, binding) {
                        let rest_formula =
                            Formula::and(rest.iter().map(|p| (*p).clone()));
                        if self.eval_exists(&remaining, &rest_formula, &mut next) {
                            return true;
                        }
                    }
                }
                return false;
            }
        }
        // Active-domain fallback, one variable at a time.
        match vs.split_first() {
            None => self.eval(g, binding),
            Some((&v, rest)) => {
                for &c in &self.domain {
                    let prev = binding.insert(v, c);
                    let ok = self.eval_exists(rest, g, binding);
                    match prev {
                        Some(p) => {
                            binding.insert(v, p);
                        }
                        None => {
                            binding.remove(&v);
                        }
                    }
                    if ok {
                        return true;
                    }
                }
                false
            }
        }
    }

    fn eval_forall(&self, vs: &[Var], g: &Formula, binding: &mut Valuation) -> bool {
        if self.strategy == Strategy::Guarded {
            if let Formula::Implies(lhs, rhs) = g {
                if let Formula::Atom(guard) = lhs.as_ref() {
                    let covered: Vec<Var> = vs
                        .iter()
                        .copied()
                        .filter(|v| guard.vars().contains(v))
                        .collect();
                    let uncovered: Vec<Var> = vs
                        .iter()
                        .copied()
                        .filter(|v| !guard.vars().contains(v))
                        .collect();
                    if uncovered.is_empty() && !covered.is_empty() {
                        // ∀vs (guard → rhs): values outside the guard hold
                        // vacuously, so only matching facts matter.
                        for fact in self.candidates(guard, binding) {
                            if let Some(mut next) = unify(guard, &fact, binding) {
                                if !self.eval(rhs, &mut next) {
                                    return false;
                                }
                            }
                        }
                        return true;
                    }
                }
            }
        }
        match vs.split_first() {
            None => self.eval(g, binding),
            Some((&v, rest)) => {
                for &c in &self.domain {
                    let prev = binding.insert(v, c);
                    let ok = self.eval_forall(rest, g, binding);
                    match prev {
                        Some(p) => {
                            binding.insert(v, p);
                        }
                        None => {
                            binding.remove(&v);
                        }
                    }
                    if !ok {
                        return false;
                    }
                }
                true
            }
        }
    }

    /// Candidate facts for a guard atom: the block when the key prefix is
    /// ground under `binding`, otherwise a relation scan.
    fn candidates(&self, atom: &cqa_model::Atom, binding: &Valuation) -> Vec<cqa_model::Fact> {
        let Some(sig) = self.db.schema().signature(atom.rel) else {
            return Vec::new();
        };
        if sig.arity != atom.arity() {
            return Vec::new();
        }
        let mut key: Vec<Cst> = Vec::with_capacity(sig.key_len);
        for t in atom.key_terms(sig) {
            match self.resolve(*t, binding) {
                Some(c) => key.push(c),
                None => return self.db.facts_of(atom.rel).collect(),
            }
        }
        self.db.block(atom.rel, &key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_model::parser::{parse_instance, parse_query, parse_schema};
    use cqa_model::{Atom, RelName, Schema};
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Arc::new(parse_schema("R[2,1] S[2,1] T[1,1]").unwrap())
    }

    fn db() -> Instance {
        parse_instance(&schema(), "R(a,b) R(a,c) R(d,b) S(b,e) T(e)").unwrap()
    }

    fn fatom(s: &Arc<Schema>, text: &str) -> Formula {
        let q = parse_query(s, text).unwrap();
        Formula::Atom(q.atoms()[0].clone())
    }

    fn both(db: &Instance, f: &Formula) -> bool {
        let naive = eval_with(db, f, &Valuation::new(), Strategy::Naive);
        let guarded = eval_with(db, f, &Valuation::new(), Strategy::Guarded);
        assert_eq!(naive, guarded, "strategies disagree on {f}");
        naive
    }

    #[test]
    fn ground_atoms() {
        let s = schema();
        let f = fatom(&s, "R('a','b')");
        assert!(both(&db(), &f));
        let g = fatom(&s, "R('a','zzz')");
        assert!(!both(&db(), &g));
    }

    #[test]
    fn exists_guarded() {
        let s = schema();
        // ∃x∃y (R(x,y) ∧ S(y,e-var)) — the classical chain.
        let r = fatom(&s, "R(x,y)");
        let sf = fatom(&s, "S(y,z)");
        let f = Formula::exists(
            [Var::new("x"), Var::new("y"), Var::new("z")],
            Formula::and([r, sf]),
        );
        assert!(f.is_closed());
        assert!(both(&db(), &f));
    }

    #[test]
    fn forall_guarded() {
        let s = schema();
        // ∀x∀y (R(x,y) → y = 'b'): false, because R(a,c) exists.
        let r = fatom(&s, "R(x,y)");
        let f = Formula::forall(
            [Var::new("x"), Var::new("y")],
            Formula::implies(r.clone(), Formula::eq(Term::var("y"), Term::cst("b"))),
        );
        assert!(!both(&db(), &f));

        // ∀x∀y (R(x,y) → ∃z S(y,z)): false because S(c,·) is missing.
        let sf = fatom(&s, "S(y,z)");
        let g = Formula::forall(
            [Var::new("x"), Var::new("y")],
            Formula::implies(r, Formula::exists([Var::new("z")], sf)),
        );
        assert!(!both(&db(), &g));
    }

    #[test]
    fn paper_section8_rewriting_shape() {
        // ∃y (N(c,y) ∧ O(y)) ∧ ∀y (N(c,y) → P(y)) over the paper's instance.
        let s = Arc::new(parse_schema("N[2,1] O[1,1] P[1,1]").unwrap());
        let d = parse_instance(&s, "N(c,a) N(c,b) O(a) P(a) P(b)").unwrap();
        let n = |t: &str| {
            Formula::Atom(Atom::new(
                RelName::new("N"),
                vec![Term::cst("c"), Term::var(t)],
            ))
        };
        let o = Formula::Atom(Atom::new(RelName::new("O"), vec![Term::var("y")]));
        let p = Formula::Atom(Atom::new(RelName::new("P"), vec![Term::var("y")]));
        let f = Formula::and([
            Formula::exists([Var::new("y")], Formula::and([n("y"), o])),
            Formula::forall([Var::new("y")], Formula::implies(n("y"), p)),
        ]);
        assert!(both(&d, &f), "paper says this is a yes-instance");

        // Removing either P-fact turns it into a no-instance.
        for removed in ["a", "b"] {
            let mut d2 = d.clone();
            d2.remove(&cqa_model::Fact::from_names("P", &[removed]));
            assert!(!both(&d2, &f), "removing P({removed}) must flip the answer");
        }
    }

    #[test]
    fn quantifier_over_unguarded_var_falls_back() {
        let _s = schema();
        // ∃x (x = 'a'): no guard atom; relies on active-domain fallback.
        let f = Formula::exists(
            [Var::new("x")],
            Formula::Eq(Term::var("x"), Term::cst("a")),
        );
        assert!(both(&db(), &f));
    }

    #[test]
    fn negation_and_implication() {
        let s = schema();
        let f = Formula::not(fatom(&s, "T('zzz')"));
        assert!(both(&db(), &f));
        let g = Formula::implies(fatom(&s, "T('e')"), fatom(&s, "T('zzz')"));
        assert!(!both(&db(), &g));
    }

    #[test]
    fn empty_instance() {
        let s = schema();
        let d = Instance::new(s.clone());
        let f = Formula::exists([Var::new("x"), Var::new("y")], fatom(&s, "R(x,y)"));
        assert!(!both(&d, &f));
        let g = Formula::forall(
            [Var::new("x"), Var::new("y")],
            Formula::implies(fatom(&s, "R(x,y)"), Formula::False),
        );
        assert!(both(&d, &g));
    }

    #[test]
    fn quantifier_shadowing() {
        // Regression (found by proptest): ∃x (¬S(x) ∧ ∃x S(x)) — the inner
        // quantifier must shadow the outer binding of x, in the guarded
        // strategy too.
        let s = Arc::new(parse_schema("R[2,1] S[1,1]").unwrap());
        let d = parse_instance(&s, "R(a,b) S(a)").unwrap();
        let sx = Formula::Atom(Atom::new(RelName::new("S"), vec![Term::var("x")]));
        let f = Formula::Exists(
            vec![Var::new("x")],
            Box::new(Formula::And(vec![
                Formula::not(sx.clone()),
                Formula::Exists(vec![Var::new("x")], Box::new(sx)),
            ])),
        );
        assert!(both(&d, &f), "x = b satisfies ¬S(x), and S(a) witnesses ∃x S(x)");
    }

    #[test]
    fn free_variable_binding_respected() {
        let s = schema();
        let f = fatom(&s, "R(x,y)"); // free x, y
        let mut b = Valuation::new();
        b.insert(Var::new("x"), Cst::new("a"));
        b.insert(Var::new("y"), Cst::new("b"));
        assert!(eval_with(&db(), &f, &b, Strategy::Guarded));
        b.insert(Var::new("y"), Cst::new("zzz"));
        assert!(!eval_with(&db(), &f, &b, Strategy::Guarded));
    }
}
