//! Structural statistics of formulas — used to report rewriting sizes in
//! the experiment harness (rewriting growth is the practical cost of the
//! paper's reductions; cf. the prototype systems surveyed in §2).

use crate::ast::Formula;

/// Size and shape measurements of a formula.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FormulaStats {
    /// Total AST nodes.
    pub nodes: usize,
    /// Relational atoms.
    pub atoms: usize,
    /// Equality atoms.
    pub equalities: usize,
    /// Quantifier blocks (∃/∀).
    pub quantifier_blocks: usize,
    /// Quantified variables (counting every variable of every block).
    pub quantified_vars: usize,
    /// Maximum quantifier nesting depth (blocks, not variables).
    pub quantifier_depth: usize,
    /// Negations.
    pub negations: usize,
}

/// Computes [`FormulaStats`] for `f`.
pub fn stats(f: &Formula) -> FormulaStats {
    fn go(f: &Formula, depth: usize, s: &mut FormulaStats) {
        s.nodes += 1;
        s.quantifier_depth = s.quantifier_depth.max(depth);
        match f {
            Formula::True | Formula::False => {}
            Formula::Atom(_) => s.atoms += 1,
            Formula::Eq(_, _) => s.equalities += 1,
            Formula::Not(g) => {
                s.negations += 1;
                go(g, depth, s);
            }
            Formula::And(gs) | Formula::Or(gs) => {
                for g in gs {
                    go(g, depth, s);
                }
            }
            Formula::Implies(l, r) => {
                go(l, depth, s);
                go(r, depth, s);
            }
            Formula::Exists(vs, g) | Formula::Forall(vs, g) => {
                s.quantifier_blocks += 1;
                s.quantified_vars += vs.len();
                go(g, depth + 1, s);
            }
        }
    }
    let mut s = FormulaStats::default();
    go(f, 0, &mut s);
    s
}

impl std::fmt::Display for FormulaStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} nodes, {} atoms, {} equalities, {} quantifier blocks ({} vars, depth {})",
            self.nodes,
            self.atoms,
            self.equalities,
            self.quantifier_blocks,
            self.quantified_vars,
            self.quantifier_depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_model::{Atom, RelName, Term, Var};

    fn atom(rel: &str, vars: &[&str]) -> Formula {
        Formula::Atom(Atom::new(
            RelName::new(rel),
            vars.iter().map(|v| Term::var(v)).collect(),
        ))
    }

    #[test]
    fn counts_basic_shapes() {
        // ∃x (R(x,y) ∧ ∀y (S(y) → x = y))
        let f = Formula::Exists(
            vec![Var::new("x")],
            Box::new(Formula::And(vec![
                atom("R", &["x", "y"]),
                Formula::Forall(
                    vec![Var::new("y")],
                    Box::new(Formula::Implies(
                        Box::new(atom("S", &["y"])),
                        Box::new(Formula::Eq(Term::var("x"), Term::var("y"))),
                    )),
                ),
            ])),
        );
        let s = stats(&f);
        assert_eq!(s.atoms, 2);
        assert_eq!(s.equalities, 1);
        assert_eq!(s.quantifier_blocks, 2);
        assert_eq!(s.quantified_vars, 2);
        assert_eq!(s.quantifier_depth, 2);
        assert_eq!(s.negations, 0);
        assert!(s.to_string().contains("2 quantifier blocks"));
    }

    #[test]
    fn depth_is_nesting_not_count() {
        // Two sibling quantifiers: depth 1, blocks 2.
        let f = Formula::And(vec![
            Formula::Exists(vec![Var::new("x")], Box::new(atom("S", &["x"]))),
            Formula::Exists(vec![Var::new("y")], Box::new(atom("S", &["y"]))),
        ]);
        let s = stats(&f);
        assert_eq!(s.quantifier_blocks, 2);
        assert_eq!(s.quantifier_depth, 1);
    }

    #[test]
    fn constants_have_no_atoms() {
        let s = stats(&Formula::True);
        assert_eq!(s.nodes, 1);
        assert_eq!(s.atoms, 0);
    }
}
