//! Concurrency stress tests for the lazily built [`Instance::index`]: the
//! shard-parallel executor hands `&Instance` to pool workers that may all
//! take the *first* look at a fresh instance simultaneously, so the
//! `OnceLock` cache behind `index()` must be safe (and stable) under
//! concurrent first-touch, and the index-backed read paths
//! (`guarded_candidates`, `adom`, `contains`) must agree with a
//! sequentially warmed twin.

use cqa_model::{
    Binding, CompiledAtom, Cst, FactSource, Instance, RelName, SlotTerm,
};
use cqa_model::parser::parse_schema;
use std::collections::BTreeSet;
use std::sync::Arc;

const THREADS: usize = 8;
const ROUNDS: usize = 32;

fn fresh_db(round: usize) -> Instance {
    let schema = Arc::new(parse_schema("R[2,1] S[2,1]").unwrap());
    let mut db = Instance::new(schema);
    for i in 0..(8 + round % 5) {
        db.insert_named("R", &[&format!("k{}", i % 4), &format!("v{i}")])
            .unwrap();
        db.insert_named("S", &[&format!("v{i}"), &format!("w{i}")])
            .unwrap();
    }
    db
}

/// What a worker observes through the index: the identity of the cached
/// `InstanceIndex` plus the results of the read paths it backs.
fn probe(db: &Instance) -> (usize, usize, usize, bool) {
    let idx = db.index();
    let identity = idx as *const _ as usize;
    let atom = CompiledAtom {
        rel: RelName::new("R"),
        terms: vec![SlotTerm::Cst(Cst::new("k1")), SlotTerm::Slot(0)],
    };
    let binding = Binding::new(1);
    let mut scratch = Vec::new();
    let block = idx
        .guarded_candidates(&atom, &binding, &mut scratch)
        .len();
    let adom_len = db.adom().len();
    let member = idx.contains(RelName::new("S"), &[Cst::new("v0"), Cst::new("w0")]);
    (identity, block, adom_len, member)
}

#[test]
fn first_touch_of_the_index_is_safe_under_racing_threads() {
    for round in 0..ROUNDS {
        let db = fresh_db(round);
        // A sequentially warmed twin provides the expected observations.
        let twin = db.clone();
        let (_, expected_block, expected_adom, expected_member) = probe(&twin);

        // All threads race the *first* index build of `db`.
        let observations: Vec<(usize, usize, usize, bool)> =
            std::thread::scope(|s| {
                let handles: Vec<_> =
                    (0..THREADS).map(|_| s.spawn(|| probe(&db))).collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });

        let identities: BTreeSet<usize> =
            observations.iter().map(|&(id, ..)| id).collect();
        assert_eq!(
            identities.len(),
            1,
            "round {round}: racing threads must all see the same cached index"
        );
        for (i, &(_, block, adom_len, member)) in observations.iter().enumerate() {
            assert_eq!(block, expected_block, "round {round}, thread {i}: block");
            assert_eq!(adom_len, expected_adom, "round {round}, thread {i}: adom");
            assert_eq!(member, expected_member, "round {round}, thread {i}: contains");
        }
        // The winner's index stayed installed: a later sequential call
        // observes the same cache, not a rebuild.
        assert!(identities.contains(&(db.index() as *const _ as usize)));
    }
}

#[test]
fn racing_view_readers_agree_with_a_sequential_reader() {
    // Workers build per-thread views over one shared instance and read
    // through the FactSource surface while others are doing the same;
    // every observation must match the sequential one.
    let db = fresh_db(0);
    let view = cqa_model::InstanceView::new(&db);
    let atom = CompiledAtom {
        rel: RelName::new("R"),
        terms: vec![SlotTerm::Slot(0), SlotTerm::Slot(1)],
    };
    let binding = Binding::new(2);
    let mut scratch = Vec::new();
    let expected = FactSource::guarded_candidates(&view, &atom, &binding, &mut scratch).len();
    let mut expected_adom = BTreeSet::new();
    view.extend_adom(&mut expected_adom);

    std::thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| {
                for part in view.partition(RelName::new("R"), THREADS) {
                    let binding = Binding::new(2);
                    let mut scratch = Vec::new();
                    let got =
                        FactSource::guarded_candidates(&part, &atom, &binding, &mut scratch)
                            .len();
                    assert!(got <= expected, "a shard can never see extra rows");
                }
                let local = view.clone();
                let binding = Binding::new(2);
                let mut scratch = Vec::new();
                assert_eq!(
                    FactSource::guarded_candidates(&local, &atom, &binding, &mut scratch)
                        .len(),
                    expected
                );
                let mut adom = BTreeSet::new();
                local.extend_adom(&mut adom);
                assert_eq!(adom, expected_adom);
            });
        }
    });
}
