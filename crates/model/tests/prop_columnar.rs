//! Property tests for the columnar projection ([`ColumnarRelation`]):
//! along arbitrary insert/remove traces, the lazily cached projection
//! served by the instance index must equal a projection built from scratch
//! off the current rows (cache invalidation is exact — never stale, never
//! lossy), its column slices must reassemble exactly the live row set, and
//! its block directory must tile the sorted row order with contiguous,
//! key-ascending, non-overlapping ranges (the exact-cover law
//! [`InstanceView::partition`] shards on).

use cqa_model::parser::parse_schema;
use cqa_model::{ColumnarRelation, Cst, Instance, InstanceView, RelName};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Small pool so blocks fill up, empty out, and refill along a trace.
const POOL: [&str; 4] = ["a", "b", "c", "d"];

/// One trace step: insert (`op == 0`) or remove a fact of `R[2,1]`
/// (`rel == 0`) or `S[3,2]`, drawn from the pool by index.
type Step = (usize, usize, usize, usize, usize);

fn names_of(&(_, rel, a, b, c): &Step) -> (&'static str, Vec<&'static str>) {
    let p = |i: usize| POOL[i % POOL.len()];
    if rel == 0 {
        ("R", vec![p(a), p(b)])
    } else {
        ("S", vec![p(a), p(b), p(c)])
    }
}

fn empty_db() -> Instance {
    Instance::new(Arc::new(parse_schema("R[2,1] S[3,2]").unwrap()))
}

/// The projection rebuilt from the instance's current facts, bypassing the
/// index cache entirely.
fn fresh_projection(db: &Instance, rel: &str, key_len: usize, arity: usize) -> ColumnarRelation {
    let rows: Vec<Box<[Cst]>> = db
        .facts()
        .filter(|f| f.rel == RelName::new(rel))
        .map(|f| f.args.clone())
        .collect();
    ColumnarRelation::from_rows(key_len, arity, &rows)
}

/// The structural laws of one projection: columns aligned and key-sorted,
/// blocks a contiguous ascending exact cover, every block range internally
/// consistent with its key, and probes agreeing with the directory.
fn check_invariants(c: &ColumnarRelation) -> Result<(), TestCaseError> {
    for p in 0..c.arity() {
        prop_assert_eq!(c.column(p).len(), c.n_rows(), "column {} aligned", p);
    }
    let mut covered = 0usize;
    let mut prev_key: Option<Vec<Cst>> = None;
    for (key, range) in c.blocks() {
        prop_assert_eq!(range.start, covered, "blocks tile contiguously");
        prop_assert!(!range.is_empty(), "no empty block survives");
        covered = range.end;
        for i in range.clone() {
            for (p, &k) in key.iter().enumerate() {
                prop_assert_eq!(c.value(p, i), k, "key prefix matches block key");
            }
        }
        if let Some(prev) = &prev_key {
            prop_assert!(prev.as_slice() < key, "ascending key order");
        }
        prop_assert_eq!(
            c.block_range(key),
            Some(range),
            "probe agrees with the directory"
        );
        prev_key = Some(key.to_vec());
    }
    prop_assert_eq!(covered, c.n_rows(), "blocks form an exact cover");
    Ok(())
}

/// Reassembles the projection's rows into a multiset for comparison with
/// the row store.
fn row_multiset(c: &ColumnarRelation) -> BTreeMap<Vec<Cst>, usize> {
    let mut out: BTreeMap<Vec<Cst>, usize> = BTreeMap::new();
    let mut buf = Vec::new();
    for i in 0..c.n_rows() {
        c.copy_row_into(i, &mut buf);
        *out.entry(buf.clone()).or_insert(0) += 1;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 96,
        failure_persistence: Some(FileFailurePersistence::WithSource("proptest-regressions")),
        ..ProptestConfig::default()
    })]

    /// After every step of a mutation trace, the cached columnar projection
    /// equals a from-scratch rebuild off the live rows (so invalidation is
    /// exact), satisfies the structural laws, and reassembles to exactly
    /// the instance's fact set.
    #[test]
    fn cached_projection_matches_rebuild_along_any_trace(
        steps in proptest::collection::vec(
            (0..2usize, 0..2usize, 0..POOL.len(), 0..POOL.len(), 0..POOL.len()),
            0..40),
    ) {
        let mut db = empty_db();
        // Force the caches into existence so every later step exercises
        // invalidate-and-rebuild, not first-touch laziness.
        let _ = db.index().columnar(RelName::new("R"));
        let _ = db.index().columnar(RelName::new("S"));
        for step in &steps {
            let (rel, args) = names_of(step);
            if step.0 == 0 {
                db.insert_named(rel, &args).unwrap();
            } else {
                let fact = cqa_model::Fact::from_names(rel, &args);
                db.remove(&fact).unwrap();
            }
            for (rel, key_len, arity) in [("R", 1, 2), ("S", 2, 3)] {
                let fresh = fresh_projection(&db, rel, key_len, arity);
                let Some(cached) = db.index().columnar(RelName::new(rel)) else {
                    // `None` only before the relation ever held a row.
                    prop_assert!(fresh.is_empty());
                    continue;
                };
                prop_assert_eq!(
                    cached,
                    &fresh,
                    "cached projection of {} stale after {:?}",
                    rel,
                    step
                );
                check_invariants(cached)?;
                let facts: BTreeMap<Vec<Cst>, usize> = {
                    let mut out: BTreeMap<Vec<Cst>, usize> = BTreeMap::new();
                    for f in db.facts().filter(|f| f.rel == RelName::new(rel)) {
                        *out.entry(f.args.to_vec()).or_insert(0) += 1;
                    }
                    out
                };
                prop_assert_eq!(row_multiset(cached), facts);
            }
        }
    }

    /// The view-level partition law restated over column ranges: the shard
    /// views' block keys are exactly the projection's block directory, each
    /// exactly once, and each shard's rows for a key equal the projection's
    /// rows in that key's column range.
    #[test]
    fn partition_tiles_the_columnar_block_directory(
        picks in proptest::collection::vec(
            (Just(0usize), 0..2usize, 0..POOL.len(), 0..POOL.len(), 0..POOL.len()),
            0..24),
        n in 1..9usize,
    ) {
        let mut db = empty_db();
        for step in &picks {
            let (rel, args) = names_of(step);
            db.insert_named(rel, &args).unwrap();
        }
        for rel in [RelName::new("R"), RelName::new("S")] {
            let Some(columnar) = db.index().columnar(rel).cloned() else {
                // The relation never held a row: nothing to partition.
                prop_assert!(db.facts().all(|f| f.rel != rel));
                continue;
            };
            let view = InstanceView::new(&db);
            let mut seen: Vec<Vec<Cst>> = Vec::new();
            for shard in view.partition(rel, n) {
                for (key, rows) in shard.blocks(rel) {
                    seen.push(key.to_vec());
                    let range = columnar
                        .block_range(key)
                        .expect("every visible block is in the directory");
                    let mut expected: Vec<Vec<Cst>> = range
                        .map(|i| {
                            let mut buf = Vec::new();
                            columnar.copy_row_into(i, &mut buf);
                            buf
                        })
                        .collect();
                    let mut got: Vec<Vec<Cst>> =
                        rows.iter().map(|r| r.to_vec()).collect();
                    expected.sort();
                    got.sort();
                    prop_assert_eq!(got, expected, "shard rows = column range rows");
                }
            }
            seen.sort();
            let mut directory: Vec<Vec<Cst>> =
                columnar.blocks().map(|(k, _)| k.to_vec()).collect();
            directory.sort();
            prop_assert_eq!(
                seen,
                directory,
                "shards tile the block directory exactly once (n = {})",
                n
            );
        }
    }
}
