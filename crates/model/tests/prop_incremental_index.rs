//! Differential property tests for **incremental index maintenance**: on
//! randomized insert/remove traces (including remove-then-reinsert, blocks
//! emptied and refilled, and active-domain shrink), the in-place-patched
//! [`Instance`] index must stay canonically equal to a from-scratch
//! rebuild, the epoch must count exactly the effective mutations, and
//! batch [`Instance::apply`] must agree with op-by-op application.

use cqa_model::{Delta, Fact, Instance};
use proptest::prelude::*;
use std::sync::Arc;

/// Small pools so the same fact is inserted, removed and reinserted often,
/// blocks empty out, and constants leave the active domain entirely.
const POOL: [&str; 4] = ["a", "b", "c", "d"];

/// One trace step: insert (`op == 0`) or remove a fact of `R[2,1]`
/// (`rel == 0`) or `S[3,2]`, drawn from the pool by index. (The vendored
/// proptest has no `any::<bool>()`, so flags are `0..2usize`.)
type Step = (usize, usize, usize, usize, usize);

fn is_insert(&(op, ..): &Step) -> bool {
    op == 0
}

fn fact_of(&(_, rel, a, b, c): &Step) -> Fact {
    let p = |i: usize| POOL[i % POOL.len()];
    if rel == 0 {
        Fact::from_names("R", &[p(a), p(b)])
    } else {
        Fact::from_names("S", &[p(a), p(b), p(c)])
    }
}

fn empty_db() -> Instance {
    Instance::new(Arc::new(
        cqa_model::parser::parse_schema("R[2,1] S[3,2]").unwrap(),
    ))
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 96,
        failure_persistence: Some(FileFailurePersistence::WithSource("proptest-regressions")),
        ..ProptestConfig::default()
    })]

    /// After every step of a mutation trace, the patched index equals a
    /// from-scratch rebuild (canonical equality: same active domain, key
    /// constants, rows and blocks — physical row order is free), and the
    /// epoch advances iff the step changed the instance.
    #[test]
    fn patched_index_matches_rebuild_along_any_trace(
        steps in proptest::collection::vec(
            (0..2usize, 0..2usize, 0..POOL.len(), 0..POOL.len(), 0..POOL.len()),
            0..40),
    ) {
        let mut db = empty_db();
        // Force the cache into existence up front so every later step
        // exercises the in-place patch path, not a lazy rebuild.
        let _ = db.index();
        for step in &steps {
            let fact = fact_of(step);
            let epoch_before = db.epoch();
            let effective = if is_insert(step) {
                db.insert(fact).unwrap()
            } else {
                db.remove(&fact).unwrap()
            };
            prop_assert_eq!(
                db.epoch(),
                epoch_before + u64::from(effective),
                "epoch must count exactly the effective mutations"
            );
            prop_assert!(
                *db.index() == db.rebuild_index(),
                "patched index diverged from rebuild after {:?}",
                step
            );
        }
        // The derived views agree with the rebuild too.
        let rebuilt = db.rebuild_index();
        prop_assert_eq!(db.adom(), rebuilt.adom_set());
        prop_assert_eq!(db.key_consts(), rebuilt.key_consts_set());
    }

    /// Batch `apply` ≡ op-by-op insert/remove: same final contents, same
    /// effective-mutation count, same (canonical) index.
    #[test]
    fn apply_agrees_with_op_by_op_application(
        prefix in proptest::collection::vec(
            (Just(0usize), 0..2usize, 0..POOL.len(), 0..POOL.len(), 0..POOL.len()),
            0..10),
        steps in proptest::collection::vec(
            (0..2usize, 0..2usize, 0..POOL.len(), 0..POOL.len(), 0..POOL.len()),
            0..20),
    ) {
        // A shared non-empty starting point so removes sometimes hit.
        let mut base = empty_db();
        for step in &prefix {
            base.insert(fact_of(step)).unwrap();
        }
        let _ = base.index();

        let mut delta = Delta::new();
        for step in &steps {
            if is_insert(step) {
                delta.insert(fact_of(step));
            } else {
                delta.remove(fact_of(step));
            }
        }

        let mut batched = base.clone();
        let effective = batched.apply(&delta).unwrap();

        let mut one_by_one = base.clone();
        let mut expected_effective = 0;
        for step in &steps {
            let fact = fact_of(step);
            let changed = if is_insert(step) {
                one_by_one.insert(fact).unwrap()
            } else {
                one_by_one.remove(&fact).unwrap()
            };
            expected_effective += usize::from(changed);
        }

        prop_assert_eq!(effective, expected_effective);
        prop_assert_eq!(batched.len(), one_by_one.len());
        prop_assert_eq!(batched.epoch(), one_by_one.epoch());
        prop_assert!(
            batched.symmetric_difference(&one_by_one).is_empty(),
            "batched and op-by-op application disagree on contents"
        );
        prop_assert!(batched.rebuild_index() == one_by_one.rebuild_index());
        prop_assert!(*batched.index() == batched.rebuild_index());
    }

    /// A remove-then-reinsert round trip is contents-neutral but never
    /// epoch-neutral: the instance looks the same, the history does not.
    #[test]
    fn remove_reinsert_round_trip_is_content_neutral(
        prefix in proptest::collection::vec(
            (Just(0usize), 0..2usize, 0..POOL.len(), 0..POOL.len(), 0..POOL.len()),
            1..12),
        victim in 0..12usize,
    ) {
        let mut db = empty_db();
        for step in &prefix {
            db.insert(fact_of(step)).unwrap();
        }
        let _ = db.index();
        let snapshot = db.rebuild_index();
        let epoch = db.epoch();

        let fact = fact_of(&prefix[victim % prefix.len()]);
        prop_assert!(db.remove(&fact).unwrap());
        prop_assert!(*db.index() == db.rebuild_index());
        prop_assert!(db.insert(fact).unwrap());

        prop_assert!(*db.index() == snapshot, "round trip must restore the index");
        prop_assert_eq!(db.epoch(), epoch + 2, "two effective mutations");
    }
}
