//! Round-trip tests for the `cqa-model` text syntax: whatever the `Display`
//! impls print, the parsers must read back to an equal value — and malformed
//! input must fail with a parse error, not a panic or a silently-wrong value.

use cqa_model::parser::{parse_fact, parse_fks, parse_instance, parse_query, parse_schema};
use cqa_model::{Fact, ModelError, RelName};
use proptest::prelude::*;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Display → re-parse round trips
// ---------------------------------------------------------------------------

#[test]
fn schema_display_reparses() {
    for text in [
        "R[1,1]",
        "R[3,2] S[2,1]",
        "N[3,1] O[1,1] T[2,1]",
        "DOCS[3,1] AUTHORS[3,1] R[2,2]",
    ] {
        let schema = parse_schema(text).unwrap();
        let printed = schema.to_string();
        let reparsed = parse_schema(&printed).unwrap();
        assert_eq!(
            reparsed.to_string(),
            printed,
            "schema {text:?} did not round-trip via {printed:?}"
        );
        for (rel, sig) in schema.relations() {
            let b = reparsed.signature(rel).unwrap();
            assert_eq!((sig.arity, sig.key_len), (b.arity, b.key_len));
        }
    }
}

#[test]
fn query_display_reparses() {
    let schema = Arc::new(parse_schema("N[3,1] O[1,1] T[2,1]").unwrap());
    for text in [
        "N(x, 'c', y), O(y)",
        "N(x, y, z), O(y), T(z, x)",
        "N('a', 'b', 'c')",
        "T(x, x)",
        "N(x, 2016, y)",
    ] {
        let q = parse_query(&schema, text).unwrap();
        // Query Display is the paper's set notation `{atom, …}`; the braces
        // are decoration around the parseable atom list.
        let printed = q.to_string();
        let inner = printed.trim_start_matches('{').trim_end_matches('}');
        let reparsed = parse_query(&schema, inner)
            .unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
        assert_eq!(reparsed, q, "query {text:?} did not round-trip via {printed:?}");
    }
}

#[test]
fn fks_display_reparses() {
    let schema = Arc::new(parse_schema("N[3,1] O[1,1] T[2,1]").unwrap());
    for text in ["N[3] -> O", "N[3] -> O, T[2] -> O", "N[2] → O, N[3] → O"] {
        let fks = parse_fks(&schema, text).unwrap();
        // FkSet Display is `{N[3] → O, …}`; strip the set braces.
        let printed = fks.to_string();
        let inner = printed.trim_start_matches('{').trim_end_matches('}');
        let reparsed = parse_fks(&schema, inner)
            .unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
        assert_eq!(reparsed, fks, "FKs {text:?} did not round-trip via {printed:?}");
    }
}

#[test]
fn empty_fk_set_round_trips() {
    let schema = Arc::new(parse_schema("R[2,1]").unwrap());
    let fks = parse_fks(&schema, "").unwrap();
    assert_eq!(fks.len(), 0);
    let printed = fks.to_string();
    let inner = printed.trim_start_matches('{').trim_end_matches('}');
    let reparsed = parse_fks(&schema, inner).unwrap();
    assert_eq!(reparsed, fks);
}

#[test]
fn fact_display_reparses() {
    for text in [
        "R(a, b)",
        "AUTHORS(o1, 'Jeff', 'Ullman')",
        "S(1, 2, 3)",
        "O(v0)",
    ] {
        let f = parse_fact(text).unwrap();
        let printed = f.to_string();
        let reparsed = parse_fact(&printed)
            .unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
        assert_eq!(reparsed, f, "fact {text:?} did not round-trip via {printed:?}");
    }
}

#[test]
fn instance_display_reparses() {
    let schema = Arc::new(parse_schema("R[2,1] S[2,1]").unwrap());
    let db = parse_instance(&schema, "R(a,1); R(a,2); S(1,x); S(2,y)").unwrap();
    // Instance Display is `{fact, fact, …}`; the braces are decoration.
    let printed = db.to_string();
    let inner = printed.trim_start_matches('{').trim_end_matches('}');
    let reparsed = parse_instance(&schema, inner).unwrap();
    assert_eq!(reparsed, db);
}

// ---------------------------------------------------------------------------
// Error paths: malformed input is an Err, never a panic
// ---------------------------------------------------------------------------

fn is_parse_err(e: &ModelError) -> bool {
    matches!(e, ModelError::Parse { .. })
}

#[test]
fn malformed_schema_signatures() {
    // Lexical/grammatical breakage → ModelError::Parse.
    for text in [
        "R[",          // truncated signature
        "R[2",         // unclosed bracket
        "R[2,]",       // missing key length
        "R[a,1]",      // non-numeric arity
        "R[2,1",       // unclosed bracket after both numbers
        "R(2,1)",      // wrong bracket kind
        "[2,1]",       // missing relation name
        "R[2,1] !",    // trailing garbage
        "R#x[2,1]",    // reserved character in name
    ] {
        let e = parse_schema(text).unwrap_err();
        assert!(
            is_parse_err(&e),
            "schema {text:?}: expected a parse error, got {e:?}"
        );
    }
    // Well-formed text, ill-formed signature → a (non-parse) model error.
    for text in ["R[0,0]", "R[2,3]", "R[2,0]", "R[1,1] R[2,2]"] {
        assert!(parse_schema(text).is_err(), "schema {text:?} must be rejected");
    }
}

#[test]
fn malformed_queries() {
    let schema = Arc::new(parse_schema("R[2,1] S[1,1]").unwrap());
    for text in [
        "R(x",          // unclosed atom
        "R(x,)",        // dangling comma
        "R x,y)",       // missing '('
        "R(x y)",       // missing separator
        "R(x, 'c)",     // unterminated quote
        "R(x,y) -> S",  // arrow does not belong in a query
    ] {
        let e = parse_query(&schema, text).unwrap_err();
        assert!(
            is_parse_err(&e),
            "query {text:?}: expected a parse error, got {e:?}"
        );
    }
    // Grammar-valid but semantically invalid.
    assert!(parse_query(&schema, "Unknown(x)").is_err(), "unknown relation");
    assert!(parse_query(&schema, "R(x)").is_err(), "arity mismatch");
    assert!(parse_query(&schema, "R(x,y), R(y,x)").is_err(), "self-join");
}

#[test]
fn malformed_fks() {
    let schema = Arc::new(parse_schema("N[3,1] O[1,1] P[2,2]").unwrap());
    for text in ["N[3] ->", "N[3] O", "N -> O", "N[] -> O", "N[3] -> [1]"] {
        let e = parse_fks(&schema, text).unwrap_err();
        assert!(
            is_parse_err(&e),
            "FKs {text:?}: expected a parse error, got {e:?}"
        );
    }
    // Composite-key target and out-of-range position are semantic errors.
    assert!(parse_fks(&schema, "N[3] -> P").is_err(), "composite-key target");
    assert!(parse_fks(&schema, "N[9] -> O").is_err(), "position out of range");
}

#[test]
fn malformed_facts_and_instances() {
    let schema = Arc::new(parse_schema("R[2,1]").unwrap());
    assert!(parse_fact("R(a").is_err());
    assert!(parse_fact("(a, b)").is_err());
    assert!(parse_instance(&schema, "R(a)").is_err(), "arity mismatch");
    assert!(parse_instance(&schema, "Q(a, b)").is_err(), "unknown relation");
    assert!(parse_instance(&schema, "R(a#0, b)").is_err(), "reserved char");
}

// ---------------------------------------------------------------------------
// Property: random identifier pools survive the full print/parse cycle
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 128,
        failure_persistence: Some(FileFailurePersistence::WithSource("proptest-regressions")),
        ..ProptestConfig::default()
    })]

    #[test]
    fn random_facts_round_trip(
        rel in 0..2usize,
        args in proptest::collection::vec("[a-z][a-z0-9_]{0,8}", 2),
    ) {
        let name = if rel == 0 { "R" } else { "S" };
        let refs: Vec<&str> = args.iter().map(String::as_str).collect();
        let f = Fact::from_names(name, &refs);
        let printed = f.to_string();
        let reparsed = parse_fact(&printed).unwrap();
        prop_assert_eq!(reparsed, f);
    }

    #[test]
    fn random_schemas_round_trip(arity in 1..6usize, key_len_off in 0..5usize) {
        let key_len = 1 + key_len_off.min(arity - 1);
        let text = format!("R[{arity},{key_len}]");
        let schema = parse_schema(&text).unwrap();
        let reparsed = parse_schema(&schema.to_string()).unwrap();
        let sig = reparsed.signature(RelName::new("R")).unwrap();
        prop_assert_eq!((sig.arity, sig.key_len), (arity, key_len));
    }
}
