//! Property tests for [`InstanceView::partition`]: for every generated
//! instance, relation, filter and width, the parts form an **exact cover**
//! of the view's visible blocks — no block key is duplicated across parts,
//! none is dropped, every part's rows equal the original block's rows, and
//! relations other than the partitioned one are untouched.

use cqa_model::parser::parse_schema;
use cqa_model::{Cst, Instance, InstanceView, RelName};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::sync::Arc;

/// Value pool for key and payload positions: few enough values that
/// multi-fact blocks are common.
const POOL: [&str; 5] = ["a", "b", "c", "d", "e"];

/// One generated fact of `R[2,1]` or `S[3,2]`, as pool indices.
type Pick = (bool, usize, usize, usize);

fn build_db(picks: &[Pick]) -> Instance {
    let schema = Arc::new(parse_schema("R[2,1] S[3,2]").unwrap());
    let mut db = Instance::new(schema);
    for &(is_r, a, b, c) in picks {
        if is_r {
            db.insert_named("R", &[POOL[a % POOL.len()], POOL[b % POOL.len()]])
                .unwrap();
        } else {
            db.insert_named(
                "S",
                &[POOL[a % POOL.len()], POOL[b % POOL.len()], POOL[c % POOL.len()]],
            )
            .unwrap();
        }
    }
    db
}

/// The visible blocks of `rel` as a canonical map `key → rows`.
fn block_map(view: &InstanceView<'_>, rel: RelName) -> BTreeMap<Vec<Cst>, BTreeSet<Vec<Cst>>> {
    view.blocks(rel)
        .into_iter()
        .map(|(k, rows)| {
            (
                k.to_vec(),
                rows.into_iter().map(|r| r.to_vec()).collect(),
            )
        })
        .collect()
}

fn check_exact_cover(
    view: &InstanceView<'_>,
    rel: RelName,
    n: usize,
) -> Result<(), TestCaseError> {
    let whole = block_map(view, rel);
    let parts = view.partition(rel, n);
    prop_assert!(
        parts.len() <= n.max(1),
        "{} parts for n = {n}",
        parts.len()
    );
    prop_assert!(
        parts.len() <= whole.len(),
        "more parts ({}) than blocks ({})",
        parts.len(),
        whole.len()
    );
    if !whole.is_empty() {
        prop_assert!(!parts.is_empty(), "nonempty view must produce parts");
        prop_assert_eq!(parts.len(), n.max(1).min(whole.len()));
    }
    let mut seen: BTreeMap<Vec<Cst>, BTreeSet<Vec<Cst>>> = BTreeMap::new();
    for part in &parts {
        prop_assert!(!part.blocks(rel).is_empty(), "no part may be empty");
        for (key, rows) in block_map(part, rel) {
            prop_assert!(
                seen.insert(key.clone(), rows).is_none(),
                "block {:?} duplicated across parts",
                key
            );
        }
    }
    prop_assert_eq!(seen, whole, "parts must cover exactly the visible blocks");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 96,
        failure_persistence: Some(FileFailurePersistence::WithSource("proptest-regressions")),
        ..ProptestConfig::default()
    })]

    #[test]
    fn partition_is_an_exact_cover_of_the_full_view(
        picks in proptest::collection::vec(
            (true, 0..POOL.len(), 0..POOL.len(), 0..POOL.len()), 0..24),
        n in 0..12usize,
    ) {
        let db = build_db(&picks);
        let view = InstanceView::new(&db);
        for rel in ["R", "S"] {
            check_exact_cover(&view, RelName::new(rel), n)?;
        }
    }

    #[test]
    fn partition_is_an_exact_cover_of_a_filtered_view(
        picks in proptest::collection::vec(
            (true, 0..POOL.len(), 0..POOL.len(), 0..POOL.len()), 0..24),
        keep in proptest::collection::vec(0..POOL.len(), 0..4),
        n in 0..12usize,
    ) {
        // Pre-filter R to a subset of its possible keys (possibly empty,
        // possibly naming keys with no block): the partition must cover
        // exactly the *surviving* blocks.
        let db = build_db(&picks);
        let keys: HashSet<Box<[Cst]>> = keep
            .iter()
            .map(|&i| vec![Cst::new(POOL[i])].into_boxed_slice())
            .collect();
        let rel = RelName::new("R");
        let view = InstanceView::new(&db).with_block_filter(rel, keys);
        check_exact_cover(&view, rel, n)?;
        // Partitioning R leaves S untouched in every part.
        let s = RelName::new("S");
        let s_blocks = block_map(&view, s);
        for part in view.partition(rel, n) {
            prop_assert_eq!(block_map(&part, s), s_blocks.clone());
        }
    }

    #[test]
    fn partition_of_a_hidden_relation_is_empty(
        picks in proptest::collection::vec(
            (true, 0..POOL.len(), 0..POOL.len(), 0..POOL.len()), 0..12),
        n in 0..6usize,
    ) {
        let db = build_db(&picks);
        let rel = RelName::new("R");
        let view = InstanceView::new(&db).hide(rel);
        prop_assert!(view.partition(rel, n).is_empty());
    }
}
