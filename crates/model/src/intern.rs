//! Process-global string interner and the interned symbol types.
//!
//! Constants ([`Cst`]) and variables ([`Var`]) are thin wrappers over an
//! interned symbol ([`Sym`]). Interning makes equality O(1) and keeps facts
//! compact (`u32` per value). Ordering compares the *resolved strings*, so
//! canonical orders are stable across runs regardless of interning order.

use parking_lot::RwLock;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, OnceLock};

/// An interned string symbol.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sym(u32);

struct Interner {
    map: HashMap<Arc<str>, u32>,
    strings: Vec<Arc<str>>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

static FRESH_COUNTER: AtomicU64 = AtomicU64::new(0);

impl Sym {
    /// Interns `s`, returning its symbol. Idempotent.
    pub fn intern(s: &str) -> Sym {
        {
            let guard = interner().read();
            if let Some(&id) = guard.map.get(s) {
                return Sym(id);
            }
        }
        let mut guard = interner().write();
        if let Some(&id) = guard.map.get(s) {
            return Sym(id);
        }
        let arc: Arc<str> = Arc::from(s);
        let id = u32::try_from(guard.strings.len()).expect("interner overflow");
        guard.strings.push(arc.clone());
        guard.map.insert(arc, id);
        Sym(id)
    }

    /// Resolves the symbol back to its string.
    pub fn resolve(self) -> Arc<str> {
        interner().read().strings[self.0 as usize].clone()
    }

    /// Interns a globally fresh symbol of the form `{prefix}#{n}`.
    ///
    /// The `#` character is reserved: the parser rejects it in user input, so
    /// fresh symbols can never collide with user-visible names.
    pub fn fresh(prefix: &str) -> Sym {
        let n = FRESH_COUNTER.fetch_add(1, AtomicOrdering::Relaxed);
        Sym::intern(&format!("{prefix}#{n}"))
    }

    /// Whether this symbol was produced by [`Sym::fresh`].
    pub fn is_fresh(self) -> bool {
        self.resolve().contains('#')
    }
}

impl PartialOrd for Sym {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Sym {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.0 == other.0 {
            return Ordering::Equal;
        }
        self.resolve().cmp(&other.resolve())
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.resolve())
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.resolve())
    }
}

/// An interned database **constant**.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cst(pub Sym);

/// Prefix marking a *parameter constant*: a query variable temporarily frozen
/// as a constant during rewriting construction (see `cqa-attack`).
const PARAM_PREFIX: char = '\u{a7}'; // '§'

impl Cst {
    /// Interns a constant by name.
    pub fn new(name: &str) -> Cst {
        Cst(Sym::intern(name))
    }

    /// A globally fresh constant (used by the chase and by repairs that must
    /// invent values; cf. the paper's "fresh constants").
    pub fn fresh(prefix: &str) -> Cst {
        Cst(Sym::fresh(prefix))
    }

    /// Whether this constant was invented by [`Cst::fresh`].
    pub fn is_fresh(self) -> bool {
        self.0.is_fresh()
    }

    /// Freezes a variable as a *parameter constant* (`§x`). Analysis code then
    /// treats it as an ordinary constant; [`Cst::as_param`] recovers the
    /// variable when emitting first-order formulas.
    pub fn param(v: Var) -> Cst {
        Cst(Sym::intern(&format!("{PARAM_PREFIX}{}", v.0.resolve())))
    }

    /// If this is a parameter constant, the variable it froze.
    pub fn as_param(self) -> Option<Var> {
        let s = self.0.resolve();
        let mut chars = s.chars();
        if chars.next() == Some(PARAM_PREFIX) {
            Some(Var::new(chars.as_str()))
        } else {
            None
        }
    }

    /// The constant's name.
    pub fn name(self) -> Arc<str> {
        self.0.resolve()
    }
}

impl fmt::Debug for Cst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "'{}'", self.0)
    }
}

impl fmt::Display for Cst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An interned query **variable**.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub Sym);

impl Var {
    /// Interns a variable by name.
    pub fn new(name: &str) -> Var {
        Var(Sym::intern(name))
    }

    /// A globally fresh variable (used when constructing rewritings).
    pub fn fresh(prefix: &str) -> Var {
        Var(Sym::fresh(prefix))
    }

    /// The variable's name.
    pub fn name(self) -> Arc<str> {
        self.0.resolve()
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_round_trip() {
        let a = Sym::intern("hello");
        let b = Sym::intern("hello");
        assert_eq!(a, b);
        assert_eq!(&*a.resolve(), "hello");
    }

    #[test]
    fn distinct_strings_distinct_syms() {
        assert_ne!(Sym::intern("a"), Sym::intern("b"));
    }

    #[test]
    fn ord_is_string_order() {
        let z = Sym::intern("zzz_first_interned");
        let a = Sym::intern("aaa_second_interned");
        assert!(a < z, "ordering must follow strings, not intern ids");
    }

    #[test]
    fn fresh_symbols_are_unique() {
        let a = Sym::fresh("f");
        let b = Sym::fresh("f");
        assert_ne!(a, b);
        assert!(a.is_fresh());
        assert!(!Sym::intern("plain").is_fresh());
    }

    #[test]
    fn param_round_trip() {
        let x = Var::new("x");
        let p = Cst::param(x);
        assert_eq!(p.as_param(), Some(x));
        assert_eq!(Cst::new("x").as_param(), None);
    }

    #[test]
    fn cst_var_display() {
        assert_eq!(Var::new("y").to_string(), "y");
        assert_eq!(Cst::new("c").to_string(), "c");
        assert_eq!(format!("{:?}", Cst::new("c")), "'c'");
    }
}
