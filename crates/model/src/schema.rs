//! Database schemas: relation names with signatures `[n, k]`.
//!
//! Following the paper (§3), every relation name is associated with a
//! signature `[n, k]` where `n ≥ 1` is the arity and `k ∈ [n]`; the set
//! `{1, …, k}` is the primary key. The paper assumes a fixed schema; here a
//! [`Schema`] is an explicit value shared by queries and instances.

use crate::error::ModelError;
use crate::intern::Sym;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// An interned relation name.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelName(pub Sym);

impl RelName {
    /// Interns a relation name.
    pub fn new(name: &str) -> RelName {
        RelName(Sym::intern(name))
    }

    /// The relation's name.
    pub fn name(self) -> Arc<str> {
        self.0.resolve()
    }
}

impl fmt::Debug for RelName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for RelName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A relation signature `[n, k]`: arity `n`, primary key = positions `1..=k`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Signature {
    /// Arity `n ≥ 1`.
    pub arity: usize,
    /// Key length `k` with `1 ≤ k ≤ n`.
    pub key_len: usize,
}

impl Signature {
    /// Creates a signature, validating `1 ≤ k ≤ n`.
    pub fn new(arity: usize, key_len: usize) -> Result<Signature, ModelError> {
        if arity == 0 || key_len == 0 || key_len > arity {
            return Err(ModelError::BadSignature {
                rel: String::new(),
                arity,
                key_len,
            });
        }
        Ok(Signature { arity, key_len })
    }

    /// Number of non-primary-key positions.
    pub fn nonkey_len(self) -> usize {
        self.arity - self.key_len
    }

    /// Whether 1-based position `i` is a primary-key position.
    pub fn is_key_pos(self, i: usize) -> bool {
        (1..=self.key_len).contains(&i)
    }

    /// Iterator over the 1-based primary-key positions `1..=k`.
    pub fn key_positions(self) -> impl Iterator<Item = usize> {
        1..=self.key_len
    }

    /// Iterator over the 1-based non-primary-key positions `k+1..=n`.
    pub fn nonkey_positions(self) -> impl Iterator<Item = usize> {
        (self.key_len + 1)..=self.arity
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.arity, self.key_len)
    }
}

/// A position `(R, i)` of the schema, `i` 1-based — a vertex of the paper's
/// dependency graph (§3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Position {
    /// Relation name.
    pub rel: RelName,
    /// 1-based attribute index.
    pub idx: usize,
}

impl Position {
    /// Creates a position.
    pub fn new(rel: RelName, idx: usize) -> Position {
        Position { rel, idx }
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.rel, self.idx)
    }
}

/// A finite set of relation names with signatures.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schema {
    rels: BTreeMap<RelName, Signature>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Schema {
        Schema::default()
    }

    /// Declares relation `name` with signature `[arity, key_len]`.
    ///
    /// Re-declaring with the same signature is a no-op; re-declaring with a
    /// different one is an error.
    pub fn add(&mut self, name: &str, arity: usize, key_len: usize) -> Result<RelName, ModelError> {
        let sig = Signature::new(arity, key_len).map_err(|_| ModelError::BadSignature {
            rel: name.to_string(),
            arity,
            key_len,
        })?;
        let rel = RelName::new(name);
        match self.rels.get(&rel) {
            Some(existing) if *existing != sig => {
                Err(ModelError::ConflictingSignature(name.to_string()))
            }
            _ => {
                self.rels.insert(rel, sig);
                Ok(rel)
            }
        }
    }

    /// The signature of `rel`, if declared.
    pub fn signature(&self, rel: RelName) -> Option<Signature> {
        self.rels.get(&rel).copied()
    }

    /// The signature of `rel`, or an error.
    pub fn expect(&self, rel: RelName) -> Result<Signature, ModelError> {
        self.signature(rel)
            .ok_or_else(|| ModelError::UnknownRelation(rel.name().to_string()))
    }

    /// Whether `rel` is declared.
    pub fn contains(&self, rel: RelName) -> bool {
        self.rels.contains_key(&rel)
    }

    /// All declared relations in name order.
    pub fn relations(&self) -> impl Iterator<Item = (RelName, Signature)> + '_ {
        self.rels.iter().map(|(r, s)| (*r, *s))
    }

    /// Number of declared relations.
    pub fn len(&self) -> usize {
        self.rels.len()
    }

    /// Whether the schema is empty.
    pub fn is_empty(&self) -> bool {
        self.rels.is_empty()
    }

    /// All positions `(R, i)` of the schema, in canonical order.
    pub fn positions(&self) -> Vec<Position> {
        let mut out = Vec::new();
        for (rel, sig) in self.relations() {
            for i in 1..=sig.arity {
                out.push(Position::new(rel, i));
            }
        }
        out
    }

    /// Restriction of the schema to the given relations.
    pub fn restrict(&self, keep: impl Fn(RelName) -> bool) -> Schema {
        Schema {
            rels: self
                .rels
                .iter()
                .filter(|(r, _)| keep(**r))
                .map(|(r, s)| (*r, *s))
                .collect(),
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (rel, sig) in self.relations() {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            write!(f, "{rel}{sig}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signature_validation() {
        assert!(Signature::new(3, 2).is_ok());
        assert!(Signature::new(3, 0).is_err());
        assert!(Signature::new(3, 4).is_err());
        assert!(Signature::new(0, 0).is_err());
    }

    #[test]
    fn signature_positions() {
        let sig = Signature::new(4, 2).unwrap();
        assert_eq!(sig.key_positions().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(sig.nonkey_positions().collect::<Vec<_>>(), vec![3, 4]);
        assert!(sig.is_key_pos(1));
        assert!(!sig.is_key_pos(3));
        assert_eq!(sig.nonkey_len(), 2);
    }

    #[test]
    fn schema_add_and_lookup() {
        let mut s = Schema::new();
        let r = s.add("R", 3, 2).unwrap();
        assert_eq!(s.signature(r), Some(Signature { arity: 3, key_len: 2 }));
        // idempotent re-declaration
        assert!(s.add("R", 3, 2).is_ok());
        // conflicting re-declaration
        assert!(matches!(
            s.add("R", 2, 1),
            Err(ModelError::ConflictingSignature(_))
        ));
        assert!(s.expect(RelName::new("Zzz")).is_err());
    }

    #[test]
    fn schema_positions_enumeration() {
        let mut s = Schema::new();
        s.add("R", 2, 1).unwrap();
        s.add("S", 1, 1).unwrap();
        let ps = s.positions();
        assert_eq!(ps.len(), 3);
        assert!(ps.contains(&Position::new(RelName::new("R"), 2)));
    }

    #[test]
    fn schema_display_matches_paper_notation() {
        let mut s = Schema::new();
        s.add("R", 3, 2).unwrap();
        s.add("S", 2, 1).unwrap();
        assert_eq!(s.to_string(), "R[3, 2] S[2, 1]");
    }

    #[test]
    fn schema_restrict() {
        let mut s = Schema::new();
        s.add("R", 2, 1).unwrap();
        s.add("S", 1, 1).unwrap();
        let r = s.restrict(|rel| rel == RelName::new("R"));
        assert_eq!(r.len(), 1);
        assert!(r.contains(RelName::new("R")));
        assert!(!r.contains(RelName::new("S")));
    }
}
