//! Slot-indexed bindings for compiled evaluation.
//!
//! The interpretive evaluators in this workspace historically carried a
//! [`crate::Valuation`] (`BTreeMap<Var, Cst>`) through every recursion and
//! cloned it per candidate. Compiled evaluation numbers the variables of a
//! query or formula into dense *slots* once, so the hot loops work on a
//! [`Binding`] — a flat slot array with O(1) get/set and explicit undo —
//! and never touch a map or allocate per candidate.
//!
//! Shadowing is resolved at compile time: a quantifier that rebinds an
//! outer variable gets a *fresh* slot, so the runtime never needs to save
//! and restore map entries.

use crate::intern::Cst;
use crate::schema::RelName;

/// A dense variable slot assigned at compile time.
pub type Slot = u32;

/// A compiled term: either a constant or a reference to a binding slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotTerm {
    /// A constant.
    Cst(Cst),
    /// The value currently held by a slot (if any).
    Slot(Slot),
}

/// A relational atom with slot-numbered terms — the compiled form shared by
/// the conjunctive-query join ([`crate::eval::CompiledQuery`]) and the
/// formula evaluator (`cqa-fo`).
#[derive(Clone, Debug)]
pub struct CompiledAtom {
    /// The relation.
    pub rel: RelName,
    /// The atom's terms, slot-numbered.
    pub terms: Vec<SlotTerm>,
}

/// A flat partial assignment of constants to slots.
#[derive(Clone, Debug, Default)]
pub struct Binding {
    slots: Vec<Option<Cst>>,
}

impl Binding {
    /// An all-unbound binding with `n` slots.
    pub fn new(n: usize) -> Binding {
        Binding {
            slots: vec![None; n],
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the binding has no slots at all.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The value of a slot.
    #[inline]
    pub fn get(&self, s: Slot) -> Option<Cst> {
        self.slots[s as usize]
    }

    /// Binds a slot.
    #[inline]
    pub fn set(&mut self, s: Slot, c: Cst) {
        self.slots[s as usize] = Some(c);
    }

    /// Unbinds a slot.
    #[inline]
    pub fn clear(&mut self, s: Slot) {
        self.slots[s as usize] = None;
    }

    /// Resolves a compiled term under this binding.
    #[inline]
    pub fn resolve(&self, t: SlotTerm) -> Option<Cst> {
        match t {
            SlotTerm::Cst(c) => Some(c),
            SlotTerm::Slot(s) => self.get(s),
        }
    }

    /// Unifies compiled terms against a database row in place, recording
    /// every slot it binds on `trail`. Fails (and undoes its partial
    /// progress) on length mismatch, constant mismatch, or an inconsistent
    /// repeated slot.
    pub fn unify_row(&mut self, terms: &[SlotTerm], row: &[Cst], trail: &mut Trail) -> bool {
        if terms.len() != row.len() {
            return false;
        }
        let frame = trail.frame();
        for (t, &a) in terms.iter().zip(row) {
            let ok = match *t {
                SlotTerm::Cst(c) => c == a,
                SlotTerm::Slot(s) => match self.get(s) {
                    Some(bound) => bound == a,
                    None => {
                        self.set(s, a);
                        trail.push(s);
                        true
                    }
                },
            };
            if !ok {
                trail.undo_to(frame, self);
                return false;
            }
        }
        true
    }
}

/// An undo trail: slots bound since a frame marker, cleared in bulk.
///
/// Guard unification binds slots as it walks a candidate row; on backtrack
/// the evaluator truncates the trail back to the frame it opened, unbinding
/// exactly the slots that unification touched.
#[derive(Clone, Debug, Default)]
pub struct Trail {
    touched: Vec<Slot>,
}

impl Trail {
    /// An empty trail.
    pub fn new() -> Trail {
        Trail::default()
    }

    /// Opens a frame: a marker to later [`Trail::undo_to`].
    #[inline]
    pub fn frame(&self) -> usize {
        self.touched.len()
    }

    /// Records that `slot` was bound in the current frame.
    #[inline]
    pub fn push(&mut self, slot: Slot) {
        self.touched.push(slot);
    }

    /// Unbinds everything recorded since `frame`.
    #[inline]
    pub fn undo_to(&mut self, frame: usize, binding: &mut Binding) {
        for &s in &self.touched[frame..] {
            binding.clear(s);
        }
        self.touched.truncate(frame);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut b = Binding::new(3);
        assert_eq!(b.len(), 3);
        assert_eq!(b.get(1), None);
        b.set(1, Cst::new("a"));
        assert_eq!(b.get(1), Some(Cst::new("a")));
        b.clear(1);
        assert_eq!(b.get(1), None);
    }

    #[test]
    fn resolve_terms() {
        let mut b = Binding::new(1);
        b.set(0, Cst::new("v"));
        assert_eq!(b.resolve(SlotTerm::Cst(Cst::new("c"))), Some(Cst::new("c")));
        assert_eq!(b.resolve(SlotTerm::Slot(0)), Some(Cst::new("v")));
        b.clear(0);
        assert_eq!(b.resolve(SlotTerm::Slot(0)), None);
    }

    #[test]
    fn trail_undoes_frames() {
        let mut b = Binding::new(4);
        let mut t = Trail::new();
        let outer = t.frame();
        b.set(0, Cst::new("x"));
        t.push(0);
        let inner = t.frame();
        b.set(1, Cst::new("y"));
        t.push(1);
        b.set(2, Cst::new("z"));
        t.push(2);
        t.undo_to(inner, &mut b);
        assert_eq!(b.get(0), Some(Cst::new("x")));
        assert_eq!(b.get(1), None);
        assert_eq!(b.get(2), None);
        t.undo_to(outer, &mut b);
        assert_eq!(b.get(0), None);
    }
}
