//! # cqa-model
//!
//! The relational data model underlying consistent query answering (CQA) with
//! primary keys and unary foreign keys, as formalized in
//! *"A Dichotomy in Consistent Query Answering for Primary Keys and Unary
//! Foreign Keys"* (Hannula & Wijsen, PODS 2022).
//!
//! This crate provides the substrate every other crate in the workspace builds
//! on:
//!
//! * interned [`Cst`] constants and [`Var`] variables ([`intern`]);
//! * relation [`Schema`]s with signatures `[n, k]` (arity `n`, primary key =
//!   the first `k` positions) ([`schema`]);
//! * [`Atom`]s, self-join-free Boolean conjunctive [`Query`]s, [`Fact`]s and
//!   database [`Instance`]s with primary-key *block* indexes;
//! * unary [`ForeignKey`]s `R[i] → S` and sets thereof ([`fk`]);
//! * conjunctive-query evaluation (homomorphism search) ([`eval`]), with
//!   key-sorted columnar projections ([`columnar`]) and Yannakakis semijoin
//!   execution for acyclic conjunctions ([`acyclic`]);
//! * a small text syntax for schemas, queries, foreign keys and instances
//!   ([`parser`]).
//!
//! Positions are **1-based** throughout the public API, matching the paper's
//! notation (`R[i] → S`, position `(R, i)`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acyclic;
pub mod atom;
pub mod binding;
pub mod columnar;
pub mod delta;
pub mod error;
pub mod eval;
pub mod fact;
pub mod fk;
pub mod instance;
pub mod intern;
pub mod parser;
pub mod query;
pub mod schema;
pub mod term;
pub mod view;

pub use acyclic::{is_acyclic, JoinStrategy, SemijoinPlan};
pub use atom::Atom;
pub use binding::{Binding, CompiledAtom, Slot, SlotTerm, Trail};
pub use columnar::ColumnarRelation;
pub use delta::{Delta, DeltaOp};
pub use error::ModelError;
pub use eval::{
    all_valuations, find_valuation, find_valuation_with, satisfies, AnchoredMatcher,
    CompiledQuery, Valuation,
};
pub use fact::Fact;
pub use fk::{FkSet, ForeignKey};
pub use instance::{Candidates, Instance, InstanceIndex};
pub use intern::{Cst, Sym, Var};
pub use query::Query;
pub use schema::{Position, RelName, Schema, Signature};
pub use term::Term;
pub use view::{FactSource, InstanceView, ReadLog, RenameTable};
