//! GYO acyclicity detection and Yannakakis semijoin evaluation for
//! conjunctions of positive atoms.
//!
//! The backtracking join of [`crate::eval::CompiledQuery`] is index-driven:
//! when successive atoms are reachable through ground key prefixes it does
//! O(1) hash probes per step. But a conjunction whose atoms join on
//! *non-key* positions degenerates to nested relation scans — O(n²) for two
//! atoms, and worse as the chain grows. For **acyclic** conjunctions the
//! Yannakakis algorithm answers satisfiability in time linear in the data: a
//! join tree is built once (GYO reduction, at compile time), and evaluation
//! runs one bottom-up semijoin pass over hash sets of the shared columns.
//!
//! The module provides:
//!
//! * [`JoinStrategy`] — the `auto`/`backtracking`/`semijoin` execution
//!   policy, environment-selectable via `CQA_EVALUATOR`;
//! * [`SemijoinPlan::build`] — GYO reduction over the atom hypergraph
//!   (vertex elimination + ear removal with a parent witness), returning the
//!   join forest or `None` when the conjunction is cyclic;
//! * [`SemijoinPlan::satisfiable`] / [`SemijoinPlan::witness`] — the
//!   bottom-up semijoin pass (plus top-down witness extraction) under an
//!   ambient [`Binding`], generic over any [`FactSource`];
//! * [`backtracking_satisfiable`] — the fail-first backtracking
//!   satisfiability test over the same atoms, used as the `auto`-mode
//!   fallback and as the differential oracle for the semijoin path.
//!
//! **Correctness of the semijoin keys.** Each tree edge's semijoin key is
//! the intersection of the two atoms' *original* variable sets. This is
//! sound because a variable shared by two alive hyperedges has occurrence
//! count ≥ 2 and so is never vertex-eliminated while both are alive; at ear
//! removal time it is still present in both current sets, and the classical
//! GYO theorem gives the parent pointers the running-intersection property
//! over the original hyperedges. Consistency along tree edges therefore
//! implies a globally consistent witness.

use crate::binding::{Binding, CompiledAtom, Slot, SlotTerm, Trail};
use crate::intern::Cst;
use crate::view::FactSource;
use std::collections::{BTreeSet, HashSet};
use std::fmt;
use std::str::FromStr;
use std::sync::OnceLock;

/// Which join algorithm executes a conjunction of positive atoms.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum JoinStrategy {
    /// Per-conjunction heuristic: semijoin when the conjunction is acyclic
    /// *and* the backtracking join would need two or more relation scans
    /// (see [`SemijoinPlan::prefers_semijoin`]); backtracking otherwise.
    Auto,
    /// Always the backtracking join (the differential oracle).
    Backtracking,
    /// Semijoin whenever the conjunction is acyclic; cyclic conjunctions
    /// still fall back to backtracking (there is no semijoin plan to run).
    Semijoin,
}

impl JoinStrategy {
    /// The process-wide default, read **once** from `CQA_EVALUATOR`
    /// (`auto` | `backtracking` | `semijoin`; unset means
    /// [`JoinStrategy::Auto`]). Mirrors how `CQA_THREADS` seeds the default
    /// parallelism: one read, cached for the process lifetime. An
    /// unparsable value (e.g. the `semijion` typo) falls back to `Auto`
    /// **with a one-time warning on stderr** — it used to be silently
    /// swallowed, which turned a typo into a quietly different evaluator.
    /// Long-lived services that must refuse to start on a typo validate
    /// with [`JoinStrategy::try_from_env`] instead.
    pub fn from_env() -> JoinStrategy {
        static CACHE: OnceLock<JoinStrategy> = OnceLock::new();
        *CACHE.get_or_init(|| match JoinStrategy::try_from_env() {
            Ok(strategy) => strategy.unwrap_or(JoinStrategy::Auto),
            Err(msg) => {
                eprintln!("warning: {msg}; defaulting to `auto`");
                JoinStrategy::Auto
            }
        })
    }

    /// Strict read of `CQA_EVALUATOR`: `Ok(None)` when unset,
    /// `Ok(Some(strategy))` when set to a valid value, `Err` when set but
    /// unparsable. Never falls back — this is how `cqa serve` refuses to
    /// start on invalid environment configuration instead of silently
    /// degrading to [`JoinStrategy::Auto`].
    pub fn try_from_env() -> Result<Option<JoinStrategy>, String> {
        match std::env::var("CQA_EVALUATOR") {
            Ok(v) => v
                .parse()
                .map(Some)
                .map_err(|e| format!("CQA_EVALUATOR: {e}")),
            Err(_) => Ok(None),
        }
    }
}

impl FromStr for JoinStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<JoinStrategy, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" => Ok(JoinStrategy::Auto),
            "backtracking" => Ok(JoinStrategy::Backtracking),
            "semijoin" => Ok(JoinStrategy::Semijoin),
            other => Err(format!(
                "unknown evaluator {other:?} (expected auto, backtracking or semijoin)"
            )),
        }
    }
}

impl fmt::Display for JoinStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            JoinStrategy::Auto => "auto",
            JoinStrategy::Backtracking => "backtracking",
            JoinStrategy::Semijoin => "semijoin",
        })
    }
}

/// Whether the hypergraph of `atoms` (vertices = slots, one hyperedge per
/// atom) is α-acyclic, per GYO reduction. Constant-only atoms contribute
/// empty edges and never make a conjunction cyclic.
pub fn is_acyclic(atoms: &[CompiledAtom]) -> bool {
    atoms.is_empty() || gyo(&edge_sets(atoms)).is_some()
}

fn edge_sets(atoms: &[CompiledAtom]) -> Vec<BTreeSet<Slot>> {
    atoms
        .iter()
        .map(|a| {
            a.terms
                .iter()
                .filter_map(|t| match t {
                    SlotTerm::Slot(s) => Some(*s),
                    SlotTerm::Cst(_) => None,
                })
                .collect()
        })
        .collect()
}

/// GYO reduction: returns `(root, ear removals as (child, parent) in
/// removal order)` when the hypergraph is acyclic, `None` otherwise.
/// Requires at least one edge.
fn gyo(orig: &[BTreeSet<Slot>]) -> Option<(usize, Vec<(usize, usize)>)> {
    let n = orig.len();
    debug_assert!(n > 0);
    let mut cur: Vec<BTreeSet<Slot>> = orig.to_vec();
    let mut alive: Vec<bool> = vec![true; n];
    let mut steps: Vec<(usize, usize)> = Vec::new();
    loop {
        let mut changed = false;
        // Vertex elimination: a slot occurring in exactly one alive edge is
        // exclusive to it and drops out.
        let mut count: std::collections::HashMap<Slot, usize> = std::collections::HashMap::new();
        for (i, set) in cur.iter().enumerate() {
            if alive[i] {
                for &s in set {
                    *count.entry(s).or_insert(0) += 1;
                }
            }
        }
        for (i, set) in cur.iter_mut().enumerate() {
            if alive[i] {
                let before = set.len();
                set.retain(|s| count[s] > 1);
                changed |= set.len() != before;
            }
        }
        // Ear removal: an edge contained in another alive edge is removed
        // with that edge as its join-tree parent. One removal per round
        // keeps the occurrence counts honest.
        'ear: for i in 0..n {
            if !alive[i] {
                continue;
            }
            for j in 0..n {
                if i != j && alive[j] && cur[i].is_subset(&cur[j]) {
                    alive[i] = false;
                    steps.push((i, j));
                    changed = true;
                    break 'ear;
                }
            }
        }
        if !changed {
            break;
        }
    }
    let mut root = None;
    for (i, &a) in alive.iter().enumerate() {
        if a {
            if root.is_some() {
                return None; // ≥ 2 irreducible edges: cyclic
            }
            root = Some(i);
        }
    }
    Some((root.expect("ear removal never removes the last edge"), steps))
}

/// One bottom-up semijoin step: reduce `parent`'s rows to those whose
/// projection on the shared slots appears in `child`'s rows. Positions are
/// into the respective atoms' term lists, aligned pairwise per shared slot.
#[derive(Clone, Debug)]
struct Step {
    child: usize,
    parent: usize,
    child_pos: Vec<usize>,
    parent_pos: Vec<usize>,
}

/// A compiled Yannakakis plan for one acyclic conjunction of positive
/// atoms: the join forest from GYO reduction plus the per-edge semijoin
/// column alignments. Built once ([`SemijoinPlan::build`]), evaluated many
/// times against any [`FactSource`].
#[derive(Clone, Debug)]
pub struct SemijoinPlan {
    atoms: Vec<CompiledAtom>,
    /// Ear-removal steps in removal (leaves-first) order — the bottom-up
    /// semijoin schedule.
    steps: Vec<Step>,
    root: usize,
}

impl SemijoinPlan {
    /// Builds the plan, or `None` when `atoms` is empty (nothing to plan)
    /// or the conjunction's hypergraph is cyclic (the caller must keep the
    /// backtracking join).
    pub fn build(atoms: &[CompiledAtom]) -> Option<SemijoinPlan> {
        if atoms.is_empty() {
            return None;
        }
        let orig = edge_sets(atoms);
        let (root, raw_steps) = gyo(&orig)?;
        let pos_of = |atom: &CompiledAtom, s: Slot| -> usize {
            atom.terms
                .iter()
                .position(|t| *t == SlotTerm::Slot(s))
                .expect("shared slot occurs in the atom")
        };
        let steps = raw_steps
            .into_iter()
            .map(|(child, parent)| {
                let shared: Vec<Slot> = orig[child].intersection(&orig[parent]).copied().collect();
                Step {
                    child,
                    parent,
                    child_pos: shared.iter().map(|&s| pos_of(&atoms[child], s)).collect(),
                    parent_pos: shared.iter().map(|&s| pos_of(&atoms[parent], s)).collect(),
                }
            })
            .collect();
        Some(SemijoinPlan {
            atoms: atoms.to_vec(),
            steps,
            root,
        })
    }

    /// The atoms the plan joins, in their original order.
    pub fn atoms(&self) -> &[CompiledAtom] {
        &self.atoms
    }

    /// Materializes each atom's candidate rows under the ambient binding
    /// and runs the bottom-up semijoin pass. `None` as soon as any row set
    /// empties (the conjunction is unsatisfiable); otherwise the reduced
    /// row sets, in which every root row extends to a full match.
    fn reduce<'s, S: FactSource + ?Sized>(
        &self,
        src: &'s S,
        b: &mut Binding,
        trail: &mut Trail,
        scratch: &mut Vec<Cst>,
    ) -> Option<Vec<Vec<&'s [Cst]>>> {
        let mut rows: Vec<Vec<&'s [Cst]>> = Vec::with_capacity(self.atoms.len());
        for atom in &self.atoms {
            let cands = src.guarded_candidates(atom, b, scratch);
            let mut keep: Vec<&'s [Cst]> = Vec::with_capacity(cands.len());
            for row in cands {
                let frame = trail.frame();
                if b.unify_row(&atom.terms, row, trail) {
                    keep.push(row);
                }
                trail.undo_to(frame, b);
            }
            if keep.is_empty() {
                return None;
            }
            rows.push(keep);
        }
        let mut probe: Vec<Cst> = Vec::new();
        for step in &self.steps {
            let keys: HashSet<Vec<Cst>> = rows[step.child]
                .iter()
                .map(|r| step.child_pos.iter().map(|&p| r[p]).collect())
                .collect();
            rows[step.parent].retain(|r| {
                probe.clear();
                probe.extend(step.parent_pos.iter().map(|&p| r[p]));
                keys.contains(probe.as_slice())
            });
            if rows[step.parent].is_empty() {
                return None;
            }
        }
        Some(rows)
    }

    /// Whether the conjunction has a satisfying extension of the ambient
    /// binding. Leaves `b` exactly as it found it.
    pub fn satisfiable<S: FactSource + ?Sized>(
        &self,
        src: &S,
        b: &mut Binding,
        trail: &mut Trail,
        scratch: &mut Vec<Cst>,
    ) -> bool {
        self.reduce(src, b, trail, scratch).is_some()
    }

    /// Like [`SemijoinPlan::satisfiable`], but on success **binds** one
    /// satisfying extension into `b` (recording on `trail`): the root row is
    /// picked from the reduced set and children are chosen top-down to agree
    /// with their parent on the shared slots — consistent globally by the
    /// running-intersection property.
    pub fn witness<S: FactSource + ?Sized>(
        &self,
        src: &S,
        b: &mut Binding,
        trail: &mut Trail,
        scratch: &mut Vec<Cst>,
    ) -> bool {
        let Some(rows) = self.reduce(src, b, trail, scratch) else {
            return false;
        };
        let mut chosen: Vec<Option<&[Cst]>> = vec![None; self.atoms.len()];
        chosen[self.root] = Some(rows[self.root][0]);
        for step in self.steps.iter().rev() {
            let parent_row = chosen[step.parent].expect("parent chosen before child");
            let child_row = rows[step.child]
                .iter()
                .find(|r| {
                    step.child_pos
                        .iter()
                        .zip(&step.parent_pos)
                        .all(|(&cp, &pp)| r[cp] == parent_row[pp])
                })
                .expect("a reduced parent row has child support");
            chosen[step.child] = Some(*child_row);
        }
        for (atom, row) in self.atoms.iter().zip(&chosen) {
            let ok = b.unify_row(&atom.terms, row.expect("every atom chosen"), trail);
            debug_assert!(ok, "tree-consistent rows unify globally");
            if !ok {
                return false;
            }
        }
        true
    }

    /// The `auto`-mode heuristic: would the backtracking join need **two or
    /// more** whole-relation scans? Simulates its index use as a greedy
    /// closure — an atom whose key prefix is ground under the already-bound
    /// slots resolves by hash probe (binding its slots); when no atom can,
    /// one is scanned. The first scan is free (backtracking scans its
    /// opening atom too); a second scan is the nested-loop signature the
    /// semijoin pass beats. Unknown relations vote for backtracking (their
    /// empty candidate sets make it exit immediately).
    pub fn prefers_semijoin<S: FactSource + ?Sized>(&self, src: &S, b: &Binding) -> bool {
        let n_slots = b.len();
        let mut bound = vec![false; n_slots];
        for (s, flag) in bound.iter_mut().enumerate() {
            *flag = b.get(s as Slot).is_some();
        }
        let mut key_lens = Vec::with_capacity(self.atoms.len());
        for atom in &self.atoms {
            match src.key_len(atom.rel) {
                Some(k) => key_lens.push(k.min(atom.terms.len())),
                None => return false,
            }
        }
        let mut remaining: Vec<usize> = (0..self.atoms.len()).collect();
        let mut scans = 0usize;
        while !remaining.is_empty() {
            let mut progressed = false;
            remaining.retain(|&i| {
                let atom = &self.atoms[i];
                let key_ground = atom.terms[..key_lens[i]].iter().all(|t| match t {
                    SlotTerm::Cst(_) => true,
                    SlotTerm::Slot(s) => bound[*s as usize],
                });
                if key_ground {
                    for t in &atom.terms {
                        if let SlotTerm::Slot(s) = t {
                            bound[*s as usize] = true;
                        }
                    }
                    progressed = true;
                    false
                } else {
                    true
                }
            });
            if remaining.is_empty() {
                break;
            }
            if !progressed {
                scans += 1;
                if scans >= 2 {
                    return true;
                }
                let i = remaining.remove(0);
                for t in &self.atoms[i].terms {
                    if let SlotTerm::Slot(s) = t {
                        bound[*s as usize] = true;
                    }
                }
            }
        }
        false
    }

    /// Dispatches between the semijoin pass and the backtracking fallback:
    /// semijoin when `force` (the compiled [`JoinStrategy::Semijoin`]
    /// policy) or when [`SemijoinPlan::prefers_semijoin`] says the
    /// backtracking join would degenerate to nested scans.
    pub fn eval_exists<S: FactSource + ?Sized>(
        &self,
        src: &S,
        b: &mut Binding,
        trail: &mut Trail,
        scratch: &mut Vec<Cst>,
        force: bool,
    ) -> bool {
        if force || self.prefers_semijoin(src, b) {
            self.satisfiable(src, b, trail, scratch)
        } else {
            backtracking_satisfiable(&self.atoms, src, b, trail, scratch)
        }
    }
}

/// Fail-first backtracking satisfiability over a conjunction of positive
/// atoms under an ambient binding — the same algorithm as the compiled CQ
/// join's search, kept as the `auto`-mode fallback and the differential
/// oracle for the semijoin path. Leaves `b` exactly as it found it.
pub fn backtracking_satisfiable<S: FactSource + ?Sized>(
    atoms: &[CompiledAtom],
    src: &S,
    b: &mut Binding,
    trail: &mut Trail,
    scratch: &mut Vec<Cst>,
) -> bool {
    let mut remaining: Vec<usize> = (0..atoms.len()).collect();
    bt_search(atoms, src, b, trail, scratch, &mut remaining)
}

fn bt_search<S: FactSource + ?Sized>(
    atoms: &[CompiledAtom],
    src: &S,
    b: &mut Binding,
    trail: &mut Trail,
    scratch: &mut Vec<Cst>,
    remaining: &mut Vec<usize>,
) -> bool {
    if remaining.is_empty() {
        return true;
    }
    let mut best_idx = 0;
    let mut best_len = usize::MAX;
    for (i, &ai) in remaining.iter().enumerate() {
        let len = src.guarded_candidates(&atoms[ai], b, scratch).len();
        if len < best_len {
            best_idx = i;
            best_len = len;
            if len == 0 {
                break;
            }
        }
    }
    let ai = remaining.swap_remove(best_idx);
    let atom = &atoms[ai];
    let cands = src.guarded_candidates(atom, b, scratch);
    let mut found = false;
    for row in cands {
        let frame = trail.frame();
        if b.unify_row(&atom.terms, row, trail)
            && bt_search(atoms, src, b, trail, scratch, remaining)
        {
            trail.undo_to(frame, b);
            found = true;
            break;
        }
        trail.undo_to(frame, b);
    }
    remaining.push(ai);
    let last = remaining.len() - 1;
    remaining.swap(best_idx, last);
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelName;

    fn atom(rel: &str, slots: &[u32]) -> CompiledAtom {
        CompiledAtom {
            rel: RelName::new(rel),
            terms: slots.iter().map(|&s| SlotTerm::Slot(s)).collect(),
        }
    }

    #[test]
    fn chain_is_acyclic() {
        // R(x,y), S(y,z), T(z): the classic path join.
        let atoms = [atom("R", &[0, 1]), atom("S", &[1, 2]), atom("T", &[2])];
        assert!(is_acyclic(&atoms));
        let plan = SemijoinPlan::build(&atoms).unwrap();
        assert_eq!(plan.steps.len(), 2);
    }

    #[test]
    fn triangle_is_cyclic() {
        // R(x,y), S(y,z), T(z,x): the classic cyclic triangle.
        let atoms = [
            atom("R", &[0, 1]),
            atom("S", &[1, 2]),
            atom("T", &[2, 0]),
        ];
        assert!(!is_acyclic(&atoms));
        assert!(SemijoinPlan::build(&atoms).is_none());
    }

    #[test]
    fn star_is_acyclic() {
        // Hub E(x,y,z) with spokes A(x), B(y), C(z).
        let atoms = [
            atom("E", &[0, 1, 2]),
            atom("A", &[0]),
            atom("B", &[1]),
            atom("C", &[2]),
        ];
        assert!(is_acyclic(&atoms));
        let plan = SemijoinPlan::build(&atoms).unwrap();
        assert_eq!(plan.steps.len(), 3, "three edges in the join tree");
        // The hub is the parent of at least the first two spokes (the last
        // containment may orient either way once the hub's exclusive
        // vertices are eliminated).
        assert!(plan.steps.iter().filter(|s| s.parent == 0).count() >= 2);
    }

    #[test]
    fn cycle_with_chord_hypergraph_is_acyclic() {
        // R(x,y), S(y,z), T(z,x) is cyclic, but adding U(x,y,z) covers the
        // cycle: every pairwise edge is contained in the big one.
        let atoms = [
            atom("R", &[0, 1]),
            atom("S", &[1, 2]),
            atom("T", &[2, 0]),
            atom("U", &[0, 1, 2]),
        ];
        assert!(is_acyclic(&atoms));
    }

    #[test]
    fn four_cycle_is_cyclic() {
        let atoms = [
            atom("A", &[0, 1]),
            atom("B", &[1, 2]),
            atom("C", &[2, 3]),
            atom("D", &[3, 0]),
        ];
        assert!(!is_acyclic(&atoms));
    }

    #[test]
    fn disconnected_atoms_are_acyclic() {
        // A(x), B(y): a cross product — one tree with an empty-key edge.
        let atoms = [atom("A", &[0]), atom("B", &[1])];
        let plan = SemijoinPlan::build(&atoms).unwrap();
        assert_eq!(plan.steps.len(), 1);
        assert!(plan.steps[0].child_pos.is_empty(), "empty semijoin key");
    }

    #[test]
    fn duplicate_atoms_are_acyclic() {
        let atoms = [atom("R", &[0, 1]), atom("R", &[0, 1])];
        assert!(is_acyclic(&atoms));
    }

    #[test]
    fn empty_conjunction_has_no_plan() {
        assert!(is_acyclic(&[]));
        assert!(SemijoinPlan::build(&[]).is_none());
    }

    #[test]
    fn constant_only_atom_is_an_empty_edge() {
        let ground = CompiledAtom {
            rel: RelName::new("G"),
            terms: vec![SlotTerm::Cst(Cst::new("c"))],
        };
        let atoms = [atom("R", &[0, 1]), ground];
        assert!(is_acyclic(&atoms));
        assert!(SemijoinPlan::build(&atoms).is_some());
    }

    #[test]
    fn strategy_parsing_round_trips() {
        for s in [
            JoinStrategy::Auto,
            JoinStrategy::Backtracking,
            JoinStrategy::Semijoin,
        ] {
            assert_eq!(s.to_string().parse::<JoinStrategy>().unwrap(), s);
        }
        assert!("nope".parse::<JoinStrategy>().is_err());
    }

    #[test]
    fn unparsable_evaluator_is_an_error_not_a_silent_auto() {
        // Regression: the `semijion` typo used to parse-fail into `Auto`
        // with no trace. The FromStr error must name the offending value,
        // and the strict env reader must surface it (rather than mapping
        // it to `Ok(Some(Auto))`).
        let err = "semijion".parse::<JoinStrategy>().unwrap_err();
        assert!(err.contains("semijion"), "{err}");
        assert!(err.contains("auto"), "error lists the valid values: {err}");
        // In-process we cannot (safely) mutate the environment, but the CI
        // matrix only ever pins valid values, so the strict reader must be
        // Ok here whatever leg is running.
        assert!(JoinStrategy::try_from_env().is_ok());
        // And the valid values keep parsing case-insensitively.
        assert_eq!(
            " SemiJoin ".parse::<JoinStrategy>().unwrap(),
            JoinStrategy::Semijoin
        );
    }
}
