//! Lazy instance views: restriction, block filtering and renaming **without
//! materializing a database**.
//!
//! The Appendix E reduction pipeline transforms the database between steps:
//! Lemma 37/40 delete a relation and a subset of the source relation's
//! blocks, and Lemma 45 evaluates a residual problem per block fact. The
//! interpretive evaluator realizes each transformation as a fresh
//! [`Instance`]; an [`InstanceView`] realizes the same transformations as a
//! *view stack* over the base instance's [`InstanceIndex`]:
//!
//! * **restriction** — a set of visible relations (hidden relations present
//!   no rows);
//! * **block filtering** — per relation, the set of surviving block keys
//!   plus the surviving row indices into the index's row table, so
//!   candidate iteration still hands out borrowed row slices;
//! * **renaming** — the Lemma 45 injective renaming `f` as a lazy
//!   per-position value translation ([`InstanceView::renamed_rows`]) backed
//!   by a [`RenameTable`] that *recycles* its invented constants across
//!   calls instead of minting fresh interner symbols per evaluation.
//!
//! Views are cheap to clone (filters are shared behind [`Arc`]) so a
//! compiled plan can thread one view through nested reductions and branch
//! per block fact without copying anything.
//!
//! The [`FactSource`] trait is the common surface the compiled evaluators
//! (the CQ join of [`crate::eval::CompiledQuery`] and the formula evaluator
//! of `cqa-fo`) consume: candidate rows for a guard atom, full-fact
//! membership, and the active domain. Both the raw [`InstanceIndex`] and an
//! [`InstanceView`] implement it, so one compiled artifact evaluates over
//! full databases and reduced views alike.

use crate::binding::{Binding, CompiledAtom};
use crate::columnar::ColumnarRelation;
use crate::instance::{Candidates, Instance, InstanceIndex};
use crate::intern::Cst;
use crate::schema::RelName;
use crate::term::Term;
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// A row source for compiled evaluation: the index-backed primitives shared
/// by the CQ join and the formula evaluator.
pub trait FactSource {
    /// Candidate rows for a slot-compiled guard atom under `binding`: a
    /// block when the key prefix is ground, a (possibly filtered) relation
    /// scan otherwise. `scratch` is a reusable key buffer.
    fn guarded_candidates<'s>(
        &'s self,
        atom: &CompiledAtom,
        binding: &Binding,
        scratch: &mut Vec<Cst>,
    ) -> Candidates<'s>;

    /// Whether the source contains the fully ground row `rel(args…)`.
    fn contains_row(&self, rel: RelName, args: &[Cst]) -> bool;

    /// Adds the source's active domain to `out`.
    fn extend_adom(&self, out: &mut BTreeSet<Cst>);

    /// The primary-key length of `rel`, when the source indexes it. Schema
    /// metadata, not a data access — nothing is logged. Join-strategy
    /// selection ([`crate::acyclic::SemijoinPlan::prefers_semijoin`]) uses
    /// it to predict whether the backtracking join can probe by key.
    fn key_len(&self, rel: RelName) -> Option<usize>;

    /// The key-sorted columnar projection of `rel`, when the source can
    /// serve whole column slices for it. A filtered or hidden relation
    /// cannot (its columns would leak rows the view excludes) and returns
    /// `None`; callers must treat `None` as "iterate rows instead", never
    /// as "empty". Serving a projection counts as a whole-relation scan.
    fn columnar(&self, rel: RelName) -> Option<&ColumnarRelation>;
}

impl FactSource for InstanceIndex {
    fn guarded_candidates<'s>(
        &'s self,
        atom: &CompiledAtom,
        binding: &Binding,
        scratch: &mut Vec<Cst>,
    ) -> Candidates<'s> {
        InstanceIndex::guarded_candidates(self, atom, binding, scratch)
    }

    fn contains_row(&self, rel: RelName, args: &[Cst]) -> bool {
        InstanceIndex::contains(self, rel, args)
    }

    fn extend_adom(&self, out: &mut BTreeSet<Cst>) {
        out.extend(self.adom_set().iter().copied());
    }

    fn key_len(&self, rel: RelName) -> Option<usize> {
        self.rel(rel).map(|r| r.key_len)
    }

    fn columnar(&self, rel: RelName) -> Option<&ColumnarRelation> {
        InstanceIndex::columnar(self, rel)
    }
}

/// The surviving blocks of one filtered relation: the allowed block keys
/// (for ground-key probes) and the surviving row indices (for scans).
#[derive(Debug)]
struct BlockFilter {
    keys: HashSet<Box<[Cst]>>,
    rows: Vec<u32>,
}

/// A thread-safe log of the probes a traced view performed — the dynamic
/// counterpart of static read-set inference (`cqa-analyze`).
///
/// Each event is a `(relation, key)` pair: `Some(key)` for a single-block
/// probe ([`InstanceView::block_rows`], ground-key guard candidates, row
/// membership), `None` for a whole-relation scan ([`InstanceView::blocks`],
/// non-ground guards, active-domain collection). Attach a log with
/// [`InstanceView::with_read_log`]; clones of the view share it, so one log
/// observes an entire plan evaluation including nested residual views.
///
/// Probes on *hidden* relations are not recorded (hiding is static plan
/// structure — the result of such a probe cannot depend on the data), but
/// probes on filtered-out blocks are: the filter itself was derived from
/// earlier, recorded reads.
#[derive(Debug, Default)]
pub struct ReadLog {
    events: Mutex<BTreeSet<(RelName, Option<Vec<Cst>>)>>,
}

impl ReadLog {
    /// An empty log.
    pub fn new() -> ReadLog {
        ReadLog::default()
    }

    fn scan(&self, rel: RelName) {
        self.events.lock().insert((rel, None));
    }

    fn key(&self, rel: RelName, key: &[Cst]) {
        self.events.lock().insert((rel, Some(key.to_vec())));
    }

    /// The recorded events, sorted: `(relation, Some(block key) | None)`.
    pub fn events(&self) -> Vec<(RelName, Option<Vec<Cst>>)> {
        self.events.lock().iter().cloned().collect()
    }

    /// The number of distinct recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A lazy view over an [`Instance`]: relation restriction plus per-relation
/// block filters, evaluated against the instance's [`InstanceIndex`] row
/// handles. See the module docs.
#[derive(Clone)]
pub struct InstanceView<'a> {
    idx: &'a InstanceIndex,
    visible: BTreeSet<RelName>,
    filters: HashMap<RelName, Arc<BlockFilter>>,
    log: Option<Arc<ReadLog>>,
}

impl<'a> InstanceView<'a> {
    /// The full view of `db`: every relation visible, nothing filtered.
    pub fn new(db: &'a Instance) -> InstanceView<'a> {
        InstanceView {
            idx: db.index(),
            visible: db.schema().relations().map(|(r, _)| r).collect(),
            filters: HashMap::new(),
            log: None,
        }
    }

    /// Attaches a [`ReadLog`] that records every data-dependent probe this
    /// view (and all views derived from it) performs.
    pub fn with_read_log(mut self, log: Arc<ReadLog>) -> InstanceView<'a> {
        self.log = Some(log);
        self
    }

    fn note_scan(&self, rel: RelName) {
        if let Some(log) = &self.log {
            log.scan(rel);
        }
    }

    fn note_key(&self, rel: RelName, key: &[Cst]) {
        if let Some(log) = &self.log {
            log.key(rel, key);
        }
    }

    /// Restricts the view to the relations of `keep` (intersection with the
    /// currently visible set) — the lazy form of [`Instance::restrict`].
    pub fn restrict(mut self, keep: &BTreeSet<RelName>) -> InstanceView<'a> {
        self.visible.retain(|r| keep.contains(r));
        self
    }

    /// Hides one relation (the deleted target of a Lemma 37/40 step).
    pub fn hide(mut self, rel: RelName) -> InstanceView<'a> {
        self.visible.remove(&rel);
        self
    }

    /// Keeps only the blocks of `rel` whose key is in `keys` (the surviving
    /// source blocks of a Lemma 37/40 step). Replaces any previous filter on
    /// `rel`; callers compute `keys` from the *current* view, so the new
    /// filter is always a refinement.
    pub fn with_block_filter(
        mut self,
        rel: RelName,
        keys: HashSet<Box<[Cst]>>,
    ) -> InstanceView<'a> {
        let mut rows: Vec<u32> = Vec::new();
        if let Some(r) = self.idx.rel(rel) {
            for key in &keys {
                if let Some(idxs) = r.blocks.get(key) {
                    rows.extend_from_slice(idxs);
                }
            }
        }
        rows.sort_unstable();
        self.filters.insert(rel, Arc::new(BlockFilter { keys, rows }));
        self
    }

    /// Whether `rel` is visible in this view.
    pub fn is_visible(&self, rel: RelName) -> bool {
        self.visible.contains(&rel)
    }

    /// The number of visible blocks of `rel` — an O(1) probe (the filter's
    /// key set, or the index's block count), used by work-splitting
    /// policies to decide whether a partition is worth it.
    pub fn block_count(&self, rel: RelName) -> usize {
        if !self.visible.contains(&rel) {
            return 0;
        }
        let Some(r) = self.idx.rel(rel) else { return 0 };
        match self.filters.get(&rel) {
            Some(f) => f.keys.len(),
            None => r.blocks.len(),
        }
    }

    /// Splits the visible blocks of `rel` into at most `n` disjoint
    /// sub-views forming an **exact cover**: every visible block key of
    /// `rel` appears in exactly one part, no key is duplicated or dropped,
    /// and all other relations stay untouched in every part. Parts are
    /// cheap (the shared state sits behind `Arc`s and borrowed index
    /// handles), so one per worker thread is a few-pointer clone.
    ///
    /// The split is deterministic and balanced: the visible blocks are read
    /// off the relation's key-sorted [`ColumnarRelation`] — contiguous
    /// column ranges, one block each, already in canonical order (the row
    /// table itself is in arbitrary, mutation-history-dependent order) —
    /// and assigned to parts in contiguous ranges whose sizes differ by at
    /// most one. Returns exactly `min(n, #visible blocks)` parts — fewer
    /// than `n` only when `rel` has fewer than `n` visible blocks, and no
    /// parts at all when it has none (hidden relation, empty filter, or
    /// unpopulated relation); `n = 0` is treated as `n = 1`.
    pub fn partition(&self, rel: RelName, n: usize) -> Vec<InstanceView<'a>> {
        let mut keys: Vec<Box<[Cst]>> = Vec::new();
        if self.visible.contains(&rel) {
            self.note_scan(rel);
            if let Some(r) = self.idx.rel(rel) {
                let filter = self.filters.get(&rel);
                for (key, _rows) in r.columnar().blocks() {
                    if filter.is_none_or(|f| f.keys.contains(key)) {
                        keys.push(key.into());
                    }
                }
            }
        }
        if keys.is_empty() {
            return Vec::new();
        }
        let parts = n.max(1).min(keys.len());
        let (base, extra) = (keys.len() / parts, keys.len() % parts);
        let mut out = Vec::with_capacity(parts);
        let mut rest = keys.as_slice();
        for i in 0..parts {
            let take = base + usize::from(i < extra);
            let (chunk, tail) = rest.split_at(take);
            rest = tail;
            out.push(
                self.clone()
                    .with_block_filter(rel, chunk.iter().cloned().collect()),
            );
        }
        out
    }

    /// The visible blocks of `rel` as `(key, rows)` pairs of borrowed
    /// slices (iteration order follows the underlying hash index).
    pub fn blocks(&self, rel: RelName) -> Vec<(&'a [Cst], Vec<&'a [Cst]>)> {
        let mut out = Vec::new();
        if !self.visible.contains(&rel) {
            return out;
        }
        self.note_scan(rel);
        let Some(r) = self.idx.rel(rel) else {
            return out;
        };
        let filter = self.filters.get(&rel);
        for (key, idxs) in &r.blocks {
            if let Some(f) = filter {
                if !f.keys.contains(key) {
                    continue;
                }
            }
            out.push((
                &**key,
                idxs.iter().map(|&i| &*r.all[i as usize]).collect(),
            ));
        }
        out
    }

    /// The rows of the block `rel(key, ∗)`, empty when the relation is
    /// hidden or the block was filtered out.
    pub fn block_rows(&self, rel: RelName, key: &[Cst]) -> Vec<&'a [Cst]> {
        if !self.visible.contains(&rel) {
            return Vec::new();
        }
        self.note_key(rel, key);
        let Some(r) = self.idx.rel(rel) else {
            return Vec::new();
        };
        if let Some(f) = self.filters.get(&rel) {
            if !f.keys.contains(key) {
                return Vec::new();
            }
        }
        match r.blocks.get(key) {
            Some(idxs) => idxs.iter().map(|&i| &*r.all[i as usize]).collect(),
            None => Vec::new(),
        }
    }

    /// Whether the block `rel(key, ∗)` is visible and non-empty — the
    /// dangling test of the reduction steps, O(1) hash probes.
    pub fn block_nonempty(&self, rel: RelName, key: &[Cst]) -> bool {
        if !self.visible.contains(&rel) {
            return false;
        }
        self.note_key(rel, key);
        let Some(r) = self.idx.rel(rel) else {
            return false;
        };
        if let Some(f) = self.filters.get(&rel) {
            if !f.keys.contains(key) {
                return false;
            }
        }
        r.blocks.contains_key(key)
    }

    /// The visible rows of `rel`, renamed per position by the Lemma 45
    /// injective renaming: the value at position `i` is compared against
    /// `spec[i]` and translated through `table`. The stream is lazy (rows
    /// are borrowed handles translated on demand); only the caller decides
    /// whether to materialize it.
    pub fn renamed_rows<'s>(
        &'s self,
        rel: RelName,
        spec: &'s [Term],
        table: &'s RenameTable,
    ) -> impl Iterator<Item = Vec<Cst>> + 's {
        let cands = if self.visible.contains(&rel) {
            self.note_scan(rel);
            match self.idx.rel(rel) {
                Some(r) => Candidates::from_parts(
                    &r.all,
                    self.filters.get(&rel).map(|f| f.rows.as_slice()),
                ),
                None => Candidates::none(),
            }
        } else {
            Candidates::none()
        };
        cands.into_iter().map(move |row| {
            row.iter()
                .zip(spec)
                .map(|(&a, &expected)| table.rename(a, expected))
                .collect()
        })
    }

    /// The number of visible rows across all relations.
    pub fn len(&self) -> usize {
        self.visible
            .iter()
            .filter_map(|&rel| {
                let r = self.idx.rel(rel)?;
                Some(match self.filters.get(&rel) {
                    Some(f) => f.rows.len(),
                    None => r.all.len(),
                })
            })
            .sum()
    }

    /// Whether no rows are visible.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl FactSource for InstanceView<'_> {
    fn guarded_candidates<'s>(
        &'s self,
        atom: &CompiledAtom,
        binding: &Binding,
        scratch: &mut Vec<Cst>,
    ) -> Candidates<'s> {
        if !self.visible.contains(&atom.rel) {
            return Candidates::none();
        }
        let Some(r) = self.idx.rel(atom.rel) else {
            self.note_scan(atom.rel);
            return Candidates::none();
        };
        if r.arity != atom.terms.len() {
            return Candidates::none();
        }
        // Resolve the key prefix (mirrors the base index's ground-key
        // resolution, plus the block filter: a block survives whole, so a
        // ground probe only needs its key checked against the filter).
        scratch.clear();
        for &t in &atom.terms[..r.key_len] {
            match binding.resolve(t) {
                Some(c) => scratch.push(c),
                None => {
                    // Non-ground key: scan the surviving rows.
                    self.note_scan(atom.rel);
                    return match self.filters.get(&atom.rel) {
                        Some(f) => Candidates::from_parts(&r.all, Some(&f.rows)),
                        None => Candidates::from_parts(&r.all, None),
                    };
                }
            }
        }
        self.note_key(atom.rel, scratch.as_slice());
        if let Some(f) = self.filters.get(&atom.rel) {
            if !f.keys.contains(scratch.as_slice()) {
                return Candidates::none();
            }
        }
        Candidates::from_parts(
            &r.all,
            Some(
                r.blocks
                    .get(scratch.as_slice())
                    .map(|v| v.as_slice())
                    .unwrap_or(&[]),
            ),
        )
    }

    fn contains_row(&self, rel: RelName, args: &[Cst]) -> bool {
        if !self.visible.contains(&rel) {
            return false;
        }
        match self.idx.rel(rel) {
            Some(r) => self.note_key(rel, &args[..r.key_len.min(args.len())]),
            None => self.note_scan(rel),
        }
        if !self.idx.contains(rel, args) {
            return false;
        }
        match (self.filters.get(&rel), self.idx.rel(rel)) {
            (Some(f), Some(r)) => f.keys.contains(&args[..r.key_len]),
            _ => true,
        }
    }

    fn extend_adom(&self, out: &mut BTreeSet<Cst>) {
        for &rel in &self.visible {
            self.note_scan(rel);
            let Some(r) = self.idx.rel(rel) else { continue };
            match self.filters.get(&rel) {
                Some(f) => {
                    for &i in &f.rows {
                        out.extend(r.all[i as usize].iter().copied());
                    }
                }
                None => {
                    for row in &r.all {
                        out.extend(row.iter().copied());
                    }
                }
            }
        }
    }

    fn key_len(&self, rel: RelName) -> Option<usize> {
        // Schema metadata, independent of visibility or filters; nothing
        // data-dependent is revealed, so nothing is logged.
        self.idx.rel(rel).map(|r| r.key_len)
    }

    fn columnar(&self, rel: RelName) -> Option<&ColumnarRelation> {
        if !self.visible.contains(&rel) || self.filters.contains_key(&rel) {
            // A filtered view cannot hand out whole columns: they would
            // include rows of filtered-out blocks.
            return None;
        }
        let r = self.idx.rel(rel)?;
        self.note_scan(rel);
        Some(r.columnar())
    }
}

impl fmt::Debug for InstanceView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "InstanceView(visible {:?}, {} filtered, {} rows)",
            self.visible,
            self.filters.len(),
            self.len()
        )
    }
}

/// The Lemma 45 injective renaming `f` with **recycled** constants: a value
/// `a` expected to be the constant `c` becomes the generic constant `b`
/// when `a = c`, and otherwise a constant determined (injectively, and
/// stably across calls) by the pair `(a, expected term)`.
///
/// The interpretive pipeline used to mint `Cst::fresh` symbols on every
/// `answer()` call, growing the process-global interner without bound on a
/// long-lived engine; the table memoizes the mapping so repeated
/// evaluations reuse the same invented constants. Clones share the table.
#[derive(Clone)]
pub struct RenameTable {
    b: Cst,
    map: Arc<Mutex<BTreeMap<(Cst, Term), Cst>>>,
}

impl RenameTable {
    /// A table renaming expected values to the generic constant `b`.
    pub fn new(b: Cst) -> RenameTable {
        RenameTable {
            b,
            map: Arc::new(Mutex::new(BTreeMap::new())),
        }
    }

    /// The generic constant.
    pub fn generic(&self) -> Cst {
        self.b
    }

    /// Renames `value` at a position whose `expected` term is already
    /// θ-applied (variables bound by the block fact are constants here).
    pub fn rename(&self, value: Cst, expected: Term) -> Cst {
        if let Term::Cst(c) = expected {
            if value == c {
                return self.b;
            }
        }
        *self
            .map
            .lock()
            .entry((value, expected))
            .or_insert_with(|| Cst::fresh("r"))
    }

    /// The number of memoized (recycled) renamed constants.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// Whether no renamed constant has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for RenameTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RenameTable(b = {}, {} recycled)", self.b, self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn schema() -> Arc<Schema> {
        let mut s = Schema::new();
        s.add("R", 2, 1).unwrap();
        s.add("S", 2, 1).unwrap();
        Arc::new(s)
    }

    fn db() -> Instance {
        let mut db = Instance::new(schema());
        db.insert_named("R", &["a", "1"]).unwrap();
        db.insert_named("R", &["a", "2"]).unwrap();
        db.insert_named("R", &["b", "1"]).unwrap();
        db.insert_named("S", &["1", "x"]).unwrap();
        db
    }

    fn r() -> RelName {
        RelName::new("R")
    }

    #[test]
    fn full_view_sees_everything() {
        let db = db();
        let v = InstanceView::new(&db);
        assert_eq!(v.len(), 4);
        assert!(v.contains_row(r(), &[Cst::new("a"), Cst::new("1")]));
        assert_eq!(v.blocks(r()).len(), 2);
        assert_eq!(v.block_rows(r(), &[Cst::new("a")]).len(), 2);
        let mut adom = BTreeSet::new();
        v.extend_adom(&mut adom);
        assert_eq!(&adom, db.adom());
    }

    #[test]
    fn restriction_hides_relations() {
        let db = db();
        let v = InstanceView::new(&db).hide(r());
        assert_eq!(v.len(), 1);
        assert!(!v.contains_row(r(), &[Cst::new("a"), Cst::new("1")]));
        assert!(v.blocks(r()).is_empty());
        assert!(!v.block_nonempty(r(), &[Cst::new("a")]));
        let mut adom = BTreeSet::new();
        v.extend_adom(&mut adom);
        assert!(!adom.contains(&Cst::new("a")));
        assert!(adom.contains(&Cst::new("x")));
    }

    #[test]
    fn block_filter_drops_blocks_not_rows() {
        let db = db();
        let keep: HashSet<Box<[Cst]>> = [vec![Cst::new("a")].into_boxed_slice()].into();
        let v = InstanceView::new(&db).with_block_filter(r(), keep);
        assert_eq!(v.len(), 3); // 2 R(a,·) + 1 S
        assert!(v.contains_row(r(), &[Cst::new("a"), Cst::new("2")]));
        assert!(!v.contains_row(r(), &[Cst::new("b"), Cst::new("1")]));
        assert_eq!(v.blocks(r()).len(), 1);
        assert!(v.block_nonempty(r(), &[Cst::new("a")]));
        assert!(!v.block_nonempty(r(), &[Cst::new("b")]));
        assert!(v.block_rows(r(), &[Cst::new("b")]).is_empty());
    }

    #[test]
    fn guarded_candidates_respect_filters() {
        use crate::binding::{SlotTerm, Trail};
        let db = db();
        let keep: HashSet<Box<[Cst]>> = [vec![Cst::new("b")].into_boxed_slice()].into();
        let v = InstanceView::new(&db).with_block_filter(r(), keep);
        let atom = CompiledAtom {
            rel: r(),
            terms: vec![SlotTerm::Slot(0), SlotTerm::Slot(1)],
        };
        let b = Binding::new(2);
        let mut scratch = Vec::new();
        // Unground key: the scan sees only the surviving block's row.
        let cands = FactSource::guarded_candidates(&v, &atom, &b, &mut scratch);
        assert_eq!(cands.len(), 1);
        // Ground key probes: surviving vs filtered block.
        let ground = CompiledAtom {
            rel: r(),
            terms: vec![SlotTerm::Cst(Cst::new("b")), SlotTerm::Slot(1)],
        };
        let cands = FactSource::guarded_candidates(&v, &ground, &b, &mut scratch);
        assert_eq!(cands.len(), 1);
        let filtered = CompiledAtom {
            rel: r(),
            terms: vec![SlotTerm::Cst(Cst::new("a")), SlotTerm::Slot(1)],
        };
        let cands = FactSource::guarded_candidates(&v, &filtered, &b, &mut scratch);
        assert!(cands.is_empty());
        // A row from the survivors actually unifies.
        let mut bind = Binding::new(2);
        let mut trail = Trail::new();
        let cands = FactSource::guarded_candidates(&v, &atom, &bind.clone(), &mut scratch);
        let row = cands.iter().next().unwrap();
        assert!(bind.unify_row(&atom.terms, row, &mut trail));
        assert_eq!(bind.get(0), Some(Cst::new("b")));
    }

    /// The multiset of `(key, rows)` pairs visible across `parts` must be
    /// exactly the pairs visible in `whole` — no duplicated and no dropped
    /// block keys.
    fn assert_exact_cover(whole: &InstanceView<'_>, parts: &[InstanceView<'_>], rel: RelName) {
        let expected: BTreeMap<Vec<Cst>, usize> = whole
            .blocks(rel)
            .into_iter()
            .map(|(k, rows)| (k.to_vec(), rows.len()))
            .collect();
        let mut seen: BTreeMap<Vec<Cst>, usize> = BTreeMap::new();
        for part in parts {
            for (k, rows) in part.blocks(rel) {
                let prev = seen.insert(k.to_vec(), rows.len());
                assert!(prev.is_none(), "block {k:?} appears in two parts");
            }
        }
        assert_eq!(seen, expected, "parts must cover exactly the visible blocks");
    }

    #[test]
    fn partition_exactly_covers_blocks() {
        let db = db();
        let v = InstanceView::new(&db);
        for n in [1usize, 2, 3] {
            let parts = v.partition(r(), n);
            assert_eq!(parts.len(), n.min(2), "R has 2 blocks");
            assert_exact_cover(&v, &parts, r());
            // Other relations are untouched in every part.
            for part in &parts {
                assert!(part.contains_row(RelName::new("S"), &[Cst::new("1"), Cst::new("x")]));
            }
        }
    }

    #[test]
    fn partition_more_parts_than_blocks() {
        let db = db();
        let v = InstanceView::new(&db);
        let parts = v.partition(r(), 100);
        assert_eq!(parts.len(), 2, "one part per block, never more");
        assert_exact_cover(&v, &parts, r());
        assert_eq!(v.partition(r(), 0).len(), 1, "n = 0 behaves like n = 1");
    }

    #[test]
    fn partition_of_empty_or_hidden_is_empty() {
        let db = db();
        let hidden = InstanceView::new(&db).hide(r());
        assert!(hidden.partition(r(), 4).is_empty());
        let filtered = InstanceView::new(&db).with_block_filter(r(), HashSet::new());
        assert!(filtered.partition(r(), 4).is_empty());
        assert!(InstanceView::new(&db).partition(RelName::new("Zz"), 4).is_empty());
    }

    #[test]
    fn partition_respects_an_existing_filter() {
        let db = db();
        let keep: HashSet<Box<[Cst]>> = [vec![Cst::new("a")].into_boxed_slice()].into();
        let v = InstanceView::new(&db).with_block_filter(r(), keep);
        let parts = v.partition(r(), 4);
        assert_eq!(parts.len(), 1, "only the surviving block is split");
        assert_exact_cover(&v, &parts, r());
        assert!(!parts[0].contains_row(r(), &[Cst::new("b"), Cst::new("1")]));
    }

    #[test]
    fn block_count_tracks_visibility_and_filters() {
        let db = db();
        let v = InstanceView::new(&db);
        assert_eq!(v.block_count(r()), 2);
        assert_eq!(v.block_count(RelName::new("S")), 1);
        assert_eq!(v.clone().hide(r()).block_count(r()), 0);
        let keep: HashSet<Box<[Cst]>> = [vec![Cst::new("b")].into_boxed_slice()].into();
        assert_eq!(v.with_block_filter(r(), keep).block_count(r()), 1);
    }

    #[test]
    fn views_are_shareable_across_threads() {
        // The borrow-only FactSource impls must stay usable from worker
        // threads: a view (and the index it borrows) is Send + Sync.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<InstanceView<'_>>();
        assert_send_sync::<InstanceIndex>();
        assert_send_sync::<Instance>();
        assert_send_sync::<RenameTable>();
    }

    #[test]
    fn rename_table_recycles() {
        let table = RenameTable::new(Cst::new("βgen"));
        let expect_c = Term::cst("c");
        assert_eq!(table.rename(Cst::new("c"), expect_c), Cst::new("βgen"));
        let r1 = table.rename(Cst::new("d"), expect_c);
        let r2 = table.rename(Cst::new("d"), expect_c);
        assert_eq!(r1, r2, "same pair must reuse the invented constant");
        let r3 = table.rename(Cst::new("d"), Term::var("y"));
        assert_ne!(r1, r3, "per-position injectivity");
        assert_eq!(table.len(), 2);
        // Clones share the memo.
        let clone = table.clone();
        assert_eq!(clone.rename(Cst::new("d"), expect_c), r1);
        assert_eq!(clone.len(), 2);
    }

    #[test]
    fn renamed_rows_follow_spec() {
        let db = db();
        let v = InstanceView::new(&db);
        let table = RenameTable::new(Cst::new("βgen"));
        // Spec: position 1 expects constant a, position 2 is variable y.
        let spec = [Term::cst("a"), Term::var("y")];
        let rows: BTreeSet<Vec<Cst>> = v.renamed_rows(r(), &spec, &table).collect();
        assert_eq!(rows.len(), 3);
        let y1 = table.rename(Cst::new("1"), Term::var("y"));
        assert!(rows.contains(&vec![Cst::new("βgen"), y1]));
        let rb = table.rename(Cst::new("b"), Term::cst("a"));
        assert!(rows.contains(&vec![rb, y1]));
        // Hidden relation renames to nothing.
        let hidden = InstanceView::new(&db).hide(r());
        assert_eq!(hidden.renamed_rows(r(), &spec, &table).count(), 0);
    }
}
