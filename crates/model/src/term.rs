//! Terms: variables or constants.

use crate::intern::{Cst, Var};
use std::fmt;

/// A term is a variable or a constant (paper §3).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A query variable.
    Var(Var),
    /// A constant.
    Cst(Cst),
}

impl Term {
    /// Convenience constructor for a variable term.
    pub fn var(name: &str) -> Term {
        Term::Var(Var::new(name))
    }

    /// Convenience constructor for a constant term.
    pub fn cst(name: &str) -> Term {
        Term::Cst(Cst::new(name))
    }

    /// The variable inside, if any.
    pub fn as_var(self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(v),
            Term::Cst(_) => None,
        }
    }

    /// The constant inside, if any.
    pub fn as_cst(self) -> Option<Cst> {
        match self {
            Term::Cst(c) => Some(c),
            Term::Var(_) => None,
        }
    }

    /// Whether the term is a variable.
    pub fn is_var(self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// Whether the term is a constant.
    pub fn is_cst(self) -> bool {
        matches!(self, Term::Cst(_))
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Term {
        Term::Var(v)
    }
}

impl From<Cst> for Term {
    fn from(c: Cst) -> Term {
        Term::Cst(c)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Cst(c) => write!(f, "'{c}'"),
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let t = Term::var("x");
        assert!(t.is_var());
        assert_eq!(t.as_var(), Some(Var::new("x")));
        assert_eq!(t.as_cst(), None);

        let c = Term::cst("a");
        assert!(c.is_cst());
        assert_eq!(c.as_cst(), Some(Cst::new("a")));
    }

    #[test]
    fn display() {
        assert_eq!(Term::var("x").to_string(), "x");
        assert_eq!(Term::cst("a").to_string(), "'a'");
    }

    #[test]
    fn from_impls() {
        let v: Term = Var::new("x").into();
        assert!(v.is_var());
        let c: Term = Cst::new("a").into();
        assert!(c.is_cst());
    }
}
