//! Ordered mutation batches over an [`Instance`](crate::Instance).
//!
//! A [`Delta`] is the unit of change for incremental consumers: the instance
//! applies it atomically ([`Instance::apply`](crate::Instance::apply) —
//! validate everything, then mutate), and the delta-certainty machinery in
//! `cqa-core` inspects which relations and block keys it touches to decide
//! whether a previous verdict can be repaired locally or must be recomputed.
//!
//! Order matters: `remove R(a,1); insert R(a,1)` is a no-op trace, while the
//! reverse collapses to a plain remove on an instance already containing the
//! fact. Deltas therefore store the operations exactly as given.

use crate::fact::Fact;
use crate::schema::RelName;
use std::collections::BTreeSet;
use std::fmt;

/// One mutation: insert or remove a single fact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaOp {
    /// Insert the fact (a no-op if already present).
    Insert(Fact),
    /// Remove the fact (a no-op if absent).
    Remove(Fact),
}

impl DeltaOp {
    /// The fact this operation touches.
    pub fn fact(&self) -> &Fact {
        match self {
            DeltaOp::Insert(f) | DeltaOp::Remove(f) => f,
        }
    }

    /// Whether this is an insert.
    pub fn is_insert(&self) -> bool {
        matches!(self, DeltaOp::Insert(_))
    }
}

/// An ordered batch of [`DeltaOp`]s.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Delta {
    ops: Vec<DeltaOp>,
}

impl Delta {
    /// The empty delta.
    pub fn new() -> Delta {
        Delta::default()
    }

    /// Appends an insert; returns `self` for chaining.
    pub fn insert(&mut self, fact: Fact) -> &mut Delta {
        self.ops.push(DeltaOp::Insert(fact));
        self
    }

    /// Appends a remove; returns `self` for chaining.
    pub fn remove(&mut self, fact: Fact) -> &mut Delta {
        self.ops.push(DeltaOp::Remove(fact));
        self
    }

    /// The operations, in application order.
    pub fn ops(&self) -> &[DeltaOp] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The set of relations the batch touches.
    pub fn rels(&self) -> BTreeSet<RelName> {
        self.ops.iter().map(|op| op.fact().rel).collect()
    }
}

impl FromIterator<DeltaOp> for Delta {
    fn from_iter<I: IntoIterator<Item = DeltaOp>>(iter: I) -> Delta {
        Delta {
            ops: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match op {
                DeltaOp::Insert(fact) => write!(f, "+{fact}")?,
                DeltaOp::Remove(fact) => write!(f, "-{fact}")?,
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_and_rels_are_preserved() {
        let mut d = Delta::new();
        d.remove(Fact::from_names("R", &["a", "1"]))
            .insert(Fact::from_names("S", &["b"]));
        assert_eq!(d.len(), 2);
        assert!(!d.ops()[0].is_insert());
        assert!(d.ops()[1].is_insert());
        let rels = d.rels();
        assert!(rels.contains(&RelName::new("R")));
        assert!(rels.contains(&RelName::new("S")));
        assert_eq!(d.to_string(), "{-R(a, 1), +S(b)}");
    }

    #[test]
    fn empty_delta() {
        let d = Delta::new();
        assert!(d.is_empty());
        assert!(d.rels().is_empty());
    }
}
