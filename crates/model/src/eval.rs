//! Conjunctive-query evaluation: homomorphism (valuation) search.
//!
//! A Boolean conjunctive query `q` is satisfied by `db` (`db ⊨ q`) if there
//! is a valuation `θ` over `vars(q)` with `θ(q) ⊆ db` (paper §3.1). The
//! search below is a backtracking join that picks, at each step, the atom
//! with the fewest candidate facts under the current partial valuation,
//! using the primary-key block index whenever the key prefix is ground.

use crate::atom::Atom;
use crate::fact::Fact;
use crate::instance::Instance;
use crate::intern::{Cst, Var};
use crate::query::Query;
use crate::term::Term;
use std::collections::{BTreeMap, BTreeSet};

/// A (partial) valuation: a mapping from variables to constants.
pub type Valuation = BTreeMap<Var, Cst>;

/// Applies a valuation to an atom; `None` if some variable is unbound.
pub fn apply_atom(atom: &Atom, val: &Valuation) -> Option<Fact> {
    let mut args = Vec::with_capacity(atom.arity());
    for t in &atom.terms {
        match t {
            Term::Cst(c) => args.push(*c),
            Term::Var(v) => args.push(*val.get(v)?),
        }
    }
    Some(Fact::new(atom.rel, args))
}

/// Applies a valuation to a whole query; `None` if some variable is unbound.
pub fn apply_query(q: &Query, val: &Valuation) -> Option<Vec<Fact>> {
    q.atoms().iter().map(|a| apply_atom(a, val)).collect()
}

/// Unifies an atom with a fact, extending `base`. Fails on constant mismatch
/// or inconsistent repeated variables.
pub fn unify(atom: &Atom, fact: &Fact, base: &Valuation) -> Option<Valuation> {
    if atom.rel != fact.rel || atom.arity() != fact.arity() {
        return None;
    }
    let mut val = base.clone();
    for (t, &a) in atom.terms.iter().zip(fact.args.iter()) {
        match t {
            Term::Cst(c) => {
                if *c != a {
                    return None;
                }
            }
            Term::Var(v) => match val.get(v) {
                Some(&bound) if bound != a => return None,
                Some(_) => {}
                None => {
                    val.insert(*v, a);
                }
            },
        }
    }
    Some(val)
}

/// Candidate facts for an atom under a partial valuation. Uses the block
/// index when all key terms are ground.
fn candidates(db: &Instance, atom: &Atom, val: &Valuation) -> Vec<Fact> {
    let sig = db.sig(atom.rel);
    let mut key: Vec<Cst> = Vec::with_capacity(sig.key_len);
    for t in atom.key_terms(sig) {
        match t {
            Term::Cst(c) => key.push(*c),
            Term::Var(v) => match val.get(v) {
                Some(&c) => key.push(c),
                None => return db.facts_of(atom.rel).collect(),
            },
        }
    }
    db.block(atom.rel, &key)
}

fn search(
    db: &Instance,
    remaining: &mut Vec<&Atom>,
    val: &Valuation,
    on_match: &mut dyn FnMut(&Valuation) -> bool,
) -> bool {
    if remaining.is_empty() {
        return on_match(val);
    }
    // Pick the atom with the fewest candidates (fail-first).
    let mut best_idx = 0;
    let mut best: Option<Vec<Fact>> = None;
    for (i, atom) in remaining.iter().enumerate() {
        let c = candidates(db, atom, val);
        let better = match &best {
            None => true,
            Some(b) => c.len() < b.len(),
        };
        if better {
            best_idx = i;
            let empty = c.is_empty();
            best = Some(c);
            if empty {
                break;
            }
        }
    }
    let cands = best.expect("remaining non-empty");
    let atom = remaining.swap_remove(best_idx);
    let mut stop = false;
    for fact in cands {
        if let Some(next) = unify(atom, &fact, val) {
            if search(db, remaining, &next, on_match) {
                stop = true;
                break;
            }
        }
    }
    // restore for caller
    remaining.push(atom);
    let last = remaining.len() - 1;
    remaining.swap(best_idx, last);
    stop
}

/// Finds a valuation extending `base` with `θ(q) ⊆ db`.
pub fn find_valuation_with(db: &Instance, q: &Query, base: &Valuation) -> Option<Valuation> {
    let mut result = None;
    let mut atoms: Vec<&Atom> = q.atoms().iter().collect();
    search(db, &mut atoms, base, &mut |val| {
        result = Some(val.clone());
        true
    });
    result
}

/// Finds a valuation with `θ(q) ⊆ db`.
pub fn find_valuation(db: &Instance, q: &Query) -> Option<Valuation> {
    find_valuation_with(db, q, &Valuation::new())
}

/// `db ⊨ q`.
pub fn satisfies(db: &Instance, q: &Query) -> bool {
    find_valuation(db, q).is_some()
}

/// All total valuations over `vars(q)` with `θ(q) ⊆ db` (deduplicated).
pub fn all_valuations(db: &Instance, q: &Query) -> Vec<Valuation> {
    let mut out: BTreeSet<Valuation> = BTreeSet::new();
    let mut atoms: Vec<&Atom> = q.atoms().iter().collect();
    search(db, &mut atoms, &Valuation::new(), &mut |val| {
        out.insert(val.clone());
        false // keep enumerating
    });
    out.into_iter().collect()
}

/// A fact `A` is *relevant* for `q` in `db` if some valuation `θ` has
/// `A ∈ θ(q) ⊆ db` (paper Appendix A). Returns all relevant facts.
pub fn relevant_facts(db: &Instance, q: &Query) -> BTreeSet<Fact> {
    let mut out = BTreeSet::new();
    for atom in q.atoms() {
        for fact in db.facts_of(atom.rel) {
            if out.contains(&fact) {
                continue;
            }
            if is_relevant(db, q, &fact) {
                out.insert(fact);
            }
        }
    }
    out
}

/// Whether the single fact `A` is relevant for `q` in `db`, i.e. some
/// valuation maps the (unique) atom over `A`'s relation to `A` and embeds the
/// rest of the query.
pub fn is_relevant(db: &Instance, q: &Query, fact: &Fact) -> bool {
    let Some(atom) = q.atom(fact.rel) else {
        return false;
    };
    let Some(base) = unify(atom, fact, &Valuation::new()) else {
        return false;
    };
    find_valuation_with(db, &q.without(fact.rel), &base).is_some()
}

/// Whether a block (given by one of its facts) is relevant for `q` in `db`:
/// it contains at least one relevant fact (paper Appendix A).
pub fn block_is_relevant(db: &Instance, q: &Query, member: &Fact) -> bool {
    db.block_of(member)
        .iter()
        .any(|fact| is_relevant(db, q, fact))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{RelName, Schema};
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        let mut s = Schema::new();
        s.add("R", 2, 1).unwrap();
        s.add("S", 2, 1).unwrap();
        s.add("T", 1, 1).unwrap();
        Arc::new(s)
    }

    fn q_rst() -> Query {
        // {R(x, y), S(y, z), T(z)}
        Query::new(
            schema(),
            vec![
                Atom::new(RelName::new("R"), vec![Term::var("x"), Term::var("y")]),
                Atom::new(RelName::new("S"), vec![Term::var("y"), Term::var("z")]),
                Atom::new(RelName::new("T"), vec![Term::var("z")]),
            ],
        )
        .unwrap()
    }

    fn db() -> Instance {
        let mut db = Instance::new(schema());
        db.insert_named("R", &["a", "b"]).unwrap();
        db.insert_named("R", &["a", "c"]).unwrap();
        db.insert_named("S", &["b", "d"]).unwrap();
        db.insert_named("S", &["x", "y"]).unwrap();
        db.insert_named("T", &["d"]).unwrap();
        db
    }

    #[test]
    fn satisfaction_via_join() {
        assert!(satisfies(&db(), &q_rst()));
        let val = find_valuation(&db(), &q_rst()).unwrap();
        assert_eq!(val[&Var::new("x")], Cst::new("a"));
        assert_eq!(val[&Var::new("y")], Cst::new("b"));
        assert_eq!(val[&Var::new("z")], Cst::new("d"));
    }

    #[test]
    fn unsatisfied_when_chain_broken() {
        let mut d = db();
        d.remove(&Fact::from_names("T", &["d"]));
        assert!(!satisfies(&d, &q_rst()));
    }

    #[test]
    fn constants_must_match() {
        let q = Query::new(
            schema(),
            vec![Atom::new(
                RelName::new("R"),
                vec![Term::var("x"), Term::cst("zzz")],
            )],
        )
        .unwrap();
        assert!(!satisfies(&db(), &q));
        let q2 = Query::new(
            schema(),
            vec![Atom::new(
                RelName::new("R"),
                vec![Term::var("x"), Term::cst("b")],
            )],
        )
        .unwrap();
        assert!(satisfies(&db(), &q2));
    }

    #[test]
    fn repeated_variables_enforced() {
        // R(x, x) only matches facts with equal components.
        let q = Query::new(
            schema(),
            vec![Atom::new(
                RelName::new("R"),
                vec![Term::var("x"), Term::var("x")],
            )],
        )
        .unwrap();
        assert!(!satisfies(&db(), &q));
        let mut d = db();
        d.insert_named("R", &["e", "e"]).unwrap();
        assert!(satisfies(&d, &q));
    }

    #[test]
    fn partial_valuation_respected() {
        let mut base = Valuation::new();
        base.insert(Var::new("x"), Cst::new("nope"));
        assert!(find_valuation_with(&db(), &q_rst(), &base).is_none());
        let mut base2 = Valuation::new();
        base2.insert(Var::new("x"), Cst::new("a"));
        assert!(find_valuation_with(&db(), &q_rst(), &base2).is_some());
    }

    #[test]
    fn all_valuations_enumeration() {
        // {R(x, y)} has two embeddings in db.
        let q = Query::new(
            schema(),
            vec![Atom::new(
                RelName::new("R"),
                vec![Term::var("x"), Term::var("y")],
            )],
        )
        .unwrap();
        assert_eq!(all_valuations(&db(), &q).len(), 2);
    }

    #[test]
    fn empty_query_always_true() {
        let q = Query::empty(schema());
        assert!(satisfies(&Instance::new(schema()), &q));
        assert_eq!(all_valuations(&db(), &q).len(), 1); // the empty valuation
    }

    #[test]
    fn relevance() {
        let d = db();
        let q = q_rst();
        let rel = relevant_facts(&d, &q);
        // Only the R(a,b) → S(b,d) → T(d) chain is relevant.
        assert!(rel.contains(&Fact::from_names("R", &["a", "b"])));
        assert!(rel.contains(&Fact::from_names("S", &["b", "d"])));
        assert!(rel.contains(&Fact::from_names("T", &["d"])));
        assert!(!rel.contains(&Fact::from_names("R", &["a", "c"])));
        assert!(!rel.contains(&Fact::from_names("S", &["x", "y"])));

        // Block relevance: the R(a,·) block is relevant via R(a,b).
        assert!(block_is_relevant(&d, &q, &Fact::from_names("R", &["a", "c"])));
        assert!(!block_is_relevant(
            &d,
            &q,
            &Fact::from_names("S", &["x", "y"])
        ));
    }

    #[test]
    fn unify_rejects_mismatches() {
        let atom = Atom::new(RelName::new("R"), vec![Term::var("x"), Term::var("x")]);
        let f1 = Fact::from_names("R", &["a", "a"]);
        let f2 = Fact::from_names("R", &["a", "b"]);
        assert!(unify(&atom, &f1, &Valuation::new()).is_some());
        assert!(unify(&atom, &f2, &Valuation::new()).is_none());
        let f3 = Fact::from_names("S", &["a", "a"]);
        assert!(unify(&atom, &f3, &Valuation::new()).is_none());
    }
}
