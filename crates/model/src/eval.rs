//! Conjunctive-query evaluation: homomorphism (valuation) search.
//!
//! A Boolean conjunctive query `q` is satisfied by `db` (`db ⊨ q`) if there
//! is a valuation `θ` over `vars(q)` with `θ(q) ⊆ db` (paper §3.1). The
//! search is a backtracking join that picks, at each step, the atom with the
//! fewest candidate facts under the current partial valuation, using the
//! primary-key block index whenever the key prefix is ground.
//!
//! The search runs over a [`CompiledQuery`]: variables are numbered into
//! dense [`Binding`] slots once per query, candidate rows are borrowed from
//! the instance's [`crate::InstanceIndex`] (no per-node `Vec<Fact>`
//! materialization), and backtracking unbinds via a [`Trail`] instead of
//! cloning `BTreeMap` valuations. The map-based entry points
//! ([`satisfies`], [`find_valuation_with`], [`all_valuations`], …) are thin
//! wrappers that compile and run, so callers and tests are unaffected;
//! hot-loop callers (the repair oracle, the rewrite pipeline) compile once
//! and reuse.

use crate::acyclic::{JoinStrategy, SemijoinPlan};
use crate::atom::Atom;
use crate::binding::{Binding, CompiledAtom, Slot, SlotTerm, Trail};
use crate::fact::Fact;
use crate::instance::{Candidates, Instance};
use crate::intern::{Cst, Var};
use crate::query::Query;
use crate::term::Term;
use crate::view::FactSource;
use std::collections::{BTreeMap, BTreeSet};

/// A (partial) valuation: a mapping from variables to constants.
pub type Valuation = BTreeMap<Var, Cst>;

/// Applies a valuation to an atom; `None` if some variable is unbound.
pub fn apply_atom(atom: &Atom, val: &Valuation) -> Option<Fact> {
    let mut args = Vec::with_capacity(atom.arity());
    for t in &atom.terms {
        match t {
            Term::Cst(c) => args.push(*c),
            Term::Var(v) => args.push(*val.get(v)?),
        }
    }
    Some(Fact::new(atom.rel, args))
}

/// Applies a valuation to a whole query; `None` if some variable is unbound.
pub fn apply_query(q: &Query, val: &Valuation) -> Option<Vec<Fact>> {
    q.atoms().iter().map(|a| apply_atom(a, val)).collect()
}

/// Unifies an atom with a fact, extending `base`. Fails on constant mismatch
/// or inconsistent repeated variables.
pub fn unify(atom: &Atom, fact: &Fact, base: &Valuation) -> Option<Valuation> {
    if atom.rel != fact.rel || atom.arity() != fact.arity() {
        return None;
    }
    let mut val = base.clone();
    for (t, &a) in atom.terms.iter().zip(fact.args.iter()) {
        match t {
            Term::Cst(c) => {
                if *c != a {
                    return None;
                }
            }
            Term::Var(v) => match val.get(v) {
                Some(&bound) if bound != a => return None,
                Some(_) => {}
                None => {
                    val.insert(*v, a);
                }
            },
        }
    }
    Some(val)
}

/// A query compiled for slot-based backtracking search.
///
/// Compilation numbers `vars(q)` into dense slots (first-occurrence order)
/// and freezes each atom's key length, so the per-node work of the join is
/// index probes and slot reads only.
#[derive(Clone, Debug)]
pub struct CompiledQuery {
    atoms: Vec<CompiledAtom>,
    /// slot → variable, for converting bindings back into valuations.
    vars: Vec<Var>,
    /// Leading slots that are *parameters*: bound from an argument slice
    /// before the search starts (see [`CompiledQuery::with_params`]).
    n_params: usize,
    /// The Yannakakis plan when the atom hypergraph is acyclic; the
    /// satisfiability entry points route through it per [`JoinStrategy`]
    /// (cyclic queries always keep the backtracking join).
    semijoin: Option<SemijoinPlan>,
}

impl CompiledQuery {
    /// Compiles `q`.
    pub fn new(q: &Query) -> CompiledQuery {
        CompiledQuery::with_params(q, &[])
    }

    /// Compiles `q` with *parameter slots*: the variables of `params` get
    /// the leading slots `0..params.len()`, and any constant of `q` that is
    /// a frozen parameter ([`Cst::param`]) of one of them compiles to that
    /// slot instead of a constant. The query is compiled once; each
    /// evaluation binds the parameter slots from an argument slice — the
    /// Lemma 45 residual evaluation's per-block-fact rebinding.
    pub fn with_params(q: &Query, params: &[Var]) -> CompiledQuery {
        let mut vars: Vec<Var> = params.to_vec();
        let slot_of = |v: Var, vars: &mut Vec<Var>| -> Slot {
            match vars.iter().position(|&w| w == v) {
                Some(i) => i as Slot,
                None => {
                    vars.push(v);
                    (vars.len() - 1) as Slot
                }
            }
        };
        let atoms: Vec<CompiledAtom> = q
            .atoms()
            .iter()
            .map(|a| CompiledAtom {
                rel: a.rel,
                terms: a
                    .terms
                    .iter()
                    .map(|t| match t {
                        Term::Cst(c) => match c.as_param() {
                            Some(v) if params.contains(&v) => {
                                SlotTerm::Slot(slot_of(v, &mut vars))
                            }
                            _ => SlotTerm::Cst(*c),
                        },
                        Term::Var(v) => SlotTerm::Slot(slot_of(*v, &mut vars)),
                    })
                    .collect(),
            })
            .collect();
        let semijoin = SemijoinPlan::build(&atoms);
        CompiledQuery {
            atoms,
            vars,
            n_params: params.len(),
            semijoin,
        }
    }

    /// The variables of the query in slot order (parameters first).
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// The slot-compiled atoms, in query order — exposed for static
    /// analysis (`cqa-analyze` converts them into its neutral IR).
    pub fn atoms(&self) -> &[CompiledAtom] {
        &self.atoms
    }

    /// The number of leading parameter slots (see
    /// [`CompiledQuery::with_params`]).
    pub fn n_params(&self) -> usize {
        self.n_params
    }

    /// The index of the (unique, queries being self-join-free) atom over
    /// `rel`, if any.
    pub fn atom_index(&self, rel: crate::schema::RelName) -> Option<usize> {
        self.atoms.iter().position(|a| a.rel == rel)
    }

    /// The Yannakakis plan, when the query's atom hypergraph is acyclic.
    pub fn semijoin_plan(&self) -> Option<&SemijoinPlan> {
        self.semijoin.as_ref()
    }

    /// `db ⊨ q`, under the process-default [`JoinStrategy`]
    /// ([`JoinStrategy::from_env`]).
    pub fn satisfies(&self, db: &Instance) -> bool {
        self.satisfies_via(db, JoinStrategy::from_env())
    }

    /// `db ⊨ q` under an explicit join strategy — the in-process pin used
    /// by the differential tests and benches regardless of `CQA_EVALUATOR`.
    pub fn satisfies_via(&self, db: &Instance, join: JoinStrategy) -> bool {
        let mut b = self.base_binding(&Valuation::new());
        if let Some(plan) = self.route(db.index(), &b, join) {
            return plan.satisfiable(db.index(), &mut b, &mut Trail::new(), &mut Vec::new());
        }
        let mut found = false;
        self.run(db, &Valuation::new(), &mut |_| {
            found = true;
            true
        });
        found
    }

    /// Finds a valuation extending `base` with `θ(q) ⊆ db`, under the
    /// process-default [`JoinStrategy`].
    pub fn find_with(&self, db: &Instance, base: &Valuation) -> Option<Valuation> {
        self.find_with_via(db, base, JoinStrategy::from_env())
    }

    /// Like [`CompiledQuery::find_with`] under an explicit join strategy.
    /// The semijoin path may return a *different* (equally valid) witness
    /// than the backtracking search.
    pub fn find_with_via(
        &self,
        db: &Instance,
        base: &Valuation,
        join: JoinStrategy,
    ) -> Option<Valuation> {
        let mut b = self.base_binding(base);
        if let Some(plan) = self.route(db.index(), &b, join) {
            return plan
                .witness(db.index(), &mut b, &mut Trail::new(), &mut Vec::new())
                .then(|| self.to_valuation(&b, base));
        }
        let mut result = None;
        self.run(db, base, &mut |b| {
            result = Some(self.to_valuation(b, base));
            true
        });
        result
    }

    /// The semijoin plan to execute with, if the strategy (and, in `auto`
    /// mode, the [`SemijoinPlan::prefers_semijoin`] heuristic) selects it.
    fn route<S: FactSource + ?Sized>(
        &self,
        src: &S,
        b: &Binding,
        join: JoinStrategy,
    ) -> Option<&SemijoinPlan> {
        let plan = self.semijoin.as_ref()?;
        match join {
            JoinStrategy::Backtracking => None,
            JoinStrategy::Semijoin => Some(plan),
            JoinStrategy::Auto => plan.prefers_semijoin(src, b).then_some(plan),
        }
    }

    /// A fresh binding with the base valuation's entries installed.
    fn base_binding(&self, base: &Valuation) -> Binding {
        let mut binding = Binding::new(self.vars.len());
        for (i, v) in self.vars.iter().enumerate() {
            if let Some(&c) = base.get(v) {
                binding.set(i as Slot, c);
            }
        }
        binding
    }

    /// Runs the join, invoking `on_match` per matching binding until it
    /// returns `true` (stop).
    fn run(&self, db: &Instance, base: &Valuation, on_match: &mut dyn FnMut(&Binding) -> bool) {
        let mut binding = self.base_binding(base);
        let mut remaining: Vec<usize> = (0..self.atoms.len()).collect();
        self.search(
            db.index(),
            &mut remaining,
            &mut binding,
            &mut Trail::new(),
            &mut Vec::new(),
            on_match,
        );
    }

    /// A reusable matcher asking, per row: does some valuation match the
    /// whole query with the anchor atom mapped to exactly that row and the
    /// parameter slots bound to `params`? This is the block-relevance
    /// primitive of the compiled reduction pipeline; the binding, trail and
    /// work list are allocated once here and reused across every row of
    /// every block ([`AnchoredMatcher::matches`] allocates nothing).
    pub fn anchored_matcher(&self, anchor: usize, params: &[Cst]) -> AnchoredMatcher<'_> {
        self.anchored_matcher_via(anchor, params, JoinStrategy::from_env())
    }

    /// Like [`CompiledQuery::anchored_matcher`] under an explicit join
    /// strategy: unless pinned to backtracking, the matcher carries a
    /// semijoin plan over the non-anchor atoms (when they are acyclic) and
    /// routes the per-row residual check through it.
    pub fn anchored_matcher_via(
        &self,
        anchor: usize,
        params: &[Cst],
        join: JoinStrategy,
    ) -> AnchoredMatcher<'_> {
        debug_assert_eq!(params.len(), self.n_params, "parameter arity");
        let mut binding = Binding::new(self.vars.len());
        for (i, &c) in params.iter().enumerate() {
            binding.set(i as Slot, c);
        }
        let semijoin = match join {
            JoinStrategy::Backtracking => None,
            JoinStrategy::Auto | JoinStrategy::Semijoin => {
                let rest: Vec<CompiledAtom> = self
                    .atoms
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != anchor)
                    .map(|(_, a)| a.clone())
                    .collect();
                SemijoinPlan::build(&rest)
            }
        };
        AnchoredMatcher {
            cq: self,
            anchor,
            binding,
            trail: Trail::new(),
            remaining: (0..self.atoms.len()).filter(|&i| i != anchor).collect(),
            key_buf: Vec::new(),
            join,
            semijoin,
            use_semijoin: None,
        }
    }

    /// Converts a match back into a map-based valuation, keeping the extra
    /// entries of `base` (bindings of variables outside `q`), like the
    /// interpretive search did.
    fn to_valuation(&self, b: &Binding, base: &Valuation) -> Valuation {
        let mut out = base.clone();
        for (i, v) in self.vars.iter().enumerate() {
            if let Some(c) = b.get(i as Slot) {
                out.insert(*v, c);
            }
        }
        out
    }

    fn search<S: FactSource + ?Sized>(
        &self,
        idx: &S,
        remaining: &mut Vec<usize>,
        b: &mut Binding,
        trail: &mut Trail,
        key_buf: &mut Vec<Cst>,
        on_match: &mut dyn FnMut(&Binding) -> bool,
    ) -> bool {
        if remaining.is_empty() {
            return on_match(b);
        }
        // Pick the atom with the fewest candidates (fail-first).
        let mut best_idx = 0;
        let mut best: Option<Candidates<'_>> = None;
        for (i, &ai) in remaining.iter().enumerate() {
            let c = idx.guarded_candidates(&self.atoms[ai], b, key_buf);
            let better = match &best {
                None => true,
                Some(bc) => c.len() < bc.len(),
            };
            if better {
                best_idx = i;
                let empty = c.is_empty();
                best = Some(c);
                if empty {
                    break;
                }
            }
        }
        let cands = best.expect("remaining non-empty");
        let ai = remaining.swap_remove(best_idx);
        let atom = &self.atoms[ai];
        let mut stop = false;
        for row in cands {
            let frame = trail.frame();
            if b.unify_row(&atom.terms, row, trail)
                && self.search(idx, remaining, b, trail, key_buf, on_match)
            {
                trail.undo_to(frame, b);
                stop = true;
                break;
            }
            trail.undo_to(frame, b);
        }
        // restore for caller
        remaining.push(ai);
        let last = remaining.len() - 1;
        remaining.swap(best_idx, last);
        stop
    }
}

/// A reusable anchored-match state over one [`CompiledQuery`]: see
/// [`CompiledQuery::anchored_matcher`].
#[derive(Clone, Debug)]
pub struct AnchoredMatcher<'q> {
    cq: &'q CompiledQuery,
    anchor: usize,
    binding: Binding,
    trail: Trail,
    remaining: Vec<usize>,
    key_buf: Vec<Cst>,
    join: JoinStrategy,
    /// Yannakakis plan over the non-anchor atoms, when acyclic and the
    /// strategy allows it.
    semijoin: Option<SemijoinPlan>,
    /// `auto`-mode routing decision, cached after the first row: the
    /// boundness pattern after unifying an anchor row is the same for every
    /// row of the relation, so the heuristic need not rerun per row.
    use_semijoin: Option<bool>,
}

impl AnchoredMatcher<'_> {
    /// Whether the query matches in `src` with the anchor atom mapped to
    /// exactly `row` (under the parameters fixed at construction). Leaves
    /// the matcher ready for the next row: the search undoes its own
    /// bindings and restores the work list.
    pub fn matches<S: FactSource + ?Sized>(&mut self, src: &S, row: &[Cst]) -> bool {
        let frame = self.trail.frame();
        let mut ok = self
            .binding
            .unify_row(&self.cq.atoms[self.anchor].terms, row, &mut self.trail);
        if ok {
            let via_semijoin = match (&self.semijoin, self.join) {
                (None, _) => false,
                (Some(_), JoinStrategy::Semijoin) => true,
                (Some(plan), _) => *self
                    .use_semijoin
                    .get_or_insert_with(|| plan.prefers_semijoin(src, &self.binding)),
            };
            ok = match (&self.semijoin, via_semijoin) {
                (Some(plan), true) => plan.satisfiable(
                    src,
                    &mut self.binding,
                    &mut self.trail,
                    &mut self.key_buf,
                ),
                _ => self.cq.search(
                    src,
                    &mut self.remaining,
                    &mut self.binding,
                    &mut self.trail,
                    &mut self.key_buf,
                    &mut |_| true,
                ),
            };
        }
        self.trail.undo_to(frame, &mut self.binding);
        ok
    }
}

/// Finds a valuation extending `base` with `θ(q) ⊆ db`.
pub fn find_valuation_with(db: &Instance, q: &Query, base: &Valuation) -> Option<Valuation> {
    CompiledQuery::new(q).find_with(db, base)
}

/// Finds a valuation with `θ(q) ⊆ db`.
pub fn find_valuation(db: &Instance, q: &Query) -> Option<Valuation> {
    find_valuation_with(db, q, &Valuation::new())
}

/// `db ⊨ q`.
pub fn satisfies(db: &Instance, q: &Query) -> bool {
    CompiledQuery::new(q).satisfies(db)
}

/// All total valuations over `vars(q)` with `θ(q) ⊆ db` (deduplicated).
pub fn all_valuations(db: &Instance, q: &Query) -> Vec<Valuation> {
    let cq = CompiledQuery::new(q);
    let mut out: BTreeSet<Valuation> = BTreeSet::new();
    cq.run(db, &Valuation::new(), &mut |b| {
        out.insert(cq.to_valuation(b, &Valuation::new()));
        false // keep enumerating
    });
    out.into_iter().collect()
}

/// A fact `A` is *relevant* for `q` in `db` if some valuation `θ` has
/// `A ∈ θ(q) ⊆ db` (paper Appendix A). Returns all relevant facts.
pub fn relevant_facts(db: &Instance, q: &Query) -> BTreeSet<Fact> {
    let mut out = BTreeSet::new();
    for atom in q.atoms() {
        let rest = CompiledQuery::new(&q.without(atom.rel));
        for fact in db.facts_of(atom.rel) {
            if out.contains(&fact) {
                continue;
            }
            if let Some(base) = unify(atom, &fact, &Valuation::new()) {
                if rest.find_with(db, &base).is_some() {
                    out.insert(fact);
                }
            }
        }
    }
    out
}

/// Whether the single fact `A` is relevant for `q` in `db`, i.e. some
/// valuation maps the (unique) atom over `A`'s relation to `A` and embeds the
/// rest of the query.
pub fn is_relevant(db: &Instance, q: &Query, fact: &Fact) -> bool {
    let Some(atom) = q.atom(fact.rel) else {
        return false;
    };
    let Some(base) = unify(atom, fact, &Valuation::new()) else {
        return false;
    };
    find_valuation_with(db, &q.without(fact.rel), &base).is_some()
}

/// Whether a block (given by one of its facts) is relevant for `q` in `db`:
/// it contains at least one relevant fact (paper Appendix A). The residual
/// query is compiled once and reused across the block.
pub fn block_is_relevant(db: &Instance, q: &Query, member: &Fact) -> bool {
    let Some(atom) = q.atom(member.rel) else {
        return false;
    };
    let rest = CompiledQuery::new(&q.without(member.rel));
    db.block_of(member).iter().any(|fact| {
        unify(atom, fact, &Valuation::new())
            .map(|base| rest.find_with(db, &base).is_some())
            .unwrap_or(false)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{RelName, Schema};
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        let mut s = Schema::new();
        s.add("R", 2, 1).unwrap();
        s.add("S", 2, 1).unwrap();
        s.add("T", 1, 1).unwrap();
        Arc::new(s)
    }

    fn q_rst() -> Query {
        // {R(x, y), S(y, z), T(z)}
        Query::new(
            schema(),
            vec![
                Atom::new(RelName::new("R"), vec![Term::var("x"), Term::var("y")]),
                Atom::new(RelName::new("S"), vec![Term::var("y"), Term::var("z")]),
                Atom::new(RelName::new("T"), vec![Term::var("z")]),
            ],
        )
        .unwrap()
    }

    fn db() -> Instance {
        let mut db = Instance::new(schema());
        db.insert_named("R", &["a", "b"]).unwrap();
        db.insert_named("R", &["a", "c"]).unwrap();
        db.insert_named("S", &["b", "d"]).unwrap();
        db.insert_named("S", &["x", "y"]).unwrap();
        db.insert_named("T", &["d"]).unwrap();
        db
    }

    #[test]
    fn satisfaction_via_join() {
        assert!(satisfies(&db(), &q_rst()));
        let val = find_valuation(&db(), &q_rst()).unwrap();
        assert_eq!(val[&Var::new("x")], Cst::new("a"));
        assert_eq!(val[&Var::new("y")], Cst::new("b"));
        assert_eq!(val[&Var::new("z")], Cst::new("d"));
    }

    #[test]
    fn unsatisfied_when_chain_broken() {
        let mut d = db();
        d.remove(&Fact::from_names("T", &["d"])).unwrap();
        assert!(!satisfies(&d, &q_rst()));
    }

    #[test]
    fn compiled_query_reusable_across_instances() {
        let cq = CompiledQuery::new(&q_rst());
        assert!(cq.satisfies(&db()));
        let mut d = db();
        d.remove(&Fact::from_names("T", &["d"])).unwrap();
        assert!(!cq.satisfies(&d));
        d.insert_named("T", &["d"]).unwrap();
        assert!(cq.satisfies(&d), "index invalidation after re-insert");
    }

    #[test]
    fn constants_must_match() {
        let q = Query::new(
            schema(),
            vec![Atom::new(
                RelName::new("R"),
                vec![Term::var("x"), Term::cst("zzz")],
            )],
        )
        .unwrap();
        assert!(!satisfies(&db(), &q));
        let q2 = Query::new(
            schema(),
            vec![Atom::new(
                RelName::new("R"),
                vec![Term::var("x"), Term::cst("b")],
            )],
        )
        .unwrap();
        assert!(satisfies(&db(), &q2));
    }

    #[test]
    fn repeated_variables_enforced() {
        // R(x, x) only matches facts with equal components.
        let q = Query::new(
            schema(),
            vec![Atom::new(
                RelName::new("R"),
                vec![Term::var("x"), Term::var("x")],
            )],
        )
        .unwrap();
        assert!(!satisfies(&db(), &q));
        let mut d = db();
        d.insert_named("R", &["e", "e"]).unwrap();
        assert!(satisfies(&d, &q));
    }

    #[test]
    fn partial_valuation_respected() {
        let mut base = Valuation::new();
        base.insert(Var::new("x"), Cst::new("nope"));
        assert!(find_valuation_with(&db(), &q_rst(), &base).is_none());
        let mut base2 = Valuation::new();
        base2.insert(Var::new("x"), Cst::new("a"));
        assert!(find_valuation_with(&db(), &q_rst(), &base2).is_some());
    }

    #[test]
    fn base_entries_outside_query_are_kept() {
        // The interpretive search returned base ∪ bindings; the compiled
        // wrappers must preserve that contract.
        let mut base = Valuation::new();
        base.insert(Var::new("unrelated"), Cst::new("k"));
        let val = find_valuation_with(&db(), &q_rst(), &base).unwrap();
        assert_eq!(val[&Var::new("unrelated")], Cst::new("k"));
        assert_eq!(val[&Var::new("x")], Cst::new("a"));
    }

    #[test]
    fn all_valuations_enumeration() {
        // {R(x, y)} has two embeddings in db.
        let q = Query::new(
            schema(),
            vec![Atom::new(
                RelName::new("R"),
                vec![Term::var("x"), Term::var("y")],
            )],
        )
        .unwrap();
        assert_eq!(all_valuations(&db(), &q).len(), 2);
    }

    #[test]
    fn empty_query_always_true() {
        let q = Query::empty(schema());
        assert!(satisfies(&Instance::new(schema()), &q));
        assert_eq!(all_valuations(&db(), &q).len(), 1); // the empty valuation
    }

    #[test]
    fn relevance() {
        let d = db();
        let q = q_rst();
        let rel = relevant_facts(&d, &q);
        // Only the R(a,b) → S(b,d) → T(d) chain is relevant.
        assert!(rel.contains(&Fact::from_names("R", &["a", "b"])));
        assert!(rel.contains(&Fact::from_names("S", &["b", "d"])));
        assert!(rel.contains(&Fact::from_names("T", &["d"])));
        assert!(!rel.contains(&Fact::from_names("R", &["a", "c"])));
        assert!(!rel.contains(&Fact::from_names("S", &["x", "y"])));

        // Block relevance: the R(a,·) block is relevant via R(a,b).
        assert!(block_is_relevant(&d, &q, &Fact::from_names("R", &["a", "c"])));
        assert!(!block_is_relevant(
            &d,
            &q,
            &Fact::from_names("S", &["x", "y"])
        ));
    }

    #[test]
    fn join_strategies_agree() {
        let cq = CompiledQuery::new(&q_rst());
        let d = db();
        let mut broken = db();
        broken.remove(&Fact::from_names("T", &["d"])).unwrap();
        for join in [
            JoinStrategy::Auto,
            JoinStrategy::Backtracking,
            JoinStrategy::Semijoin,
        ] {
            assert!(cq.satisfies_via(&d, join), "{join}: satisfiable");
            assert!(!cq.satisfies_via(&broken, join), "{join}: broken chain");
            let val = cq.find_with_via(&d, &Valuation::new(), join).unwrap();
            let facts = apply_query(&q_rst(), &val).unwrap();
            assert!(
                facts.iter().all(|f| d.contains(f)),
                "{join}: witness embeds in the instance"
            );
        }
    }

    #[test]
    fn anchored_matcher_strategies_agree() {
        let cq = CompiledQuery::new(&q_rst());
        let d = db();
        let idx = d.index();
        let anchor = cq.atom_index(RelName::new("R")).unwrap();
        let rows: Vec<Box<[Cst]>> = d
            .facts_of(RelName::new("R"))
            .map(|f| f.args.clone())
            .collect();
        for row in &rows {
            let expected = cq
                .anchored_matcher_via(anchor, &[], JoinStrategy::Backtracking)
                .matches(idx, row);
            for join in [JoinStrategy::Auto, JoinStrategy::Semijoin] {
                let got = cq.anchored_matcher_via(anchor, &[], join).matches(idx, row);
                assert_eq!(got, expected, "{join}: anchored row {row:?}");
            }
        }
    }

    #[test]
    fn unify_rejects_mismatches() {
        let atom = Atom::new(RelName::new("R"), vec![Term::var("x"), Term::var("x")]);
        let f1 = Fact::from_names("R", &["a", "a"]);
        let f2 = Fact::from_names("R", &["a", "b"]);
        assert!(unify(&atom, &f1, &Valuation::new()).is_some());
        assert!(unify(&atom, &f2, &Valuation::new()).is_none());
        let f3 = Fact::from_names("S", &["a", "a"]);
        assert!(unify(&atom, &f3, &Valuation::new()).is_none());
    }
}
