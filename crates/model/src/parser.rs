//! A small text syntax for schemas, queries, foreign keys and instances.
//!
//! Grammar (whitespace-insensitive; `,` `;` and newlines separate items):
//!
//! * **schema** — `R[3,2] S[2,1]`: relation `R` has arity 3 and a 2-attribute
//!   primary key (the paper's signature notation).
//! * **query** — `N(x, 'c', y), O(y)`: bare identifiers are variables,
//!   quoted tokens and bare numerals are constants.
//! * **foreign keys** — `N[3] -> O; R[1] -> DOCS` (also accepts `→`).
//! * **instance** — `R(a, 1); S(1, x)`: every term is a constant (quotes
//!   optional).
//!
//! The characters `#` and `§` are reserved for internally generated fresh
//! symbols and parameter constants, and are rejected in user input.

use crate::atom::Atom;
use crate::error::ModelError;
use crate::fact::Fact;
use crate::fk::{FkSet, ForeignKey};
use crate::instance::Instance;
use crate::intern::Cst;
use crate::query::Query;
use crate::schema::{RelName, Schema};
use crate::term::Term;
use std::sync::Arc;

fn err(detail: impl Into<String>) -> ModelError {
    ModelError::Parse {
        detail: detail.into(),
    }
}

struct Lexer<'a> {
    input: &'a str,
    pos: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Quoted(String),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Arrow,
    Eof,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Lexer<'a> {
        Lexer { input, pos: 0 }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn skip_ws(&mut self) {
        loop {
            let r = self.rest();
            let trimmed = r.trim_start_matches([' ', '\t', '\n', '\r', ';']);
            self.pos += r.len() - trimmed.len();
            if trimmed.starts_with("--") {
                // line comment
                match trimmed.find('\n') {
                    Some(i) => self.pos += i,
                    None => self.pos = self.input.len(),
                }
            } else {
                break;
            }
        }
    }

    fn next(&mut self) -> Result<Tok, ModelError> {
        self.skip_ws();
        let r = self.rest();
        let mut chars = r.chars();
        let Some(c) = chars.next() else {
            return Ok(Tok::Eof);
        };
        match c {
            '(' => {
                self.pos += 1;
                Ok(Tok::LParen)
            }
            ')' => {
                self.pos += 1;
                Ok(Tok::RParen)
            }
            '[' => {
                self.pos += 1;
                Ok(Tok::LBracket)
            }
            ']' => {
                self.pos += 1;
                Ok(Tok::RBracket)
            }
            ',' => {
                self.pos += 1;
                Ok(Tok::Comma)
            }
            '\u{2192}' => {
                // '→'
                self.pos += c.len_utf8();
                Ok(Tok::Arrow)
            }
            '-' if r.starts_with("->") => {
                self.pos += 2;
                Ok(Tok::Arrow)
            }
            '\'' => {
                let rest = &r[1..];
                let end = rest
                    .find('\'')
                    .ok_or_else(|| err(format!("unterminated quote at …{r}")))?;
                let content = &rest[..end];
                validate_token(content)?;
                self.pos += end + 2;
                Ok(Tok::Quoted(content.to_string()))
            }
            c if is_ident_char(c) => {
                let end = r.find(|ch| !is_ident_char(ch)).unwrap_or(r.len());
                let word = &r[..end];
                validate_token(word)?;
                self.pos += end;
                Ok(Tok::Ident(word.to_string()))
            }
            other => Err(err(format!("unexpected character {other:?} at …{r}"))),
        }
    }


    fn expect(&mut self, want: Tok) -> Result<(), ModelError> {
        let got = self.next()?;
        if got == want {
            Ok(())
        } else {
            Err(err(format!("expected {want:?}, got {got:?}")))
        }
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '.' || c == '\u{22a5}' // allow '⊥'
}

fn validate_token(s: &str) -> Result<(), ModelError> {
    if s.is_empty() {
        return Err(err("empty token"));
    }
    if s.contains('#') || s.contains('\u{a7}') {
        return Err(err(format!(
            "token {s:?} uses a reserved character ('#' or '§')"
        )));
    }
    Ok(())
}

/// Parses a schema, e.g. `"R[3,2] S[2,1]"`.
pub fn parse_schema(input: &str) -> Result<Schema, ModelError> {
    let mut lex = Lexer::new(input);
    let mut schema = Schema::new();
    loop {
        match lex.next()? {
            Tok::Eof => break,
            Tok::Comma => continue,
            Tok::Ident(name) => {
                lex.expect(Tok::LBracket)?;
                let arity = parse_usize(&mut lex)?;
                lex.expect(Tok::Comma)?;
                let key_len = parse_usize(&mut lex)?;
                lex.expect(Tok::RBracket)?;
                schema.add(&name, arity, key_len)?;
            }
            other => return Err(err(format!("expected relation name, got {other:?}"))),
        }
    }
    Ok(schema)
}

fn parse_usize(lex: &mut Lexer<'_>) -> Result<usize, ModelError> {
    match lex.next()? {
        Tok::Ident(word) => word
            .parse::<usize>()
            .map_err(|_| err(format!("expected a number, got {word:?}"))),
        other => Err(err(format!("expected a number, got {other:?}"))),
    }
}

fn parse_term(tok: Tok, ground: bool) -> Result<Term, ModelError> {
    match tok {
        Tok::Quoted(s) => Ok(Term::Cst(Cst::new(&s))),
        Tok::Ident(s) => {
            if ground || s.chars().all(|c| c.is_ascii_digit()) {
                Ok(Term::Cst(Cst::new(&s)))
            } else {
                Ok(Term::var(&s))
            }
        }
        other => Err(err(format!("expected a term, got {other:?}"))),
    }
}

fn parse_atom_body(lex: &mut Lexer<'_>, name: &str, ground: bool) -> Result<Atom, ModelError> {
    lex.expect(Tok::LParen)?;
    let mut terms = Vec::new();
    loop {
        let tok = lex.next()?;
        if tok == Tok::RParen && terms.is_empty() {
            break;
        }
        terms.push(parse_term(tok, ground)?);
        match lex.next()? {
            Tok::Comma => continue,
            Tok::RParen => break,
            other => return Err(err(format!("expected ',' or ')', got {other:?}"))),
        }
    }
    Ok(Atom::new(RelName::new(name), terms))
}

/// Parses a list of atoms, e.g. `"N(x, 'c', y), O(y)"`, into a query.
pub fn parse_query(schema: &Arc<Schema>, input: &str) -> Result<Query, ModelError> {
    let mut lex = Lexer::new(input);
    let mut atoms = Vec::new();
    loop {
        match lex.next()? {
            Tok::Eof => break,
            Tok::Comma => continue,
            Tok::Ident(name) => atoms.push(parse_atom_body(&mut lex, &name, false)?),
            other => return Err(err(format!("expected an atom, got {other:?}"))),
        }
    }
    Query::new(schema.clone(), atoms)
}

/// Parses a single ground fact, e.g. `"R(a, 1)"`.
pub fn parse_fact(input: &str) -> Result<Fact, ModelError> {
    let mut lex = Lexer::new(input);
    match lex.next()? {
        Tok::Ident(name) => {
            let atom = parse_atom_body(&mut lex, &name, true)?;
            let args: Vec<Cst> = atom
                .terms
                .iter()
                .map(|t| t.as_cst().ok_or(ModelError::NonGroundTerm))
                .collect::<Result<_, _>>()?;
            Ok(Fact::new(atom.rel, args))
        }
        other => Err(err(format!("expected a fact, got {other:?}"))),
    }
}

/// Parses a whole instance, e.g. `"R(a,1); R(a,2); S(1,x)"`.
pub fn parse_instance(schema: &Arc<Schema>, input: &str) -> Result<Instance, ModelError> {
    let mut lex = Lexer::new(input);
    let mut db = Instance::new(schema.clone());
    loop {
        match lex.next()? {
            Tok::Eof => break,
            Tok::Comma => continue,
            Tok::Ident(name) => {
                let atom = parse_atom_body(&mut lex, &name, true)?;
                let args: Vec<Cst> = atom
                    .terms
                    .iter()
                    .map(|t| t.as_cst().ok_or(ModelError::NonGroundTerm))
                    .collect::<Result<_, _>>()?;
                db.insert(Fact::new(atom.rel, args))?;
            }
            other => return Err(err(format!("expected a fact, got {other:?}"))),
        }
    }
    Ok(db)
}

/// Parses foreign keys, e.g. `"N[3] -> O; R[1] -> DOCS"`.
pub fn parse_fks(schema: &Arc<Schema>, input: &str) -> Result<FkSet, ModelError> {
    let mut lex = Lexer::new(input);
    let mut fks = Vec::new();
    loop {
        match lex.next()? {
            Tok::Eof => break,
            Tok::Comma => continue,
            Tok::Ident(from) => {
                lex.expect(Tok::LBracket)?;
                let pos = parse_usize(&mut lex)?;
                lex.expect(Tok::RBracket)?;
                lex.expect(Tok::Arrow)?;
                match lex.next()? {
                    Tok::Ident(to) => fks.push(ForeignKey::from_names(&from, pos, &to)),
                    other => return Err(err(format!("expected relation name, got {other:?}"))),
                }
            }
            other => return Err(err(format!("expected a foreign key, got {other:?}"))),
        }
    }
    FkSet::new(schema.clone(), fks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::Var;

    #[test]
    fn schema_round_trip() {
        let s = parse_schema("R[3,2] S[2,1], T[1,1]").unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.signature(RelName::new("R")).unwrap().key_len, 2);
        assert_eq!(s.to_string(), "R[3, 2] S[2, 1] T[1, 1]");
    }

    #[test]
    fn schema_rejects_bad_signature() {
        assert!(parse_schema("R[0,0]").is_err());
        assert!(parse_schema("R[2,3]").is_err());
        assert!(parse_schema("R[2]").is_err());
    }

    #[test]
    fn query_terms() {
        let s = Arc::new(parse_schema("N[3,1] O[1,1]").unwrap());
        let q = parse_query(&s, "N(x, 'c', y), O(y)").unwrap();
        assert_eq!(q.len(), 2);
        let n = q.atom(RelName::new("N")).unwrap();
        assert_eq!(n.terms[0], Term::var("x"));
        assert_eq!(n.terms[1], Term::cst("c"));
        assert!(q.vars().contains(&Var::new("y")));
    }

    #[test]
    fn numerals_are_constants_in_queries() {
        let s = Arc::new(parse_schema("DOCS[3,1]").unwrap());
        let q = parse_query(&s, "DOCS(x, t, 2016)").unwrap();
        let a = q.atom(RelName::new("DOCS")).unwrap();
        assert_eq!(a.terms[2], Term::cst("2016"));
    }

    #[test]
    fn instance_parsing() {
        let s = Arc::new(parse_schema("R[2,1] S[2,1]").unwrap());
        let db = parse_instance(&s, "R(a,1); R(a,2)\nS(1,x) -- a comment\nS(2,y)").unwrap();
        assert_eq!(db.len(), 4);
        assert!(db.contains(&Fact::from_names("S", &["2", "y"])));
    }

    #[test]
    fn fk_parsing_both_arrows() {
        let s = Arc::new(parse_schema("N[3,1] O[1,1]").unwrap());
        let fks = parse_fks(&s, "N[3] -> O").unwrap();
        assert_eq!(fks.len(), 1);
        let fks2 = parse_fks(&s, "N[3] → O").unwrap();
        assert_eq!(fks, fks2);
    }

    #[test]
    fn fk_parsing_validates() {
        let s = Arc::new(parse_schema("N[3,1] O[2,2]").unwrap());
        // O has a composite key; referencing it must fail.
        assert!(parse_fks(&s, "N[3] -> O").is_err());
    }

    #[test]
    fn reserved_characters_rejected() {
        let s = Arc::new(parse_schema("R[1,1]").unwrap());
        assert!(parse_instance(&s, "R(a#1)").is_err());
        assert!(parse_query(&s, "R(x§)").is_err());
    }

    #[test]
    fn unterminated_quote() {
        let s = Arc::new(parse_schema("R[1,1]").unwrap());
        assert!(parse_instance(&s, "R('abc)").is_err());
    }

    #[test]
    fn fact_parsing() {
        let f = parse_fact("AUTHORS(o1, 'Jeff', 'Ullman')").unwrap();
        assert_eq!(f.arity(), 3);
        assert_eq!(f.args[1], Cst::new("Jeff"));
    }

    #[test]
    fn query_self_join_still_rejected() {
        let s = Arc::new(parse_schema("R[2,1]").unwrap());
        assert!(parse_query(&s, "R(x,y), R(y,x)").is_err());
    }
}
