//! Typed errors for schema, query, foreign-key and parsing validation.

use crate::schema::RelName;
use std::fmt;

/// Errors raised while building or validating model objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// Signature `[n, k]` requires `1 ≤ k ≤ n` and `n ≥ 1`.
    BadSignature {
        /// Relation being declared.
        rel: String,
        /// Declared arity.
        arity: usize,
        /// Declared key length.
        key_len: usize,
    },
    /// The same relation was declared twice with different signatures.
    ConflictingSignature(String),
    /// An atom or fact refers to a relation absent from the schema.
    UnknownRelation(String),
    /// An atom or fact has the wrong number of terms.
    ArityMismatch {
        /// Offending relation.
        rel: RelName,
        /// Expected arity per the schema.
        expected: usize,
        /// Number of terms supplied.
        got: usize,
    },
    /// A Boolean conjunctive query mentioned the same relation twice
    /// (queries must be self-join-free).
    SelfJoin(RelName),
    /// A foreign key `R[i] → S` has `i` outside `[1, arity(R)]`.
    BadFkPosition {
        /// Source relation.
        from: RelName,
        /// Offending position.
        pos: usize,
    },
    /// A foreign key references a relation whose primary key is not unary
    /// (the paper requires the referenced key to be the single leftmost
    /// attribute).
    CompositeKeyReferenced(RelName),
    /// A foreign key set is not *about* the query: either a relation of the
    /// set does not occur in the query, or the query (with distinct variables
    /// read as distinct constants) falsifies some foreign key.
    NotAboutQuery {
        /// Human-readable explanation.
        detail: String,
    },
    /// A fact contained a variable or a query operation required a constant.
    NonGroundTerm,
    /// Text-syntax parse error.
    Parse {
        /// Human-readable explanation with position info.
        detail: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::BadSignature { rel, arity, key_len } => write!(
                f,
                "invalid signature [{arity}, {key_len}] for {rel}: need 1 <= k <= n"
            ),
            ModelError::ConflictingSignature(rel) => {
                write!(f, "relation {rel} declared twice with different signatures")
            }
            ModelError::UnknownRelation(rel) => write!(f, "unknown relation {rel}"),
            ModelError::ArityMismatch { rel, expected, got } => {
                write!(f, "{rel} expects {expected} terms, got {got}")
            }
            ModelError::SelfJoin(rel) => write!(
                f,
                "query mentions {rel} more than once; only self-join-free queries are supported"
            ),
            ModelError::BadFkPosition { from, pos } => {
                write!(f, "foreign key position {from}[{pos}] is out of range")
            }
            ModelError::CompositeKeyReferenced(rel) => write!(
                f,
                "foreign key references {rel}, whose primary key is not unary"
            ),
            ModelError::NotAboutQuery { detail } => {
                write!(f, "foreign keys are not about the query: {detail}")
            }
            ModelError::NonGroundTerm => write!(f, "expected a ground (constant) term"),
            ModelError::Parse { detail } => write!(f, "parse error: {detail}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ModelError::BadSignature {
            rel: "R".into(),
            arity: 2,
            key_len: 3,
        };
        assert!(e.to_string().contains("[2, 3]"));
        let e = ModelError::Parse {
            detail: "unexpected ')'".into(),
        };
        assert!(e.to_string().contains("unexpected"));
    }
}
