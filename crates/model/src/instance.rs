//! Database instances with primary-key *block* indexes.
//!
//! A *block* (paper §3.1) is a maximal set of key-equal facts; repairs with
//! respect to primary keys choose at most one fact per block. The instance
//! keeps, per relation, a map from key prefix to the facts of that block, so
//! block enumeration — the primitive of every CQA algorithm — is direct.

use crate::binding::{Binding, CompiledAtom};
use crate::columnar::ColumnarRelation;
use crate::delta::{Delta, DeltaOp};
use crate::error::ModelError;
use crate::fact::Fact;
use crate::fk::{FkSet, ForeignKey};
use crate::intern::Cst;
use crate::schema::{RelName, Schema, Signature};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Source of per-object instance identities (see [`Instance::uid`]).
static NEXT_UID: AtomicU64 = AtomicU64::new(1);

fn next_uid() -> u64 {
    NEXT_UID.fetch_add(1, Ordering::Relaxed)
}

/// Per-relation fact store with a block index.
#[derive(Clone, Debug, Default)]
struct RelStore {
    rows: BTreeSet<Box<[Cst]>>,
    /// key prefix → rows of the block (kept sorted for determinism).
    blocks: BTreeMap<Box<[Cst]>, BTreeSet<Box<[Cst]>>>,
}

/// A finite set of facts over a schema.
pub struct Instance {
    schema: Arc<Schema>,
    rels: BTreeMap<RelName, RelStore>,
    len: usize,
    /// Generation counter: bumped by every *effective* mutation (an insert
    /// that added a row, a remove that deleted one). Together with
    /// [`Instance::uid`] this lets long-lived consumers (incremental
    /// solvers, cached plans) detect staleness with two integer compares.
    epoch: u64,
    /// Process-unique object identity. A [`Clone`] gets a **fresh** uid, so
    /// `(uid, epoch)` pins one mutation history of one object: equal pairs
    /// guarantee the observer has seen every mutation.
    uid: u64,
    /// Lazily built secondary indexes ([`InstanceIndex`]); **patched in
    /// place** by [`Instance::insert`]/[`Instance::remove`] once built
    /// (O(1) amortized per fact), never discarded wholesale. Cloning an
    /// instance clones the cache — it is a pure function of the rows, so a
    /// clone's cache is equally valid.
    cache: OnceLock<InstanceIndex>,
}

impl Clone for Instance {
    fn clone(&self) -> Instance {
        Instance {
            schema: self.schema.clone(),
            rels: self.rels.clone(),
            len: self.len,
            epoch: self.epoch,
            uid: next_uid(),
            cache: self.cache.clone(),
        }
    }
}

impl Instance {
    /// Creates an empty instance.
    pub fn new(schema: Arc<Schema>) -> Instance {
        Instance {
            schema,
            rels: BTreeMap::new(),
            len: 0,
            epoch: 0,
            uid: next_uid(),
            cache: OnceLock::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The mutation generation: strictly increases with every effective
    /// [`Instance::insert`]/[`Instance::remove`]. No-op mutations (duplicate
    /// insert, absent remove) leave it unchanged.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// This object's process-unique identity; a clone gets a fresh one.
    /// `(uid(), epoch())` together identify one state of one object.
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// Inserts a fact; returns `Ok(true)` if it was new.
    pub fn insert(&mut self, fact: Fact) -> Result<bool, ModelError> {
        let sig = self.schema.expect(fact.rel)?;
        if fact.arity() != sig.arity {
            return Err(ModelError::ArityMismatch {
                rel: fact.rel,
                expected: sig.arity,
                got: fact.arity(),
            });
        }
        let store = self.rels.entry(fact.rel).or_default();
        let key: Box<[Cst]> = fact.key(sig).into();
        if store.rows.insert(fact.args.clone()) {
            store.blocks.entry(key).or_default().insert(fact.args.clone());
            self.len += 1;
            self.epoch += 1;
            if let Some(idx) = self.cache.get_mut() {
                idx.apply_insert(fact.rel, sig, fact.args);
            }
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Convenience: inserts `rel(args…)` by name.
    pub fn insert_named(&mut self, rel: &str, args: &[&str]) -> Result<bool, ModelError> {
        self.insert(Fact::from_names(rel, args))
    }

    /// Removes a fact; returns `Ok(true)` if it was present. Validation is
    /// symmetric with [`Instance::insert`]: an unknown relation or a
    /// wrong-arity fact for a known relation is an error, not a silent
    /// `false` (which would be indistinguishable from "not present").
    pub fn remove(&mut self, fact: &Fact) -> Result<bool, ModelError> {
        let sig = self.schema.expect(fact.rel)?;
        if fact.arity() != sig.arity {
            return Err(ModelError::ArityMismatch {
                rel: fact.rel,
                expected: sig.arity,
                got: fact.arity(),
            });
        }
        let Some(store) = self.rels.get_mut(&fact.rel) else {
            return Ok(false);
        };
        if store.rows.remove(&fact.args) {
            let key: Box<[Cst]> = fact.key(sig).into();
            if let Some(block) = store.blocks.get_mut(&key) {
                block.remove(&fact.args);
                if block.is_empty() {
                    store.blocks.remove(&key);
                }
            }
            self.len -= 1;
            self.epoch += 1;
            if let Some(idx) = self.cache.get_mut() {
                idx.apply_remove(fact.rel, &fact.args);
            }
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Applies an ordered batch of mutations. Every operation is validated
    /// against the schema (known relation, matching arity) **before** any is
    /// applied, so a malformed batch leaves the instance untouched. Returns
    /// the number of *effective* operations (inserts that added a row,
    /// removes that deleted one); the epoch advances by exactly that many.
    pub fn apply(&mut self, delta: &Delta) -> Result<usize, ModelError> {
        for op in delta.ops() {
            let fact = op.fact();
            let sig = self.schema.expect(fact.rel)?;
            if fact.arity() != sig.arity {
                return Err(ModelError::ArityMismatch {
                    rel: fact.rel,
                    expected: sig.arity,
                    got: fact.arity(),
                });
            }
        }
        let mut effective = 0;
        for op in delta.ops() {
            let changed = match op {
                DeltaOp::Insert(f) => self.insert(f.clone())?,
                DeltaOp::Remove(f) => self.remove(f)?,
            };
            effective += usize::from(changed);
        }
        Ok(effective)
    }

    /// Whether the instance contains `fact`.
    pub fn contains(&self, fact: &Fact) -> bool {
        self.rels
            .get(&fact.rel)
            .map(|s| s.rows.contains(&fact.args))
            .unwrap_or(false)
    }

    /// Total number of facts.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the instance has no facts.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// All facts, in canonical order.
    pub fn facts(&self) -> impl Iterator<Item = Fact> + '_ {
        self.rels.iter().flat_map(|(rel, store)| {
            store.rows.iter().map(move |row| Fact::new(*rel, row.clone()))
        })
    }

    /// Facts of one relation, in canonical order.
    pub fn facts_of(&self, rel: RelName) -> impl Iterator<Item = Fact> + '_ {
        self.rels
            .get(&rel)
            .into_iter()
            .flat_map(move |store| store.rows.iter().map(move |row| Fact::new(rel, row.clone())))
    }

    /// Number of facts of one relation.
    pub fn count_of(&self, rel: RelName) -> usize {
        self.rels.get(&rel).map(|s| s.rows.len()).unwrap_or(0)
    }

    /// The block `R(⃗a, ∗)`: all facts of `rel` with key prefix `key`.
    pub fn block(&self, rel: RelName, key: &[Cst]) -> Vec<Fact> {
        match self.rels.get(&rel) {
            Some(store) => store
                .blocks
                .get(key)
                .map(|rows| rows.iter().map(|r| Fact::new(rel, r.clone())).collect())
                .unwrap_or_default(),
            None => Vec::new(),
        }
    }

    /// `block(A, db)`: the block containing `fact` (empty if absent relation).
    pub fn block_of(&self, fact: &Fact) -> Vec<Fact> {
        match self.schema.signature(fact.rel) {
            Some(sig) => self.block(fact.rel, fact.key(sig)),
            None => Vec::new(),
        }
    }

    /// All blocks of `rel` as `(key, facts)` pairs, in canonical order.
    pub fn blocks(&self, rel: RelName) -> Vec<(Box<[Cst]>, Vec<Fact>)> {
        match self.rels.get(&rel) {
            Some(store) => store
                .blocks
                .iter()
                .map(|(k, rows)| {
                    (
                        k.clone(),
                        rows.iter().map(|r| Fact::new(rel, r.clone())).collect(),
                    )
                })
                .collect(),
            None => Vec::new(),
        }
    }

    /// Relations with at least one fact.
    pub fn populated_relations(&self) -> impl Iterator<Item = RelName> + '_ {
        self.rels
            .iter()
            .filter(|(_, s)| !s.rows.is_empty())
            .map(|(r, _)| *r)
    }

    /// The lazily built secondary indexes over this instance: cached active
    /// domain, key constants, and per-relation hash indexes for block
    /// lookups and full-fact membership. Built on first use; once built,
    /// every successful [`Instance::insert`]/[`Instance::remove`] patches it
    /// in place (O(1) amortized per fact) instead of discarding it.
    pub fn index(&self) -> &InstanceIndex {
        self.cache.get_or_init(|| InstanceIndex::build(self))
    }

    /// Builds a fresh [`InstanceIndex`] from scratch, bypassing (and not
    /// touching) the cached one. This is the differential-testing oracle for
    /// the incremental maintenance in [`Instance::insert`]/
    /// [`Instance::remove`]: after any mutation trace,
    /// `*db.index() == db.rebuild_index()` must hold.
    pub fn rebuild_index(&self) -> InstanceIndex {
        InstanceIndex::build(self)
    }

    /// `adom(db)`: the active domain, as a cached handle (allocation-free
    /// after the first call; maintained in place across mutations).
    pub fn adom(&self) -> &BTreeSet<Cst> {
        &self.index().adom.set
    }

    /// `keyconst(db)`: constants appearing at some primary-key position
    /// (paper Appendix B). Cached alongside [`Instance::adom`].
    pub fn key_consts(&self) -> &BTreeSet<Cst> {
        &self.index().key_consts.set
    }

    /// A constant is *orphan* in `db` if it occurs exactly once, at a
    /// non-primary-key position (paper Appendix A).
    pub fn is_orphan_const(&self, c: Cst) -> bool {
        let mut occurrences = 0usize;
        let mut at_nonkey = false;
        for (rel, store) in &self.rels {
            let sig = self.schema.signature(*rel).expect("validated on insert");
            for row in &store.rows {
                for (i, &a) in row.iter().enumerate() {
                    if a == c {
                        occurrences += 1;
                        if occurrences > 1 {
                            return false;
                        }
                        at_nonkey = i + 1 > sig.key_len;
                    }
                }
            }
        }
        occurrences == 1 && at_nonkey
    }

    /// Whether the instance satisfies all primary keys (no two distinct
    /// key-equal facts).
    pub fn satisfies_pk(&self) -> bool {
        self.rels
            .values()
            .all(|s| s.blocks.values().all(|b| b.len() <= 1))
    }

    /// The blocks violating a primary key, as `(rel, key)` pairs.
    pub fn pk_violations(&self) -> Vec<(RelName, Box<[Cst]>)> {
        let mut out = Vec::new();
        for (rel, store) in &self.rels {
            for (key, rows) in &store.blocks {
                if rows.len() > 1 {
                    out.push((*rel, key.clone()));
                }
            }
        }
        out
    }

    /// Whether `fact` is dangling in this instance with respect to `fk`
    /// (paper §3.2): no `S`-fact whose key equals the fact's `i`-th value.
    pub fn is_dangling(&self, fact: &Fact, fk: &ForeignKey) -> bool {
        if fact.rel != fk.from {
            return false;
        }
        let Some(v) = fact.arg_at(fk.pos) else {
            return true;
        };
        self.block(fk.to, &[v]).is_empty()
    }

    /// Whether `fact` is dangling with respect to *some* key of `fks`.
    pub fn is_dangling_any(&self, fact: &Fact, fks: &FkSet) -> bool {
        fks.iter().any(|fk| self.is_dangling(fact, fk))
    }

    /// All dangling facts with respect to `fks`.
    pub fn dangling_facts(&self, fks: &FkSet) -> Vec<Fact> {
        self.facts()
            .filter(|f| self.is_dangling_any(f, fks))
            .collect()
    }

    /// Whether the instance satisfies all foreign keys of `fks`.
    pub fn satisfies_fks(&self, fks: &FkSet) -> bool {
        self.facts().all(|f| !self.is_dangling_any(&f, fks))
    }

    /// Whether the instance is consistent with respect to `PK ∪ FK`.
    pub fn is_consistent(&self, fks: &FkSet) -> bool {
        self.satisfies_pk() && self.satisfies_fks(fks)
    }

    /// `db ∪ other`.
    pub fn union(&self, other: &Instance) -> Instance {
        let mut out = self.clone();
        for f in other.facts() {
            out.insert(f).expect("schemas compatible");
        }
        out
    }

    /// `db ∖ other` as a new instance.
    pub fn difference(&self, other: &Instance) -> Instance {
        let mut out = Instance::new(self.schema.clone());
        for f in self.facts() {
            if !other.contains(&f) {
                out.insert(f).expect("same schema");
            }
        }
        out
    }

    /// `db ⊕ other`: symmetric difference as a fact set.
    pub fn symmetric_difference(&self, other: &Instance) -> BTreeSet<Fact> {
        let mut out: BTreeSet<Fact> = self.facts().filter(|f| !other.contains(f)).collect();
        out.extend(other.facts().filter(|f| !self.contains(f)));
        out
    }

    /// Intersection `db ∩ other` as a new instance.
    pub fn intersection(&self, other: &Instance) -> Instance {
        let mut out = Instance::new(self.schema.clone());
        for f in self.facts() {
            if other.contains(&f) {
                out.insert(f).expect("same schema");
            }
        }
        out
    }

    /// Whether `self ⊆ other` as fact sets.
    pub fn subset_of(&self, other: &Instance) -> bool {
        self.facts().all(|f| other.contains(&f))
    }

    /// `db↾rels`: restriction to facts whose relation is in `keep`.
    pub fn restrict(&self, keep: &BTreeSet<RelName>) -> Instance {
        let mut out = Instance::new(self.schema.clone());
        for f in self.facts() {
            if keep.contains(&f.rel) {
                out.insert(f).expect("same schema");
            }
        }
        out
    }

    /// Builds an instance from facts.
    pub fn from_facts(
        schema: Arc<Schema>,
        facts: impl IntoIterator<Item = Fact>,
    ) -> Result<Instance, ModelError> {
        let mut out = Instance::new(schema);
        for f in facts {
            out.insert(f)?;
        }
        Ok(out)
    }

    /// The signature of `rel` (panics if absent; instances validate inserts).
    pub fn sig(&self, rel: RelName) -> Signature {
        self.schema.signature(rel).expect("validated on insert")
    }
}

/// Per-relation hash indexes: a dense row table plus a key-prefix hash map
/// from block key to row indices. Shared with [`crate::view`], which layers
/// lazy restriction/filtering on top of these handles.
///
/// Row order in `all` (and id order within a block's index list) is
/// **arbitrary**: inserts push at the end and removes swap-remove, so
/// incremental maintenance is O(1) per fact. Consumers that need a
/// deterministic order (e.g. [`crate::view::InstanceView::partition`]) read
/// the key-sorted columnar projection instead.
#[derive(Clone, Debug)]
pub(crate) struct RelIndex {
    pub(crate) key_len: usize,
    pub(crate) arity: usize,
    /// All rows of the relation, arbitrary order.
    pub(crate) all: Vec<Box<[Cst]>>,
    /// key prefix → indices into `all` (arbitrary order).
    pub(crate) blocks: HashMap<Box<[Cst]>, Vec<u32>>,
    /// Lazily built read-optimized projection of `all`: one column per
    /// position, rows key-sorted so blocks are contiguous ranges. Any
    /// mutation of the relation discards it; the next reader rebuilds.
    columnar: OnceLock<ColumnarRelation>,
}

impl RelIndex {
    /// The columnar projection, built on first demand after a mutation.
    pub(crate) fn columnar(&self) -> &ColumnarRelation {
        self.columnar
            .get_or_init(|| ColumnarRelation::from_rows(self.key_len, self.arity, &self.all))
    }
}

/// A refcounted constant set: the materialized [`BTreeSet`] tracks the keys
/// of the occurrence-count map, so membership survives removes until the
/// *last* occurrence of a constant disappears.
#[derive(Clone, Debug, Default, PartialEq)]
struct CountedSet {
    set: BTreeSet<Cst>,
    counts: HashMap<Cst, u32>,
}

impl CountedSet {
    fn count(&mut self, c: Cst) {
        let n = self.counts.entry(c).or_insert(0);
        *n += 1;
        if *n == 1 {
            self.set.insert(c);
        }
    }

    fn uncount(&mut self, c: Cst) {
        let n = self.counts.get_mut(&c).expect("uncount of counted constant");
        *n -= 1;
        if *n == 0 {
            self.counts.remove(&c);
            self.set.remove(&c);
        }
    }
}

/// Secondary indexes over an [`Instance`], built lazily by
/// [`Instance::index`] and shared by the compiled evaluators:
///
/// * the active domain and key-constant sets, refcounted per occurrence so
///   mutations maintain them exactly (a constant leaves the set only when
///   its last occurrence does);
/// * per-relation row tables with hash-indexed key-prefix blocks, so
///   guarded lookups with a ground key and full-fact membership checks are
///   O(1) hash probes instead of ordered-map walks that clone rows.
///
/// Once built, the index is **patched in place** by every mutation
/// (`apply_insert`/`apply_remove`); `==` compares *structural content*
/// (domains, occurrence counts, blocks as row sets), deliberately ignoring
/// physical row order, which is history-dependent under swap-remove.
#[derive(Clone, Debug)]
pub struct InstanceIndex {
    adom: CountedSet,
    key_consts: CountedSet,
    rels: HashMap<RelName, RelIndex>,
}

impl InstanceIndex {
    fn build(db: &Instance) -> InstanceIndex {
        let mut adom = CountedSet::default();
        let mut key_consts = CountedSet::default();
        let mut rels = HashMap::with_capacity(db.rels.len());
        for (rel, store) in &db.rels {
            let sig = db.schema.signature(*rel).expect("validated on insert");
            let all: Vec<Box<[Cst]>> = store.rows.iter().cloned().collect();
            let mut blocks: HashMap<Box<[Cst]>, Vec<u32>> =
                HashMap::with_capacity(store.blocks.len());
            for (i, row) in all.iter().enumerate() {
                for &c in row.iter() {
                    adom.count(c);
                }
                for &c in &row[..sig.key_len] {
                    key_consts.count(c);
                }
                blocks
                    .entry(row[..sig.key_len].into())
                    .or_default()
                    .push(u32::try_from(i).expect("row count fits in u32"));
            }
            rels.insert(
                *rel,
                RelIndex {
                    key_len: sig.key_len,
                    arity: sig.arity,
                    all,
                    blocks,
                    columnar: OnceLock::new(),
                },
            );
        }
        InstanceIndex {
            adom,
            key_consts,
            rels,
        }
    }

    /// Patches the index for a row that was just added to the instance
    /// (caller guarantees it was not present): push to the dense table,
    /// append its id to the block, count its constants.
    fn apply_insert(&mut self, rel: RelName, sig: Signature, row: Box<[Cst]>) {
        for &c in row.iter() {
            self.adom.count(c);
        }
        for &c in &row[..sig.key_len] {
            self.key_consts.count(c);
        }
        let r = self.rels.entry(rel).or_insert_with(|| RelIndex {
            key_len: sig.key_len,
            arity: sig.arity,
            all: Vec::new(),
            blocks: HashMap::new(),
            columnar: OnceLock::new(),
        });
        r.columnar.take();
        let id = u32::try_from(r.all.len()).expect("row count fits in u32");
        r.blocks.entry(row[..sig.key_len].into()).or_default().push(id);
        r.all.push(row);
    }

    /// Patches the index for a row that was just removed from the instance
    /// (caller guarantees it was present): uncount its constants, drop its
    /// id from the block (erasing an emptied block), swap-remove it from the
    /// dense table and re-point the row that moved into its slot.
    fn apply_remove(&mut self, rel: RelName, row: &[Cst]) {
        for &c in row {
            self.adom.uncount(c);
        }
        let r = self.rels.get_mut(&rel).expect("indexed relation");
        r.columnar.take();
        for &c in &row[..r.key_len] {
            self.key_consts.uncount(c);
        }
        let ids = r.blocks.get_mut(&row[..r.key_len]).expect("row's block indexed");
        let pos = ids
            .iter()
            .position(|&i| &*r.all[i as usize] == row)
            .expect("removed row indexed");
        let id = ids.swap_remove(pos) as usize;
        if ids.is_empty() {
            r.blocks.remove(&row[..r.key_len]);
        }
        let last = r.all.len() - 1;
        r.all.swap_remove(id);
        if id != last {
            // The former last row now lives in slot `id`; re-point the one
            // stale id in its block's index list.
            let moved_key: Box<[Cst]> = r.all[id][..r.key_len].into();
            let ids = r.blocks.get_mut(&moved_key).expect("moved row's block indexed");
            let slot = ids
                .iter_mut()
                .find(|i| **i == u32::try_from(last).expect("row count fits in u32"))
                .expect("moved row's id indexed");
            *slot = u32::try_from(id).expect("row count fits in u32");
        }
    }

    /// Candidate rows for a slot-compiled guard atom under `binding`: the
    /// hash-indexed block when the primary-key prefix is ground, the full
    /// relation otherwise, and nothing when the relation is unpopulated or
    /// the arity cannot match. `scratch` is a reusable key buffer (cleared
    /// here). Shared by the compiled CQ join and the compiled formula
    /// evaluator — the single place that resolves ground key prefixes.
    pub fn guarded_candidates(
        &self,
        atom: &CompiledAtom,
        binding: &Binding,
        scratch: &mut Vec<Cst>,
    ) -> Candidates<'_> {
        const NONE: Candidates<'static> = Candidates {
            all: &[],
            idxs: Some(&[]),
        };
        let Some(r) = self.rels.get(&atom.rel) else {
            return NONE;
        };
        if r.arity != atom.terms.len() {
            return NONE;
        }
        scratch.clear();
        for &t in &atom.terms[..r.key_len] {
            match binding.resolve(t) {
                Some(c) => scratch.push(c),
                None => {
                    return Candidates {
                        all: &r.all,
                        idxs: None,
                    }
                }
            }
        }
        Candidates {
            all: &r.all,
            idxs: Some(
                r.blocks
                    .get(scratch.as_slice())
                    .map(|v| v.as_slice())
                    .unwrap_or(&[]),
            ),
        }
    }

    /// The cached active domain.
    pub fn adom_set(&self) -> &BTreeSet<Cst> {
        &self.adom.set
    }

    /// The cached set of constants occurring in key positions.
    pub fn key_consts_set(&self) -> &BTreeSet<Cst> {
        &self.key_consts.set
    }

    /// The per-relation index handles (for [`crate::view::InstanceView`]).
    pub(crate) fn rel(&self, rel: RelName) -> Option<&RelIndex> {
        self.rels.get(&rel)
    }

    /// The key-sorted columnar projection of `rel`, built lazily from the
    /// row table on first demand (and rebuilt after any mutation of the
    /// relation, which invalidates the cached projection). `None` when the
    /// relation has never held a row.
    pub fn columnar(&self, rel: RelName) -> Option<&ColumnarRelation> {
        self.rels.get(&rel).map(RelIndex::columnar)
    }

    /// Hash-indexed full-fact membership: probes the block of the row's key
    /// prefix, then compares within the (small) block.
    pub fn contains(&self, rel: RelName, args: &[Cst]) -> bool {
        let Some(r) = self.rels.get(&rel) else {
            return false;
        };
        if args.len() != r.arity {
            return false;
        }
        match r.blocks.get(&args[..r.key_len]) {
            Some(idxs) => idxs.iter().any(|&i| &*r.all[i as usize] == args),
            None => false,
        }
    }

    /// Canonical per-relation content: `(key_len, arity, sorted rows,
    /// block key → sorted rows)`, skipping relations with no rows (an empty
    /// [`RelIndex`] entry is an artifact of mutation history, not content).
    #[allow(clippy::type_complexity)]
    fn canonical_rels(
        &self,
    ) -> BTreeMap<RelName, (usize, usize, Vec<Box<[Cst]>>, BTreeMap<Box<[Cst]>, Vec<Box<[Cst]>>>)>
    {
        self.rels
            .iter()
            .filter(|(_, r)| !r.all.is_empty())
            .map(|(rel, r)| {
                let mut rows = r.all.clone();
                rows.sort_unstable();
                let blocks = r
                    .blocks
                    .iter()
                    .map(|(k, ids)| {
                        let mut b: Vec<Box<[Cst]>> =
                            ids.iter().map(|&i| r.all[i as usize].clone()).collect();
                        b.sort_unstable();
                        (k.clone(), b)
                    })
                    .collect();
                (*rel, (r.key_len, r.arity, rows, blocks))
            })
            .collect()
    }
}

/// Structural equality: domains, occurrence counts, and per-relation block
/// content must match; physical row order (which is history-dependent under
/// swap-remove maintenance) is canonicalized away. This is what the
/// incremental-vs-rebuild differential tests compare.
impl PartialEq for InstanceIndex {
    fn eq(&self, other: &Self) -> bool {
        self.adom == other.adom
            && self.key_consts == other.key_consts
            && self.canonical_rels() == other.canonical_rels()
    }
}

impl Eq for InstanceIndex {}

/// A candidate row set from `InstanceIndex::candidates`: either one block
/// or a whole relation, borrowed — no rows are cloned.
#[derive(Clone, Copy, Debug)]
pub struct Candidates<'a> {
    all: &'a [Box<[Cst]>],
    /// `Some(indices into all)` for a block, `None` for the full relation.
    idxs: Option<&'a [u32]>,
}

impl<'a> Candidates<'a> {
    /// A candidate set over `all`, optionally narrowed to the given row
    /// indices (used by [`crate::view::InstanceView`] to present filtered
    /// row sets without copying rows).
    pub(crate) fn from_parts(all: &'a [Box<[Cst]>], idxs: Option<&'a [u32]>) -> Candidates<'a> {
        Candidates { all, idxs }
    }

    /// The empty candidate set.
    pub(crate) fn none() -> Candidates<'static> {
        Candidates {
            all: &[],
            idxs: Some(&[]),
        }
    }
    /// Number of candidate rows.
    pub fn len(&self) -> usize {
        match self.idxs {
            Some(ix) => ix.len(),
            None => self.all.len(),
        }
    }

    /// Whether there are no candidates.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates the candidate rows.
    pub fn iter(&self) -> CandidateIter<'a> {
        CandidateIter {
            cands: *self,
            pos: 0,
        }
    }
}

impl<'a> IntoIterator for Candidates<'a> {
    type Item = &'a [Cst];
    type IntoIter = CandidateIter<'a>;

    fn into_iter(self) -> CandidateIter<'a> {
        CandidateIter {
            cands: self,
            pos: 0,
        }
    }
}

/// Iterator over [`Candidates`].
#[derive(Clone, Debug)]
pub struct CandidateIter<'a> {
    cands: Candidates<'a>,
    pos: usize,
}

impl<'a> Iterator for CandidateIter<'a> {
    type Item = &'a [Cst];

    fn next(&mut self) -> Option<&'a [Cst]> {
        let row = match self.cands.idxs {
            Some(ix) => &*self.cands.all[*ix.get(self.pos)? as usize],
            None => &**self.cands.all.get(self.pos)?,
        };
        self.pos += 1;
        Some(row)
    }
}

impl PartialEq for Instance {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.subset_of(other)
    }
}

impl Eq for Instance {}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, fact) in self.facts().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{fact}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Arc<Schema> {
        let mut s = Schema::new();
        s.add("R", 2, 1).unwrap();
        s.add("S", 2, 1).unwrap();
        Arc::new(s)
    }

    fn db() -> Instance {
        let mut db = Instance::new(schema());
        db.insert_named("R", &["a", "1"]).unwrap();
        db.insert_named("R", &["a", "2"]).unwrap();
        db.insert_named("R", &["b", "1"]).unwrap();
        db.insert_named("S", &["1", "x"]).unwrap();
        db
    }

    #[test]
    fn insert_dedup_and_len() {
        let mut db = db();
        assert_eq!(db.len(), 4);
        assert!(!db.insert_named("R", &["a", "1"]).unwrap());
        assert_eq!(db.len(), 4);
        assert!(db.contains(&Fact::from_names("R", &["a", "1"])));
    }

    #[test]
    fn arity_validated() {
        let mut db = db();
        assert!(matches!(
            db.insert_named("R", &["a"]),
            Err(ModelError::ArityMismatch { .. })
        ));
        assert!(db.insert_named("Zzz", &["a"]).is_err());
    }

    #[test]
    fn blocks_and_block_of() {
        let db = db();
        let block = db.block(RelName::new("R"), &[Cst::new("a")]);
        assert_eq!(block.len(), 2);
        let blocks = db.blocks(RelName::new("R"));
        assert_eq!(blocks.len(), 2);
        let b = db.block_of(&Fact::from_names("R", &["a", "1"]));
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn pk_violation_detection() {
        let db = db();
        assert!(!db.satisfies_pk());
        let v = db.pk_violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].0, RelName::new("R"));

        let mut clean = Instance::new(schema());
        clean.insert_named("R", &["a", "1"]).unwrap();
        clean.insert_named("R", &["b", "1"]).unwrap();
        assert!(clean.satisfies_pk());
    }

    #[test]
    fn dangling_detection() {
        let db = db();
        let fk = ForeignKey::from_names("R", 2, "S");
        // R(a,1) references S(1,·) which exists; R(a,2) dangles.
        assert!(!db.is_dangling(&Fact::from_names("R", &["a", "1"]), &fk));
        assert!(db.is_dangling(&Fact::from_names("R", &["a", "2"]), &fk));
        let fks = FkSet::new(schema(), vec![fk]).unwrap();
        let dangling = db.dangling_facts(&fks);
        assert_eq!(dangling.len(), 1);
        assert!(!db.satisfies_fks(&fks));
    }

    #[test]
    fn set_operations() {
        let db = db();
        let mut other = Instance::new(schema());
        other.insert_named("R", &["a", "1"]).unwrap();
        other.insert_named("S", &["9", "z"]).unwrap();

        let inter = db.intersection(&other);
        assert_eq!(inter.len(), 1);

        let diff = db.difference(&other);
        assert_eq!(diff.len(), 3);

        let sym = db.symmetric_difference(&other);
        assert_eq!(sym.len(), 4); // 3 only-in-db + 1 only-in-other

        let uni = db.union(&other);
        assert_eq!(uni.len(), 5);
        assert!(db.subset_of(&uni));
        assert!(!uni.subset_of(&db));
    }

    #[test]
    fn adom_and_key_consts() {
        let db = db();
        assert!(db.adom().contains(&Cst::new("x")));
        let kc = db.key_consts();
        assert!(kc.contains(&Cst::new("a")));
        assert!(kc.contains(&Cst::new("1"))); // S's key
        assert!(!kc.contains(&Cst::new("x")));
    }

    #[test]
    fn orphan_constants() {
        let db = db();
        // "x" occurs once at a non-key position of S.
        assert!(db.is_orphan_const(Cst::new("x")));
        // "1" occurs three times.
        assert!(!db.is_orphan_const(Cst::new("1")));
        // "b" occurs once but at a key position.
        assert!(!db.is_orphan_const(Cst::new("b")));
    }

    #[test]
    fn restriction() {
        let db = db();
        let r = db.restrict(&[RelName::new("S")].into_iter().collect());
        assert_eq!(r.len(), 1);
        assert_eq!(r.count_of(RelName::new("R")), 0);
    }

    #[test]
    fn remove() {
        let mut db = db();
        assert!(db.remove(&Fact::from_names("R", &["a", "2"])).unwrap());
        assert!(!db.remove(&Fact::from_names("R", &["a", "2"])).unwrap());
        assert_eq!(db.len(), 3);
        assert_eq!(db.block(RelName::new("R"), &[Cst::new("a")]).len(), 1);
        assert!(db.satisfies_pk());
    }

    #[test]
    fn remove_arity_validated_like_insert() {
        // Regression: remove used to silently return false on a wrong-arity
        // fact for a known relation, asymmetric with insert.
        let mut db = db();
        assert!(matches!(
            db.remove(&Fact::from_names("R", &["a"])),
            Err(ModelError::ArityMismatch { .. })
        ));
        assert!(db.remove(&Fact::from_names("Zzz", &["a"])).is_err());
        assert_eq!(db.len(), 4, "failed removes must not mutate");
    }

    #[test]
    fn epoch_counts_effective_mutations() {
        let mut db = db();
        let e0 = db.epoch();
        assert!(!db.insert_named("R", &["a", "1"]).unwrap());
        assert!(!db.remove(&Fact::from_names("R", &["zz", "zz"])).unwrap());
        assert_eq!(db.epoch(), e0, "no-ops leave the epoch unchanged");
        db.insert_named("R", &["c", "9"]).unwrap();
        assert_eq!(db.epoch(), e0 + 1);
        db.remove(&Fact::from_names("R", &["c", "9"])).unwrap();
        assert_eq!(db.epoch(), e0 + 2);
        // A clone keeps the epoch but gets a fresh identity.
        let twin = db.clone();
        assert_eq!(twin.epoch(), db.epoch());
        assert_ne!(twin.uid(), db.uid());
    }

    #[test]
    fn index_is_patched_in_place() {
        let mut db = db();
        db.index(); // force the build, then mutate through the patch path
        db.insert_named("S", &["7", "q"]).unwrap();
        db.remove(&Fact::from_names("R", &["a", "1"])).unwrap();
        db.remove(&Fact::from_names("S", &["1", "x"])).unwrap();
        db.insert_named("R", &["a", "1"]).unwrap();
        assert_eq!(*db.index(), db.rebuild_index());
        assert!(db.adom().contains(&Cst::new("q")));
        assert!(!db.adom().contains(&Cst::new("x")), "adom must shrink");
        // Emptied relation: the S-block of key 1 is gone.
        assert!(db.block(RelName::new("S"), &[Cst::new("1")]).is_empty());
    }

    #[test]
    fn columnar_projection_tracks_mutations() {
        let mut db = db();
        let r = RelName::new("R");
        let col = db.index().columnar(r).unwrap();
        assert_eq!(col.n_rows(), 3);
        assert_eq!(col.block_count(), 2);
        // Key column is sorted; blocks cover every row exactly once.
        assert!(col.column(0).windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(col.blocks().map(|(_, r)| r.len()).sum::<usize>(), 3);

        // A mutation through the in-place patch path invalidates the
        // projection; the rebuilt one reflects the new rows.
        db.insert_named("R", &["c", "5"]).unwrap();
        let col = db.index().columnar(r).unwrap();
        assert_eq!(col.n_rows(), 4);
        assert_eq!(col.block_count(), 3);
        db.remove(&Fact::from_names("R", &["a", "1"])).unwrap();
        db.remove(&Fact::from_names("R", &["a", "2"])).unwrap();
        let col = db.index().columnar(r).unwrap();
        assert_eq!(col.n_rows(), 2);
        assert!(col.block_range(&[Cst::new("a")]).is_none());
        // The projection is canonical: equal to one built from scratch.
        let rebuilt = db.rebuild_index();
        assert_eq!(*col, *rebuilt.columnar(r).unwrap());
    }

    #[test]
    fn apply_delta_is_validated_and_counted() {
        use crate::delta::Delta;
        let mut db = db();
        let mut delta = Delta::new();
        delta
            .remove(Fact::from_names("R", &["a", "2"]))
            .insert(Fact::from_names("S", &["2", "y"]))
            .insert(Fact::from_names("S", &["2", "y"])); // duplicate: no-op
        let e0 = db.epoch();
        assert_eq!(db.apply(&delta).unwrap(), 2);
        assert_eq!(db.epoch(), e0 + 2);
        assert!(db.contains(&Fact::from_names("S", &["2", "y"])));

        // A malformed op anywhere aborts the whole batch untouched.
        let mut bad = Delta::new();
        bad.insert(Fact::from_names("S", &["3", "z"]))
            .remove(Fact::from_names("R", &["only-one"]));
        let before = db.clone();
        assert!(db.apply(&bad).is_err());
        assert_eq!(db, before);
        assert_eq!(db.epoch(), e0 + 2);
    }

    #[test]
    fn equality_is_setwise() {
        let a = db();
        let mut b = Instance::new(schema());
        // insert in a different order
        b.insert_named("S", &["1", "x"]).unwrap();
        b.insert_named("R", &["b", "1"]).unwrap();
        b.insert_named("R", &["a", "2"]).unwrap();
        b.insert_named("R", &["a", "1"]).unwrap();
        assert_eq!(a, b);
    }
}
