//! Database instances with primary-key *block* indexes.
//!
//! A *block* (paper §3.1) is a maximal set of key-equal facts; repairs with
//! respect to primary keys choose at most one fact per block. The instance
//! keeps, per relation, a map from key prefix to the facts of that block, so
//! block enumeration — the primitive of every CQA algorithm — is direct.

use crate::error::ModelError;
use crate::fact::Fact;
use crate::fk::{FkSet, ForeignKey};
use crate::intern::Cst;
use crate::schema::{RelName, Schema, Signature};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// Per-relation fact store with a block index.
#[derive(Clone, Debug, Default)]
struct RelStore {
    rows: BTreeSet<Box<[Cst]>>,
    /// key prefix → rows of the block (kept sorted for determinism).
    blocks: BTreeMap<Box<[Cst]>, BTreeSet<Box<[Cst]>>>,
}

/// A finite set of facts over a schema.
#[derive(Clone)]
pub struct Instance {
    schema: Arc<Schema>,
    rels: BTreeMap<RelName, RelStore>,
    len: usize,
}

impl Instance {
    /// Creates an empty instance.
    pub fn new(schema: Arc<Schema>) -> Instance {
        Instance {
            schema,
            rels: BTreeMap::new(),
            len: 0,
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Inserts a fact; returns `Ok(true)` if it was new.
    pub fn insert(&mut self, fact: Fact) -> Result<bool, ModelError> {
        let sig = self.schema.expect(fact.rel)?;
        if fact.arity() != sig.arity {
            return Err(ModelError::ArityMismatch {
                rel: fact.rel,
                expected: sig.arity,
                got: fact.arity(),
            });
        }
        let store = self.rels.entry(fact.rel).or_default();
        let key: Box<[Cst]> = fact.key(sig).into();
        if store.rows.insert(fact.args.clone()) {
            store.blocks.entry(key).or_default().insert(fact.args);
            self.len += 1;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Convenience: inserts `rel(args…)` by name.
    pub fn insert_named(&mut self, rel: &str, args: &[&str]) -> Result<bool, ModelError> {
        self.insert(Fact::from_names(rel, args))
    }

    /// Removes a fact; returns whether it was present.
    pub fn remove(&mut self, fact: &Fact) -> bool {
        let Some(sig) = self.schema.signature(fact.rel) else {
            return false;
        };
        let Some(store) = self.rels.get_mut(&fact.rel) else {
            return false;
        };
        if store.rows.remove(&fact.args) {
            let key: Box<[Cst]> = fact.key(sig).into();
            if let Some(block) = store.blocks.get_mut(&key) {
                block.remove(&fact.args);
                if block.is_empty() {
                    store.blocks.remove(&key);
                }
            }
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Whether the instance contains `fact`.
    pub fn contains(&self, fact: &Fact) -> bool {
        self.rels
            .get(&fact.rel)
            .map(|s| s.rows.contains(&fact.args))
            .unwrap_or(false)
    }

    /// Total number of facts.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the instance has no facts.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// All facts, in canonical order.
    pub fn facts(&self) -> impl Iterator<Item = Fact> + '_ {
        self.rels.iter().flat_map(|(rel, store)| {
            store.rows.iter().map(move |row| Fact::new(*rel, row.clone()))
        })
    }

    /// Facts of one relation, in canonical order.
    pub fn facts_of(&self, rel: RelName) -> impl Iterator<Item = Fact> + '_ {
        self.rels
            .get(&rel)
            .into_iter()
            .flat_map(move |store| store.rows.iter().map(move |row| Fact::new(rel, row.clone())))
    }

    /// Number of facts of one relation.
    pub fn count_of(&self, rel: RelName) -> usize {
        self.rels.get(&rel).map(|s| s.rows.len()).unwrap_or(0)
    }

    /// The block `R(⃗a, ∗)`: all facts of `rel` with key prefix `key`.
    pub fn block(&self, rel: RelName, key: &[Cst]) -> Vec<Fact> {
        match self.rels.get(&rel) {
            Some(store) => store
                .blocks
                .get(key)
                .map(|rows| rows.iter().map(|r| Fact::new(rel, r.clone())).collect())
                .unwrap_or_default(),
            None => Vec::new(),
        }
    }

    /// `block(A, db)`: the block containing `fact` (empty if absent relation).
    pub fn block_of(&self, fact: &Fact) -> Vec<Fact> {
        match self.schema.signature(fact.rel) {
            Some(sig) => self.block(fact.rel, fact.key(sig)),
            None => Vec::new(),
        }
    }

    /// All blocks of `rel` as `(key, facts)` pairs, in canonical order.
    pub fn blocks(&self, rel: RelName) -> Vec<(Box<[Cst]>, Vec<Fact>)> {
        match self.rels.get(&rel) {
            Some(store) => store
                .blocks
                .iter()
                .map(|(k, rows)| {
                    (
                        k.clone(),
                        rows.iter().map(|r| Fact::new(rel, r.clone())).collect(),
                    )
                })
                .collect(),
            None => Vec::new(),
        }
    }

    /// Relations with at least one fact.
    pub fn populated_relations(&self) -> impl Iterator<Item = RelName> + '_ {
        self.rels
            .iter()
            .filter(|(_, s)| !s.rows.is_empty())
            .map(|(r, _)| *r)
    }

    /// `adom(db)`: the active domain.
    pub fn adom(&self) -> BTreeSet<Cst> {
        self.facts().flat_map(|f| f.args.to_vec()).collect()
    }

    /// `keyconst(db)`: constants appearing at some primary-key position
    /// (paper Appendix B).
    pub fn key_consts(&self) -> BTreeSet<Cst> {
        let mut out = BTreeSet::new();
        for (rel, store) in &self.rels {
            let sig = self.schema.signature(*rel).expect("validated on insert");
            for row in &store.rows {
                out.extend(row[..sig.key_len].iter().copied());
            }
        }
        out
    }

    /// A constant is *orphan* in `db` if it occurs exactly once, at a
    /// non-primary-key position (paper Appendix A).
    pub fn is_orphan_const(&self, c: Cst) -> bool {
        let mut occurrences = 0usize;
        let mut at_nonkey = false;
        for (rel, store) in &self.rels {
            let sig = self.schema.signature(*rel).expect("validated on insert");
            for row in &store.rows {
                for (i, &a) in row.iter().enumerate() {
                    if a == c {
                        occurrences += 1;
                        if occurrences > 1 {
                            return false;
                        }
                        at_nonkey = i + 1 > sig.key_len;
                    }
                }
            }
        }
        occurrences == 1 && at_nonkey
    }

    /// Whether the instance satisfies all primary keys (no two distinct
    /// key-equal facts).
    pub fn satisfies_pk(&self) -> bool {
        self.rels
            .values()
            .all(|s| s.blocks.values().all(|b| b.len() <= 1))
    }

    /// The blocks violating a primary key, as `(rel, key)` pairs.
    pub fn pk_violations(&self) -> Vec<(RelName, Box<[Cst]>)> {
        let mut out = Vec::new();
        for (rel, store) in &self.rels {
            for (key, rows) in &store.blocks {
                if rows.len() > 1 {
                    out.push((*rel, key.clone()));
                }
            }
        }
        out
    }

    /// Whether `fact` is dangling in this instance with respect to `fk`
    /// (paper §3.2): no `S`-fact whose key equals the fact's `i`-th value.
    pub fn is_dangling(&self, fact: &Fact, fk: &ForeignKey) -> bool {
        if fact.rel != fk.from {
            return false;
        }
        let Some(v) = fact.arg_at(fk.pos) else {
            return true;
        };
        self.block(fk.to, &[v]).is_empty()
    }

    /// Whether `fact` is dangling with respect to *some* key of `fks`.
    pub fn is_dangling_any(&self, fact: &Fact, fks: &FkSet) -> bool {
        fks.iter().any(|fk| self.is_dangling(fact, fk))
    }

    /// All dangling facts with respect to `fks`.
    pub fn dangling_facts(&self, fks: &FkSet) -> Vec<Fact> {
        self.facts()
            .filter(|f| self.is_dangling_any(f, fks))
            .collect()
    }

    /// Whether the instance satisfies all foreign keys of `fks`.
    pub fn satisfies_fks(&self, fks: &FkSet) -> bool {
        self.facts().all(|f| !self.is_dangling_any(&f, fks))
    }

    /// Whether the instance is consistent with respect to `PK ∪ FK`.
    pub fn is_consistent(&self, fks: &FkSet) -> bool {
        self.satisfies_pk() && self.satisfies_fks(fks)
    }

    /// `db ∪ other`.
    pub fn union(&self, other: &Instance) -> Instance {
        let mut out = self.clone();
        for f in other.facts() {
            out.insert(f).expect("schemas compatible");
        }
        out
    }

    /// `db ∖ other` as a new instance.
    pub fn difference(&self, other: &Instance) -> Instance {
        let mut out = Instance::new(self.schema.clone());
        for f in self.facts() {
            if !other.contains(&f) {
                out.insert(f).expect("same schema");
            }
        }
        out
    }

    /// `db ⊕ other`: symmetric difference as a fact set.
    pub fn symmetric_difference(&self, other: &Instance) -> BTreeSet<Fact> {
        let mut out: BTreeSet<Fact> = self.facts().filter(|f| !other.contains(f)).collect();
        out.extend(other.facts().filter(|f| !self.contains(f)));
        out
    }

    /// Intersection `db ∩ other` as a new instance.
    pub fn intersection(&self, other: &Instance) -> Instance {
        let mut out = Instance::new(self.schema.clone());
        for f in self.facts() {
            if other.contains(&f) {
                out.insert(f).expect("same schema");
            }
        }
        out
    }

    /// Whether `self ⊆ other` as fact sets.
    pub fn subset_of(&self, other: &Instance) -> bool {
        self.facts().all(|f| other.contains(&f))
    }

    /// `db↾rels`: restriction to facts whose relation is in `keep`.
    pub fn restrict(&self, keep: &BTreeSet<RelName>) -> Instance {
        let mut out = Instance::new(self.schema.clone());
        for f in self.facts() {
            if keep.contains(&f.rel) {
                out.insert(f).expect("same schema");
            }
        }
        out
    }

    /// Builds an instance from facts.
    pub fn from_facts(
        schema: Arc<Schema>,
        facts: impl IntoIterator<Item = Fact>,
    ) -> Result<Instance, ModelError> {
        let mut out = Instance::new(schema);
        for f in facts {
            out.insert(f)?;
        }
        Ok(out)
    }

    /// The signature of `rel` (panics if absent; instances validate inserts).
    pub fn sig(&self, rel: RelName) -> Signature {
        self.schema.signature(rel).expect("validated on insert")
    }
}

impl PartialEq for Instance {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.subset_of(other)
    }
}

impl Eq for Instance {}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, fact) in self.facts().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{fact}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Arc<Schema> {
        let mut s = Schema::new();
        s.add("R", 2, 1).unwrap();
        s.add("S", 2, 1).unwrap();
        Arc::new(s)
    }

    fn db() -> Instance {
        let mut db = Instance::new(schema());
        db.insert_named("R", &["a", "1"]).unwrap();
        db.insert_named("R", &["a", "2"]).unwrap();
        db.insert_named("R", &["b", "1"]).unwrap();
        db.insert_named("S", &["1", "x"]).unwrap();
        db
    }

    #[test]
    fn insert_dedup_and_len() {
        let mut db = db();
        assert_eq!(db.len(), 4);
        assert!(!db.insert_named("R", &["a", "1"]).unwrap());
        assert_eq!(db.len(), 4);
        assert!(db.contains(&Fact::from_names("R", &["a", "1"])));
    }

    #[test]
    fn arity_validated() {
        let mut db = db();
        assert!(matches!(
            db.insert_named("R", &["a"]),
            Err(ModelError::ArityMismatch { .. })
        ));
        assert!(db.insert_named("Zzz", &["a"]).is_err());
    }

    #[test]
    fn blocks_and_block_of() {
        let db = db();
        let block = db.block(RelName::new("R"), &[Cst::new("a")]);
        assert_eq!(block.len(), 2);
        let blocks = db.blocks(RelName::new("R"));
        assert_eq!(blocks.len(), 2);
        let b = db.block_of(&Fact::from_names("R", &["a", "1"]));
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn pk_violation_detection() {
        let db = db();
        assert!(!db.satisfies_pk());
        let v = db.pk_violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].0, RelName::new("R"));

        let mut clean = Instance::new(schema());
        clean.insert_named("R", &["a", "1"]).unwrap();
        clean.insert_named("R", &["b", "1"]).unwrap();
        assert!(clean.satisfies_pk());
    }

    #[test]
    fn dangling_detection() {
        let db = db();
        let fk = ForeignKey::from_names("R", 2, "S");
        // R(a,1) references S(1,·) which exists; R(a,2) dangles.
        assert!(!db.is_dangling(&Fact::from_names("R", &["a", "1"]), &fk));
        assert!(db.is_dangling(&Fact::from_names("R", &["a", "2"]), &fk));
        let fks = FkSet::new(schema(), vec![fk]).unwrap();
        let dangling = db.dangling_facts(&fks);
        assert_eq!(dangling.len(), 1);
        assert!(!db.satisfies_fks(&fks));
    }

    #[test]
    fn set_operations() {
        let db = db();
        let mut other = Instance::new(schema());
        other.insert_named("R", &["a", "1"]).unwrap();
        other.insert_named("S", &["9", "z"]).unwrap();

        let inter = db.intersection(&other);
        assert_eq!(inter.len(), 1);

        let diff = db.difference(&other);
        assert_eq!(diff.len(), 3);

        let sym = db.symmetric_difference(&other);
        assert_eq!(sym.len(), 4); // 3 only-in-db + 1 only-in-other

        let uni = db.union(&other);
        assert_eq!(uni.len(), 5);
        assert!(db.subset_of(&uni));
        assert!(!uni.subset_of(&db));
    }

    #[test]
    fn adom_and_key_consts() {
        let db = db();
        assert!(db.adom().contains(&Cst::new("x")));
        let kc = db.key_consts();
        assert!(kc.contains(&Cst::new("a")));
        assert!(kc.contains(&Cst::new("1"))); // S's key
        assert!(!kc.contains(&Cst::new("x")));
    }

    #[test]
    fn orphan_constants() {
        let db = db();
        // "x" occurs once at a non-key position of S.
        assert!(db.is_orphan_const(Cst::new("x")));
        // "1" occurs three times.
        assert!(!db.is_orphan_const(Cst::new("1")));
        // "b" occurs once but at a key position.
        assert!(!db.is_orphan_const(Cst::new("b")));
    }

    #[test]
    fn restriction() {
        let db = db();
        let r = db.restrict(&[RelName::new("S")].into_iter().collect());
        assert_eq!(r.len(), 1);
        assert_eq!(r.count_of(RelName::new("R")), 0);
    }

    #[test]
    fn remove() {
        let mut db = db();
        assert!(db.remove(&Fact::from_names("R", &["a", "2"])));
        assert!(!db.remove(&Fact::from_names("R", &["a", "2"])));
        assert_eq!(db.len(), 3);
        assert_eq!(db.block(RelName::new("R"), &[Cst::new("a")]).len(), 1);
        assert!(db.satisfies_pk());
    }

    #[test]
    fn equality_is_setwise() {
        let a = db();
        let mut b = Instance::new(schema());
        // insert in a different order
        b.insert_named("S", &["1", "x"]).unwrap();
        b.insert_named("R", &["b", "1"]).unwrap();
        b.insert_named("R", &["a", "2"]).unwrap();
        b.insert_named("R", &["a", "1"]).unwrap();
        assert_eq!(a, b);
    }
}
