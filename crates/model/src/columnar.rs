//! Columnar relation storage: a read-optimized projection of one
//! relation's rows.
//!
//! The write side of the fact store stays row-oriented — [`crate::instance`]
//! maintains a dense row table plus a key→rows hash map with O(1)
//! insert/remove patching (PR 6's epoch protocol). A [`ColumnarRelation`] is
//! the *read-optimized* projection of that table: one contiguous `Vec<Cst>`
//! per attribute position, with the rows globally key-sorted so every
//! primary-key block is a contiguous range. It is built lazily on first
//! demand and invalidated by any mutation of its relation, so steady-state
//! read workloads (scans, sharding, semijoin builds) pay the sort once.
//!
//! What the layout buys:
//!
//! * **column scans** — predicate evaluation over one position touches a
//!   single contiguous slice instead of striding across boxed row
//!   allocations ([`ColumnarRelation::column`]);
//! * **blocks as ranges** — a block is `rows[start..end]` of the sorted
//!   order, so [`crate::view::InstanceView::partition`] shards on contiguous
//!   column ranges and a key probe is a binary search
//!   ([`ColumnarRelation::block_range`]);
//! * **deterministic order** — the sorted projection is canonical
//!   regardless of the mutation history that produced the row table, which
//!   makes two projections comparable with `==`.

use crate::intern::Cst;
use std::ops::Range;

/// A key-sorted, column-major projection of one relation's rows. See the
/// module docs for the storage contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnarRelation {
    key_len: usize,
    arity: usize,
    n_rows: usize,
    /// One column per attribute position; `cols[p][i]` is position `p` of
    /// the `i`-th row in key-sorted order.
    cols: Vec<Vec<Cst>>,
    /// `(block key, start row)` in ascending key order; a block's rows are
    /// `start..next start` (or `..n_rows` for the last block).
    blocks: Vec<(Box<[Cst]>, u32)>,
}

impl ColumnarRelation {
    /// Builds the projection from a row table in arbitrary order. Rows are
    /// sorted lexicographically (the key is a prefix, so blocks come out
    /// contiguous and internally sorted); duplicate rows are kept as-is —
    /// the row store already deduplicates.
    pub fn from_rows(key_len: usize, arity: usize, rows: &[Box<[Cst]>]) -> ColumnarRelation {
        debug_assert!(key_len <= arity, "key is a prefix of the row");
        let mut order: Vec<u32> = (0..u32::try_from(rows.len()).expect("row count fits in u32"))
            .collect();
        order.sort_unstable_by(|&a, &b| rows[a as usize].cmp(&rows[b as usize]));
        let mut cols: Vec<Vec<Cst>> = vec![Vec::with_capacity(rows.len()); arity];
        let mut blocks: Vec<(Box<[Cst]>, u32)> = Vec::new();
        for (i, &src) in order.iter().enumerate() {
            let row = &rows[src as usize];
            debug_assert_eq!(row.len(), arity, "uniform arity");
            for (p, &c) in row.iter().enumerate() {
                cols[p].push(c);
            }
            let key = &row[..key_len];
            if blocks.last().is_none_or(|(k, _)| &**k != key) {
                blocks.push((key.into(), i as u32));
            }
        }
        ColumnarRelation {
            key_len,
            arity,
            n_rows: rows.len(),
            cols,
            blocks,
        }
    }

    /// The primary-key length.
    pub fn key_len(&self) -> usize {
        self.key_len
    }

    /// The relation's arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Whether the projection holds no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// The number of (non-empty) blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The contiguous column of attribute position `p` — the borrowed
    /// column slice served through [`crate::view::FactSource::columnar`].
    pub fn column(&self, p: usize) -> &[Cst] {
        &self.cols[p]
    }

    /// The value at attribute position `p` of the `i`-th row in key-sorted
    /// order.
    pub fn value(&self, p: usize, i: usize) -> Cst {
        self.cols[p][i]
    }

    /// The blocks as `(key, row range)` pairs in ascending key order; each
    /// range indexes the sorted row order shared by every column.
    pub fn blocks(&self) -> impl Iterator<Item = (&[Cst], Range<usize>)> + '_ {
        self.blocks.iter().enumerate().map(|(b, (key, start))| {
            let end = self
                .blocks
                .get(b + 1)
                .map_or(self.n_rows, |&(_, s)| s as usize);
            (&**key, *start as usize..end)
        })
    }

    /// The row range of the block with this key — a binary search over the
    /// sorted block directory. `None` when no row has the key.
    pub fn block_range(&self, key: &[Cst]) -> Option<Range<usize>> {
        let b = self
            .blocks
            .binary_search_by(|(k, _)| (**k).cmp(key))
            .ok()?;
        let start = self.blocks[b].1 as usize;
        let end = self
            .blocks
            .get(b + 1)
            .map_or(self.n_rows, |&(_, s)| s as usize);
        Some(start..end)
    }

    /// Copies the `i`-th row (in key-sorted order) into `buf`.
    pub fn copy_row_into(&self, i: usize, buf: &mut Vec<Cst>) {
        buf.clear();
        buf.extend(self.cols.iter().map(|c| c[i]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(names: &[&str]) -> Box<[Cst]> {
        names.iter().map(|n| Cst::new(n)).collect()
    }

    fn sample() -> ColumnarRelation {
        // Arbitrary physical order; key_len = 1.
        let rows = vec![
            row(&["b", "1"]),
            row(&["a", "2"]),
            row(&["c", "9"]),
            row(&["a", "1"]),
            row(&["b", "7"]),
        ];
        ColumnarRelation::from_rows(1, 2, &rows)
    }

    #[test]
    fn columns_are_key_sorted_and_aligned() {
        let c = sample();
        assert_eq!(c.n_rows(), 5);
        assert_eq!(c.arity(), 2);
        assert_eq!(c.column(0).len(), 5);
        assert_eq!(c.column(1).len(), 5);
        // Rows are sorted, so column 0 is non-decreasing.
        let keys = c.column(0);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        // Row reassembly matches a sorted copy of the input.
        let mut buf = Vec::new();
        c.copy_row_into(0, &mut buf);
        assert_eq!(buf.len(), 2);
        assert_eq!(buf[0], c.value(0, 0));
        assert_eq!(buf[1], c.value(1, 0));
    }

    #[test]
    fn blocks_are_contiguous_ranges_covering_all_rows() {
        let c = sample();
        assert_eq!(c.block_count(), 3);
        let mut covered = 0;
        let mut prev_key: Option<Vec<Cst>> = None;
        for (key, range) in c.blocks() {
            assert_eq!(range.start, covered, "blocks are contiguous");
            assert!(!range.is_empty());
            covered = range.end;
            for i in range {
                assert_eq!(&c.column(0)[i..=i], key, "key column matches block key");
            }
            if let Some(p) = &prev_key {
                assert!(p.as_slice() < key, "ascending key order");
            }
            prev_key = Some(key.to_vec());
        }
        assert_eq!(covered, c.n_rows(), "blocks form an exact cover");
    }

    #[test]
    fn block_range_probes() {
        let c = sample();
        let a = c.block_range(&[Cst::new("a")]).unwrap();
        assert_eq!(a.len(), 2);
        let b = c.block_range(&[Cst::new("b")]).unwrap();
        assert_eq!(b.len(), 2);
        let z = c.block_range(&[Cst::new("c")]).unwrap();
        assert_eq!(z.len(), 1);
        assert!(c.block_range(&[Cst::new("missing")]).is_none());
    }

    #[test]
    fn canonical_regardless_of_input_order() {
        let rows1 = vec![row(&["a", "1"]), row(&["b", "2"]), row(&["a", "3"])];
        let mut rows2 = rows1.clone();
        rows2.reverse();
        assert_eq!(
            ColumnarRelation::from_rows(1, 2, &rows1),
            ColumnarRelation::from_rows(1, 2, &rows2)
        );
    }

    #[test]
    fn empty_relation() {
        let c = ColumnarRelation::from_rows(1, 2, &[]);
        assert!(c.is_empty());
        assert_eq!(c.block_count(), 0);
        assert_eq!(c.blocks().count(), 0);
        assert!(c.block_range(&[Cst::new("a")]).is_none());
    }
}
