//! Ground facts `R(a₁, …, aₙ)`.

use crate::intern::Cst;
use crate::schema::{RelName, Signature};
use std::fmt;

/// A ground fact: a relation name plus a tuple of constants.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fact {
    /// Relation name.
    pub rel: RelName,
    /// Constants, in attribute order.
    pub args: Box<[Cst]>,
}

impl Fact {
    /// Creates a fact.
    pub fn new(rel: RelName, args: impl Into<Box<[Cst]>>) -> Fact {
        Fact {
            rel,
            args: args.into(),
        }
    }

    /// Convenience constructor from string names.
    pub fn from_names(rel: &str, args: &[&str]) -> Fact {
        Fact {
            rel: RelName::new(rel),
            args: args.iter().map(|a| Cst::new(a)).collect(),
        }
    }

    /// Arity of the fact.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// The constant at 1-based position `i`.
    pub fn arg_at(&self, i: usize) -> Option<Cst> {
        self.args.get(i.checked_sub(1)?).copied()
    }

    /// The primary-key prefix of the fact.
    pub fn key(&self, sig: Signature) -> &[Cst] {
        &self.args[..sig.key_len]
    }

    /// Key-equality `A ∼ B` (paper §3.1): same relation name, agreeing on all
    /// primary-key positions.
    pub fn key_equal(&self, other: &Fact, sig: Signature) -> bool {
        self.rel == other.rel && self.key(sig) == other.key(sig)
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.rel)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Debug for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let f = Fact::from_names("R", &["a", "b", "c"]);
        assert_eq!(f.arity(), 3);
        assert_eq!(f.arg_at(1), Some(Cst::new("a")));
        assert_eq!(f.arg_at(4), None);
        assert_eq!(f.to_string(), "R(a, b, c)");
    }

    #[test]
    fn key_equality() {
        let sig = Signature::new(3, 2).unwrap();
        let a = Fact::from_names("R", &["1", "2", "x"]);
        let b = Fact::from_names("R", &["1", "2", "y"]);
        let c = Fact::from_names("R", &["1", "3", "x"]);
        let d = Fact::from_names("S", &["1", "2", "x"]);
        assert!(a.key_equal(&b, sig));
        assert!(!a.key_equal(&c, sig));
        assert!(!a.key_equal(&d, sig));
        assert_eq!(a.key(sig), &[Cst::new("1"), Cst::new("2")]);
    }
}
