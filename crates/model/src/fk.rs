//! Unary foreign keys `R[i] → S` and validated sets thereof (paper §3.2).

use crate::error::ModelError;
use crate::query::Query;
use crate::schema::{RelName, Schema};
use crate::term::Term;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A unary foreign key `R[i] → S`: position `i` of `R` references the
/// (unary) primary key of `S`.
///
/// The key is *weak* if `i ≤ k` (it overlaps `R`'s primary key) and *strong*
/// otherwise. The referenced relation `S` must have signature `[m, 1]`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ForeignKey {
    /// Source relation `R`.
    pub from: RelName,
    /// 1-based position `i` of `R`.
    pub pos: usize,
    /// Referenced relation `S`.
    pub to: RelName,
}

impl ForeignKey {
    /// Creates a foreign key (unvalidated; see [`FkSet::new`]).
    pub fn new(from: RelName, pos: usize, to: RelName) -> ForeignKey {
        ForeignKey { from, pos, to }
    }

    /// Convenience constructor from names.
    pub fn from_names(from: &str, pos: usize, to: &str) -> ForeignKey {
        ForeignKey::new(RelName::new(from), pos, RelName::new(to))
    }

    /// Whether the key is weak (`i ≤ k`) under `schema`.
    pub fn is_weak(&self, schema: &Schema) -> bool {
        match schema.signature(self.from) {
            Some(sig) => self.pos <= sig.key_len,
            None => false,
        }
    }

    /// Whether the key is strong (`i > k`) under `schema`.
    pub fn is_strong(&self, schema: &Schema) -> bool {
        match schema.signature(self.from) {
            Some(sig) => self.pos > sig.key_len,
            None => false,
        }
    }

    /// A foreign key `R[1] → R` over signature `[n, 1]` is *trivial*: it can
    /// never be falsified (paper Appendix A).
    pub fn is_trivial(&self, schema: &Schema) -> bool {
        self.from == self.to
            && self.pos == 1
            && schema
                .signature(self.from)
                .map(|s| s.key_len == 1)
                .unwrap_or(false)
    }

    /// Validates the key against a schema.
    pub fn validate(&self, schema: &Schema) -> Result<(), ModelError> {
        let from_sig = schema.expect(self.from)?;
        let to_sig = schema.expect(self.to)?;
        if self.pos == 0 || self.pos > from_sig.arity {
            return Err(ModelError::BadFkPosition {
                from: self.from,
                pos: self.pos,
            });
        }
        if to_sig.key_len != 1 {
            return Err(ModelError::CompositeKeyReferenced(self.to));
        }
        Ok(())
    }
}

impl fmt::Display for ForeignKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}] → {}", self.from, self.pos, self.to)
    }
}

impl fmt::Debug for ForeignKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A schema-validated set of unary foreign keys.
#[derive(Clone, PartialEq, Eq)]
pub struct FkSet {
    schema: Arc<Schema>,
    fks: BTreeSet<ForeignKey>,
}

impl FkSet {
    /// Builds a foreign-key set, validating every key against `schema`.
    pub fn new(
        schema: Arc<Schema>,
        fks: impl IntoIterator<Item = ForeignKey>,
    ) -> Result<FkSet, ModelError> {
        let fks: BTreeSet<ForeignKey> = fks.into_iter().collect();
        for fk in &fks {
            fk.validate(&schema)?;
        }
        Ok(FkSet { schema, fks })
    }

    /// The empty set over `schema`.
    pub fn empty(schema: Arc<Schema>) -> FkSet {
        FkSet {
            schema,
            fks: BTreeSet::new(),
        }
    }

    /// The underlying schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Iterator over the keys in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &ForeignKey> + '_ {
        self.fks.iter()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.fks.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.fks.is_empty()
    }

    /// Whether `fk` is a member.
    pub fn contains(&self, fk: &ForeignKey) -> bool {
        self.fks.contains(fk)
    }

    /// `FK[R →]`: keys outgoing from `rel`.
    pub fn outgoing(&self, rel: RelName) -> Vec<ForeignKey> {
        self.fks.iter().filter(|fk| fk.from == rel).copied().collect()
    }

    /// `FK[→ R]`: keys referencing `rel`.
    pub fn referencing(&self, rel: RelName) -> Vec<ForeignKey> {
        self.fks.iter().filter(|fk| fk.to == rel).copied().collect()
    }

    /// The weak members.
    pub fn weak(&self) -> Vec<ForeignKey> {
        self.fks
            .iter()
            .filter(|fk| fk.is_weak(&self.schema))
            .copied()
            .collect()
    }

    /// The strong members.
    pub fn strong(&self) -> Vec<ForeignKey> {
        self.fks
            .iter()
            .filter(|fk| fk.is_strong(&self.schema))
            .copied()
            .collect()
    }

    /// The set without `fk`.
    pub fn without(&self, fk: &ForeignKey) -> FkSet {
        let mut fks = self.fks.clone();
        fks.remove(fk);
        FkSet {
            schema: self.schema.clone(),
            fks,
        }
    }

    /// The set minus all the given keys.
    pub fn without_all<'a>(&self, remove: impl IntoIterator<Item = &'a ForeignKey>) -> FkSet {
        let mut fks = self.fks.clone();
        for fk in remove {
            fks.remove(fk);
        }
        FkSet {
            schema: self.schema.clone(),
            fks,
        }
    }

    /// Adds a key (validated).
    pub fn with(&self, fk: ForeignKey) -> Result<FkSet, ModelError> {
        fk.validate(&self.schema)?;
        let mut fks = self.fks.clone();
        fks.insert(fk);
        Ok(FkSet {
            schema: self.schema.clone(),
            fks,
        })
    }

    /// `FK↾q`: the keys that only use relation names occurring in `q`.
    pub fn restrict_to_query(&self, q: &Query) -> FkSet {
        let fks = self
            .fks
            .iter()
            .filter(|fk| q.contains(fk.from) && q.contains(fk.to))
            .copied()
            .collect();
        FkSet {
            schema: self.schema.clone(),
            fks,
        }
    }

    /// All relation names mentioned by some key.
    pub fn relations(&self) -> BTreeSet<RelName> {
        self.fks
            .iter()
            .flat_map(|fk| [fk.from, fk.to])
            .collect()
    }

    /// Checks that this set is *about* `q` (paper §3.2): every key is
    /// satisfied by `q` when distinct variables are read as distinct
    /// constants, and every relation of the set occurs in `q`.
    ///
    /// For unary keys this means: the term at `(R, i)` must be literally the
    /// same term as the one at `(S, 1)` in the unique `S`-atom of `q`.
    pub fn check_about(&self, q: &Query) -> Result<(), ModelError> {
        for fk in &self.fks {
            if !q.contains(fk.from) || !q.contains(fk.to) {
                return Err(ModelError::NotAboutQuery {
                    detail: format!("{fk}: both relations must occur in the query"),
                });
            }
            let src = q
                .atom(fk.from)
                .expect("contains checked")
                .term_at(fk.pos)
                .ok_or(ModelError::BadFkPosition {
                    from: fk.from,
                    pos: fk.pos,
                })?;
            let dst = q
                .atom(fk.to)
                .expect("contains checked")
                .term_at(1)
                .expect("arity >= 1");
            if src != dst {
                return Err(ModelError::NotAboutQuery {
                    detail: format!(
                        "{fk}: term {src} at ({}, {}) differs from key term {dst} of {}",
                        fk.from, fk.pos, fk.to
                    ),
                });
            }
            // Distinct variables are distinct constants, so a variable term
            // satisfies the key only by matching itself — already checked.
            // A constant term must equal the S-atom key constant — also
            // covered by literal term equality.
        }
        Ok(())
    }
}

impl fmt::Display for FkSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, fk) in self.fks.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{fk}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for FkSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Helper used by validation examples and tests: whether a query satisfies a
/// single foreign key when distinct variables are treated as distinct
/// constants (i.e. the atom pattern itself is non-dangling).
pub fn query_satisfies_fk(q: &Query, fk: &ForeignKey) -> bool {
    match (q.atom(fk.from), q.atom(fk.to)) {
        (Some(src), Some(dst)) => {
            let s: Option<Term> = src.term_at(fk.pos);
            let d = dst.term_at(1);
            s.is_some() && s == d
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::term::Term;

    fn schema() -> Arc<Schema> {
        let mut s = Schema::new();
        s.add("R", 3, 2).unwrap();
        s.add("S", 2, 1).unwrap();
        s.add("T", 2, 1).unwrap();
        s.add("U", 3, 2).unwrap();
        Arc::new(s)
    }

    #[test]
    fn weak_vs_strong_example3() {
        // Paper Example 3: FK = {R[1] → S, R[3] → T}, R:[3,2], S,T:[2,1].
        let s = schema();
        let weak = ForeignKey::from_names("R", 1, "S");
        let strong = ForeignKey::from_names("R", 3, "T");
        assert!(weak.is_weak(&s));
        assert!(!weak.is_strong(&s));
        assert!(strong.is_strong(&s));
        assert!(!strong.is_weak(&s));
    }

    #[test]
    fn composite_key_reference_rejected() {
        let s = schema();
        // U has key_len 2: cannot be referenced.
        let fk = ForeignKey::from_names("R", 3, "U");
        assert!(matches!(
            fk.validate(&s),
            Err(ModelError::CompositeKeyReferenced(_))
        ));
        assert!(FkSet::new(s, vec![fk]).is_err());
    }

    #[test]
    fn position_out_of_range_rejected() {
        let s = schema();
        let fk = ForeignKey::from_names("R", 4, "S");
        assert!(matches!(
            fk.validate(&s),
            Err(ModelError::BadFkPosition { .. })
        ));
        let fk0 = ForeignKey::from_names("R", 0, "S");
        assert!(fk0.validate(&s).is_err());
    }

    #[test]
    fn trivial_detection() {
        let s = schema();
        assert!(ForeignKey::from_names("S", 1, "S").is_trivial(&s));
        assert!(!ForeignKey::from_names("S", 2, "S").is_trivial(&s));
        assert!(!ForeignKey::from_names("S", 1, "T").is_trivial(&s));
        // R has composite key: R[1] → R is not even valid, and not trivial.
        assert!(!ForeignKey::from_names("R", 1, "R").is_trivial(&s));
    }

    #[test]
    fn outgoing_and_referencing() {
        let s = schema();
        let set = FkSet::new(
            s,
            vec![
                ForeignKey::from_names("R", 1, "S"),
                ForeignKey::from_names("R", 3, "T"),
                ForeignKey::from_names("T", 2, "S"),
            ],
        )
        .unwrap();
        assert_eq!(set.outgoing(RelName::new("R")).len(), 2);
        assert_eq!(set.referencing(RelName::new("S")).len(), 2);
        assert_eq!(set.weak().len(), 1);
        assert_eq!(set.strong().len(), 2);
    }

    #[test]
    fn about_check_accepts_matching_terms() {
        // q = {R(x, y, z), S(z, w)}, FK = {R[3] → S}: term z matches.
        let s = schema();
        let q = Query::new(
            s.clone(),
            vec![
                Atom::new(
                    RelName::new("R"),
                    vec![Term::var("x"), Term::var("y"), Term::var("z")],
                ),
                Atom::new(RelName::new("S"), vec![Term::var("z"), Term::var("w")]),
            ],
        )
        .unwrap();
        let set = FkSet::new(s, vec![ForeignKey::from_names("R", 3, "S")]).unwrap();
        assert!(set.check_about(&q).is_ok());
    }

    #[test]
    fn about_check_rejects_mismatch_and_missing_relation() {
        let s = schema();
        // Terms differ: R[3] holds z but S's key is w.
        let q = Query::new(
            s.clone(),
            vec![
                Atom::new(
                    RelName::new("R"),
                    vec![Term::var("x"), Term::var("y"), Term::var("z")],
                ),
                Atom::new(RelName::new("S"), vec![Term::var("w"), Term::var("u")]),
            ],
        )
        .unwrap();
        let set = FkSet::new(s.clone(), vec![ForeignKey::from_names("R", 3, "S")]).unwrap();
        assert!(matches!(
            set.check_about(&q),
            Err(ModelError::NotAboutQuery { .. })
        ));

        // Relation T absent from the query.
        let set2 = FkSet::new(s, vec![ForeignKey::from_names("R", 3, "T")]).unwrap();
        assert!(set2.check_about(&q).is_err());
    }

    #[test]
    fn proposition_19_shape_is_rejected() {
        // q = {E(x, y)} with FK = {E[2] → E} is NOT about q: the term y at
        // (E,2) differs from the key term x (paper §9, Proposition 19).
        let mut sch = Schema::new();
        sch.add("E", 2, 1).unwrap();
        let s = Arc::new(sch);
        let q = Query::new(
            s.clone(),
            vec![Atom::new(
                RelName::new("E"),
                vec![Term::var("x"), Term::var("y")],
            )],
        )
        .unwrap();
        let set = FkSet::new(s, vec![ForeignKey::from_names("E", 2, "E")]).unwrap();
        assert!(set.check_about(&q).is_err());
        assert!(!query_satisfies_fk(&q, &ForeignKey::from_names("E", 2, "E")));
    }

    #[test]
    fn set_operations() {
        let s = schema();
        let fk1 = ForeignKey::from_names("R", 1, "S");
        let fk2 = ForeignKey::from_names("R", 3, "T");
        let set = FkSet::new(s, vec![fk1, fk2]).unwrap();
        let smaller = set.without(&fk1);
        assert_eq!(smaller.len(), 1);
        assert!(smaller.contains(&fk2));
        let bigger = smaller.with(fk1).unwrap();
        assert_eq!(bigger.len(), 2);
        assert_eq!(
            set.relations(),
            ["R", "S", "T"].iter().map(|r| RelName::new(r)).collect()
        );
    }
}
