//! Atoms `R(t₁, …, tₙ)`.

use crate::intern::{Cst, Var};
use crate::schema::{RelName, Signature};
use crate::term::Term;
use std::collections::BTreeSet;
use std::fmt;

/// An atom `R(t₁, …, tₖ, tₖ₊₁, …, tₙ)` over a relation of signature `[n, k]`.
///
/// The atom itself does not carry the signature; arity is validated when the
/// atom enters a [`crate::Query`] or is matched against a schema.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Atom {
    /// Relation name.
    pub rel: RelName,
    /// Terms, in attribute order.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Creates an atom.
    pub fn new(rel: RelName, terms: Vec<Term>) -> Atom {
        Atom { rel, terms }
    }

    /// Arity (number of terms).
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// The term at 1-based position `i`.
    pub fn term_at(&self, i: usize) -> Option<Term> {
        self.terms.get(i.checked_sub(1)?).copied()
    }

    /// `vars(F)`: the set of variables occurring in the atom.
    pub fn vars(&self) -> BTreeSet<Var> {
        self.terms.iter().filter_map(|t| t.as_var()).collect()
    }

    /// The set of constants occurring in the atom.
    pub fn consts(&self) -> BTreeSet<Cst> {
        self.terms.iter().filter_map(|t| t.as_cst()).collect()
    }

    /// `key(F)`: the set of variables occurring at primary-key positions.
    pub fn key_vars(&self, sig: Signature) -> BTreeSet<Var> {
        self.terms[..sig.key_len]
            .iter()
            .filter_map(|t| t.as_var())
            .collect()
    }

    /// The key terms (positions `1..=k`), in order.
    pub fn key_terms(&self, sig: Signature) -> &[Term] {
        &self.terms[..sig.key_len]
    }

    /// The non-key terms (positions `k+1..=n`), in order.
    pub fn nonkey_terms(&self, sig: Signature) -> &[Term] {
        &self.terms[sig.key_len..]
    }

    /// Whether the atom is a *fact* (contains no variables).
    pub fn is_ground(&self) -> bool {
        self.terms.iter().all(|t| t.is_cst())
    }

    /// Applies a variable substitution, leaving unmapped variables in place.
    pub fn substitute(&self, map: &std::collections::BTreeMap<Var, Term>) -> Atom {
        Atom {
            rel: self.rel,
            terms: self
                .terms
                .iter()
                .map(|t| match t {
                    Term::Var(v) => map.get(v).copied().unwrap_or(*t),
                    Term::Cst(_) => *t,
                })
                .collect(),
        }
    }

    /// Positions (1-based) at which `v` occurs.
    pub fn positions_of(&self, v: Var) -> Vec<usize> {
        self.terms
            .iter()
            .enumerate()
            .filter_map(|(i, t)| (t.as_var() == Some(v)).then_some(i + 1))
            .collect()
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.rel)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn atom() -> Atom {
        // R(x, 'a', y, x)
        Atom::new(
            RelName::new("R"),
            vec![Term::var("x"), Term::cst("a"), Term::var("y"), Term::var("x")],
        )
    }

    #[test]
    fn vars_and_consts() {
        let a = atom();
        assert_eq!(a.arity(), 4);
        assert_eq!(
            a.vars(),
            [Var::new("x"), Var::new("y")].into_iter().collect()
        );
        assert_eq!(a.consts(), [Cst::new("a")].into_iter().collect());
    }

    #[test]
    fn key_and_nonkey() {
        let a = atom();
        let sig = Signature::new(4, 2).unwrap();
        assert_eq!(a.key_vars(sig), [Var::new("x")].into_iter().collect());
        assert_eq!(a.key_terms(sig), &[Term::var("x"), Term::cst("a")]);
        assert_eq!(a.nonkey_terms(sig), &[Term::var("y"), Term::var("x")]);
    }

    #[test]
    fn term_at_is_one_based() {
        let a = atom();
        assert_eq!(a.term_at(1), Some(Term::var("x")));
        assert_eq!(a.term_at(2), Some(Term::cst("a")));
        assert_eq!(a.term_at(5), None);
        assert_eq!(a.term_at(0), None);
    }

    #[test]
    fn substitution() {
        let a = atom();
        let mut m = BTreeMap::new();
        m.insert(Var::new("x"), Term::cst("c1"));
        let b = a.substitute(&m);
        assert_eq!(b.terms[0], Term::cst("c1"));
        assert_eq!(b.terms[3], Term::cst("c1"));
        assert_eq!(b.terms[2], Term::var("y"));
        assert!(!b.is_ground());
    }

    #[test]
    fn positions_of_var() {
        let a = atom();
        assert_eq!(a.positions_of(Var::new("x")), vec![1, 4]);
        assert_eq!(a.positions_of(Var::new("z")), Vec::<usize>::new());
    }

    #[test]
    fn display() {
        assert_eq!(atom().to_string(), "R(x, 'a', y, x)");
    }
}
