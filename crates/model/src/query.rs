//! Self-join-free Boolean conjunctive queries (`sjfBCQ`, paper §3.1).

use crate::atom::Atom;
use crate::error::ModelError;
use crate::intern::{Cst, Var};
use crate::schema::{Position, RelName, Schema, Signature};
use crate::term::Term;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// A self-join-free Boolean conjunctive query: a finite set of atoms, no two
/// of which share a relation name. Since queries are self-join-free, the
/// paper's convention of naming atoms by their relation applies: `q.atom(R)`
/// is *the* `R`-atom of `q`.
#[derive(Clone, PartialEq, Eq)]
pub struct Query {
    schema: Arc<Schema>,
    atoms: Vec<Atom>,
    index: BTreeMap<RelName, usize>,
}

impl Query {
    /// Builds a query over `schema`, validating arity and self-join-freeness.
    pub fn new(schema: Arc<Schema>, mut atoms: Vec<Atom>) -> Result<Query, ModelError> {
        atoms.sort_by_key(|a| a.rel);
        let mut index = BTreeMap::new();
        for (i, atom) in atoms.iter().enumerate() {
            let sig = schema.expect(atom.rel)?;
            if atom.arity() != sig.arity {
                return Err(ModelError::ArityMismatch {
                    rel: atom.rel,
                    expected: sig.arity,
                    got: atom.arity(),
                });
            }
            if index.insert(atom.rel, i).is_some() {
                return Err(ModelError::SelfJoin(atom.rel));
            }
        }
        Ok(Query {
            schema,
            atoms,
            index,
        })
    }

    /// The empty query (trivially true).
    pub fn empty(schema: Arc<Schema>) -> Query {
        Query {
            schema,
            atoms: Vec::new(),
            index: BTreeMap::new(),
        }
    }

    /// The underlying schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The atoms, in canonical (relation-name) order.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Whether the query has no atoms.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// The unique `rel`-atom, if present.
    pub fn atom(&self, rel: RelName) -> Option<&Atom> {
        self.index.get(&rel).map(|&i| &self.atoms[i])
    }

    /// The relations occurring in the query, in canonical order.
    pub fn relations(&self) -> impl Iterator<Item = RelName> + '_ {
        self.atoms.iter().map(|a| a.rel)
    }

    /// Whether `rel` occurs in the query.
    pub fn contains(&self, rel: RelName) -> bool {
        self.index.contains_key(&rel)
    }

    /// The signature of an atom's relation. Panics if `rel` is not in the
    /// query's schema (queries validate membership at construction).
    pub fn sig(&self, rel: RelName) -> Signature {
        self.schema
            .signature(rel)
            .expect("relation validated at construction")
    }

    /// `vars(q)`: all variables of the query.
    pub fn vars(&self) -> BTreeSet<Var> {
        self.atoms.iter().flat_map(|a| a.vars()).collect()
    }

    /// `const(q)`: all constants of the query.
    pub fn consts(&self) -> BTreeSet<Cst> {
        self.atoms.iter().flat_map(|a| a.consts()).collect()
    }

    /// `key(F)` for the `rel`-atom: variables at primary-key positions.
    pub fn key_vars(&self, rel: RelName) -> BTreeSet<Var> {
        match self.atom(rel) {
            Some(a) => a.key_vars(self.sig(rel)),
            None => BTreeSet::new(),
        }
    }

    /// The term at position `(R, i)`, if `R` occurs in the query.
    pub fn term_at(&self, pos: Position) -> Option<Term> {
        self.atom(pos.rel)?.term_at(pos.idx)
    }

    /// All positions of the query's relations (1-based), canonical order.
    pub fn positions(&self) -> Vec<Position> {
        let mut out = Vec::new();
        for atom in &self.atoms {
            for i in 1..=atom.arity() {
                out.push(Position::new(atom.rel, i));
            }
        }
        out
    }

    /// The query without the `rel`-atom (`q ∖ {F}`).
    pub fn without(&self, rel: RelName) -> Query {
        let atoms = self
            .atoms
            .iter()
            .filter(|a| a.rel != rel)
            .cloned()
            .collect();
        Query::new(self.schema.clone(), atoms).expect("subset of a valid query is valid")
    }

    /// The query restricted to the given relation names.
    pub fn restrict(&self, keep: &BTreeSet<RelName>) -> Query {
        let atoms = self
            .atoms
            .iter()
            .filter(|a| keep.contains(&a.rel))
            .cloned()
            .collect();
        Query::new(self.schema.clone(), atoms).expect("subset of a valid query is valid")
    }

    /// `q[x→t]` extended to maps: applies a variable substitution to every
    /// atom.
    pub fn substitute(&self, map: &BTreeMap<Var, Term>) -> Query {
        let atoms = self.atoms.iter().map(|a| a.substitute(map)).collect();
        Query::new(self.schema.clone(), atoms).expect("substitution preserves validity")
    }

    /// Freezes the given variables as *parameter constants* (`§x`); analysis
    /// code then treats them as constants. See [`Cst::param`].
    pub fn freeze(&self, vars: &BTreeSet<Var>) -> Query {
        let map = vars
            .iter()
            .map(|&v| (v, Term::Cst(Cst::param(v))))
            .collect();
        self.substitute(&map)
    }

    /// Whether variables `x` and `y` are *connected in q* (paper Appendix A):
    /// there is a sequence of variables from `x` to `y` such that adjacent
    /// ones co-occur in some atom of the query.
    pub fn connected(&self, x: Var, y: Var) -> bool {
        if x == y {
            return self.vars().contains(&x);
        }
        let mut seen = BTreeSet::new();
        let mut stack = vec![x];
        seen.insert(x);
        while let Some(v) = stack.pop() {
            for atom in &self.atoms {
                let vars = atom.vars();
                if vars.contains(&v) {
                    for w in vars {
                        if w == y {
                            return true;
                        }
                        if seen.insert(w) {
                            stack.push(w);
                        }
                    }
                }
            }
        }
        false
    }

    /// A variable is *orphan* in `q` if it occurs exactly once in the query,
    /// at a non-primary-key position (paper Appendix A).
    pub fn is_orphan(&self, v: Var) -> bool {
        let mut occurrences = 0usize;
        let mut at_nonkey = false;
        for atom in &self.atoms {
            let sig = self.sig(atom.rel);
            for (i, t) in atom.terms.iter().enumerate() {
                if t.as_var() == Some(v) {
                    occurrences += 1;
                    at_nonkey = !sig.is_key_pos(i + 1);
                }
            }
        }
        occurrences == 1 && at_nonkey
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Arc<Schema> {
        let mut s = Schema::new();
        s.add("R", 2, 1).unwrap();
        s.add("S", 2, 1).unwrap();
        s.add("T", 3, 2).unwrap();
        Arc::new(s)
    }

    fn q_rs() -> Query {
        // {R(x,y), S(y,z)}
        Query::new(
            schema(),
            vec![
                Atom::new(RelName::new("R"), vec![Term::var("x"), Term::var("y")]),
                Atom::new(RelName::new("S"), vec![Term::var("y"), Term::var("z")]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn valid_query() {
        let q = q_rs();
        assert_eq!(q.len(), 2);
        assert!(q.contains(RelName::new("R")));
        assert_eq!(
            q.vars(),
            ["x", "y", "z"].iter().map(|v| Var::new(v)).collect()
        );
    }

    #[test]
    fn self_join_rejected() {
        let err = Query::new(
            schema(),
            vec![
                Atom::new(RelName::new("R"), vec![Term::var("x"), Term::var("y")]),
                Atom::new(RelName::new("R"), vec![Term::var("y"), Term::var("x")]),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::SelfJoin(_)));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let err = Query::new(
            schema(),
            vec![Atom::new(RelName::new("R"), vec![Term::var("x")])],
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::ArityMismatch { .. }));
    }

    #[test]
    fn unknown_relation_rejected() {
        let err = Query::new(
            schema(),
            vec![Atom::new(RelName::new("Z"), vec![Term::var("x")])],
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::UnknownRelation(_)));
    }

    #[test]
    fn key_vars_respects_signature() {
        let q = Query::new(
            schema(),
            vec![Atom::new(
                RelName::new("T"),
                vec![Term::var("x"), Term::cst("c"), Term::var("y")],
            )],
        )
        .unwrap();
        assert_eq!(
            q.key_vars(RelName::new("T")),
            [Var::new("x")].into_iter().collect()
        );
    }

    #[test]
    fn without_and_restrict() {
        let q = q_rs();
        let q2 = q.without(RelName::new("R"));
        assert_eq!(q2.len(), 1);
        assert!(q2.contains(RelName::new("S")));
        let q3 = q.restrict(&[RelName::new("R")].into_iter().collect());
        assert_eq!(q3.len(), 1);
        assert!(q3.contains(RelName::new("R")));
    }

    #[test]
    fn substitution_and_freeze() {
        let q = q_rs();
        let mut m = BTreeMap::new();
        m.insert(Var::new("y"), Term::cst("c"));
        let q2 = q.substitute(&m);
        assert!(!q2.vars().contains(&Var::new("y")));
        assert!(q2.consts().contains(&Cst::new("c")));

        let frozen = q.freeze(&[Var::new("x")].into_iter().collect());
        assert!(!frozen.vars().contains(&Var::new("x")));
        let c = Cst::param(Var::new("x"));
        assert!(frozen.consts().contains(&c));
        assert_eq!(c.as_param(), Some(Var::new("x")));
    }

    #[test]
    fn connectivity() {
        let q = q_rs();
        assert!(q.connected(Var::new("x"), Var::new("z")));
        assert!(q.connected(Var::new("x"), Var::new("x")));
        assert!(!q.connected(Var::new("x"), Var::new("w")));
    }

    #[test]
    fn orphan_detection() {
        let q = q_rs();
        // z occurs once at a non-key position of S.
        assert!(q.is_orphan(Var::new("z")));
        // y occurs twice.
        assert!(!q.is_orphan(Var::new("y")));
        // x occurs once but at a key position.
        assert!(!q.is_orphan(Var::new("x")));
    }

    #[test]
    fn atoms_sorted_canonically() {
        let q = Query::new(
            schema(),
            vec![
                Atom::new(RelName::new("S"), vec![Term::var("y"), Term::var("z")]),
                Atom::new(RelName::new("R"), vec![Term::var("x"), Term::var("y")]),
            ],
        )
        .unwrap();
        assert_eq!(q.atoms()[0].rel, RelName::new("R"));
        assert_eq!(q.to_string(), "{R(x, y), S(y, z)}");
    }
}
