//! Property tests for the invariant auditor's *rejection* paths: randomly
//! constructed malformed IR — unbound slot reads, domain quantifiers with a
//! cleared range-restriction flag, inflated slot counts, broken Lemma 45
//! parameter composition — must each be rejected with the right
//! [`Code`], never accepted and never misclassified. (The acceptance
//! direction is covered for free: every real compile in the workspace runs
//! the audit behind `debug_assert!`.)

use cqa_analyze::{audit_formula, audit_plan, Code, FNode, FormulaIr, L45Ir, PatIr, PlanIr, TailIr};
use cqa_model::binding::{CompiledAtom, SlotTerm};
use cqa_model::{Cst, ForeignKey, RelName, Schema};
use proptest::prelude::*;
use std::sync::Arc;

fn rel(n: &str) -> RelName {
    RelName::new(n)
}

fn atom(r: &str, slots: &[u32]) -> CompiledAtom {
    CompiledAtom {
        rel: rel(r),
        terms: slots.iter().map(|&s| SlotTerm::Slot(s)).collect(),
    }
}

fn schema() -> Arc<Schema> {
    let mut s = Schema::new();
    s.add("N", 2, 1).expect("schema");
    s.add("O", 1, 1).expect("schema");
    s.add("P", 1, 1).expect("schema");
    Arc::new(s)
}

/// A well-formed plan skeleton: `good_plan`'s shape (ground-key Lemma 45
/// over `N`, residual `O(x) ∧ P(x)`), rebuilt from the public IR types so
/// the tests can bend any field.
fn plan_with(tweak: impl FnOnce(&mut L45Ir)) -> PlanIr {
    let schema = schema();
    let mut l45 = L45Ir {
        rel: rel("N"),
        key: vec![PatIr::Cst(Cst::new("c"))],
        pattern: vec![PatIr::Cst(Cst::new("c")), PatIr::X(0)],
        n_xs: 1,
        outgoing: vec![ForeignKey::new(rel("N"), 2, rel("O"))],
        sub: PlanIr {
            schema: schema.clone(),
            rels: [rel("O"), rel("P")].into(),
            ops: Vec::new(),
            tail: TailIr::Kw {
                formula: FormulaIr {
                    root: FNode::And(vec![
                        FNode::Atom(atom("O", &[0])),
                        FNode::Atom(atom("P", &[0])),
                    ]),
                    n_slots: 1,
                    params: vec![0],
                    uses_domain: false,
                },
                free_map: vec![0],
            },
            n_params: 1,
        },
    };
    tweak(&mut l45);
    PlanIr {
        schema,
        rels: [rel("N"), rel("O"), rel("P")].into(),
        ops: Vec::new(),
        tail: TailIr::Lemma45(Box::new(l45)),
        n_params: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 256,
        failure_persistence: Some(FileFailurePersistence::WithSource("proptest-regressions")),
        ..ProptestConfig::default()
    })]

    /// Bind every slot except a victim, then read the victim in one of the
    /// conjuncts: whatever the slot count and position, the auditor must
    /// report `use-before-bind` (and, since the victim has no binder
    /// anywhere, `slot-gap` for the hole).
    #[test]
    fn reading_an_unbound_slot_is_rejected(n_slots in 2u32..7, victim_pick in 0u32..7) {
        let victim = victim_pick % n_slots;
        let bound: Vec<u32> = (0..n_slots).filter(|s| *s != victim).collect();
        let mut conjuncts: Vec<FNode> =
            bound.iter().map(|&s| FNode::Atom(atom("O", &[s]))).collect();
        conjuncts.push(FNode::Atom(atom("P", &[victim])));
        let f = FormulaIr {
            root: FNode::Exists(bound, Box::new(FNode::And(conjuncts))),
            n_slots: n_slots as usize,
            params: Vec::new(),
            uses_domain: false,
        };
        let report = audit_formula(&f);
        prop_assert!(report.has(Code::UseBeforeBind), "{report}");
        prop_assert!(report.has(Code::SlotGap), "{report}");
    }

    /// A plain (active-domain) quantifier nested at any depth under guards
    /// contradicts a cleared `uses_domain` flag: evaluation would quantify
    /// over an unbuilt domain. The same tree with the flag set is clean.
    #[test]
    fn domain_quantifier_with_cleared_flag_is_rejected(
        depth in 0usize..4,
        forall_pick in 0usize..2,
    ) {
        let forall = forall_pick == 1;
        // Innermost: ∃/∀ s_{depth} reading it — the domain quantifier.
        let inner_slot = depth as u32;
        let body = Box::new(FNode::Atom(atom("O", &[inner_slot])));
        let mut node = if forall {
            FNode::Forall(vec![inner_slot], body)
        } else {
            FNode::Exists(vec![inner_slot], body)
        };
        // Wrap in `depth` guarded quantifiers so the violation is not at
        // the root.
        for s in (0..depth as u32).rev() {
            node = FNode::ExistsGuarded(atom("P", &[s]), Box::new(node));
        }
        let make = |uses_domain| FormulaIr {
            root: node.clone(),
            n_slots: depth + 1,
            params: Vec::new(),
            uses_domain,
        };
        let report = audit_formula(&make(false));
        prop_assert!(report.has(Code::NotRangeRestricted), "{report}");
        prop_assert!(!report.has(Code::UseBeforeBind), "{report}");
        let clean = audit_formula(&make(true));
        prop_assert!(clean.is_clean(), "flag set must be accepted: {clean}");
    }

    /// Inflating `n_slots` past the binders leaves holes: every inflation
    /// amount yields `slot-gap` and nothing else.
    #[test]
    fn inflated_slot_counts_are_rejected(extra in 1usize..5) {
        let f = FormulaIr {
            root: FNode::ForallGuarded(
                atom("N", &[0, 1]),
                Box::new(FNode::Atom(atom("O", &[1]))),
            ),
            n_slots: 2 + extra,
            params: Vec::new(),
            uses_domain: false,
        };
        let report = audit_formula(&f);
        prop_assert!(report.has(Code::SlotGap), "{report}");
        prop_assert_eq!(report.diagnostics.len(), extra, "one gap per missing binder");
    }

    /// Every wrong residual parameter count (`sub.n_params ≠ parent 0 +
    /// ⃗x 1`) breaks Lemma 45 parameter composition — the auditor pins the
    /// exact arithmetic, accepting only the correct count.
    #[test]
    fn broken_parameter_composition_is_rejected(wrong in 0usize..6) {
        let plan = plan_with(|l| {
            l.sub.n_params = wrong;
            // Keep the residual internally consistent at its (wrong)
            // parameter count, so the *composition* check is what fires.
            if let TailIr::Kw { formula, free_map } = &mut l.sub.tail {
                formula.params = (0..wrong as u32).collect();
                formula.n_slots = wrong.max(1);
                formula.root = FNode::And(
                    (0..wrong.max(1) as u32)
                        .map(|s| FNode::Atom(atom("O", &[s])))
                        .collect(),
                );
                *free_map = (0..wrong).collect();
            }
        });
        let report = audit_plan(&plan);
        if wrong == 1 {
            prop_assert!(report.is_clean(), "correct composition rejected: {report}");
        } else {
            prop_assert!(report.has(Code::ParamCompositionBroken), "{report}");
        }
    }

    /// A parameter index at or past the scope's count is out of range
    /// wherever it appears in the step's key/pattern.
    #[test]
    fn out_of_range_parameters_are_rejected(idx in 0usize..6) {
        // The outer plan is parameterless: every `Param(idx)` is invalid.
        let plan = plan_with(|l| {
            l.key = vec![PatIr::Param(idx)];
            l.pattern = vec![PatIr::Param(idx), PatIr::X(0)];
        });
        let report = audit_plan(&plan);
        prop_assert!(report.has(Code::ParamOutOfRange), "{report}");
    }
}

/// The proptest shrinker must never be able to shrink a malformed fixture
/// into acceptance: the full fixture corpus stays rejected under repeated
/// audits (auditing is pure).
#[test]
fn fixture_corpus_is_stably_rejected() {
    for fixture in cqa_analyze::fixtures::all() {
        for _ in 0..3 {
            let report = fixture.audit();
            assert!(!report.is_clean(), "{} accepted", fixture.name);
            assert!(
                report.has(fixture.expect),
                "{}: expected {}, got {report}",
                fixture.name,
                fixture.expect
            );
        }
    }
}
