//! The neutral IR the auditor walks.
//!
//! The compiled artifacts of `cqa-fo` and `cqa-core` keep their internals
//! private (slot trees, reduction ops); each producing crate converts into
//! this crate-public mirror via a `to_ir()` method, so the auditor and the
//! read-set inference see one shared shape without a dependency cycle
//! (`cqa-analyze` depends only on `cqa-model`; the producers depend on
//! `cqa-analyze`).

use cqa_model::binding::{CompiledAtom, Slot, SlotTerm};
use cqa_model::eval::CompiledQuery;
use cqa_model::{Cst, ForeignKey, RelName, Schema};
use std::collections::BTreeSet;
use std::sync::Arc;

/// A node of a compiled formula tree (mirror of `cqa-fo`'s private node
/// type).
#[derive(Clone, Debug)]
pub enum FNode {
    /// Constant truth.
    True,
    /// Constant falsity.
    False,
    /// A relational atom over slot-numbered terms.
    Atom(CompiledAtom),
    /// Equality of two slot terms.
    Eq(SlotTerm, SlotTerm),
    /// Negation.
    Not(Box<FNode>),
    /// N-ary conjunction.
    And(Vec<FNode>),
    /// N-ary disjunction.
    Or(Vec<FNode>),
    /// Implication.
    Implies(Box<FNode>, Box<FNode>),
    /// Active-domain existential over `slots`.
    Exists(Vec<Slot>, Box<FNode>),
    /// Guarded existential: the guard atom binds its unbound slots.
    ExistsGuarded(CompiledAtom, Box<FNode>),
    /// Existential over an acyclic conjunction of positive atoms executed
    /// as one Yannakakis semijoin pass; every quantified slot is bound by
    /// some atom, so no active-domain iteration is needed.
    SemijoinExists(Vec<CompiledAtom>),
    /// Active-domain universal over `slots`.
    Forall(Vec<Slot>, Box<FNode>),
    /// Guarded universal: the guard atom binds its unbound slots.
    ForallGuarded(CompiledAtom, Box<FNode>),
}

impl FNode {
    /// Every relational atom in the tree, guards included, in walk order.
    pub fn atoms(&self) -> Vec<&CompiledAtom> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms<'a>(&'a self, out: &mut Vec<&'a CompiledAtom>) {
        match self {
            FNode::True | FNode::False | FNode::Eq(_, _) => {}
            FNode::Atom(a) => out.push(a),
            FNode::Not(g) => g.collect_atoms(out),
            FNode::And(gs) | FNode::Or(gs) => {
                for g in gs {
                    g.collect_atoms(out);
                }
            }
            FNode::Implies(l, r) => {
                l.collect_atoms(out);
                r.collect_atoms(out);
            }
            FNode::Exists(_, b) | FNode::Forall(_, b) => b.collect_atoms(out),
            FNode::ExistsGuarded(g, b) | FNode::ForallGuarded(g, b) => {
                out.push(g);
                b.collect_atoms(out);
            }
            FNode::SemijoinExists(atoms) => out.extend(atoms.iter()),
        }
    }

    /// Whether evaluating the tree requires the active domain — mirrors the
    /// producer's flag computation: any quantifier with a non-empty
    /// unguarded slot list.
    pub fn needs_domain(&self) -> bool {
        match self {
            FNode::True | FNode::False | FNode::Atom(_) | FNode::Eq(_, _) => false,
            FNode::Exists(slots, body) | FNode::Forall(slots, body) => {
                !slots.is_empty() || body.needs_domain()
            }
            FNode::Not(g) => g.needs_domain(),
            FNode::And(gs) | FNode::Or(gs) => gs.iter().any(FNode::needs_domain),
            FNode::Implies(l, r) => l.needs_domain() || r.needs_domain(),
            FNode::ExistsGuarded(_, cont) | FNode::ForallGuarded(_, cont) => cont.needs_domain(),
            FNode::SemijoinExists(_) => false,
        }
    }
}

/// A compiled formula: the tree plus its slot-numbering metadata.
#[derive(Clone, Debug)]
pub struct FormulaIr {
    /// The root node.
    pub root: FNode,
    /// Total number of slots the tree numbers.
    pub n_slots: usize,
    /// The free (parameter) slots, bound from an argument slice before
    /// evaluation starts.
    pub params: Vec<Slot>,
    /// Whether the producer flagged the tree as needing the active domain.
    pub uses_domain: bool,
}

/// A compiled conjunctive query: slot-numbered atoms plus slot counts.
#[derive(Clone, Debug)]
pub struct QueryIr {
    /// The slot-compiled atoms.
    pub atoms: Vec<CompiledAtom>,
    /// Total number of slots.
    pub n_slots: usize,
    /// Leading slots bound as parameters before the join starts.
    pub n_params: usize,
}

impl From<&CompiledQuery> for QueryIr {
    fn from(q: &CompiledQuery) -> QueryIr {
        QueryIr {
            atoms: q.atoms().to_vec(),
            n_slots: q.vars().len(),
            n_params: q.n_params(),
        }
    }
}

/// A pattern term of a Lemma 45 step: a constant, a reference to one of the
/// plan's parameters, or one of the step's own `⃗x` binding positions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PatIr {
    /// A ground constant.
    Cst(Cst),
    /// The `i`-th plan parameter.
    Param(usize),
    /// The `k`-th `⃗x` slot bound from the block row.
    X(usize),
}

/// A reduction operation preceding the plan tail (mirror of `cqa-core`'s
/// private op type).
#[derive(Clone, Debug)]
pub enum OpIr {
    /// Lemma 37/40 "remove object–object cycle" step: keep the blocks of
    /// `filter` whose anchor fact extends to a match of `relevance`, then
    /// hide `drop`.
    FilterRelevant {
        /// The relation hidden after filtering.
        drop: RelName,
        /// The relation whose blocks are filtered.
        filter: RelName,
        /// The relevance query deciding which blocks survive.
        relevance: QueryIr,
        /// Index of the atom of `relevance` anchored on `filter`.
        anchor: usize,
    },
    /// Lemma 37/40 "remove dangling objects" step: keep the blocks of
    /// `filter` with at least one non-dangling row, then hide `drop`.
    FilterNonDangling {
        /// The relation hidden after filtering.
        drop: RelName,
        /// The relation whose blocks are filtered.
        filter: RelName,
        /// The foreign keys a surviving row must satisfy.
        outgoing: Vec<ForeignKey>,
    },
}

/// The tail of a compiled plan.
#[derive(Clone, Debug)]
pub enum TailIr {
    /// The Koutris–Wijsen rewriting: a compiled formula evaluated over the
    /// reduced view, its free slots fed from the plan's parameters through
    /// `free_map`.
    Kw {
        /// The compiled rewriting.
        formula: FormulaIr,
        /// `free_map[i]` is the plan-parameter index feeding the formula's
        /// `i`-th free slot.
        free_map: Vec<usize>,
    },
    /// A nested Lemma 45 reduction step.
    Lemma45(Box<L45Ir>),
}

/// A Lemma 45 step: for every row of the block `rel(key, ∗)`, bind the
/// step's `⃗x` slots from the row and evaluate the residual plan.
#[derive(Clone, Debug)]
pub struct L45Ir {
    /// The block relation.
    pub rel: RelName,
    /// The ground (at evaluation time) probe key — the key-length prefix
    /// of `pattern`.
    pub key: Vec<PatIr>,
    /// The full atom pattern a block row must match.
    pub pattern: Vec<PatIr>,
    /// Number of `⃗x` slots the pattern binds.
    pub n_xs: usize,
    /// Foreign keys a block row must satisfy (non-dangling test).
    pub outgoing: Vec<ForeignKey>,
    /// The residual plan, expecting the parent's parameters plus the `⃗x`
    /// bindings.
    pub sub: PlanIr,
}

/// A compiled reduction plan (mirror of `cqa-core`'s private plan type).
#[derive(Clone, Debug)]
pub struct PlanIr {
    /// The schema the plan was compiled against.
    pub schema: Arc<Schema>,
    /// The relations the plan restricts its view to.
    pub rels: BTreeSet<RelName>,
    /// The reduction operations, applied in order.
    pub ops: Vec<OpIr>,
    /// The tail evaluated over the reduced view.
    pub tail: TailIr,
    /// The number of parameters the plan expects.
    pub n_params: usize,
}
