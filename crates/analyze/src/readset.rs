//! Read-set inference: the exact (relation, block-key) pairs a compiled
//! plan can touch.
//!
//! The inference is deliberately coarse everywhere except where the plan
//! structure *proves* block locality: a Lemma 45 tail whose probe key is
//! ground reads exactly one block of its relation, and that is the only
//! place a compiled plan probes by key with a statically known key. Every
//! other access — relevance-query joins, non-dangling probes, residual
//! formula evaluation, active-domain collection — is recorded as a
//! whole-relation read. [`AccessPattern::Whole`] absorbs block reads of the
//! same relation, so the result is always sound: if a fact with key `k` in
//! relation `R` can influence the plan's answer, then
//! [`ReadSet::may_read`]`(R, k)` is `true`.
//!
//! The incremental solver consumes this: a delta none of whose facts may be
//! read leaves the previous verdict (and residual cache) valid — the
//! *Unaffected* rung now fires per *block*, not per relation.

use crate::ir::{FormulaIr, OpIr, PatIr, PlanIr, TailIr};
use cqa_model::{Cst, RelName};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// How a plan accesses one relation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AccessPattern {
    /// Any block may be read (scans, joins, data-dependent probes).
    Whole,
    /// Only the blocks with these exact keys may be read.
    Blocks(BTreeSet<Vec<Cst>>),
}

/// The set of (relation, key-pattern) pairs a plan can touch. Relations
/// absent from the set are never read at all.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReadSet {
    map: BTreeMap<RelName, AccessPattern>,
}

impl ReadSet {
    /// The empty read-set (reads nothing).
    pub fn new() -> ReadSet {
        ReadSet::default()
    }

    /// A read-set marking every relation of `rels` as wholly read — the
    /// conservative description of backends that cannot be instrumented
    /// (poly-time solvers and the fallback oracle read the raw instance).
    pub fn whole_over<I: IntoIterator<Item = RelName>>(rels: I) -> ReadSet {
        let mut rs = ReadSet::new();
        for r in rels {
            rs.add_whole(r);
        }
        rs
    }

    /// Marks `rel` as wholly read (absorbs any block-level entry).
    pub fn add_whole(&mut self, rel: RelName) {
        self.map.insert(rel, AccessPattern::Whole);
    }

    /// Adds one readable block of `rel`; a whole-relation entry absorbs it.
    pub fn add_block(&mut self, rel: RelName, key: Vec<Cst>) {
        match self.map.get_mut(&rel) {
            Some(AccessPattern::Whole) => {}
            Some(AccessPattern::Blocks(keys)) => {
                keys.insert(key);
            }
            None => {
                self.map
                    .insert(rel, AccessPattern::Blocks(BTreeSet::from([key])));
            }
        }
    }

    /// The access pattern for `rel`, if the plan reads it at all.
    pub fn pattern(&self, rel: RelName) -> Option<&AccessPattern> {
        self.map.get(&rel)
    }

    /// Whether `rel` is read without block bounds.
    pub fn is_whole(&self, rel: RelName) -> bool {
        matches!(self.map.get(&rel), Some(AccessPattern::Whole))
    }

    /// Whether a fact in the block `rel(key, ∗)` may be read — i.e. whether
    /// inserting or removing such a fact can change the plan's answer.
    pub fn may_read(&self, rel: RelName, key: &[Cst]) -> bool {
        match self.map.get(&rel) {
            None => false,
            Some(AccessPattern::Whole) => true,
            Some(AccessPattern::Blocks(keys)) => keys.iter().any(|k| k.as_slice() == key),
        }
    }

    /// Whether a recorded probe is covered: a key probe needs
    /// [`ReadSet::may_read`], a whole-relation scan (`key = None`) needs
    /// [`AccessPattern::Whole`].
    pub fn covers(&self, rel: RelName, key: Option<&[Cst]>) -> bool {
        match key {
            Some(k) => self.may_read(rel, k),
            None => self.is_whole(rel),
        }
    }

    /// The relations the plan may read, in order.
    pub fn rels(&self) -> impl Iterator<Item = RelName> + '_ {
        self.map.keys().copied()
    }

    /// Number of relations with any access.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the plan reads nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl fmt::Display for ReadSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.map.is_empty() {
            return write!(f, "(reads nothing)");
        }
        let mut first = true;
        for (rel, pat) in &self.map {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            match pat {
                AccessPattern::Whole => write!(f, "{rel}: *")?,
                AccessPattern::Blocks(keys) => {
                    write!(f, "{rel}: blocks {{")?;
                    for (i, key) in keys.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "[")?;
                        for (j, c) in key.iter().enumerate() {
                            if j > 0 {
                                write!(f, " ")?;
                            }
                            write!(f, "{c}")?;
                        }
                        write!(f, "]")?;
                    }
                    write!(f, "}}")?;
                }
            }
        }
        Ok(())
    }
}

/// Infers the read-set of a compiled plan.
pub fn infer(plan: &PlanIr) -> ReadSet {
    let mut whole: BTreeSet<RelName> = BTreeSet::new();
    let mut blocks: Vec<(RelName, Vec<Cst>)> = Vec::new();
    collect(plan, &mut whole, &mut blocks);
    let mut rs = ReadSet::new();
    for r in whole {
        rs.add_whole(r);
    }
    for (r, k) in blocks {
        rs.add_block(r, k);
    }
    rs
}

fn formula_reads(f: &FormulaIr, level_rels: &BTreeSet<RelName>, whole: &mut BTreeSet<RelName>) {
    for a in f.root.atoms() {
        whole.insert(a.rel);
    }
    // Active-domain evaluation reads every visible relation (the domain is
    // collected from all of them); visibility at this level is bounded by
    // the level's restriction set.
    if f.uses_domain {
        whole.extend(level_rels.iter().copied());
    }
}

fn collect(plan: &PlanIr, whole: &mut BTreeSet<RelName>, blocks: &mut Vec<(RelName, Vec<Cst>)>) {
    for op in &plan.ops {
        match op {
            OpIr::FilterRelevant {
                filter, relevance, ..
            } => {
                // The op scans every block of `filter` and joins the
                // relevance query over the whole view.
                whole.insert(*filter);
                for a in &relevance.atoms {
                    whole.insert(a.rel);
                }
            }
            OpIr::FilterNonDangling {
                filter, outgoing, ..
            } => {
                whole.insert(*filter);
                for fk in outgoing {
                    whole.insert(fk.to);
                }
            }
        }
    }
    match &plan.tail {
        TailIr::Kw { formula, .. } => formula_reads(formula, &plan.rels, whole),
        TailIr::Lemma45(l) => {
            for fk in &l.outgoing {
                whole.insert(fk.to);
            }
            // The step probes exactly one block of `rel` when the key is
            // ground at compile time; a parameterized key is data-dependent
            // and degrades to a whole-relation read.
            let ground: Option<Vec<Cst>> = l
                .key
                .iter()
                .map(|t| match t {
                    PatIr::Cst(c) => Some(*c),
                    PatIr::Param(_) | PatIr::X(_) => None,
                })
                .collect();
            match ground {
                Some(key) => blocks.push((l.rel, key)),
                None => {
                    whole.insert(l.rel);
                }
            }
            collect(&l.sub, whole, blocks);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(n: &str) -> RelName {
        RelName::new(n)
    }

    #[test]
    fn whole_absorbs_blocks() {
        let mut rs = ReadSet::new();
        rs.add_block(rel("N"), vec![Cst::new("c")]);
        assert!(rs.may_read(rel("N"), &[Cst::new("c")]));
        assert!(!rs.may_read(rel("N"), &[Cst::new("d")]));
        rs.add_whole(rel("N"));
        assert!(rs.may_read(rel("N"), &[Cst::new("d")]));
        // Block adds after Whole stay Whole.
        rs.add_block(rel("N"), vec![Cst::new("e")]);
        assert!(rs.is_whole(rel("N")));
    }

    #[test]
    fn absent_relation_is_never_read() {
        let rs = ReadSet::whole_over([rel("A")]);
        assert!(!rs.may_read(rel("B"), &[Cst::new("x")]));
        assert!(!rs.covers(rel("B"), None));
        assert!(rs.covers(rel("A"), None));
        assert!(rs.covers(rel("A"), Some(&[Cst::new("x")])));
    }

    #[test]
    fn display_is_stable() {
        let mut rs = ReadSet::new();
        rs.add_whole(rel("O"));
        rs.add_block(rel("N"), vec![Cst::new("c")]);
        let s = rs.to_string();
        assert!(s.contains("O: *"), "{s}");
        assert!(s.contains("N: blocks {[c]}"), "{s}");
    }
}
