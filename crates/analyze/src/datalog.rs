//! A minimal stratified-Datalog dialect: AST, text syntax, and audits.
//!
//! `cqa-emit` lowers classified problems into programs of this dialect and
//! executes them with its vendored semi-naïve evaluator. The *language*
//! lives here, in the static-analysis crate, for the same reason the plan
//! IR does: emitted artifacts must be auditable — range restriction and
//! stratifiability are exactly the safety preconditions an external engine
//! (or our own executor) needs, and `cqa analyze` reports their violations
//! with the same [`Code`]/[`AuditReport`] machinery as the compiled-plan
//! audits.
//!
//! ## Syntax
//!
//! ```text
//! % line comment
//! n("a", "b").                     % ground fact (constants always quoted
//!                                  % when emitted; bare lowercase accepted)
//! cqa_sub0(X) :- n("c", X), o(X).  % rule; variables start uppercase
//! cqa_esc(X) :- cqa_edge(X, Y), cqa_esc(Y).
//! cqa_certain :- cqa_marked(X), not cqa_esc(X).   % stratified negation
//! cqa_edge(X, Y) :- cqa_vtx(X), n(X, Y), X != Y.  % inequality builtin
//! ```
//!
//! In argument position an identifier starting with an uppercase letter or
//! `_` is a variable; anything else (or a quoted string) is a constant.
//! Zero-arity atoms are written without parentheses. The printer and
//! parser round-trip ([`Program::parse`] ∘ `Display` is the identity up to
//! whitespace), which is what lets the differential oracle re-read emitted
//! artifacts instead of trusting in-memory structures.
//!
//! ## Audits
//!
//! [`audit_program`] checks:
//!
//! * **range restriction** ([`Code::DatalogNotRangeRestricted`]): every
//!   variable in a rule head, negated literal, or `!=` builtin must be
//!   bound by a positive body atom; facts must be ground;
//! * **stratifiability** ([`Code::DatalogUnstratified`]): no predicate may
//!   depend on itself through negation ([`stratify`] computes the strata
//!   the evaluator runs, or the offending cycle).

use crate::diag::{AuditReport, Code};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A term: a variable or a constant.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DTerm {
    /// A variable (printed starting with an uppercase letter).
    Var(String),
    /// A constant (always printed quoted).
    Cst(String),
}

impl DTerm {
    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            DTerm::Var(v) => Some(v),
            DTerm::Cst(_) => None,
        }
    }
}

impl fmt::Display for DTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DTerm::Var(v) => f.write_str(v),
            DTerm::Cst(c) => write!(f, "\"{}\"", c.replace('\\', "\\\\").replace('"', "\\\"")),
        }
    }
}

/// An atom `pred(t₁, …, tₙ)`; zero-arity atoms print without parentheses.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct DAtom {
    /// The predicate name.
    pub pred: String,
    /// The argument terms.
    pub args: Vec<DTerm>,
}

impl DAtom {
    /// Builds an atom.
    pub fn new(pred: impl Into<String>, args: Vec<DTerm>) -> DAtom {
        DAtom {
            pred: pred.into(),
            args,
        }
    }

    /// Whether every argument is a constant.
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(|t| matches!(t, DTerm::Cst(_)))
    }

    fn vars_into(&self, out: &mut BTreeSet<String>) {
        for t in &self.args {
            if let DTerm::Var(v) = t {
                out.insert(v.clone());
            }
        }
    }
}

impl fmt::Display for DAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.pred)?;
        if self.args.is_empty() {
            return Ok(());
        }
        f.write_str("(")?;
        for (i, t) in self.args.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{t}")?;
        }
        f.write_str(")")
    }
}

/// A body literal: positive atom, negated atom, or inequality builtin.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Literal {
    /// `p(…)`.
    Pos(DAtom),
    /// `not p(…)` (stratified negation).
    Neg(DAtom),
    /// `s != t` — both sides must be bound by positive literals.
    Neq(DTerm, DTerm),
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Pos(a) => write!(f, "{a}"),
            Literal::Neg(a) => write!(f, "not {a}"),
            Literal::Neq(s, t) => write!(f, "{s} != {t}"),
        }
    }
}

/// A rule `head :- body.`; an empty body is a fact `head.`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rule {
    /// The head atom.
    pub head: DAtom,
    /// The body literals (empty for facts).
    pub body: Vec<Literal>,
}

impl Rule {
    /// A ground fact.
    pub fn fact(head: DAtom) -> Rule {
        Rule {
            head,
            body: Vec::new(),
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() {
            f.write_str(" :- ")?;
            for (i, l) in self.body.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{l}")?;
            }
        }
        f.write_str(".")
    }
}

/// A Datalog program: rules (facts are bodiless rules) in source order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Program {
    /// The rules, facts included.
    pub rules: Vec<Rule>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Every predicate mentioned anywhere (heads and bodies).
    pub fn predicates(&self) -> BTreeSet<&str> {
        let mut out = BTreeSet::new();
        for r in &self.rules {
            out.insert(r.head.pred.as_str());
            for l in &r.body {
                match l {
                    Literal::Pos(a) | Literal::Neg(a) => {
                        out.insert(a.pred.as_str());
                    }
                    Literal::Neq(_, _) => {}
                }
            }
        }
        out
    }

    /// Parses the printed syntax (see the [module docs](self)).
    pub fn parse(text: &str) -> Result<Program, ParseError> {
        Parser::new(text).program()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

/// A syntax error with a 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line of the offending token.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "datalog parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Quoted(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Turnstile,
    Neq,
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    last_line: usize,
}

impl Parser {
    fn new(text: &str) -> Parser {
        let mut toks = Vec::new();
        let mut line = 1usize;
        let mut chars = text.chars().peekable();
        let mut err: Option<(usize, String)> = None;
        while let Some(&c) = chars.peek() {
            match c {
                '\n' => {
                    line += 1;
                    chars.next();
                }
                c if c.is_whitespace() => {
                    chars.next();
                }
                '%' => {
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            break;
                        }
                    }
                }
                '(' => {
                    toks.push((Tok::LParen, line));
                    chars.next();
                }
                ')' => {
                    toks.push((Tok::RParen, line));
                    chars.next();
                }
                ',' => {
                    toks.push((Tok::Comma, line));
                    chars.next();
                }
                '.' => {
                    toks.push((Tok::Dot, line));
                    chars.next();
                }
                ':' => {
                    chars.next();
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        toks.push((Tok::Turnstile, line));
                    } else {
                        err = err.or(Some((line, "expected `:-`".to_string())));
                        break;
                    }
                }
                '!' => {
                    chars.next();
                    if chars.peek() == Some(&'=') {
                        chars.next();
                        toks.push((Tok::Neq, line));
                    } else {
                        err = err.or(Some((line, "expected `!=`".to_string())));
                        break;
                    }
                }
                '"' => {
                    chars.next();
                    let mut s = String::new();
                    let mut closed = false;
                    while let Some(c) = chars.next() {
                        match c {
                            '"' => {
                                closed = true;
                                break;
                            }
                            '\\' => match chars.next() {
                                Some(e) => s.push(e),
                                None => break,
                            },
                            '\n' => {
                                line += 1;
                                s.push(c);
                            }
                            c => s.push(c),
                        }
                    }
                    if closed {
                        toks.push((Tok::Quoted(s), line));
                    } else {
                        err = err.or(Some((line, "unterminated string".to_string())));
                        break;
                    }
                }
                c if c.is_alphanumeric() || c == '_' => {
                    let mut s = String::new();
                    while let Some(&c) = chars.peek() {
                        if c.is_alphanumeric() || c == '_' {
                            s.push(c);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    toks.push((Tok::Ident(s), line));
                }
                other => {
                    err = err.or(Some((line, format!("unexpected character `{other}`"))));
                    break;
                }
            }
        }
        if let Some((line, message)) = err {
            // Surface the lexer error through an impossible token stream:
            // a bare `:-` at the recorded line makes `program()` fail there
            // with the stashed message.
            return Parser {
                toks: vec![(Tok::Turnstile, line)],
                pos: 0,
                last_line: line,
            }
            .poisoned(message);
        }
        Parser {
            toks,
            pos: 0,
            last_line: line,
        }
    }

    fn poisoned(mut self, message: String) -> Parser {
        // Replace the stream with a sentinel the grammar can never accept,
        // carrying the message via the Ident payload.
        let line = self.toks[0].1;
        self.toks = vec![(Tok::Quoted(message), line)];
        self
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|(_, l)| *l)
            .unwrap_or(self.last_line)
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            line: self.line(),
            message: message.into(),
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: Tok, what: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if *t == want => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => self.err(format!("expected {what}, found {t:?}")),
            None => self.err(format!("expected {what}, found end of input")),
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        // A poisoned stream (lexer error) is a lone Quoted token.
        if let (Some(Tok::Quoted(msg)), 1) = (self.peek(), self.toks.len()) {
            let msg = msg.clone();
            return self.err(msg);
        }
        let mut rules = Vec::new();
        while self.peek().is_some() {
            rules.push(self.rule()?);
        }
        Ok(Program { rules })
    }

    fn rule(&mut self) -> Result<Rule, ParseError> {
        let head = self.atom()?;
        let mut body = Vec::new();
        if self.peek() == Some(&Tok::Turnstile) {
            self.pos += 1;
            loop {
                body.push(self.literal()?);
                if self.peek() == Some(&Tok::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::Dot, "`.`")?;
        Ok(Rule { head, body })
    }

    fn literal(&mut self) -> Result<Literal, ParseError> {
        if let Some(Tok::Ident(id)) = self.peek() {
            if id == "not" {
                self.pos += 1;
                return Ok(Literal::Neg(self.atom()?));
            }
        }
        // An atom, or `term != term`. Both start with an ident/quoted; a
        // quoted token or a following `!=` forces the builtin reading.
        let start = self.pos;
        if let Some(t) = self.try_term() {
            if self.peek() == Some(&Tok::Neq) {
                self.pos += 1;
                let rhs = match self.try_term() {
                    Some(t) => t,
                    None => return self.err("expected a term after `!=`"),
                };
                return Ok(Literal::Neq(t, rhs));
            }
            self.pos = start;
        }
        Ok(Literal::Pos(self.atom()?))
    }

    fn atom(&mut self) -> Result<DAtom, ParseError> {
        let pred = match self.next() {
            Some(Tok::Ident(id)) => id,
            Some(t) => return self.err(format!("expected a predicate name, found {t:?}")),
            None => return self.err("expected a predicate name, found end of input"),
        };
        let mut args = Vec::new();
        if self.peek() == Some(&Tok::LParen) {
            self.pos += 1;
            loop {
                match self.try_term() {
                    Some(t) => args.push(t),
                    None => return self.err("expected a term"),
                }
                match self.next() {
                    Some(Tok::Comma) => continue,
                    Some(Tok::RParen) => break,
                    Some(t) => return self.err(format!("expected `,` or `)`, found {t:?}")),
                    None => return self.err("expected `,` or `)`, found end of input"),
                }
            }
            if args.is_empty() {
                return self.err("empty argument list (write zero-arity atoms bare)");
            }
        }
        Ok(DAtom { pred, args })
    }

    fn try_term(&mut self) -> Option<DTerm> {
        match self.peek() {
            Some(Tok::Quoted(s)) => {
                let t = DTerm::Cst(s.clone());
                self.pos += 1;
                Some(t)
            }
            Some(Tok::Ident(id)) => {
                let first = id.chars().next().unwrap_or('_');
                let t = if first.is_uppercase() || first == '_' {
                    DTerm::Var(id.clone())
                } else {
                    DTerm::Cst(id.clone())
                };
                self.pos += 1;
                Some(t)
            }
            _ => None,
        }
    }
}

/// Why a program has no stratification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnstratifiableError {
    /// Predicates of a strongly connected component containing a negative
    /// dependency edge.
    pub cycle: Vec<String>,
}

impl fmt::Display for UnstratifiableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "recursion through negation among {{{}}}",
            self.cycle.join(", ")
        )
    }
}

impl std::error::Error for UnstratifiableError {}

/// Computes a stratification: predicates grouped into strata, in
/// evaluation order, such that every negative dependency points strictly
/// downward. Fails iff some predicate depends on itself through negation.
pub fn stratify(p: &Program) -> Result<Vec<BTreeSet<String>>, UnstratifiableError> {
    // stratum[pred] starts at 0; positive edges body → head force
    // head ≥ body, negative edges force head ≥ body + 1. Iterate to
    // fixpoint; a value exceeding the predicate count proves a negative
    // cycle (Bellman-Ford style).
    let preds: Vec<String> = p.predicates().into_iter().map(str::to_string).collect();
    let index: BTreeMap<&str, usize> = preds.iter().map(|s| s.as_str()).zip(0..).collect();
    let n = preds.len();
    let mut level = vec![0usize; n];
    let mut changed = true;
    let mut rounds = 0usize;
    while changed {
        changed = false;
        rounds += 1;
        for r in &p.rules {
            let h = index[r.head.pred.as_str()];
            for l in &r.body {
                let (b, strict) = match l {
                    Literal::Pos(a) => (index[a.pred.as_str()], false),
                    Literal::Neg(a) => (index[a.pred.as_str()], true),
                    Literal::Neq(_, _) => continue,
                };
                let need = level[b] + usize::from(strict);
                if level[h] < need {
                    level[h] = need;
                    changed = true;
                }
            }
        }
        if rounds > n + 1 {
            // Some level keeps climbing: a negative cycle. Report every
            // predicate at or above the overflow level that sits in a
            // body-negating rule cycle; the simple, sound choice is the
            // set of maximal-level predicates.
            let top = level.iter().copied().max().unwrap_or(0);
            let cycle = preds
                .iter()
                .zip(&level)
                .filter(|(_, &l)| l == top)
                .map(|(p, _)| p.clone())
                .collect();
            return Err(UnstratifiableError { cycle });
        }
    }
    let max = level.iter().copied().max().unwrap_or(0);
    let mut strata = vec![BTreeSet::new(); max + 1];
    for (p, l) in preds.iter().zip(&level) {
        strata[*l].insert(p.clone());
    }
    Ok(strata)
}

/// Audits a program for the safety preconditions of bottom-up evaluation:
/// range restriction and stratifiability (see the [module docs](self)).
pub fn audit_program(p: &Program) -> AuditReport {
    let mut report = AuditReport::new();
    for (i, r) in p.rules.iter().enumerate() {
        let path = format!("rules[{i}]");
        let mut positive = BTreeSet::new();
        for l in &r.body {
            if let Literal::Pos(a) = l {
                a.vars_into(&mut positive);
            }
        }
        report.tick();
        let mut unbound: BTreeSet<&str> = BTreeSet::new();
        for t in &r.head.args {
            if let Some(v) = t.as_var() {
                if !positive.contains(v) {
                    unbound.insert(v);
                }
            }
        }
        for l in &r.body {
            match l {
                Literal::Pos(_) => {}
                Literal::Neg(a) => {
                    for t in &a.args {
                        if let Some(v) = t.as_var() {
                            if !positive.contains(v) {
                                unbound.insert(v);
                            }
                        }
                    }
                }
                Literal::Neq(s, t) => {
                    for side in [s, t] {
                        if let Some(v) = side.as_var() {
                            if !positive.contains(v) {
                                unbound.insert(v);
                            }
                        }
                    }
                }
            }
        }
        if !unbound.is_empty() {
            let vars: Vec<&str> = unbound.into_iter().collect();
            report.push(
                Code::DatalogNotRangeRestricted,
                &path,
                format!(
                    "variable{} {} not bound by any positive body atom in `{r}`",
                    if vars.len() == 1 { "" } else { "s" },
                    vars.join(", ")
                ),
            );
        }
    }
    report.tick();
    if let Err(e) = stratify(p) {
        report.push(Code::DatalogUnstratified, "program", e.to_string());
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(v: &str) -> DTerm {
        DTerm::Var(v.to_string())
    }

    fn cst(c: &str) -> DTerm {
        DTerm::Cst(c.to_string())
    }

    #[test]
    fn display_parse_round_trip() {
        let text = r#"
            % Proposition 16 skeleton.
            n("a", "a").
            n("a", "b\"x\\").
            cqa_vtx(X) :- n(X, X).
            cqa_edge(X, Y) :- cqa_vtx(X), n(X, Y), cqa_vtx(Y), X != Y.
            cqa_certain :- cqa_marked(X), not cqa_esc(X).
            cqa_goal.
        "#;
        let p = Program::parse(text).unwrap();
        assert_eq!(p.rules.len(), 6);
        assert_eq!(p.rules[1].head.args[1], cst("b\"x\\"));
        assert_eq!(p.rules[4].body.len(), 2);
        assert!(p.rules[5].head.args.is_empty());
        let printed = p.to_string();
        let again = Program::parse(&printed).unwrap();
        assert_eq!(p, again, "print → parse must round-trip");
    }

    #[test]
    fn bare_lowercase_arguments_are_constants() {
        let p = Program::parse("edge(a, B).").unwrap();
        assert_eq!(p.rules[0].head.args[0], cst("a"));
        assert_eq!(p.rules[0].head.args[1], var("B"));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = Program::parse("ok(X) :- p(X).\nbad(X) :- ,").unwrap_err();
        assert_eq!(err.line, 2);
        let err = Program::parse("p(X) :- q(X)").unwrap_err();
        assert!(err.message.contains("`.`"), "{err}");
        let err = Program::parse("p(\"unterminated").unwrap_err();
        assert!(err.message.contains("unterminated"), "{err}");
    }

    #[test]
    fn stratification_orders_negation_downward() {
        let p = Program::parse(
            "vtx(X) :- n(X, X).\n\
             tobot(X) :- vtx(X), n(X, Y), not vtx(Y).\n\
             certain :- marked(X), not tobot(X).\n\
             marked(X) :- vtx(X).",
        )
        .unwrap();
        let strata = stratify(&p).unwrap();
        let level = |pred: &str| {
            strata
                .iter()
                .position(|s| s.contains(pred))
                .unwrap_or(usize::MAX)
        };
        assert!(level("vtx") < level("tobot"));
        assert!(level("tobot") < level("certain"));
        assert!(audit_program(&p).is_clean());
    }

    #[test]
    fn recursion_through_negation_is_rejected() {
        let p = Program::parse("win(X) :- move(X, Y), not win(Y).\nmove(a, b).").unwrap();
        let err = stratify(&p).unwrap_err();
        assert!(err.cycle.contains(&"win".to_string()));
        let report = audit_program(&p);
        assert!(report.has(Code::DatalogUnstratified));
    }

    #[test]
    fn positive_recursion_is_fine() {
        let p = Program::parse(
            "reach(X, Y) :- edge(X, Y).\nreach(X, Z) :- edge(X, Y), reach(Y, Z).",
        )
        .unwrap();
        assert!(stratify(&p).is_ok());
        assert!(audit_program(&p).is_clean());
    }

    #[test]
    fn range_restriction_catches_unbound_heads_negations_and_builtins() {
        for (text, what) in [
            ("p(X) :- q(Y).", "head"),
            ("p(X) :- q(X), not r(Z).", "negated"),
            ("p(X) :- q(X), X != W.", "builtin"),
            ("p(X).", "non-ground fact"),
        ] {
            let p = Program::parse(text).unwrap();
            let report = audit_program(&p);
            assert!(
                report.has(Code::DatalogNotRangeRestricted),
                "{what}: {text} must be flagged"
            );
        }
        let good = Program::parse("p(X, c) :- q(X), not r(X), X != d.").unwrap();
        assert!(audit_program(&good).is_clean());
    }
}
