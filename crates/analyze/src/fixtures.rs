//! Deliberately malformed IR fixtures.
//!
//! Compilation in this workspace is correct by construction, so an invalid
//! plan can never be produced from user input — which would leave the
//! auditor's rejection paths untested and untestable from the CLI. These
//! named fixtures construct each violation class directly in the neutral
//! IR; `cqa analyze --fixture <name>` audits one and exits nonzero, and the
//! test suite asserts every fixture is rejected with its expected
//! diagnostic while the [`good_formula`]/[`good_plan`] baselines stay
//! clean.

use crate::checks::{audit_formula, audit_plan};
use crate::diag::{AuditReport, Code};
use crate::ir::{FNode, FormulaIr, L45Ir, OpIr, PatIr, PlanIr, QueryIr, TailIr};
use cqa_model::binding::{CompiledAtom, SlotTerm};
use cqa_model::{Cst, ForeignKey, RelName, Schema};
use std::sync::Arc;

fn rel(n: &str) -> RelName {
    RelName::new(n)
}

fn atom(r: &str, terms: &[SlotTerm]) -> CompiledAtom {
    CompiledAtom {
        rel: rel(r),
        terms: terms.to_vec(),
    }
}

fn slot(s: u32) -> SlotTerm {
    SlotTerm::Slot(s)
}

fn schema() -> Arc<Schema> {
    let mut s = Schema::new();
    s.add("N", 2, 1).expect("fixture schema");
    s.add("O", 1, 1).expect("fixture schema");
    s.add("P", 1, 1).expect("fixture schema");
    Arc::new(s)
}

/// A well-formed formula the auditor accepts: `∀(s0,s1) ∈ N. O(s1)`.
pub fn good_formula() -> FormulaIr {
    FormulaIr {
        root: FNode::ForallGuarded(
            atom("N", &[slot(0), slot(1)]),
            Box::new(FNode::Atom(atom("O", &[slot(1)]))),
        ),
        n_slots: 2,
        params: Vec::new(),
        uses_domain: false,
    }
}

/// A well-formed plan the auditor accepts: a ground-key Lemma 45 step over
/// `N` with residual `O(x) ∧ P(x)`.
pub fn good_plan() -> PlanIr {
    good_plan_with(|_| {})
}

fn good_plan_with(tweak: impl FnOnce(&mut L45Ir)) -> PlanIr {
    let schema = schema();
    let mut l45 = L45Ir {
        rel: rel("N"),
        key: vec![PatIr::Cst(Cst::new("c"))],
        pattern: vec![PatIr::Cst(Cst::new("c")), PatIr::X(0)],
        n_xs: 1,
        outgoing: vec![ForeignKey::new(rel("N"), 2, rel("O"))],
        sub: PlanIr {
            schema: schema.clone(),
            rels: [rel("O"), rel("P")].into(),
            ops: Vec::new(),
            tail: TailIr::Kw {
                formula: FormulaIr {
                    root: FNode::And(vec![
                        FNode::Atom(atom("O", &[slot(0)])),
                        FNode::Atom(atom("P", &[slot(0)])),
                    ]),
                    n_slots: 1,
                    params: vec![0],
                    uses_domain: false,
                },
                free_map: vec![0],
            },
            n_params: 1,
        },
    };
    tweak(&mut l45);
    PlanIr {
        schema,
        rels: [rel("N"), rel("O"), rel("P")].into(),
        ops: Vec::new(),
        tail: TailIr::Lemma45(Box::new(l45)),
        n_params: 0,
    }
}

/// The IR under a fixture: a formula, a full plan, or an emitted Datalog
/// program (source text in the [`crate::datalog`] dialect).
#[derive(Clone, Debug)]
pub enum FixtureIr {
    /// A compiled-formula fixture.
    Formula(FormulaIr),
    /// A compiled-plan fixture.
    Plan(PlanIr),
    /// A malformed emitted-Datalog fixture.
    Datalog(&'static str),
}

/// One named malformed-IR fixture.
#[derive(Clone, Debug)]
pub struct Fixture {
    /// The CLI-addressable name.
    pub name: &'static str,
    /// The diagnostic code the auditor must produce.
    pub expect: Code,
    /// What is broken, for the CLI listing.
    pub describe: &'static str,
    /// The malformed IR itself.
    pub ir: FixtureIr,
}

impl Fixture {
    /// Audits the fixture's IR.
    pub fn audit(&self) -> AuditReport {
        match &self.ir {
            FixtureIr::Formula(f) => audit_formula(f),
            FixtureIr::Plan(p) => audit_plan(p),
            FixtureIr::Datalog(text) => crate::datalog::audit_program(
                &crate::datalog::Program::parse(text).expect("datalog fixtures parse"),
            ),
        }
    }
}

/// All fixtures, one per violation class.
pub fn all() -> Vec<Fixture> {
    vec![
        Fixture {
            name: "use-before-bind",
            expect: Code::UseBeforeBind,
            describe: "a conjunct reads slot 0 before the sibling guard binds it",
            ir: FixtureIr::Formula(FormulaIr {
                root: FNode::And(vec![
                    FNode::Atom(atom("O", &[slot(0)])),
                    FNode::ExistsGuarded(atom("N", &[slot(0), slot(1)]), Box::new(FNode::True)),
                ]),
                n_slots: 2,
                params: Vec::new(),
                uses_domain: false,
            }),
        },
        Fixture {
            name: "slot-gap",
            expect: Code::SlotGap,
            describe: "n_slots = 3 but slot 2 has no binder anywhere",
            ir: FixtureIr::Formula(FormulaIr {
                root: FNode::ExistsGuarded(
                    atom("N", &[slot(0), slot(1)]),
                    Box::new(FNode::True),
                ),
                n_slots: 3,
                params: Vec::new(),
                uses_domain: false,
            }),
        },
        Fixture {
            name: "alpha-clash",
            expect: Code::AlphaClash,
            describe: "two sibling guards bind the same slots — α-renaming skipped",
            ir: FixtureIr::Formula(FormulaIr {
                root: FNode::And(vec![
                    FNode::ExistsGuarded(atom("N", &[slot(0), slot(1)]), Box::new(FNode::True)),
                    FNode::ExistsGuarded(atom("N", &[slot(0), slot(1)]), Box::new(FNode::True)),
                ]),
                n_slots: 2,
                params: Vec::new(),
                uses_domain: false,
            }),
        },
        Fixture {
            name: "not-range-restricted",
            expect: Code::NotRangeRestricted,
            describe: "an active-domain ∃ in a tree claiming guard-directed evaluation",
            ir: FixtureIr::Formula(FormulaIr {
                root: FNode::Exists(vec![0], Box::new(FNode::Atom(atom("O", &[slot(0)])))),
                n_slots: 1,
                params: Vec::new(),
                uses_domain: false,
            }),
        },
        Fixture {
            name: "param-composition-broken",
            expect: Code::ParamCompositionBroken,
            describe: "the Lemma 45 residual expects 2 parameters; parent (0) + ⃗x (1) = 1",
            ir: FixtureIr::Plan(good_plan_with(|l| {
                l.sub.n_params = 2;
            })),
        },
        Fixture {
            name: "non-ground-key",
            expect: Code::NonGroundKey,
            describe: "the Lemma 45 probe key contains a block-bound ⃗x placeholder",
            ir: FixtureIr::Plan(good_plan_with(|l| {
                l.key = vec![PatIr::X(0)];
                l.pattern = vec![PatIr::X(0), PatIr::X(0)];
            })),
        },
        Fixture {
            name: "key-mismatch",
            expect: Code::KeyMismatch,
            describe: "the probe key is not the key-length prefix of the atom pattern",
            ir: FixtureIr::Plan(good_plan_with(|l| {
                l.key = vec![PatIr::Cst(Cst::new("d"))];
            })),
        },
        Fixture {
            name: "param-out-of-range",
            expect: Code::ParamOutOfRange,
            describe: "the pattern reads parameter 3 of a parameterless plan",
            ir: FixtureIr::Plan(good_plan_with(|l| {
                l.key = vec![PatIr::Param(3)];
                l.pattern = vec![PatIr::Param(3), PatIr::X(0)];
            })),
        },
        Fixture {
            name: "arity-mismatch",
            expect: Code::ArityMismatch,
            describe: "a 3-term pattern over an arity-2 relation",
            ir: FixtureIr::Plan(good_plan_with(|l| {
                l.pattern = vec![PatIr::Cst(Cst::new("c")), PatIr::X(0), PatIr::X(0)];
            })),
        },
        Fixture {
            name: "binding-not-covered",
            expect: Code::BindingNotCovered,
            describe: "the step declares two ⃗x slots but the pattern binds only x0",
            ir: FixtureIr::Plan(good_plan_with(|l| {
                l.n_xs = 2;
                l.sub.n_params = 2;
            })),
        },
        Fixture {
            name: "unknown-relation",
            expect: Code::UnknownRelation,
            describe: "the block relation is not declared by the schema",
            ir: FixtureIr::Plan({
                let mut p = good_plan_with(|l| {
                    l.rel = rel("Zz");
                    l.outgoing.clear();
                });
                p.rels.insert(rel("Zz"));
                p
            }),
        },
        Fixture {
            name: "anchor-mismatch",
            expect: Code::AnchorMismatch,
            describe: "a relevance query anchored on an atom over the wrong relation",
            ir: FixtureIr::Plan(PlanIr {
                schema: schema(),
                rels: [rel("N"), rel("O"), rel("P")].into(),
                ops: vec![OpIr::FilterRelevant {
                    drop: rel("P"),
                    filter: rel("N"),
                    relevance: QueryIr {
                        atoms: vec![atom("O", &[slot(0)])],
                        n_slots: 1,
                        n_params: 0,
                    },
                    anchor: 0,
                }],
                tail: TailIr::Kw {
                    formula: FormulaIr {
                        root: FNode::True,
                        n_slots: 0,
                        params: Vec::new(),
                        uses_domain: false,
                    },
                    free_map: Vec::new(),
                },
                n_params: 0,
            }),
        },
        Fixture {
            name: "datalog-not-range-restricted",
            expect: Code::DatalogNotRangeRestricted,
            describe: "an emitted rule whose head variable no positive body atom binds",
            ir: FixtureIr::Datalog(
                "% The guard was dropped: Y is unconstrained.\n\
                 cqa_dom(X) :- n(X, _Y2).\n\
                 cqa_sub0(X, Y) :- n(X, X), not o(Y).\n\
                 cqa_certain :- cqa_sub0(X, Y), cqa_dom(X), cqa_dom(Y).\n",
            ),
        },
        Fixture {
            name: "datalog-unstratified",
            expect: Code::DatalogUnstratified,
            describe: "an emitted program recursing through negation (win/move game)",
            ir: FixtureIr::Datalog(
                "% The naive dual-Horn lowering without the block-ordering\n\
                 % EDB: del and blocked recurse through negation.\n\
                 move(a, b).\n\
                 move(b, a).\n\
                 win(X) :- move(X, Y), not win(Y).\n\
                 cqa_certain :- win(a).\n",
            ),
        },
    ]
}

/// Looks a fixture up by its CLI name.
pub fn by_name(name: &str) -> Option<Fixture> {
    all().into_iter().find(|f| f.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baselines_are_clean() {
        let f = audit_formula(&good_formula());
        assert!(f.is_clean(), "{f}");
        let p = audit_plan(&good_plan());
        assert!(p.is_clean(), "{p}");
    }

    #[test]
    fn every_fixture_is_rejected_with_its_code() {
        for fx in all() {
            let report = fx.audit();
            assert!(
                !report.is_clean(),
                "fixture {} was not rejected",
                fx.name
            );
            assert!(
                report.has(fx.expect),
                "fixture {} expected {} but got: {report}",
                fx.name,
                fx.expect
            );
        }
    }

    #[test]
    fn fixture_names_are_unique() {
        let mut names: Vec<_> = all().iter().map(|f| f.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all().len());
    }

    #[test]
    fn good_plan_read_set_is_block_local_on_n() {
        let rs = crate::readset::infer(&good_plan());
        assert!(rs.may_read(rel("N"), &[Cst::new("c")]));
        assert!(!rs.may_read(rel("N"), &[Cst::new("d")]));
        assert!(rs.is_whole(rel("O")));
        assert!(rs.is_whole(rel("P")));
    }
}
