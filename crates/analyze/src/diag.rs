//! Diagnostics: violation codes, locations, and the audit report.

use std::fmt;

/// The class of an IR invariant violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[non_exhaustive]
pub enum Code {
    /// A slot index is `≥ n_slots` — the slot numbering is not dense
    /// upward.
    SlotOutOfRange,
    /// A slot in `0..n_slots` is never bound by a parameter, quantifier or
    /// guard — the numbering has a hole (contiguity violated downward).
    SlotGap,
    /// A slot is read (in an atom or equality) at a point where no
    /// enclosing binder has bound it.
    UseBeforeBind,
    /// A slot is bound at two distinct binder sites (or a quantifier
    /// rebinds a parameter slot) — α-renaming freshness violated.
    AlphaClash,
    /// A domain quantifier appears in a tree whose `uses_domain` flag is
    /// `false`: evaluation would skip building the active domain and
    /// quantify over nothing — the formula is not range-restricted under
    /// its claimed guard-directed strategy.
    NotRangeRestricted,
    /// A parameter (or Lemma 45 `⃗x`) index is out of range for its scope.
    ParamOutOfRange,
    /// Nested parameter scopes do not compose: a residual plan does not
    /// expect exactly its parent's parameters plus the step's `⃗x` slots,
    /// or a formula's free slots do not match the plan's argument map.
    ParamCompositionBroken,
    /// A Lemma 45 `⃗x` slot never occurs in the step's atom pattern, so a
    /// block row can never bind it.
    BindingNotCovered,
    /// A Lemma 45 key pattern contains an `⃗x` placeholder — the per-block
    /// probe key would not be ground at evaluation time.
    NonGroundKey,
    /// A Lemma 45 key pattern is not the key-length prefix of the step's
    /// atom pattern.
    KeyMismatch,
    /// A relevance query's anchor atom does not match the filtered
    /// relation.
    AnchorMismatch,
    /// A relation is not declared by the schema in scope.
    UnknownRelation,
    /// A term list's length disagrees with the relation's declared arity
    /// (or a foreign-key position/target shape is invalid).
    ArityMismatch,
    /// An operation or tail reads a relation that the plan's restriction
    /// has already made invisible.
    RelationNotVisible,
    /// An emitted Datalog rule is not range-restricted: a head, negated or
    /// builtin variable is never bound by a positive body atom, so
    /// bottom-up evaluation (ours or an external engine's) would have to
    /// invent values.
    DatalogNotRangeRestricted,
    /// An emitted Datalog program has no stratification: some predicate
    /// depends on itself through negation, so the stratified fixpoint
    /// semantics the emitter promises is undefined.
    DatalogUnstratified,
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Code::SlotOutOfRange => "slot-out-of-range",
            Code::SlotGap => "slot-gap",
            Code::UseBeforeBind => "use-before-bind",
            Code::AlphaClash => "alpha-clash",
            Code::NotRangeRestricted => "not-range-restricted",
            Code::ParamOutOfRange => "param-out-of-range",
            Code::ParamCompositionBroken => "param-composition-broken",
            Code::BindingNotCovered => "binding-not-covered",
            Code::NonGroundKey => "non-ground-key",
            Code::KeyMismatch => "key-mismatch",
            Code::AnchorMismatch => "anchor-mismatch",
            Code::UnknownRelation => "unknown-relation",
            Code::ArityMismatch => "arity-mismatch",
            Code::RelationNotVisible => "relation-not-visible",
            Code::DatalogNotRangeRestricted => "datalog-not-range-restricted",
            Code::DatalogUnstratified => "datalog-unstratified",
        };
        f.write_str(s)
    }
}

/// One invariant violation, located by an IR path such as
/// `plan.tail.sub.ops[0]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// The violation class.
    pub code: Code,
    /// Where in the IR the violation sits.
    pub path: String,
    /// A human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] at {}: {}", self.code, self.path, self.message)
    }
}

/// The outcome of auditing one IR artifact: how many invariant checks ran
/// and every violation found.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    /// Number of individual invariant checks evaluated.
    pub checks: usize,
    /// The violations, in IR walk order.
    pub diagnostics: Vec<Diagnostic>,
}

impl AuditReport {
    /// An empty report.
    pub fn new() -> AuditReport {
        AuditReport::default()
    }

    /// Whether no violation was found.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether some violation carries `code`.
    pub fn has(&self, code: Code) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Records that one invariant check ran.
    pub(crate) fn tick(&mut self) {
        self.checks += 1;
    }

    /// Records a violation.
    pub(crate) fn push(&mut self, code: Code, path: &str, message: impl Into<String>) {
        self.diagnostics.push(Diagnostic {
            code,
            path: path.to_string(),
            message: message.into(),
        });
    }

}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            write!(f, "audit clean: {} invariant checks, 0 violations", self.checks)
        } else {
            writeln!(
                f,
                "audit FAILED: {} invariant checks, {} violation(s):",
                self.checks,
                self.diagnostics.len()
            )?;
            for d in &self.diagnostics {
                writeln!(f, "  {d}")?;
            }
            Ok(())
        }
    }
}
