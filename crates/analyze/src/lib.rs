//! Static analysis over the compiled CQA IR.
//!
//! The Appendix E reduction pipeline compiles into three artifacts —
//! slot-numbered formulas (`cqa-fo`), slot-backtracking conjunctive queries
//! ([`cqa_model::eval::CompiledQuery`]) and view-backed reduction plans
//! (`cqa-core`). Their invariants (dense slot numbering, no use before
//! bind, α-renaming freshness, guard coverage, parameter composition
//! across nested Lemma 45 steps, range restriction) are enforced only *by
//! construction*; this crate re-checks them on a neutral [`ir`]
//! representation so compilation bugs surface as diagnostics instead of
//! wrong certainty verdicts, and so plans can eventually be shipped to
//! external engines (SQL/Datalog emission needs exactly the safety /
//! range-restriction precondition audited here).
//!
//! Three analyses are provided:
//!
//! * **invariant auditing** ([`checks`]) — walks [`ir::FormulaIr`],
//!   [`ir::QueryIr`] and [`ir::PlanIr`] and produces an
//!   [`diag::AuditReport`]; the producing crates run it behind
//!   `debug_assert!` at every compile;
//! * **emitted-artifact auditing** ([`datalog`]) — the Datalog dialect
//!   `cqa-emit` lowers plans into lives here together with its safety
//!   audits (range restriction, stratifiability), so `cqa analyze` can
//!   reject a broken artifact with the same diagnostic machinery before
//!   anything tries to run it;
//! * **read-set inference** ([`readset`]) — computes the exact set of
//!   (relation, block-key) pairs a compiled plan can touch, which the
//!   incremental solver's *Unaffected* rung consumes to skip re-answering
//!   for deltas that only touch unread blocks. Compiled plans are pure
//!   readers — their write-set is empty by construction (mutation happens
//!   only through `Delta` application) — so only read-sets are inferred.
//!
//! The dynamic counterpart is [`cqa_model::ReadLog`]: a recording hook on
//! `InstanceView` that captures the probes of a real execution, letting a
//! differential test assert every recorded probe is covered by the
//! statically inferred [`readset::ReadSet`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checks;
pub mod datalog;
pub mod diag;
pub mod fixtures;
pub mod ir;
pub mod readset;

pub use checks::{audit_formula, audit_plan, audit_query};
pub use datalog::audit_program;
pub use diag::{AuditReport, Code, Diagnostic};
pub use ir::{FNode, FormulaIr, L45Ir, OpIr, PatIr, PlanIr, QueryIr, TailIr};
pub use readset::{AccessPattern, ReadSet};
