//! The invariant verifier: walks the neutral IR and reports violations.
//!
//! | Invariant | Code(s) | Why it matters |
//! |---|---|---|
//! | dense slot numbering | `SlotOutOfRange`, `SlotGap` | bindings are flat arrays sized `n_slots`; a hole wastes a slot, an overflow reads out of bounds |
//! | no use before bind | `UseBeforeBind` | an atom reading an unbound slot would unify against garbage |
//! | α-freshness | `AlphaClash` | compiled shadowing relies on every binder owning a fresh slot; reuse corrupts outer scopes |
//! | guard coverage / range restriction | `NotRangeRestricted` | a domain quantifier in a tree claiming guard-directed evaluation quantifies over an empty domain — silently wrong verdicts |
//! | parameter composition | `ParamOutOfRange`, `ParamCompositionBroken`, `BindingNotCovered` | nested Lemma 45 residuals receive `parent params ++ ⃗x`; a mismatch shifts every argument |
//! | ground probe keys | `NonGroundKey`, `KeyMismatch` | the per-block probe must resolve to a concrete block key |
//! | schema conformance | `UnknownRelation`, `ArityMismatch`, `AnchorMismatch`, `RelationNotVisible` | precondition for shipping plans to external engines |

use crate::diag::{AuditReport, Code};
use crate::ir::{FNode, FormulaIr, OpIr, PatIr, PlanIr, QueryIr, TailIr};
use cqa_model::binding::{CompiledAtom, Slot, SlotTerm};
use cqa_model::Schema;

/// Audits a compiled formula: slot hygiene, binder freshness and range
/// restriction. Schema conformance of the atoms is checked by
/// [`audit_plan`] when the formula sits in a plan tail (the formula alone
/// carries no schema).
pub fn audit_formula(f: &FormulaIr) -> AuditReport {
    let mut report = AuditReport::new();
    audit_formula_into(f, "formula", &mut report);
    report
}

pub(crate) fn audit_formula_into(f: &FormulaIr, path: &str, report: &mut AuditReport) {
    let mut cx = FormulaCx {
        n_slots: f.n_slots,
        bound: vec![false; f.n_slots],
        ever: vec![false; f.n_slots],
        report,
    };
    for (i, &p) in f.params.iter().enumerate() {
        let path = format!("{path}.params[{i}]");
        cx.report.tick();
        if p as usize >= f.n_slots {
            cx.report.push(
                Code::SlotOutOfRange,
                &path,
                format!("parameter slot {p} out of range (n_slots = {})", f.n_slots),
            );
            continue;
        }
        if cx.ever[p as usize] {
            cx.report.push(
                Code::AlphaClash,
                &path,
                format!("slot {p} declared as a parameter twice"),
            );
            continue;
        }
        cx.bound[p as usize] = true;
        cx.ever[p as usize] = true;
    }
    cx.walk(&f.root, path);
    // Contiguity: every numbered slot must be bindable somewhere.
    for s in 0..f.n_slots {
        cx.report.tick();
        if !cx.ever[s] {
            cx.report.push(
                Code::SlotGap,
                path,
                format!("slot {s} is never bound by a parameter, quantifier or guard"),
            );
        }
    }
    report.tick();
    if f.root.needs_domain() && !f.uses_domain {
        report.push(
            Code::NotRangeRestricted,
            path,
            "tree contains an active-domain quantifier but claims guard-directed \
             evaluation (uses_domain = false): the quantifier would range over nothing",
        );
    }
}

struct FormulaCx<'r> {
    n_slots: usize,
    /// Slots bound in the current scope (params stay bound throughout).
    bound: Vec<bool>,
    /// Slots that have had a binder site anywhere (α-freshness).
    ever: Vec<bool>,
    report: &'r mut AuditReport,
}

impl FormulaCx<'_> {
    fn use_slot(&mut self, s: Slot, path: &str) {
        self.report.tick();
        if s as usize >= self.n_slots {
            self.report.push(
                Code::SlotOutOfRange,
                path,
                format!("slot {s} out of range (n_slots = {})", self.n_slots),
            );
        } else if !self.bound[s as usize] {
            self.report.push(
                Code::UseBeforeBind,
                path,
                format!("slot {s} is read but no enclosing binder binds it"),
            );
        }
    }

    fn use_term(&mut self, t: SlotTerm, path: &str) {
        if let SlotTerm::Slot(s) = t {
            self.use_slot(s, path);
        }
    }

    fn use_atom(&mut self, a: &CompiledAtom, path: &str) {
        for &t in &a.terms {
            self.use_term(t, path);
        }
    }

    /// Binds `s` at a fresh binder site; returns whether it was newly
    /// bound (and must be unbound when the scope closes).
    fn bind(&mut self, s: Slot, path: &str) -> bool {
        self.report.tick();
        if s as usize >= self.n_slots {
            self.report.push(
                Code::SlotOutOfRange,
                path,
                format!("binder slot {s} out of range (n_slots = {})", self.n_slots),
            );
            return false;
        }
        if self.ever[s as usize] {
            self.report.push(
                Code::AlphaClash,
                path,
                format!("slot {s} already has a binder site — compiled shadowing must rename"),
            );
            return false;
        }
        self.bound[s as usize] = true;
        self.ever[s as usize] = true;
        true
    }

    fn unbind(&mut self, newly: &[Slot]) {
        for &s in newly {
            self.bound[s as usize] = false;
        }
    }

    /// Binds the guard's unbound slots; already-bound slots act as filters
    /// and stay untouched.
    fn bind_guard(&mut self, guard: &CompiledAtom, path: &str) -> Vec<Slot> {
        let mut newly = Vec::new();
        for &t in &guard.terms {
            if let SlotTerm::Slot(s) = t {
                self.report.tick();
                if s as usize >= self.n_slots {
                    self.report.push(
                        Code::SlotOutOfRange,
                        path,
                        format!("guard slot {s} out of range (n_slots = {})", self.n_slots),
                    );
                } else if !self.bound[s as usize] {
                    if self.ever[s as usize] {
                        self.report.push(
                            Code::AlphaClash,
                            path,
                            format!("guard rebinds slot {s} bound at another site"),
                        );
                    } else {
                        self.bound[s as usize] = true;
                        self.ever[s as usize] = true;
                        newly.push(s);
                    }
                }
            }
        }
        newly
    }

    fn walk(&mut self, node: &FNode, path: &str) {
        match node {
            FNode::True | FNode::False => {}
            FNode::Atom(a) => self.use_atom(a, path),
            FNode::Eq(l, r) => {
                self.use_term(*l, path);
                self.use_term(*r, path);
            }
            FNode::Not(g) => self.walk(g, path),
            FNode::And(gs) | FNode::Or(gs) => {
                for (i, g) in gs.iter().enumerate() {
                    self.walk(g, &format!("{path}[{i}]"));
                }
            }
            FNode::Implies(l, r) => {
                self.walk(l, &format!("{path}.lhs"));
                self.walk(r, &format!("{path}.rhs"));
            }
            FNode::Exists(slots, body) | FNode::Forall(slots, body) => {
                let mut newly = Vec::new();
                for &s in slots {
                    if self.bind(s, path) {
                        newly.push(s);
                    }
                }
                self.walk(body, &format!("{path}.body"));
                self.unbind(&newly);
            }
            FNode::ExistsGuarded(guard, body) | FNode::ForallGuarded(guard, body) => {
                // Filter positions of the guard are reads.
                for &t in &guard.terms {
                    if let SlotTerm::Slot(s) = t {
                        if (s as usize) < self.n_slots && self.bound[s as usize] {
                            self.report.tick(); // counted as a checked read
                        }
                    }
                }
                let newly = self.bind_guard(guard, path);
                self.walk(body, &format!("{path}.body"));
                self.unbind(&newly);
            }
            FNode::SemijoinExists(atoms) => {
                // Each atom acts as a guard for its still-unbound slots;
                // the whole conjunction's bindings close with the node.
                let mut newly = Vec::new();
                for (i, atom) in atoms.iter().enumerate() {
                    newly.extend(self.bind_guard(atom, &format!("{path}.atoms[{i}]")));
                }
                self.unbind(&newly);
            }
        }
    }
}

/// Audits a compiled conjunctive query against `schema`: atom conformance
/// plus slot-numbering density.
pub fn audit_query(q: &QueryIr, schema: &Schema) -> AuditReport {
    let mut report = AuditReport::new();
    audit_query_into(q, schema, "query", &mut report);
    report
}

pub(crate) fn audit_query_into(q: &QueryIr, schema: &Schema, path: &str, report: &mut AuditReport) {
    report.tick();
    if q.n_params > q.n_slots {
        report.push(
            Code::ParamOutOfRange,
            path,
            format!("{} parameter slots but only {} slots", q.n_params, q.n_slots),
        );
    }
    let mut seen = vec![false; q.n_slots];
    for s in seen.iter_mut().take(q.n_params) {
        *s = true;
    }
    for (i, a) in q.atoms.iter().enumerate() {
        let apath = format!("{path}.atoms[{i}]");
        report.tick();
        match schema.signature(a.rel) {
            None => {
                report.push(
                    Code::UnknownRelation,
                    &apath,
                    format!("relation {} is not in the schema", a.rel),
                );
            }
            Some(sig) => {
                report.tick();
                if a.terms.len() != sig.arity {
                    report.push(
                        Code::ArityMismatch,
                        &apath,
                        format!("{} terms for arity-{} relation {}", a.terms.len(), sig.arity, a.rel),
                    );
                }
            }
        }
        for &t in &a.terms {
            if let SlotTerm::Slot(s) = t {
                report.tick();
                if s as usize >= q.n_slots {
                    report.push(
                        Code::SlotOutOfRange,
                        &apath,
                        format!("slot {s} out of range (n_slots = {})", q.n_slots),
                    );
                } else {
                    seen[s as usize] = true;
                }
            }
        }
    }
    for (s, seen) in seen.iter().enumerate() {
        report.tick();
        if !seen {
            report.push(
                Code::SlotGap,
                path,
                format!("slot {s} occurs in no atom and is not a parameter"),
            );
        }
    }
}

/// Audits a compiled plan: op/tail schema conformance, visibility,
/// parameter composition across nested Lemma 45 steps, and (recursively)
/// every embedded formula and relevance query.
pub fn audit_plan(p: &PlanIr) -> AuditReport {
    let mut report = AuditReport::new();
    audit_plan_into(p, "plan", &mut report);
    report
}

fn audit_plan_into(p: &PlanIr, path: &str, report: &mut AuditReport) {
    let schema = &*p.schema;
    let visible = |rel, what: &str, path: &str, report: &mut AuditReport| {
        report.tick();
        if !p.rels.contains(&rel) {
            report.push(
                Code::RelationNotVisible,
                path,
                format!("{what} relation {rel} is outside the plan's restriction set"),
            );
        }
        report.tick();
        if schema.signature(rel).is_none() {
            report.push(
                Code::UnknownRelation,
                path,
                format!("{what} relation {rel} is not in the schema"),
            );
        }
    };
    for (i, op) in p.ops.iter().enumerate() {
        let opath = format!("{path}.ops[{i}]");
        match op {
            OpIr::FilterRelevant {
                drop,
                filter,
                relevance,
                anchor,
            } => {
                visible(*filter, "filtered", &opath, report);
                visible(*drop, "dropped", &opath, report);
                report.tick();
                match relevance.atoms.get(*anchor) {
                    None => report.push(
                        Code::AnchorMismatch,
                        &opath,
                        format!("anchor index {anchor} out of range ({} atoms)", relevance.atoms.len()),
                    ),
                    Some(a) if a.rel != *filter => report.push(
                        Code::AnchorMismatch,
                        &opath,
                        format!("anchor atom is over {} but the op filters {filter}", a.rel),
                    ),
                    Some(_) => {}
                }
                report.tick();
                if relevance.n_params != p.n_params {
                    report.push(
                        Code::ParamCompositionBroken,
                        &opath,
                        format!(
                            "relevance query expects {} parameters, plan has {}",
                            relevance.n_params, p.n_params
                        ),
                    );
                }
                audit_query_into(relevance, schema, &format!("{opath}.relevance"), report);
            }
            OpIr::FilterNonDangling {
                drop,
                filter,
                outgoing,
            } => {
                visible(*filter, "filtered", &opath, report);
                visible(*drop, "dropped", &opath, report);
                for (j, fk) in outgoing.iter().enumerate() {
                    audit_fk(fk, Some(*filter), schema, &format!("{opath}.outgoing[{j}]"), report);
                }
            }
        }
    }
    match &p.tail {
        TailIr::Kw { formula, free_map } => {
            let fpath = format!("{path}.tail.formula");
            audit_formula_into(formula, &fpath, report);
            report.tick();
            if free_map.len() != formula.params.len() {
                report.push(
                    Code::ParamCompositionBroken,
                    &fpath,
                    format!(
                        "free_map feeds {} slots but the formula has {} free slots",
                        free_map.len(),
                        formula.params.len()
                    ),
                );
            }
            for (i, &arg) in free_map.iter().enumerate() {
                report.tick();
                if arg >= p.n_params {
                    report.push(
                        Code::ParamOutOfRange,
                        &fpath,
                        format!("free_map[{i}] = {arg} but the plan has {} parameters", p.n_params),
                    );
                }
            }
            for a in formula.root.atoms() {
                visible(a.rel, "formula", &fpath, report);
                report.tick();
                if let Some(sig) = schema.signature(a.rel) {
                    if a.terms.len() != sig.arity {
                        report.push(
                            Code::ArityMismatch,
                            &fpath,
                            format!("{} terms for arity-{} relation {}", a.terms.len(), sig.arity, a.rel),
                        );
                    }
                }
            }
        }
        TailIr::Lemma45(l) => {
            let lpath = format!("{path}.tail");
            visible(l.rel, "block", &lpath, report);
            let sig = schema.signature(l.rel);
            if let Some(sig) = sig {
                report.tick();
                if l.pattern.len() != sig.arity {
                    report.push(
                        Code::ArityMismatch,
                        &lpath,
                        format!("pattern has {} terms for arity-{} relation {}", l.pattern.len(), sig.arity, l.rel),
                    );
                }
                report.tick();
                if l.key.len() != sig.key_len {
                    report.push(
                        Code::KeyMismatch,
                        &lpath,
                        format!("key has {} terms but {} has key length {}", l.key.len(), l.rel, sig.key_len),
                    );
                } else if l.key.as_slice() != &l.pattern[..l.key.len().min(l.pattern.len())] {
                    report.push(
                        Code::KeyMismatch,
                        &lpath,
                        "key is not the key-length prefix of the pattern",
                    );
                }
            }
            for (i, t) in l.key.iter().enumerate() {
                report.tick();
                if let PatIr::X(k) = t {
                    report.push(
                        Code::NonGroundKey,
                        &lpath,
                        format!("key position {i} is the block-bound placeholder x{k}; the probe key would not be ground"),
                    );
                }
            }
            let mut xs_seen = vec![false; l.n_xs];
            for (i, t) in l.pattern.iter().enumerate() {
                report.tick();
                match *t {
                    PatIr::Cst(_) => {}
                    PatIr::Param(j) => {
                        if j >= p.n_params {
                            report.push(
                                Code::ParamOutOfRange,
                                &lpath,
                                format!("pattern position {i} reads parameter {j} but the plan has {}", p.n_params),
                            );
                        }
                    }
                    PatIr::X(k) => {
                        if k >= l.n_xs {
                            report.push(
                                Code::ParamOutOfRange,
                                &lpath,
                                format!("pattern position {i} binds x{k} but the step declares n_xs = {}", l.n_xs),
                            );
                        } else {
                            xs_seen[k] = true;
                        }
                    }
                }
            }
            for (k, seen) in xs_seen.iter().enumerate() {
                report.tick();
                if !seen {
                    report.push(
                        Code::BindingNotCovered,
                        &lpath,
                        format!("x{k} never occurs in the pattern; no block row can bind it"),
                    );
                }
            }
            for (j, fk) in l.outgoing.iter().enumerate() {
                audit_fk(fk, Some(l.rel), schema, &format!("{lpath}.outgoing[{j}]"), report);
            }
            report.tick();
            if l.sub.n_params != p.n_params + l.n_xs {
                report.push(
                    Code::ParamCompositionBroken,
                    &lpath,
                    format!(
                        "residual plan expects {} parameters; parent params ({}) + ⃗x ({}) = {}",
                        l.sub.n_params,
                        p.n_params,
                        l.n_xs,
                        p.n_params + l.n_xs
                    ),
                );
            }
            audit_plan_into(&l.sub, &format!("{lpath}.sub"), report);
        }
    }
}

fn audit_fk(
    fk: &cqa_model::ForeignKey,
    expect_from: Option<cqa_model::RelName>,
    schema: &Schema,
    path: &str,
    report: &mut AuditReport,
) {
    report.tick();
    if let Some(from) = expect_from {
        if fk.from != from {
            report.push(
                Code::KeyMismatch,
                path,
                format!("outgoing fk sources {} but the step reads {from}", fk.from),
            );
        }
    }
    report.tick();
    match schema.signature(fk.from) {
        None => report.push(
            Code::UnknownRelation,
            path,
            format!("fk source {} is not in the schema", fk.from),
        ),
        Some(sig) => {
            if fk.pos == 0 || fk.pos > sig.arity {
                report.push(
                    Code::ArityMismatch,
                    path,
                    format!("fk position {} out of range for arity-{} {}", fk.pos, sig.arity, fk.from),
                );
            }
        }
    }
    report.tick();
    match schema.signature(fk.to) {
        None => report.push(
            Code::UnknownRelation,
            path,
            format!("fk target {} is not in the schema", fk.to),
        ),
        Some(sig) => {
            if sig.key_len != 1 {
                report.push(
                    Code::ArityMismatch,
                    path,
                    format!("fk target {} has key length {} (unary foreign keys require 1)", fk.to, sig.key_len),
                );
            }
        }
    }
}
