//! SQL artifact emission.
//!
//! Each artifact is one self-contained script: `CREATE TABLE` DDL for the
//! schema, `INSERT` statements embedding the instance, and one final
//! query that returns a single row `certain` ∈ {0, 1}. The FO route
//! reuses the rewriting renderer from `cqa-fo` (plain SQL, no recursion,
//! witnessing the FO upper bound); the two poly-time routes emit
//! `WITH RECURSIVE` CTEs, which is exactly where they exceed plain
//! relational algebra.
//!
//! The emitter ships with its own shallow validity check,
//! [`check_sql`] — a tokenizer that verifies string-literal and comment
//! termination, paren balance, and statement shape. It is *not* a SQL
//! parser; it exists so a malformed artifact fails at emission time
//! rather than on the user's database.

use crate::lower::{block_chains, derived_prefix};
use cqa_core::EmitSpec;
use cqa_model::{Instance, Schema};
use std::fmt::Write as _;

/// Quotes a constant as a SQL string literal (`'` doubled).
fn lit(s: impl AsRef<str>) -> String {
    format!("'{}'", s.as_ref().replace('\'', "''"))
}

/// Renders the schema DDL plus one `INSERT` per instance fact. Column
/// names are `a1..ak`, matching the `adom` view emitted by
/// [`cqa_fo::to_sql`].
fn schema_and_facts(schema: &Schema, db: &Instance) -> String {
    let mut out = String::new();
    for (rel, sig) in schema.relations() {
        let cols: Vec<String> = (1..=sig.arity).map(|i| format!("a{i} TEXT")).collect();
        writeln!(out, "CREATE TABLE {rel} ({});", cols.join(", ")).expect("write");
    }
    out.push('\n');
    let mut any = false;
    for fact in db.facts() {
        let vals: Vec<String> = fact.args.iter().map(|c| lit(c.name())).collect();
        writeln!(out, "INSERT INTO {} VALUES ({});", fact.rel, vals.join(", ")).expect("write");
        any = true;
    }
    if !any {
        out.push_str("-- (empty instance)\n");
    }
    out
}

/// Emits the full SQL script for a route specification over `db`.
pub fn emit_sql(spec: &EmitSpec, schema: &Schema, db: &Instance) -> String {
    let p = derived_prefix(schema);
    let mut out = String::from("-- cqa emit: certainty as a self-contained SQL script.\n");
    match spec {
        EmitSpec::Fo { formula, depth } => {
            writeln!(
                out,
                "-- route: fo (consistent first-order rewriting, {depth} rewrite steps)"
            )
            .expect("write");
            out.push('\n');
            out.push_str(&schema_and_facts(schema, db));
            out.push('\n');
            let (ddl, expr) = cqa_fo::to_sql(schema, formula)
                .expect("flattened rewritings are closed");
            out.push_str(&ddl);
            out.push('\n');
            writeln!(out, "SELECT CASE WHEN {expr}\nTHEN 1 ELSE 0 END AS certain;")
                .expect("write");
        }
        EmitSpec::Reachability { n, o } => {
            out.push_str("-- route: reachability (Proposition 16 block graph)\n\n");
            out.push_str(&schema_and_facts(schema, db));
            out.push('\n');
            writeln!(
                out,
                "WITH RECURSIVE\n\
                 -- Diagonal blocks are the graph's vertices.\n\
                 {p}vtx(x) AS (\n\
                 \x20 SELECT a1 FROM {n} WHERE a1 = a2),\n\
                 -- Off-diagonal members between vertices are its edges.\n\
                 {p}edge(x, y) AS (\n\
                 \x20 SELECT t.a1, t.a2 FROM {n} t\n\
                 \x20 WHERE t.a1 <> t.a2\n\
                 \x20   AND t.a1 IN (SELECT x FROM {p}vtx)\n\
                 \x20   AND t.a2 IN (SELECT x FROM {p}vtx)),\n\
                 -- A member leaving the vertex set falls to the bottom element.\n\
                 {p}tobot(x) AS (\n\
                 \x20 SELECT t.a1 FROM {n} t\n\
                 \x20 WHERE t.a1 <> t.a2\n\
                 \x20   AND t.a1 IN (SELECT x FROM {p}vtx)\n\
                 \x20   AND t.a2 NOT IN (SELECT x FROM {p}vtx)),\n\
                 {p}reach(x, y) AS (\n\
                 \x20 SELECT x, y FROM {p}edge\n\
                 \x20 UNION\n\
                 \x20 SELECT e.x, r.y FROM {p}edge e, {p}reach r WHERE e.y = r.x),\n\
                 -- A vertex escapes by reaching bottom or a cycle.\n\
                 {p}esc(x) AS (\n\
                 \x20 SELECT x FROM {p}tobot\n\
                 \x20 UNION\n\
                 \x20 SELECT x FROM {p}reach WHERE x = y\n\
                 \x20 UNION\n\
                 \x20 SELECT r.x FROM {p}reach r WHERE r.y IN (SELECT x FROM {p}tobot)\n\
                 \x20 UNION\n\
                 \x20 SELECT r.x FROM {p}reach r, {p}reach c WHERE r.y = c.x AND c.x = c.y),\n\
                 {p}marked(x) AS (\n\
                 \x20 SELECT x FROM {p}vtx WHERE x IN (SELECT a1 FROM {o}))\n\
                 SELECT CASE WHEN EXISTS (\n\
                 \x20 SELECT 1 FROM {p}marked m WHERE m.x NOT IN (SELECT x FROM {p}esc)\n\
                 ) THEN 1 ELSE 0 END AS certain;"
            )
            .expect("write");
        }
        EmitSpec::DualHorn { n, o, middle } => {
            out.push_str("-- route: dual-horn (Proposition 17, flipped to deletion closure)\n\n");
            out.push_str(&schema_and_facts(schema, db));
            out.push('\n');
            // Per-block clause-body chains, materialized as ordinary tables
            // so the recursive part stays fixed-arity (see lower.rs).
            writeln!(
                out,
                "CREATE TABLE {p}noq (i TEXT);\n\
                 CREATE TABLE {p}qfirst (i TEXT, q TEXT);\n\
                 CREATE TABLE {p}qsucc (i TEXT, q1 TEXT, q2 TEXT);\n\
                 CREATE TABLE {p}qlast (i TEXT, q TEXT);"
            )
            .expect("write");
            for (key, qs) in block_chains(db, *n, middle) {
                let i = lit(key.name());
                match qs.as_slice() {
                    [] => writeln!(out, "INSERT INTO {p}noq VALUES ({i});").expect("write"),
                    [.., last] => {
                        writeln!(
                            out,
                            "INSERT INTO {p}qfirst VALUES ({i}, {});",
                            lit(qs[0].name())
                        )
                        .expect("write");
                        for w in qs.windows(2) {
                            writeln!(
                                out,
                                "INSERT INTO {p}qsucc VALUES ({i}, {}, {});",
                                lit(w[0].name()),
                                lit(w[1].name())
                            )
                            .expect("write");
                        }
                        writeln!(out, "INSERT INTO {p}qlast VALUES ({i}, {});", lit(last.name()))
                            .expect("write");
                    }
                }
            }
            let c = lit(middle.name());
            // NOTE: the `del`/`upto` mutual recursion is packed into one
            // tagged CTE, and some arms reference it twice — engines that
            // restrict recursive CTEs to a single self-reference per arm
            // (e.g. SQLite) will reject this script; it targets permissive
            // engines. The Datalog artifact has no such caveat.
            writeln!(
                out,
                "\nWITH RECURSIVE {p}fix(kind, x, y) AS (\n\
                 \x20 SELECT 'del', t.a3, '' FROM {n} t, {p}noq b\n\
                 \x20 WHERE t.a1 = b.i AND t.a2 = {c}\n\
                 \x20 UNION\n\
                 \x20 SELECT 'upto', f.i, f.q FROM {p}qfirst f, {p}fix d\n\
                 \x20 WHERE d.kind = 'del' AND d.x = f.q\n\
                 \x20 UNION\n\
                 \x20 SELECT 'upto', s.i, s.q2 FROM {p}qsucc s, {p}fix u, {p}fix d\n\
                 \x20 WHERE u.kind = 'upto' AND u.x = s.i AND u.y = s.q1\n\
                 \x20   AND d.kind = 'del' AND d.x = s.q2\n\
                 \x20 UNION\n\
                 \x20 SELECT 'del', t.a3, '' FROM {n} t, {p}qlast l, {p}fix u\n\
                 \x20 WHERE t.a1 = l.i AND t.a2 = {c}\n\
                 \x20   AND u.kind = 'upto' AND u.x = l.i AND u.y = l.q\n\
                 )\n\
                 SELECT CASE WHEN EXISTS (\n\
                 \x20 SELECT 1 FROM {o} v, {p}fix d WHERE d.kind = 'del' AND d.x = v.a1\n\
                 ) THEN 1 ELSE 0 END AS certain;"
            )
            .expect("write");
        }
    }
    out
}

/// A shallow well-formedness check over an emitted script: terminated
/// strings and comments, balanced parens, `;`-separated statements each
/// starting with `CREATE`, `INSERT`, `SELECT` or `WITH`, and no trailing
/// garbage. Returns the first violation as a message.
pub fn check_sql(text: &str) -> Result<(), String> {
    let bytes = text.as_bytes();
    let mut i = 0usize;
    let mut depth = 0i64;
    let mut stmt_head: Option<String> = None;
    let mut stmts = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if b == b'\'' {
            // Scan to the closing quote; '' is an escaped quote.
            i += 1;
            loop {
                match bytes.get(i) {
                    None => return Err("unterminated string literal".to_string()),
                    Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => i += 2,
                    Some(b'\'') => {
                        i += 1;
                        break;
                    }
                    Some(_) => i += 1,
                }
            }
            continue;
        }
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth < 0 {
                    return Err("unbalanced ')'".to_string());
                }
            }
            b';' => {
                if depth != 0 {
                    return Err("';' inside parentheses".to_string());
                }
                if stmt_head.is_none() {
                    return Err("empty statement before ';'".to_string());
                }
                stmt_head = None;
                stmts += 1;
            }
            _ => {}
        }
        if b.is_ascii_alphabetic() && stmt_head.is_none() {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let word = text[start..i].to_ascii_uppercase();
            if !matches!(word.as_str(), "CREATE" | "INSERT" | "SELECT" | "WITH") {
                return Err(format!("statement starts with unexpected keyword `{word}`"));
            }
            stmt_head = Some(word);
            continue;
        }
        i += 1;
    }
    if depth != 0 {
        return Err("unbalanced '('".to_string());
    }
    if let Some(head) = stmt_head {
        return Err(format!("trailing `{head}` statement not closed with ';'"));
    }
    if stmts == 0 {
        return Err("no statements".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_core::{ExecOptions, Problem, Solver};
    use cqa_model::parser::{parse_fks, parse_instance, parse_query, parse_schema};
    use std::sync::Arc;

    fn emit_for(schema: &str, query: &str, fks: &str, db: &str) -> String {
        let s = Arc::new(parse_schema(schema).unwrap());
        let q = parse_query(&s, query).unwrap();
        let fks = parse_fks(&s, fks).unwrap();
        let solver = Solver::builder(Problem::new(q, fks).unwrap())
            .options(ExecOptions::sequential())
            .build()
            .unwrap();
        let db = parse_instance(&s, db).unwrap();
        emit_sql(&solver.emit_spec().unwrap(), &s, &db)
    }

    #[test]
    fn all_three_routes_pass_the_shape_check() {
        for (schema, query, fks, db) in [
            (
                "N[2,1] O[1,1] P[1,1]",
                "N('c',y), O(y), P(y)",
                "N[2] -> O",
                "N(c,a) O(a) P(a)",
            ),
            (
                cqa_solvers::prop16::SCHEMA,
                cqa_solvers::prop16::QUERY,
                cqa_solvers::prop16::FKS,
                "N(a,a) N(a,b) N(b,b) O(a)",
            ),
            (
                cqa_solvers::prop17::SCHEMA,
                cqa_solvers::prop17::QUERY,
                cqa_solvers::prop17::FKS,
                "N(b1,c,1) N(b1,d,2) N(b2,c,2) O(1)",
            ),
        ] {
            let script = emit_for(schema, query, fks, db);
            check_sql(&script).unwrap_or_else(|e| panic!("{e}\n---\n{script}"));
            assert!(script.contains("AS certain"), "{script}");
        }
    }

    #[test]
    fn poly_routes_use_recursion_and_fo_does_not() {
        let fo = emit_for("N[2,1] O[1,1]", "N(x,y), O(y)", "N[2] -> O", "N(a,b) O(b)");
        assert!(!fo.contains("WITH RECURSIVE"), "{fo}");
        let l = emit_for(
            cqa_solvers::prop16::SCHEMA,
            cqa_solvers::prop16::QUERY,
            cqa_solvers::prop16::FKS,
            "N(a,a) O(a)",
        );
        assert!(l.contains("WITH RECURSIVE"), "{l}");
        let nl = emit_for(
            cqa_solvers::prop17::SCHEMA,
            cqa_solvers::prop17::QUERY,
            cqa_solvers::prop17::FKS,
            "N(i,c,1) O(1)",
        );
        assert!(nl.contains("WITH RECURSIVE"), "{nl}");
    }

    #[test]
    fn constants_with_quotes_are_escaped() {
        use cqa_model::{Cst, Fact, Instance, RelName};
        let s = Arc::new(parse_schema("N[2,1] O[1,1]").unwrap());
        let q = parse_query(&s, "N(x,y), O(y)").unwrap();
        let fks = parse_fks(&s, "N[2] -> O").unwrap();
        let solver = Solver::builder(Problem::new(q, fks).unwrap())
            .options(ExecOptions::sequential())
            .build()
            .unwrap();
        let mut db = Instance::new(s.clone());
        let tricky = Cst::new("it's");
        db.insert(Fact::new(RelName::new("N"), vec![tricky, Cst::new("b")]))
            .unwrap();
        db.insert(Fact::new(RelName::new("O"), vec![Cst::new("b")]))
            .unwrap();
        let script = emit_sql(&solver.emit_spec().unwrap(), &s, &db);
        check_sql(&script).unwrap();
        assert!(script.contains("'it''s'"), "{script}");
    }

    #[test]
    fn the_checker_rejects_malformed_scripts() {
        assert!(check_sql("SELECT 'oops FROM t;").is_err());
        assert!(check_sql("SELECT (1;").is_err());
        assert!(check_sql("DROP TABLE t;").is_err());
        assert!(check_sql("SELECT 1").is_err());
        assert!(check_sql("").is_err());
        assert!(check_sql("-- only a comment\n").is_err());
        check_sql("SELECT 1; -- trailing comment is fine\n").unwrap();
    }
}
