//! Lowering classified routes to stratified Datalog.
//!
//! The input is a [`cqa_core::EmitSpec`] — the logical content of a
//! compiled [`cqa_core::Route`] — plus the instance whose facts the
//! artifact embeds; the output is one self-contained [`Program`] whose
//! zero-arity goal predicate (`cqa_certain` by default) is derivable iff
//! the instance is a yes-instance of `CERTAINTY(q, FK)`.
//!
//! Three lowerings, one per route:
//!
//! * **FO** ([`EmitSpec::Fo`]) — the flattened consistent rewriting is
//!   desugared (`→` to `∨¬`, `∀` to `¬∃¬`), α-renamed so every bound
//!   variable is unique, and translated one predicate per subformula: a
//!   predicate's relation is exactly the set of active-domain assignments
//!   to the subformula's free variables that satisfy it. Negation is
//!   guarded by the active-domain predicate `cqa_dom` (rules over every
//!   relation position, plus one fact per query constant — matching the
//!   evaluator's `adom(db) ∪ consts(q)` quantifier range), which keeps
//!   every rule range-restricted and the program stratified.
//! * **Proposition 16** ([`EmitSpec::Reachability`]) — the proof-sketch
//!   block graph as recursive rules: vertices are diagonal blocks, edges
//!   follow non-diagonal members, a vertex *escapes* when it reaches `⊥`
//!   (a member leaving the vertex set) or a cycle, and certainty is a
//!   marked vertex that does not escape.
//! * **Proposition 17** ([`EmitSpec::DualHorn`]) — the dual-Horn
//!   complement encoding, **flipped** into a definite (purely positive)
//!   Horn program over deletions: `cqa_del(p)` holds iff every repair that
//!   keeps `O(p)` available forces another deletion chain, and certainty
//!   is a deleted `O`-fact. The flip matters: the naive lowering
//!   (`del`/`blocked` through negation) is unstratified — see the
//!   `datalog-unstratified` fixture in `cqa-analyze`. Block-local clause
//!   bodies `q₁ ∧ … ∧ qₘ → p` are chained through per-block ordering
//!   facts (`cqa_qfirst`/`cqa_qsucc`/`cqa_qlast`, or `cqa_noq` for empty
//!   bodies) so rules stay fixed-arity while blocks have unbounded width.
//!
//! Derived predicates are prefixed `cqa_`; if a schema relation collides
//! with that prefix the lowering escalates to `cqa0_`, `cqa1_`, … (see
//! [`derived_prefix`]).

use cqa_analyze::datalog::{DAtom, DTerm, Literal, Program, Rule};
use cqa_core::EmitSpec;
use cqa_fo::Formula;
use cqa_model::{Atom, Cst, Instance, RelName, Schema, Term, Var};
use std::collections::{BTreeMap, BTreeSet};

/// A lowered program plus the name of its zero-arity goal predicate.
#[derive(Clone, Debug)]
pub struct Lowered {
    /// The self-contained program (rules first, instance facts after).
    pub program: Program,
    /// The goal predicate: derivable iff the instance is a yes-instance.
    pub goal: String,
}

/// The prefix for derived (IDB) predicates: `cqa_`, escalated to `cqa0_`,
/// `cqa1_`, … until no schema relation starts with it, so emitted
/// predicates can never collide with instance relations.
pub fn derived_prefix(schema: &Schema) -> String {
    let rels: Vec<String> = schema.relations().map(|(r, _)| r.to_string()).collect();
    let mut i = 0usize;
    loop {
        let candidate = if i == 0 {
            "cqa_".to_string()
        } else {
            format!("cqa{}_", i - 1)
        };
        if !rels.iter().any(|r| r.starts_with(&candidate)) {
            return candidate;
        }
        i += 1;
    }
}

/// Lowers a route specification over `db` into one self-contained program:
/// route rules, then one ground fact per instance fact.
pub fn lower(spec: &EmitSpec, schema: &Schema, db: &Instance) -> Lowered {
    let prefix = derived_prefix(schema);
    let mut rules = Vec::new();
    match spec {
        EmitSpec::Fo { formula, .. } => lower_fo(formula, schema, &prefix, &mut rules),
        EmitSpec::Reachability { n, o } => lower_reachability(*n, *o, &prefix, &mut rules),
        EmitSpec::DualHorn { n, o, middle } => {
            lower_dual_horn(*n, *o, middle, db, &prefix, &mut rules)
        }
    }
    for fact in db.facts() {
        rules.push(Rule::fact(DAtom::new(
            fact.rel.to_string(),
            fact.args.iter().map(|c| cst(*c)).collect(),
        )));
    }
    Lowered {
        program: Program { rules },
        goal: format!("{prefix}certain"),
    }
}

fn cst(c: Cst) -> DTerm {
    DTerm::Cst(c.name().to_string())
}

/// The Datalog variable for a (renamed) formula variable: `V_` keeps the
/// name in variable position for any source spelling.
fn dvar(v: &Var) -> DTerm {
    DTerm::Var(format!("V_{v}"))
}

fn dterm(t: &Term) -> DTerm {
    match t {
        Term::Var(v) => dvar(v),
        Term::Cst(c) => cst(*c),
    }
}

// ---------------------------------------------------------------------------
// FO route
// ---------------------------------------------------------------------------

fn lower_fo(formula: &Formula, schema: &Schema, prefix: &str, rules: &mut Vec<Rule>) {
    let mut counter = 0usize;
    let mut env = BTreeMap::new();
    let prepared = prepare(formula, &mut env, &mut counter);

    let mut next = 0usize;
    let (root, root_vars) = emit_sub(&prepared, prefix, &mut next, rules);
    // Flattened rewritings are closed, so the goal body is zero-arity; an
    // open formula degrades gracefully to its existential closure.
    rules.push(Rule {
        head: DAtom::new(format!("{prefix}certain"), vec![]),
        body: vec![Literal::Pos(DAtom::new(
            root,
            root_vars.iter().map(dvar).collect(),
        ))],
    });

    // Active domain: every position of every relation, plus the formula's
    // constants — the evaluator's quantifier range `adom(db) ∪ consts(q)`.
    for (rel, sig) in schema.relations() {
        for i in 0..sig.arity {
            let args: Vec<DTerm> = (0..sig.arity)
                .map(|j| DTerm::Var(format!("A{j}")))
                .collect();
            rules.push(Rule {
                head: DAtom::new(format!("{prefix}dom"), vec![DTerm::Var(format!("A{i}"))]),
                body: vec![Literal::Pos(DAtom::new(rel.to_string(), args))],
            });
        }
    }
    for c in formula.consts() {
        rules.push(Rule::fact(DAtom::new(format!("{prefix}dom"), vec![cst(c)])));
    }
}

/// Desugars `Implies`/`Forall` away and α-renames every bound variable to
/// a fresh `v{k}`, so no variable is bound twice and no binding shadows
/// another — the per-subformula translation then never confuses scopes.
fn prepare(f: &Formula, env: &mut BTreeMap<Var, Var>, counter: &mut usize) -> Formula {
    let map_term = |t: &Term, env: &BTreeMap<Var, Var>| match t {
        Term::Var(v) => Term::Var(env.get(v).copied().unwrap_or(*v)),
        Term::Cst(c) => Term::Cst(*c),
    };
    match f {
        Formula::True => Formula::True,
        Formula::False => Formula::False,
        Formula::Atom(a) => Formula::Atom(Atom::new(
            a.rel,
            a.terms.iter().map(|t| map_term(t, env)).collect(),
        )),
        Formula::Eq(s, t) => Formula::Eq(map_term(s, env), map_term(t, env)),
        Formula::Not(g) => Formula::Not(Box::new(prepare(g, env, counter))),
        Formula::And(gs) => {
            Formula::And(gs.iter().map(|g| prepare(g, env, counter)).collect())
        }
        Formula::Or(gs) => Formula::Or(gs.iter().map(|g| prepare(g, env, counter)).collect()),
        Formula::Implies(l, r) => Formula::Or(vec![
            Formula::Not(Box::new(prepare(l, env, counter))),
            prepare(r, env, counter),
        ]),
        Formula::Exists(vs, g) => {
            let (fresh, saved) = bind_fresh(vs, env, counter);
            let body = prepare(g, env, counter);
            restore(saved, env);
            Formula::Exists(fresh, Box::new(body))
        }
        Formula::Forall(vs, g) => {
            let (fresh, saved) = bind_fresh(vs, env, counter);
            let body = prepare(g, env, counter);
            restore(saved, env);
            Formula::Not(Box::new(Formula::Exists(
                fresh,
                Box::new(Formula::Not(Box::new(body))),
            )))
        }
    }
}

type Saved = Vec<(Var, Option<Var>)>;

fn bind_fresh(vs: &[Var], env: &mut BTreeMap<Var, Var>, counter: &mut usize) -> (Vec<Var>, Saved) {
    let mut fresh = Vec::with_capacity(vs.len());
    let mut saved = Vec::with_capacity(vs.len());
    for v in vs {
        let name = format!("v{counter}");
        *counter += 1;
        let nv = Var::new(&name);
        fresh.push(nv);
        saved.push((*v, env.insert(*v, nv)));
    }
    (fresh, saved)
}

fn restore(saved: Saved, env: &mut BTreeMap<Var, Var>) {
    for (v, prev) in saved {
        match prev {
            Some(p) => {
                env.insert(v, p);
            }
            None => {
                env.remove(&v);
            }
        }
    }
}

/// Emits the rules defining one subformula's predicate and returns its
/// name together with its argument variables (the subformula's free
/// variables, sorted). Invariant: the predicate's relation in the least
/// model is exactly the set of active-domain assignments satisfying the
/// subformula.
fn emit_sub(
    f: &Formula,
    prefix: &str,
    next: &mut usize,
    rules: &mut Vec<Rule>,
) -> (String, Vec<Var>) {
    let idx = *next;
    *next += 1;
    let pred = format!("{prefix}sub{idx}");
    let vars: Vec<Var> = f.free_vars().into_iter().collect();
    let head = DAtom::new(pred.clone(), vars.iter().map(dvar).collect());
    let dom = |v: &Var| {
        Literal::Pos(DAtom::new(format!("{prefix}dom"), vec![dvar(v)]))
    };
    match f {
        Formula::True => rules.push(Rule::fact(head)),
        Formula::False => {}
        Formula::Atom(a) => rules.push(Rule {
            head,
            body: vec![Literal::Pos(DAtom::new(
                a.rel.to_string(),
                a.terms.iter().map(dterm).collect(),
            ))],
        }),
        Formula::Eq(s, t) => match (s, t) {
            (Term::Var(x), Term::Var(y)) if x == y => rules.push(Rule {
                head,
                body: vec![dom(x)],
            }),
            (Term::Var(_), Term::Var(_)) => {
                // Two distinct free variables: the diagonal over the domain.
                let d = DTerm::Var("V".to_string());
                rules.push(Rule {
                    head: DAtom::new(pred.clone(), vec![d.clone(), d.clone()]),
                    body: vec![Literal::Pos(DAtom::new(format!("{prefix}dom"), vec![d]))],
                });
            }
            (Term::Var(_), Term::Cst(c)) | (Term::Cst(c), Term::Var(_)) => {
                rules.push(Rule::fact(DAtom::new(pred.clone(), vec![cst(*c)])));
            }
            (Term::Cst(c), Term::Cst(d)) => {
                if c == d {
                    rules.push(Rule::fact(head));
                }
            }
        },
        Formula::Not(g) => {
            let (gp, gv) = emit_sub(g, prefix, next, rules);
            let mut body: Vec<Literal> = vars.iter().map(dom).collect();
            body.push(Literal::Neg(DAtom::new(gp, gv.iter().map(dvar).collect())));
            rules.push(Rule { head, body });
        }
        Formula::And(gs) => {
            let mut body = Vec::with_capacity(gs.len());
            for g in gs {
                let (gp, gv) = emit_sub(g, prefix, next, rules);
                body.push(Literal::Pos(DAtom::new(gp, gv.iter().map(dvar).collect())));
            }
            rules.push(Rule { head, body });
        }
        Formula::Or(gs) => {
            for g in gs {
                let (gp, gv) = emit_sub(g, prefix, next, rules);
                let present: BTreeSet<Var> = gv.iter().copied().collect();
                let mut body = vec![Literal::Pos(DAtom::new(
                    gp,
                    gv.iter().map(dvar).collect(),
                ))];
                for v in &vars {
                    if !present.contains(v) {
                        body.push(dom(v));
                    }
                }
                rules.push(Rule {
                    head: head.clone(),
                    body,
                });
            }
        }
        Formula::Exists(_, g) => {
            let (gp, gv) = emit_sub(g, prefix, next, rules);
            rules.push(Rule {
                head,
                body: vec![Literal::Pos(DAtom::new(gp, gv.iter().map(dvar).collect()))],
            });
        }
        Formula::Implies(_, _) | Formula::Forall(_, _) => {
            unreachable!("prepare() desugars Implies and Forall")
        }
    }
    (pred, vars)
}

// ---------------------------------------------------------------------------
// Proposition 16 route (reachability)
// ---------------------------------------------------------------------------

fn lower_reachability(n: RelName, o: RelName, p: &str, rules: &mut Vec<Rule>) {
    let src = format!(
        "{p}vtx(X) :- {n}(X, X).\n\
         {p}edge(X, Y) :- {p}vtx(X), {n}(X, Y), {p}vtx(Y), X != Y.\n\
         {p}tobot(X) :- {p}vtx(X), {n}(X, Y), X != Y, not {p}vtx(Y).\n\
         {p}reach(X, Y) :- {p}edge(X, Y).\n\
         {p}reach(X, Z) :- {p}edge(X, Y), {p}reach(Y, Z).\n\
         {p}oncycle(X) :- {p}reach(X, X).\n\
         {p}esc(X) :- {p}tobot(X).\n\
         {p}esc(X) :- {p}oncycle(X).\n\
         {p}esc(X) :- {p}edge(X, Y), {p}esc(Y).\n\
         {p}marked(X) :- {p}vtx(X), {o}(X).\n\
         {p}certain :- {p}marked(X), not {p}esc(X).\n"
    );
    rules.extend(
        Program::parse(&src)
            .expect("reachability template parses")
            .rules,
    );
}

// ---------------------------------------------------------------------------
// Proposition 17 route (flipped dual-Horn)
// ---------------------------------------------------------------------------

fn lower_dual_horn(
    n: RelName,
    o: RelName,
    middle: &Cst,
    db: &Instance,
    p: &str,
    rules: &mut Vec<Rule>,
) {
    let c = cst(*middle);
    let src = format!(
        "{p}del(Y) :- {n}(I, {c}, Y), {p}noq(I).\n\
         {p}upto(I, Q) :- {p}qfirst(I, Q), {p}del(Q).\n\
         {p}upto(I, Q2) :- {p}upto(I, Q1), {p}qsucc(I, Q1, Q2), {p}del(Q2).\n\
         {p}del(Y) :- {n}(I, {c}, Y), {p}qlast(I, Q), {p}upto(I, Q).\n\
         {p}certain :- {o}(V), {p}del(V).\n"
    );
    rules.extend(
        Program::parse(&src)
            .expect("dual-Horn template parses")
            .rules,
    );
    // Per-block ordering EDB: the clause body `q₁ ∧ … ∧ qₘ` (the distinct
    // non-`c` third components of the block) as a chain, so the recursive
    // rules stay fixed-arity.
    for (key, qs) in block_chains(db, n, middle) {
        let i = cst(key);
        let qs: Vec<DTerm> = qs.into_iter().map(cst).collect();
        match qs.as_slice() {
            [] => rules.push(Rule::fact(DAtom::new(format!("{p}noq"), vec![i]))),
            [first @ .., last] => {
                let first_q = first.first().unwrap_or(last);
                rules.push(Rule::fact(DAtom::new(
                    format!("{p}qfirst"),
                    vec![i.clone(), first_q.clone()],
                )));
                for w in qs.windows(2) {
                    rules.push(Rule::fact(DAtom::new(
                        format!("{p}qsucc"),
                        vec![i.clone(), w[0].clone(), w[1].clone()],
                    )));
                }
                rules.push(Rule::fact(DAtom::new(
                    format!("{p}qlast"),
                    vec![i, last.clone()],
                )));
            }
        }
    }
}

/// Per-block dual-Horn clause bodies: for each `n`-block (keyed by its
/// first component), the sorted distinct third components of the members
/// whose middle is *not* `middle`. Shared by the Datalog and SQL emitters
/// so both artifacts encode the same clauses.
pub(crate) fn block_chains(db: &Instance, n: RelName, middle: &Cst) -> Vec<(Cst, Vec<Cst>)> {
    db.blocks(n)
        .into_iter()
        .map(|(key, block)| {
            let qs: BTreeSet<Cst> = block
                .iter()
                .filter(|f| f.args[1] != *middle)
                .map(|f| f.args[2])
                .collect();
            (key[0], qs.into_iter().collect())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::evaluate;
    use cqa_core::{ExecOptions, Problem, Solver};
    use cqa_model::parser::{parse_fks, parse_instance, parse_query, parse_schema};
    use std::sync::Arc;

    fn solver_for(schema: &str, query: &str, fks: &str) -> (Arc<cqa_model::Schema>, Solver) {
        let s = Arc::new(parse_schema(schema).unwrap());
        let q = parse_query(&s, query).unwrap();
        let fks = parse_fks(&s, fks).unwrap();
        let solver = Solver::builder(Problem::new(q, fks).unwrap())
            .options(ExecOptions::sequential())
            .build()
            .unwrap();
        (s, solver)
    }

    /// The full differential loop: emit → print → re-parse → execute, and
    /// compare the goal against the solver's own verdict.
    fn exec_agrees(schema: &str, query: &str, fks: &str, dbs: &[&str]) {
        let (s, solver) = solver_for(schema, query, fks);
        let spec = solver.emit_spec().unwrap();
        for text in dbs {
            let db = parse_instance(&s, text).unwrap();
            let lowered = lower(&spec, &s, &db);
            let printed = lowered.program.to_string();
            let reparsed = Program::parse(&printed).expect("artifact re-parses");
            let ev = evaluate(&reparsed).expect("artifact is sound");
            assert_eq!(
                ev.holds(&lowered.goal),
                solver.solve(&db).is_certain(),
                "emit∘exec disagrees with solve on {text:?}\n{printed}"
            );
        }
    }

    #[test]
    fn reachability_lowering_matches_the_backend_on_the_prop16_vectors() {
        exec_agrees(
            cqa_solvers::prop16::SCHEMA,
            cqa_solvers::prop16::QUERY,
            cqa_solvers::prop16::FKS,
            &[
                "",
                "N(a,a) O(a)",
                "N(a,a)",
                "N(a,b)",
                "N(a,a) N(a,b) O(a)",
                "N(a,a) N(a,b) N(b,b) O(a)",
                "N(a,a) N(a,b) N(b,b) O(a) O(b)",
                "N(a,a) N(a,b) N(b,b) N(b,c) O(a)",
                "N(a,a) N(a,b) N(b,b) N(b,a) O(a)",
                "N(a,a) O(a) O(zz)",
                "N(a,a) N(b,b) O(a) O(b)",
                "N(a,a) N(a,b) N(b,b) N(b,c) N(c,c) O(a) O(c)",
                "N(a,a) N(a,e) N(w,w) N(w,e) O(a) O(w)",
                "N(a,a) N(a,b) N(b,c) N(c,c) O(a)",
                "N(a,b) N(a,c) O(a)",
                "N(a,a) N(a,b) N(b,b) N(b,a) N(c,c) O(a) O(c)",
            ],
        );
    }

    #[test]
    fn dual_horn_lowering_matches_the_backend_on_the_prop17_vectors() {
        exec_agrees(
            cqa_solvers::prop17::SCHEMA,
            cqa_solvers::prop17::QUERY,
            cqa_solvers::prop17::FKS,
            &[
                "",
                "O(1)",
                "N(i,c,1)",
                "N(i,c,1) O(1)",
                "N(i,c,1) N(i,d,2) O(1)",
                "N(i,c,1) N(i,d,2) O(1) O(2)",
                "N(b1,c,1) N(b1,d,2) N(b2,c,2) O(1)",
                "N(b1,c,1) N(b1,d,2) N(b2,d,3) O(1)",
                "N(b1,c,1) N(b1,d,2) N(b2,c,2) N(b2,d,3) O(1)",
                "N(b1,c,1) N(b1,c,2) O(1) O(2)",
                "N(b1,d,1) O(1)",
                "N(b1,c,1) N(b1,d,2) N(b1,e,3) N(b2,c,2) N(b3,c,3) O(1)",
            ],
        );
    }

    #[test]
    fn fo_lowering_matches_the_compiled_plan() {
        exec_agrees(
            "N[2,1] O[1,1] P[1,1]",
            "N('c',y), O(y), P(y)",
            "N[2] -> O",
            &[
                "",
                "N(c,a) O(a) P(a)",
                "N(c,a) N(c,b) O(a) P(a)",
                "N(c,a) N(c,b) O(a) P(a) P(b)",
                "N(c,a) N(c,b) O(a) O(b) P(a) P(b)",
                "N(d,a) O(a) P(a)",
                "O(a) P(a)",
            ],
        );
    }

    #[test]
    fn nested_fo_lowering_matches_the_compiled_plan() {
        exec_agrees(
            "N[2,1] M[2,1] Q[1,1] P[1,1] O[1,1]",
            "N('c',y), M(y,w), Q(w), P(w), O(y)",
            "N[2] -> O, M[2] -> Q",
            &[
                "",
                "N(c,a) M(a,u) Q(u) P(u) O(a)",
                "N(c,a) N(c,b) M(a,u) Q(u) P(u) O(a)",
                "N(c,a) M(a,u) M(a,v) Q(u) Q(v) P(u) O(a)",
                "N(c,a) M(a,u) M(a,v) Q(u) Q(v) P(u) P(v) O(a)",
                "N(c,a) M(a,u) Q(u) O(a)",
            ],
        );
    }

    #[test]
    fn emitted_programs_audit_clean() {
        for (schema, query, fks, db_text) in [
            (
                cqa_solvers::prop16::SCHEMA,
                cqa_solvers::prop16::QUERY,
                cqa_solvers::prop16::FKS,
                "N(a,a) N(a,b) O(a)",
            ),
            (
                cqa_solvers::prop17::SCHEMA,
                cqa_solvers::prop17::QUERY,
                cqa_solvers::prop17::FKS,
                "N(i,c,1) N(i,d,2) O(1)",
            ),
            (
                "N[2,1] O[1,1] P[1,1]",
                "N('c',y), O(y), P(y)",
                "N[2] -> O",
                "N(c,a) O(a) P(a)",
            ),
        ] {
            let (s, solver) = solver_for(schema, query, fks);
            let db = parse_instance(&s, db_text).unwrap();
            let lowered = lower(&solver.emit_spec().unwrap(), &s, &db);
            let report = cqa_analyze::audit_program(&lowered.program);
            assert!(report.is_clean(), "{report}");
        }
    }

    #[test]
    fn derived_prefix_escalates_on_collision() {
        let plain = Arc::new(parse_schema("N[2,1] O[1,1]").unwrap());
        assert_eq!(derived_prefix(&plain), "cqa_");
        let clash = Arc::new(parse_schema("cqa_dom[1,1] O[1,1]").unwrap());
        assert_eq!(derived_prefix(&clash), "cqa0_");
    }
}
