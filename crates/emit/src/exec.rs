//! A vendored semi-naïve, stratified Datalog evaluator.
//!
//! This is the differential oracle behind every emitted artifact: an
//! emitted program is **re-parsed from its text** and evaluated here, and
//! the `cqa_certain` verdict must agree with [`cqa_core::Solver::solve`] on
//! the same instance. The evaluator is deliberately independent of every
//! other certainty implementation in the workspace (compiled plan,
//! materializing interpreter, combinatorial backends, ⊕-repair oracle) —
//! it knows nothing about blocks, repairs or foreign keys, only bottom-up
//! fixpoints — which is what makes the agreement meaningful.
//!
//! ## Algorithm
//!
//! Classic stratified semi-naïve evaluation:
//!
//! 1. [`cqa_analyze::audit_program`] must pass — the evaluator refuses
//!    programs that are not range-restricted or not stratifiable
//!    ([`ExecError::Unsound`]) rather than improvising semantics for them;
//! 2. constants are interned to `u32` and rules compiled to slot form;
//! 3. strata run in [`cqa_analyze::datalog::stratify`] order. Within a
//!    stratum, round 0 evaluates every rule against the full stores; each
//!    later round evaluates only rules with a recursive positive literal,
//!    once per such occurrence, with that occurrence restricted to the
//!    previous round's **delta** and the remaining literals against the
//!    full stores. Negated literals always refer to lower (completed)
//!    strata, so their stores are final when read.
//!
//! Positive literals are joined by backtracking search in a greedy
//! most-bound-first order (the delta occurrence, when present, always
//! leads), `!=` builtins and negations are checked once a rule's slots are
//! fully bound.

use cqa_analyze::datalog::{stratify, DAtom, DTerm, Literal, Program};
use cqa_analyze::{audit_program, AuditReport};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

/// Why a program was refused without evaluation.
#[derive(Debug)]
pub enum ExecError {
    /// The program failed its safety audit (range restriction or
    /// stratifiability); the report carries the diagnostics.
    Unsound(AuditReport),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Unsound(report) => {
                write!(f, "refusing to evaluate an unsound program: {report}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

type Tuple = Box<[u32]>;
type Store = HashSet<Tuple>;

/// The least stratified model of a program: every predicate's final
/// relation, plus evaluation statistics.
#[derive(Debug)]
pub struct Evaluation {
    names: Vec<String>,
    preds: BTreeMap<String, usize>,
    stores: Vec<Store>,
    rounds: usize,
    derived: usize,
}

impl Evaluation {
    /// Whether `pred` holds of at least one tuple (for a zero-arity goal:
    /// whether it was derived).
    pub fn holds(&self, pred: &str) -> bool {
        self.count(pred) > 0
    }

    /// How many tuples `pred` holds of (0 for unknown predicates).
    pub fn count(&self, pred: &str) -> usize {
        self.preds
            .get(pred)
            .map(|&i| self.stores[i].len())
            .unwrap_or(0)
    }

    /// The tuples of `pred`, sorted for deterministic output.
    pub fn tuples(&self, pred: &str) -> Vec<Vec<String>> {
        let mut out: Vec<Vec<String>> = match self.preds.get(pred) {
            Some(&i) => self.stores[i]
                .iter()
                .map(|t| t.iter().map(|&c| self.names[c as usize].clone()).collect())
                .collect(),
            None => Vec::new(),
        };
        out.sort();
        out
    }

    /// Total fixpoint rounds across all strata (round 0 included).
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Tuples derived by rules (ground facts excluded).
    pub fn derived(&self) -> usize {
        self.derived
    }
}

/// A compiled argument: a rule-local variable slot or an interned constant.
#[derive(Clone, Copy)]
enum CArg {
    Slot(usize),
    Cst(u32),
}

struct CAtom {
    pred: usize,
    args: Vec<CArg>,
}

struct CRule {
    head: CAtom,
    pos: Vec<CAtom>,
    neg: Vec<CAtom>,
    neq: Vec<(CArg, CArg)>,
    n_slots: usize,
}

struct Compiler {
    names: Vec<String>,
    consts: HashMap<String, u32>,
    preds: BTreeMap<String, usize>,
}

impl Compiler {
    fn intern(&mut self, c: &str) -> u32 {
        match self.consts.get(c) {
            Some(&i) => i,
            None => {
                let i = self.names.len() as u32;
                self.names.push(c.to_string());
                self.consts.insert(c.to_string(), i);
                i
            }
        }
    }

    fn atom(&mut self, a: &DAtom, slots: &mut BTreeMap<String, usize>) -> CAtom {
        let pred = self.preds[a.pred.as_str()];
        let args = a
            .args
            .iter()
            .map(|t| self.arg(t, slots))
            .collect();
        CAtom { pred, args }
    }

    fn arg(&mut self, t: &DTerm, slots: &mut BTreeMap<String, usize>) -> CArg {
        match t {
            DTerm::Var(v) => {
                let next = slots.len();
                CArg::Slot(*slots.entry(v.clone()).or_insert(next))
            }
            DTerm::Cst(c) => CArg::Cst(self.intern(c)),
        }
    }
}

/// Evaluates `program` to its least stratified model. Refuses programs that
/// fail [`audit_program`] — soundness of the fixpoint depends on range
/// restriction and stratification, so violations are an error, never a
/// best-effort answer.
pub fn evaluate(program: &Program) -> Result<Evaluation, ExecError> {
    let report = audit_program(program);
    if !report.is_clean() {
        return Err(ExecError::Unsound(report));
    }
    let strata = stratify(program).expect("audit includes stratifiability");

    let mut compiler = Compiler {
        names: Vec::new(),
        consts: HashMap::new(),
        preds: program
            .predicates()
            .into_iter()
            .map(str::to_string)
            .zip(0..)
            .collect(),
    };
    let n_preds = compiler.preds.len();
    let mut stores: Vec<Store> = vec![Store::new(); n_preds];

    let mut rules: Vec<CRule> = Vec::new();
    for r in &program.rules {
        let mut slots = BTreeMap::new();
        let head = compiler.atom(&r.head, &mut slots);
        if r.body.is_empty() {
            // A ground fact (the audit rejects non-ground ones): preload.
            let tuple: Tuple = head
                .args
                .iter()
                .map(|a| match a {
                    CArg::Cst(c) => *c,
                    CArg::Slot(_) => unreachable!("audited ground"),
                })
                .collect();
            stores[head.pred].insert(tuple);
            continue;
        }
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        let mut neq = Vec::new();
        for l in &r.body {
            match l {
                Literal::Pos(a) => pos.push(compiler.atom(a, &mut slots)),
                Literal::Neg(a) => neg.push(compiler.atom(a, &mut slots)),
                Literal::Neq(s, t) => neq.push((
                    compiler.arg(s, &mut slots),
                    compiler.arg(t, &mut slots),
                )),
            }
        }
        rules.push(CRule {
            head,
            pos,
            neg,
            neq,
            n_slots: slots.len(),
        });
    }

    let mut rounds = 0usize;
    let mut derived = 0usize;
    for stratum in &strata {
        let cur: HashSet<usize> = stratum
            .iter()
            .map(|p| compiler.preds[p.as_str()])
            .collect();
        let here: Vec<&CRule> = rules.iter().filter(|r| cur.contains(&r.head.pred)).collect();
        if here.is_empty() {
            continue;
        }
        // Round 0: every rule against the full stores.
        let mut fresh = Vec::new();
        for r in &here {
            eval_rule(r, &stores, None, &mut fresh);
        }
        rounds += 1;
        let mut delta: HashMap<usize, Store> = HashMap::new();
        for (p, t) in fresh.drain(..) {
            if stores[p].insert(t.clone()) {
                derived += 1;
                delta.entry(p).or_default().insert(t);
            }
        }
        // Semi-naïve rounds: one evaluation per recursive positive
        // occurrence, that occurrence restricted to the previous delta.
        while !delta.is_empty() {
            for r in &here {
                for (occ, a) in r.pos.iter().enumerate() {
                    if cur.contains(&a.pred) {
                        eval_rule(r, &stores, Some((occ, &delta)), &mut fresh);
                    }
                }
            }
            rounds += 1;
            let mut next: HashMap<usize, Store> = HashMap::new();
            for (p, t) in fresh.drain(..) {
                if stores[p].insert(t.clone()) {
                    derived += 1;
                    next.entry(p).or_default().insert(t);
                }
            }
            delta = next;
        }
    }

    Ok(Evaluation {
        names: compiler.names,
        preds: compiler.preds,
        stores,
        rounds,
        derived,
    })
}

/// Evaluates one rule, appending every derivable head tuple to `out`.
/// When `delta` is `Some((occ, d))`, positive literal `occ` ranges over
/// `d` instead of the full store (the semi-naïve restriction).
fn eval_rule(
    r: &CRule,
    stores: &[Store],
    delta: Option<(usize, &HashMap<usize, Store>)>,
    out: &mut Vec<(usize, Tuple)>,
) {
    // Greedy join order: most-bound literal first; the delta occurrence,
    // when present, always leads (it is usually the smallest relation).
    let m = r.pos.len();
    let mut order: Vec<usize> = Vec::with_capacity(m);
    let mut used = vec![false; m];
    let mut bound = vec![false; r.n_slots];
    let mark = |a: &CAtom, bound: &mut [bool]| {
        for arg in &a.args {
            if let CArg::Slot(s) = arg {
                bound[*s] = true;
            }
        }
    };
    if let Some((occ, _)) = delta {
        order.push(occ);
        used[occ] = true;
        mark(&r.pos[occ], &mut bound);
    }
    while order.len() < m {
        let best = (0..m)
            .filter(|&i| !used[i])
            .max_by_key(|&i| {
                let boundness: usize = r.pos[i]
                    .args
                    .iter()
                    .filter(|a| match a {
                        CArg::Cst(_) => true,
                        CArg::Slot(s) => bound[*s],
                    })
                    .count();
                // Prefer more-bound, then earlier literals (max_by_key
                // takes the last maximum, so invert the index).
                (boundness, m - i)
            })
            .expect("unused literal exists");
        order.push(best);
        used[best] = true;
        mark(&r.pos[best], &mut bound);
    }
    let mut binding: Vec<Option<u32>> = vec![None; r.n_slots];
    search(0, &order, r, stores, delta, &mut binding, out);
}

fn value(a: &CArg, binding: &[Option<u32>]) -> u32 {
    match a {
        CArg::Cst(c) => *c,
        CArg::Slot(s) => binding[*s].expect("audited range restriction binds every slot"),
    }
}

fn ground(a: &CAtom, binding: &[Option<u32>]) -> Tuple {
    a.args.iter().map(|arg| value(arg, binding)).collect()
}

#[allow(clippy::too_many_arguments)]
fn search(
    k: usize,
    order: &[usize],
    r: &CRule,
    stores: &[Store],
    delta: Option<(usize, &HashMap<usize, Store>)>,
    binding: &mut Vec<Option<u32>>,
    out: &mut Vec<(usize, Tuple)>,
) {
    if k == order.len() {
        for (s, t) in &r.neq {
            if value(s, binding) == value(t, binding) {
                return;
            }
        }
        for na in &r.neg {
            // Negated predicates live in strictly lower strata
            // (stratification), so their stores are complete here.
            if stores[na.pred].contains(&ground(na, binding)) {
                return;
            }
        }
        out.push((r.head.pred, ground(&r.head, binding)));
        return;
    }
    let li = order[k];
    let atom = &r.pos[li];
    let source: &Store = match delta {
        Some((occ, d)) if occ == li => match d.get(&atom.pred) {
            Some(s) => s,
            None => return,
        },
        _ => &stores[atom.pred],
    };
    let mut trail: Vec<usize> = Vec::new();
    for tuple in source {
        if tuple.len() != atom.args.len() {
            continue;
        }
        let mut ok = true;
        for (arg, &val) in atom.args.iter().zip(tuple.iter()) {
            match arg {
                CArg::Cst(c) => {
                    if *c != val {
                        ok = false;
                        break;
                    }
                }
                CArg::Slot(s) => match binding[*s] {
                    Some(b) => {
                        if b != val {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        binding[*s] = Some(val);
                        trail.push(*s);
                    }
                },
            }
        }
        if ok {
            search(k + 1, order, r, stores, delta, binding, out);
        }
        for s in trail.drain(..) {
            binding[s] = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(text: &str) -> Evaluation {
        evaluate(&Program::parse(text).unwrap()).unwrap()
    }

    #[test]
    fn transitive_closure_on_a_chain() {
        let mut text = String::new();
        let n = 8;
        for i in 0..n {
            text.push_str(&format!("edge(\"{i}\", \"{}\").\n", i + 1));
        }
        text.push_str("reach(X, Y) :- edge(X, Y).\n");
        text.push_str("reach(X, Z) :- edge(X, Y), reach(Y, Z).\n");
        let ev = run(&text);
        // n + (n-1) + … + 1 pairs.
        assert_eq!(ev.count("reach"), n * (n + 1) / 2);
        // Semi-naïve on a chain needs about one round per length increment,
        // not one pass total — and far fewer than naive quadratic passes.
        assert!(ev.rounds() >= n, "rounds {} too few", ev.rounds());
        assert_eq!(ev.tuples("reach")[0], vec!["0", "1"]);
    }

    #[test]
    fn stratified_negation_completes_lower_strata_first() {
        let ev = run(
            "edge(\"a\", \"b\"). edge(\"b\", \"c\"). node(\"a\"). node(\"b\"). node(\"c\"). node(\"d\").\n\
             reach(X) :- edge(\"a\", X).\n\
             reach(Y) :- reach(X), edge(X, Y).\n\
             unreached(X) :- node(X), not reach(X).",
        );
        assert_eq!(ev.tuples("reach"), vec![vec!["b"], vec!["c"]]);
        assert_eq!(ev.tuples("unreached"), vec![vec!["a"], vec!["d"]]);
    }

    #[test]
    fn zero_arity_goals_and_builtins() {
        let ev = run(
            "p(\"a\", \"a\"). p(\"a\", \"b\").\n\
             offdiag :- p(X, Y), X != Y.\n\
             alldiag :- not offdiag.",
        );
        assert!(ev.holds("offdiag"));
        assert!(!ev.holds("alldiag"));
        let ev = run(
            "p(\"a\", \"a\").\n\
             offdiag :- p(X, Y), X != Y.\n\
             alldiag :- not offdiag.",
        );
        assert!(!ev.holds("offdiag"));
        assert!(ev.holds("alldiag"));
    }

    #[test]
    fn unsound_programs_are_refused_not_evaluated() {
        let unstratified = Program::parse("win(X) :- move(X, Y), not win(Y).\nmove(\"a\", \"b\").").unwrap();
        assert!(matches!(
            evaluate(&unstratified),
            Err(ExecError::Unsound(_))
        ));
        let unrestricted = Program::parse("p(X) :- q(Y).\nq(\"a\").").unwrap();
        assert!(matches!(evaluate(&unrestricted), Err(ExecError::Unsound(_))));
    }

    #[test]
    fn constants_in_rule_bodies_filter() {
        let ev = run(
            "n(\"c\", \"a\"). n(\"c\", \"b\"). n(\"d\", \"e\").\n\
             hit(Y) :- n(\"c\", Y).",
        );
        assert_eq!(ev.tuples("hit"), vec![vec!["a"], vec!["b"]]);
        assert_eq!(ev.derived(), 2);
    }
}
