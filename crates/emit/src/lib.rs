//! # cqa-emit
//!
//! Compiles a classified certainty problem into **self-contained
//! artifacts** — a stratified Datalog program or a SQL script — that
//! decide `CERTAINTY(q, FK)` for one embedded instance without any part
//! of this codebase present. The artifact *is* the complexity claim made
//! executable: FO routes emit non-recursive SQL (plain relational
//! algebra), the poly-time L/NL routes emit recursion (`WITH RECURSIVE` /
//! recursive Datalog rules), and fallback-only problems refuse to emit.
//!
//! The crate also vendors a semi-naïve stratified Datalog evaluator
//! ([`exec::evaluate`]) so the Datalog artifacts are *checked, not
//! trusted*: `emit ∘ exec` is the repo's fourth independent certainty
//! implementation (after the compiled FO plan, the poly-time backends and
//! the repair-enumeration oracle), and the differential tests here and in
//! `tests/prop_emit.rs` hold it equal to [`Solver::solve`].
//!
//! Entry point: bring [`SolverEmitExt`] into scope and call
//! [`SolverEmitExt::emit`] on any built solver.
//!
//! ```
//! use cqa_emit::{evaluate, datalog::Program, Format, SolverEmitExt};
//! use cqa_core::{ExecOptions, Problem, Solver};
//! use cqa_model::parser::{parse_fks, parse_instance, parse_query, parse_schema};
//! use std::sync::Arc;
//!
//! let s = Arc::new(parse_schema("N[2,1] O[1,1]").unwrap());
//! let q = parse_query(&s, "N(x,x), O(x)").unwrap();
//! let fks = parse_fks(&s, "N[2] -> O").unwrap();
//! let solver = Solver::builder(Problem::new(q, fks).unwrap())
//!     .options(ExecOptions::sequential())
//!     .build()
//!     .unwrap();
//! let db = parse_instance(&s, "N(a,a) O(a)").unwrap();
//!
//! let artifact = solver.emit(&db, Format::Datalog).unwrap();
//! let program = Program::parse(&artifact.text).unwrap();
//! let verdict = evaluate(&program).unwrap().holds(&artifact.goal);
//! assert_eq!(verdict, solver.solve(&db).is_certain());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod lower;
pub mod sql;

/// The Datalog dialect the artifacts are written in (re-exported from
/// `cqa-analyze`, whose auditor defined it first).
pub use cqa_analyze::datalog;

pub use exec::{evaluate, Evaluation, ExecError};
pub use lower::{derived_prefix, lower, Lowered};
pub use sql::{check_sql, emit_sql};

use cqa_analyze::AuditReport;
use cqa_core::{EmitSpec, EmitSpecError, Solver};
use cqa_model::Instance;
use std::fmt;
use std::str::FromStr;

/// The output language of an emitted artifact.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Format {
    /// A stratified Datalog program (executable by [`exec::evaluate`]).
    Datalog,
    /// A SQL script (DDL + INSERTs + one final `certain` query).
    Sql,
}

impl fmt::Display for Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Format::Datalog => write!(f, "datalog"),
            Format::Sql => write!(f, "sql"),
        }
    }
}

impl FromStr for Format {
    type Err = String;

    fn from_str(s: &str) -> Result<Format, String> {
        match s {
            "datalog" => Ok(Format::Datalog),
            "sql" => Ok(Format::Sql),
            other => Err(format!(
                "unknown format {other:?} (expected `datalog` or `sql`)"
            )),
        }
    }
}

/// A self-contained emitted artifact.
#[derive(Clone, Debug)]
pub struct Artifact {
    /// The language the artifact is written in.
    pub format: Format,
    /// The route that produced it: `"fo"`, `"reachability"` or
    /// `"dual-horn"`.
    pub route: &'static str,
    /// How to read the result: the zero-arity Datalog goal predicate, or
    /// the SQL result column (always `certain`).
    pub goal: String,
    /// The artifact itself.
    pub text: String,
}

/// Why emission failed.
#[derive(Debug)]
pub enum EmitError {
    /// The solver routed to the budgeted oracle — there is no
    /// polynomial-size artifact to emit for a coNP-hard residual problem.
    Spec(EmitSpecError),
    /// Internal invariant breach: the emitted Datalog failed its own
    /// range-restriction/stratification audit. Never expected; surfaced
    /// instead of executing an unsound program.
    UnsoundProgram(AuditReport),
    /// Internal invariant breach: the emitted SQL failed [`check_sql`].
    MalformedSql(String),
}

impl fmt::Display for EmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmitError::Spec(e) => write!(f, "{e}"),
            EmitError::UnsoundProgram(report) => {
                write!(f, "emitted Datalog failed its audit:\n{report}")
            }
            EmitError::MalformedSql(e) => write!(f, "emitted SQL failed its shape check: {e}"),
        }
    }
}

impl std::error::Error for EmitError {}

impl From<EmitSpecError> for EmitError {
    fn from(e: EmitSpecError) -> EmitError {
        EmitError::Spec(e)
    }
}

fn route_label(spec: &EmitSpec) -> &'static str {
    match spec {
        EmitSpec::Fo { .. } => "fo",
        EmitSpec::Reachability { .. } => "reachability",
        EmitSpec::DualHorn { .. } => "dual-horn",
    }
}

/// Extension trait adding artifact emission to [`Solver`].
///
/// A trait (rather than an inherent method) because emission depends on
/// `cqa-analyze`'s Datalog dialect, which `cqa-core` does not; the
/// dependency arrow stays `emit → core`.
pub trait SolverEmitExt {
    /// Compiles this solver's route over `db` into a self-contained
    /// artifact. Every emitted artifact is validated before it is
    /// returned: Datalog must pass `cqa_analyze::audit_program`, SQL must
    /// pass [`check_sql`].
    fn emit(&self, db: &Instance, format: Format) -> Result<Artifact, EmitError>;
}

impl SolverEmitExt for Solver {
    fn emit(&self, db: &Instance, format: Format) -> Result<Artifact, EmitError> {
        let spec = self.emit_spec()?;
        let route = route_label(&spec);
        let schema = self.problem().query().schema();
        match format {
            Format::Datalog => {
                let lowered = lower(&spec, schema, db);
                let report = cqa_analyze::audit_program(&lowered.program);
                if !report.is_clean() {
                    return Err(EmitError::UnsoundProgram(report));
                }
                let text = format!(
                    "% cqa emit: route={route} goal={}\n{}",
                    lowered.goal, lowered.program
                );
                Ok(Artifact {
                    format,
                    route,
                    goal: lowered.goal,
                    text,
                })
            }
            Format::Sql => {
                let text = emit_sql(&spec, schema, db);
                check_sql(&text).map_err(EmitError::MalformedSql)?;
                Ok(Artifact {
                    format,
                    route,
                    goal: "certain".to_string(),
                    text,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_core::{ExecOptions, Problem, Solver};
    use cqa_model::parser::{parse_fks, parse_instance, parse_query, parse_schema};
    use std::sync::Arc;

    fn solver_for(schema: &str, query: &str, fks: &str) -> (Arc<cqa_model::Schema>, Solver) {
        let s = Arc::new(parse_schema(schema).unwrap());
        let q = parse_query(&s, query).unwrap();
        let fks = parse_fks(&s, fks).unwrap();
        let solver = Solver::builder(Problem::new(q, fks).unwrap())
            .options(ExecOptions::sequential())
            .build()
            .unwrap();
        (s, solver)
    }

    #[test]
    fn emitted_datalog_carries_the_goal_in_its_header() {
        let (s, solver) = solver_for("N[2,1] O[1,1]", "N(x,x), O(x)", "N[2] -> O");
        let db = parse_instance(&s, "N(a,a) O(a)").unwrap();
        let a = solver.emit(&db, Format::Datalog).unwrap();
        assert_eq!(a.route, "reachability");
        assert_eq!(a.goal, "cqa_certain");
        assert!(a.text.starts_with("% cqa emit: route=reachability goal=cqa_certain\n"));
        // The header comment must not break re-parsing.
        datalog::Program::parse(&a.text).unwrap();
    }

    #[test]
    fn emitted_sql_passes_its_own_check() {
        let (s, solver) = solver_for("N[2,1] O[1,1] P[1,1]", "N('c',y), O(y), P(y)", "N[2] -> O");
        let db = parse_instance(&s, "N(c,a) O(a) P(a)").unwrap();
        let a = solver.emit(&db, Format::Sql).unwrap();
        assert_eq!(a.route, "fo");
        assert_eq!(a.goal, "certain");
        check_sql(&a.text).unwrap();
    }

    #[test]
    fn fallback_only_problems_refuse_to_emit() {
        // Example 13's q2: NL-hard and not a Proposition 16/17 shape (O
        // has arity 2), so the only route is the budgeted oracle.
        let s = Arc::new(parse_schema("N[3,1] O[2,1]").unwrap());
        let q = parse_query(&s, "N(x,'c',y), O(y,w)").unwrap();
        let fks = parse_fks(&s, "N[3] -> O").unwrap();
        let solver = Solver::builder(Problem::new(q, fks).unwrap())
            .options(ExecOptions::sequential().allow_fallback())
            .build()
            .unwrap();
        let db = parse_instance(&s, "N(k,c,a) O(a,b)").unwrap();
        for format in [Format::Datalog, Format::Sql] {
            match solver.emit(&db, format) {
                Err(EmitError::Spec(EmitSpecError::FallbackOnly)) => {}
                other => panic!("expected FallbackOnly, got {other:?}"),
            }
        }
    }

    #[test]
    fn format_round_trips_through_strings() {
        for f in [Format::Datalog, Format::Sql] {
            assert_eq!(f.to_string().parse::<Format>().unwrap(), f);
        }
        assert!("prolog".parse::<Format>().is_err());
    }
}
