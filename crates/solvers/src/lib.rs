//! # cqa-solvers
//!
//! Polynomial-time solvers for the CQA problems the paper pins at NL- and
//! P-completeness, plus the combinatorial substrates they reduce to:
//!
//! * directed-graph **reachability** ([`reach`]) — the NL-complete problem
//!   behind Lemma 15 and Proposition 16;
//! * **Horn / dual-Horn SAT** with unit propagation ([`horn`]) — the
//!   P-complete problem behind Proposition 17;
//! * the **Proposition 16 solver**: `CERTAINTY(q, FK)` for
//!   `q = {N(x,x), O(x)}`, `FK = {N[2]→O}`, decided via reachability
//!   ([`prop16`]);
//! * the **Proposition 17 solver**: `CERTAINTY(q, FK)` for
//!   `q = {N(x,'c',y), O(y)}`, `FK = {N[3]→O}`, decided via dual-Horn SAT
//!   ([`prop17`]);
//! * the **Figure 3 reduction** from reachability to the complement of
//!   `CERTAINTY(q, FK)`, which generates the NL-hardness instance family
//!   ([`fig3`]).
//!
//! Each solver is validated against the exhaustive repair oracle of
//! `cqa-repair` on small instances (see the crate tests and the integration
//! suite).
//!
//! The [`backend`] module packages the polynomial-time deciders behind one
//! [`backend::Backend`] trait — pre-bound adapters (relation names, middle
//! constant) that `cqa-core`'s unified `Solver` dispatches to for any
//! problem isomorphic to Proposition 16 or 17 up to renaming.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod fig3;
pub mod horn;
pub mod prop16;
pub mod prop17;
pub mod reach;

pub use backend::{Backend, DualHornBackend, ReachabilityBackend};
pub use fig3::Fig3Instance;
pub use horn::{DualHornFormula, HornFormula};
pub use reach::DiGraph;
