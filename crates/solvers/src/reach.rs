//! Directed graphs and reachability (the canonical NL-complete problem).

use std::collections::{BTreeMap, BTreeSet};

/// A directed graph over `usize` vertices.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DiGraph {
    adj: BTreeMap<usize, BTreeSet<usize>>,
    vertices: BTreeSet<usize>,
}

impl DiGraph {
    /// Creates an empty graph.
    pub fn new() -> DiGraph {
        DiGraph::default()
    }

    /// Adds a vertex.
    pub fn add_vertex(&mut self, v: usize) {
        self.vertices.insert(v);
    }

    /// Adds an edge (vertices are added implicitly).
    pub fn add_edge(&mut self, u: usize, v: usize) {
        self.vertices.insert(u);
        self.vertices.insert(v);
        self.adj.entry(u).or_default().insert(v);
    }

    /// The vertices.
    pub fn vertices(&self) -> impl Iterator<Item = usize> + '_ {
        self.vertices.iter().copied()
    }

    /// The edges.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj
            .iter()
            .flat_map(|(&u, vs)| vs.iter().map(move |&v| (u, v)))
    }

    /// Successors of `u`.
    pub fn successors(&self, u: usize) -> impl Iterator<Item = usize> + '_ {
        self.adj.get(&u).into_iter().flatten().copied()
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.adj.values().map(|s| s.len()).sum()
    }

    /// Whether `t` is reachable from `s` (BFS; includes the trivial path).
    pub fn reachable(&self, s: usize, t: usize) -> bool {
        if s == t {
            return self.vertices.contains(&s);
        }
        let mut seen = BTreeSet::new();
        let mut queue = vec![s];
        seen.insert(s);
        while let Some(u) = queue.pop() {
            for v in self.successors(u) {
                if v == t {
                    return true;
                }
                if seen.insert(v) {
                    queue.push(v);
                }
            }
        }
        false
    }

    /// All vertices reachable from `s` (including `s` itself if present).
    pub fn reachable_set(&self, s: usize) -> BTreeSet<usize> {
        let mut seen = BTreeSet::new();
        if !self.vertices.contains(&s) {
            return seen;
        }
        let mut queue = vec![s];
        seen.insert(s);
        while let Some(u) = queue.pop() {
            for v in self.successors(u) {
                if seen.insert(v) {
                    queue.push(v);
                }
            }
        }
        seen
    }

    /// Whether the graph is acyclic.
    pub fn is_acyclic(&self) -> bool {
        // DFS with colors.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color: BTreeMap<usize, Color> =
            self.vertices.iter().map(|&v| (v, Color::White)).collect();
        fn dfs(
            g: &DiGraph,
            u: usize,
            color: &mut BTreeMap<usize, Color>,
        ) -> bool {
            color.insert(u, Color::Gray);
            for v in g.successors(u) {
                match color[&v] {
                    Color::Gray => return false,
                    Color::White => {
                        if !dfs(g, v, color) {
                            return false;
                        }
                    }
                    Color::Black => {}
                }
            }
            color.insert(u, Color::Black);
            true
        }
        let vs: Vec<usize> = self.vertices.iter().copied().collect();
        for v in vs {
            if color[&v] == Color::White && !dfs(self, v, &mut color) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> DiGraph {
        let mut g = DiGraph::new();
        for i in 0..n.saturating_sub(1) {
            g.add_edge(i, i + 1);
        }
        g
    }

    #[test]
    fn reachability_on_path() {
        let g = path_graph(5);
        assert!(g.reachable(0, 4));
        assert!(!g.reachable(4, 0));
        assert!(g.reachable(2, 2));
        assert!(!g.reachable(0, 99));
    }

    #[test]
    fn reachable_set() {
        let mut g = path_graph(4);
        g.add_vertex(77);
        let r = g.reachable_set(1);
        assert_eq!(r, [1, 2, 3].into_iter().collect());
        assert!(g.reachable_set(99).is_empty());
    }

    #[test]
    fn acyclicity() {
        let mut g = path_graph(4);
        assert!(g.is_acyclic());
        g.add_edge(3, 0);
        assert!(!g.is_acyclic());
    }

    #[test]
    fn counts() {
        let g = path_graph(4);
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.edges().count(), 3);
    }
}
