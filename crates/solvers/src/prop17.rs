//! Proposition 17: `CERTAINTY(q, FK)` is **P-complete** for
//! `q = {N(x,'c',y), O(y)}` and `FK = {N[3] → O}`.
//!
//! Membership in P (this module) reduces the *complement* to DUAL HORN SAT,
//! following the paper's proof sketch. Variables are database constants,
//! read as "an `O`-fact with this key is present in the repair":
//!
//! * for every fact `O(p) ∈ db`, a positive unit clause `p` (database
//!   `O`-facts are never deleted by a repair);
//! * for every `N`-block `{N(i,c,p₁), …, N(i,c,pₙ), N(i,b₁,q₁), …,
//!   N(i,bₘ,qₘ)}` with `bⱼ ≠ c`: for each `j ∈ [n]`, a clause
//!   `¬pⱼ ∨ q₁ ∨ ⋯ ∨ qₘ` — if `O(pⱼ)` is available, the block cannot be
//!   dropped, so a falsifying repair must pick some `N(i,bᵢ,qᵢ)` and insert
//!   `O(qᵢ)`.
//!
//! `db` is a **no**-instance iff the formula is satisfiable.

use crate::horn::DualHornFormula;
use cqa_model::{Cst, Instance, RelName};
use std::collections::BTreeMap;

/// The schema text for Proposition 17's problem.
pub const SCHEMA: &str = "N[3,1] O[1,1]";
/// The query text for Proposition 17's problem.
pub const QUERY: &str = "N(x,'c',y), O(y)";
/// The foreign-key text for Proposition 17's problem.
pub const FKS: &str = "N[3] -> O";

/// Decides `CERTAINTY({N(x,'c',y), O(y)}, {N[3]→O})` on `db` in polynomial
/// time, where `c` is the query's middle constant.
pub fn certain(db: &Instance, c: Cst) -> bool {
    certain_in(db, RelName::new("N"), RelName::new("O"), c)
}

/// [`certain`] generalized to any relation pair isomorphic to the
/// proposition's `(N, O)`: `n` must have signature `[3,1]` and `o`
/// signature `[1,1]` in `db`'s schema, and `c` is the middle constant of
/// the `n`-atom. The unified solver routes every problem of this shape
/// (up to renaming) here.
pub fn certain_in(db: &Instance, n: RelName, o: RelName, c: Cst) -> bool {
    !build_formula_in(db, n, o, c).satisfiable()
}

/// Builds the paper's dual-Horn formula `ϕ_db`; exposed for the benchmarks.
pub fn build_formula(db: &Instance, c: Cst) -> DualHornFormula {
    build_formula_in(db, RelName::new("N"), RelName::new("O"), c)
}

/// [`build_formula`] generalized to any relation pair isomorphic to
/// `(N, O)` (see [`certain_in`]).
pub fn build_formula_in(db: &Instance, n: RelName, o: RelName, c: Cst) -> DualHornFormula {
    let mut ids: BTreeMap<Cst, usize> = BTreeMap::new();
    let id = |ids: &mut BTreeMap<Cst, usize>, v: Cst| -> usize {
        let next = ids.len();
        *ids.entry(v).or_insert(next)
    };

    let mut f = DualHornFormula::new();
    for fact in db.facts_of(o) {
        let p = id(&mut ids, fact.args[0]);
        f.add_clause(vec![], vec![p]);
    }
    for (_, block) in db.blocks(n) {
        let ps: Vec<usize> = block
            .iter()
            .filter(|fact| fact.args[1] == c)
            .map(|fact| id(&mut ids, fact.args[2]))
            .collect();
        let qs: Vec<usize> = block
            .iter()
            .filter(|fact| fact.args[1] != c)
            .map(|fact| id(&mut ids, fact.args[2]))
            .collect();
        for &p in &ps {
            f.add_clause(vec![p], qs.clone());
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_model::parser::{parse_fks, parse_instance, parse_query, parse_schema};
    use cqa_repair::{CertaintyOracle, OracleOutcome};
    use std::sync::Arc;

    fn check_against_oracle(text: &str) {
        let s = Arc::new(parse_schema(SCHEMA).unwrap());
        let q = parse_query(&s, QUERY).unwrap();
        let fks = parse_fks(&s, FKS).unwrap();
        let db = parse_instance(&s, text).unwrap();
        let fast = certain(&db, Cst::new("c"));
        match CertaintyOracle::new().is_certain(&db, &q, &fks) {
            OracleOutcome::Certain => assert!(fast, "oracle says certain on {text}"),
            OracleOutcome::NotCertain(_) => {
                assert!(!fast, "oracle says not certain on {text}")
            }
            OracleOutcome::Inconclusive(why) => panic!("oracle inconclusive on {text}: {why}"),
        }
    }

    #[test]
    fn matches_oracle_on_hand_picked_instances() {
        for text in [
            "",
            "O(1)",
            "N(i,c,1)",
            "N(i,c,1) O(1)",
            "N(i,c,1) N(i,d,2) O(1)",
            "N(i,c,1) N(i,d,2) O(1) O(2)",
            "N(b1,c,1) N(b1,d,2) N(b2,c,2) O(1)",
            "N(b1,c,1) N(b1,d,2) N(b2,d,3) O(1)",
            "N(b1,c,1) N(b1,d,2) N(b2,c,2) N(b2,d,3) O(1)",
            "N(b1,c,1) N(b1,c,2) O(1) O(2)",
            "N(b1,d,1) O(1)",
        ] {
            check_against_oracle(text);
        }
    }

    #[test]
    fn blockchain_family_semantics() {
        // §4's chain: certainty propagates block to block; the final block's
        // middle value decides the answer.
        let s = Arc::new(parse_schema(SCHEMA).unwrap());
        let c = Cst::new("c");

        // n = 2 chain, closing fact has middle c: yes-instance.
        let yes = parse_instance(
            &s,
            "N(b1,c,1) N(b1,d,2) N(b2,c,2) N(b2,d,3) N(b3,c,3) O(1)",
        )
        .unwrap();
        assert!(certain(&yes, c));

        // Same chain but the closing fact has middle d: no-instance.
        let no = parse_instance(
            &s,
            "N(b1,c,1) N(b1,d,2) N(b2,c,2) N(b2,d,3) N(b3,d,4) O(1)",
        )
        .unwrap();
        assert!(!certain(&no, c));

        // Dropping O(1) breaks the anchor: no-instance (paper's db′).
        let no2 = parse_instance(
            &s,
            "N(b1,c,1) N(b1,d,2) N(b2,c,2) N(b2,d,3) N(b3,c,3)",
        )
        .unwrap();
        assert!(!certain(&no2, c));
    }

    #[test]
    fn formula_shape() {
        let s = Arc::new(parse_schema(SCHEMA).unwrap());
        let db = parse_instance(&s, "N(i,c,1) N(i,d,2) O(1)").unwrap();
        let f = build_formula(&db, Cst::new("c"));
        // One unit clause for O(1), one block clause ¬1 ∨ 2.
        assert_eq!(f.len(), 2);
        assert!(f.satisfiable()); // choose the d-fact, O(2) inserted
    }
}
