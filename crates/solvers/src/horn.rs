//! Horn and dual-Horn satisfiability with unit propagation.
//!
//! A clause is *Horn* if it has at most one positive literal, and *dual
//! Horn* if it has at most one negative literal. Satisfiability of either is
//! decidable in linear time by unit propagation and is P-complete
//! (Schaefer) — exactly the engine Proposition 17 of the paper reduces to
//! (DUAL HORN SAT).

use std::collections::BTreeSet;

/// A CNF clause with positive and negative variable occurrences.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Clause {
    /// Positive literals.
    pub pos: Vec<usize>,
    /// Negated literals.
    pub neg: Vec<usize>,
}

/// A conjunction of Horn clauses (≤ 1 positive literal each).
#[derive(Clone, Debug, Default)]
pub struct HornFormula {
    clauses: Vec<Clause>,
    num_vars: usize,
}

impl HornFormula {
    /// Creates an empty formula.
    pub fn new() -> HornFormula {
        HornFormula::default()
    }

    /// Adds a clause `⋁neg̅ ∨ ⋁pos`; panics if it is not Horn.
    pub fn add_clause(&mut self, neg: Vec<usize>, pos: Vec<usize>) {
        assert!(pos.len() <= 1, "Horn clauses have at most one positive literal");
        for &v in neg.iter().chain(pos.iter()) {
            self.num_vars = self.num_vars.max(v + 1);
        }
        self.clauses.push(Clause { pos, neg });
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Whether the formula has no clauses.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Unit propagation. Returns the minimal model (the set of variables
    /// forced true) if satisfiable, `None` otherwise.
    pub fn solve(&self) -> Option<BTreeSet<usize>> {
        let mut true_vars = vec![false; self.num_vars];
        // counts[i] = number of negative literals of clause i not yet true.
        let mut counts: Vec<usize> = self.clauses.iter().map(|c| c.neg.len()).collect();
        // watch[v] = clauses where v occurs negatively.
        let mut watch: Vec<Vec<usize>> = vec![Vec::new(); self.num_vars];
        for (i, c) in self.clauses.iter().enumerate() {
            for &v in &c.neg {
                watch[v].push(i);
            }
        }
        let mut queue: Vec<usize> = Vec::new();
        for (i, c) in self.clauses.iter().enumerate() {
            if counts[i] == 0 {
                // all-negative part satisfied vacuously: positive must hold
                match c.pos.first() {
                    Some(&v) => {
                        if !true_vars[v] {
                            true_vars[v] = true;
                            queue.push(v);
                        }
                    }
                    None => return None, // empty clause
                }
            }
        }
        while let Some(v) = queue.pop() {
            for &i in &watch[v] {
                // v became true; one more negative literal of clause i is
                // falsified. (A variable may appear several times; count each
                // occurrence once by recomputing.)
                counts[i] = self.clauses[i]
                    .neg
                    .iter()
                    .filter(|&&u| !true_vars[u])
                    .count();
                if counts[i] == 0 {
                    match self.clauses[i].pos.first() {
                        Some(&u) => {
                            if !true_vars[u] {
                                true_vars[u] = true;
                                queue.push(u);
                            }
                        }
                        None => return None,
                    }
                }
            }
        }
        Some(
            true_vars
                .iter()
                .enumerate()
                .filter(|(_, &t)| t)
                .map(|(v, _)| v)
                .collect(),
        )
    }

    /// Brute-force satisfiability over all assignments (testing only).
    pub fn brute_force_sat(&self) -> bool {
        let n = self.num_vars;
        assert!(n <= 20, "brute force is for small formulas");
        'outer: for mask in 0..(1u64 << n) {
            for c in &self.clauses {
                let sat = c.pos.iter().any(|&v| mask & (1 << v) != 0)
                    || c.neg.iter().any(|&v| mask & (1 << v) == 0);
                if !sat {
                    continue 'outer;
                }
            }
            return true;
        }
        false
    }
}

/// A conjunction of dual-Horn clauses (≤ 1 negative literal each).
#[derive(Clone, Debug, Default)]
pub struct DualHornFormula {
    clauses: Vec<Clause>,
    num_vars: usize,
}

impl DualHornFormula {
    /// Creates an empty formula.
    pub fn new() -> DualHornFormula {
        DualHornFormula::default()
    }

    /// Adds a clause `⋁neg̅ ∨ ⋁pos`; panics if it is not dual Horn.
    pub fn add_clause(&mut self, neg: Vec<usize>, pos: Vec<usize>) {
        assert!(
            neg.len() <= 1,
            "dual-Horn clauses have at most one negative literal"
        );
        for &v in neg.iter().chain(pos.iter()) {
            self.num_vars = self.num_vars.max(v + 1);
        }
        self.clauses.push(Clause { pos, neg });
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Whether the formula has no clauses.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Solves by dualization: flipping the polarity of every literal yields a
    /// Horn formula whose models are the complements of this formula's
    /// models. Returns the *maximal* model (the set of variables that may be
    /// true; its complement is the forced-false set) if satisfiable.
    pub fn solve(&self) -> Option<BTreeSet<usize>> {
        let mut horn = HornFormula::new();
        horn.num_vars = self.num_vars;
        for c in &self.clauses {
            horn.add_clause(c.pos.clone(), c.neg.clone());
        }
        let forced_false = horn.solve()?;
        Some(
            (0..self.num_vars)
                .filter(|v| !forced_false.contains(v))
                .collect(),
        )
    }

    /// Whether the formula is satisfiable.
    pub fn satisfiable(&self) -> bool {
        self.solve().is_some()
    }

    /// Brute-force satisfiability (testing only).
    pub fn brute_force_sat(&self) -> bool {
        let mut f = HornFormula::new();
        f.num_vars = self.num_vars;
        f.clauses = self.clauses.clone();
        // Reuse the generic checker (it ignores the Horn restriction).
        f.brute_force_sat()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horn_unit_propagation() {
        // a; a→b; b→c: minimal model {a,b,c}.
        let mut f = HornFormula::new();
        f.add_clause(vec![], vec![0]);
        f.add_clause(vec![0], vec![1]);
        f.add_clause(vec![1], vec![2]);
        assert_eq!(f.solve(), Some([0, 1, 2].into_iter().collect()));
    }

    #[test]
    fn horn_unsat() {
        // a; a→b; ¬a∨¬b.
        let mut f = HornFormula::new();
        f.add_clause(vec![], vec![0]);
        f.add_clause(vec![0], vec![1]);
        f.add_clause(vec![0, 1], vec![]);
        assert_eq!(f.solve(), None);
        assert!(!f.brute_force_sat());
    }

    #[test]
    fn horn_empty_clause_unsat() {
        let mut f = HornFormula::new();
        f.add_clause(vec![], vec![]);
        assert_eq!(f.solve(), None);
    }

    #[test]
    fn horn_all_false_model() {
        // a→b only: minimal model ∅.
        let mut f = HornFormula::new();
        f.add_clause(vec![0], vec![1]);
        assert_eq!(f.solve(), Some(BTreeSet::new()));
    }

    #[test]
    fn dual_horn_propagation() {
        // ¬a (a false); b∨a (so b true... wait: with a false, b must be true
        // only if the clause has no other support): clause {a, b} positive.
        let mut f = DualHornFormula::new();
        f.add_clause(vec![0], vec![]); // ¬a
        f.add_clause(vec![], vec![0, 1]); // a ∨ b
        let model = f.solve().unwrap();
        assert!(!model.contains(&0));
        assert!(model.contains(&1));
    }

    #[test]
    fn dual_horn_unsat() {
        // ¬a; ¬b; a∨b.
        let mut f = DualHornFormula::new();
        f.add_clause(vec![0], vec![]);
        f.add_clause(vec![1], vec![]);
        f.add_clause(vec![], vec![0, 1]);
        assert!(!f.satisfiable());
        assert!(!f.brute_force_sat());
    }

    #[test]
    fn dual_horn_matches_brute_force_on_samples() {
        // Systematic small cases: all dual-Horn formulas over 3 vars with 2
        // clauses drawn from a pool.
        let pool: Vec<(Vec<usize>, Vec<usize>)> = vec![
            (vec![], vec![0]),
            (vec![], vec![0, 1]),
            (vec![], vec![1, 2]),
            (vec![0], vec![]),
            (vec![1], vec![0]),
            (vec![2], vec![0, 1]),
            (vec![0], vec![1, 2]),
        ];
        for (i, a) in pool.iter().enumerate() {
            for b in pool.iter().skip(i) {
                let mut f = DualHornFormula::new();
                f.add_clause(a.0.clone(), a.1.clone());
                f.add_clause(b.0.clone(), b.1.clone());
                assert_eq!(
                    f.satisfiable(),
                    f.brute_force_sat(),
                    "clauses {a:?} {b:?}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at most one positive")]
    fn horn_rejects_non_horn() {
        let mut f = HornFormula::new();
        f.add_clause(vec![], vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "at most one negative")]
    fn dual_horn_rejects_non_dual() {
        let mut f = DualHornFormula::new();
        f.add_clause(vec![0, 1], vec![]);
    }
}
