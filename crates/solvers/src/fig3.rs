//! The Figure 3 reduction: directed reachability → complement of
//! `CERTAINTY({N(x,'c',y), O(y)}, {N[3]→O})`.
//!
//! Given an (acyclic) digraph `G` with source `s` and target `t`:
//!
//! * for every vertex `v ≠ t`: a fact `N(v, c, v)`;
//! * for every edge `(u, w)`: a fact `N(u, d, w)`;
//! * one fact `O(s)`.
//!
//! Then the database is a **no**-instance iff `t` is reachable from `s` —
//! the falsifying repair walks the path, repeatedly choosing the `d`-fact of
//! the current block and inserting the `O`-fact that activates the next
//! block (paper §7). This is the NL-hardness witness family of Lemma 15 and
//! powers the `fig3_reachability` benchmark (experiment E6).

use crate::reach::DiGraph;
use cqa_model::parser::{parse_fks, parse_query, parse_schema};
use cqa_model::{Cst, Fact, FkSet, Instance, Query, RelName, Schema};
use std::sync::Arc;

/// A generated Figure-3 instance.
#[derive(Clone, Debug)]
pub struct Fig3Instance {
    /// The schema `N[3,1] O[1,1]`.
    pub schema: Arc<Schema>,
    /// The query `{N(x,'c',y), O(y)}`.
    pub query: Query,
    /// The foreign keys `{N[3]→O}`.
    pub fks: FkSet,
    /// The generated database.
    pub db: Instance,
    /// Whether `t` was reachable from `s` in the source graph (ground
    /// truth: iff this holds, `db` is a no-instance).
    pub reachable: bool,
}

/// Builds the reduction instance from `(g, s, t)`. The graph should be
/// acyclic (reachability remains NL-hard on DAGs); vertices are rendered as
/// constants `v{i}`.
pub fn reduce(g: &DiGraph, s: usize, t: usize) -> Fig3Instance {
    let schema = Arc::new(parse_schema("N[3,1] O[1,1]").unwrap());
    let query = parse_query(&schema, "N(x,'c',y), O(y)").unwrap();
    let fks = parse_fks(&schema, "N[3] -> O").unwrap();

    let name = |v: usize| Cst::new(&format!("v{v}"));
    let c = Cst::new("c");
    let d = Cst::new("d");
    let n = RelName::new("N");
    let o = RelName::new("O");

    let mut db = Instance::new(schema.clone());
    for v in g.vertices() {
        if v != t {
            db.insert(Fact::new(n, vec![name(v), c, name(v)]))
                .expect("schema ok");
        }
    }
    for (u, w) in g.edges() {
        db.insert(Fact::new(n, vec![name(u), d, name(w)]))
            .expect("schema ok");
    }
    db.insert(Fact::new(o, vec![name(s)])).expect("schema ok");

    Fig3Instance {
        schema,
        query,
        fks,
        db,
        reachable: g.reachable(s, t),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_repair::{CertaintyOracle, OracleOutcome};

    fn verify(g: &DiGraph, s: usize, t: usize) {
        let inst = reduce(g, s, t);
        // Fast solver (Proposition 17 engine).
        let fast = crate::prop17::certain(&inst.db, Cst::new("c"));
        assert_eq!(
            fast, !inst.reachable,
            "solver: no-instance iff reachable; graph {g:?} s={s} t={t}"
        );
        // Exhaustive oracle on small instances.
        if inst.db.len() <= 10 {
            match CertaintyOracle::new().is_certain(&inst.db, &inst.query, &inst.fks) {
                OracleOutcome::Certain => assert!(!inst.reachable),
                OracleOutcome::NotCertain(_) => assert!(inst.reachable),
                OracleOutcome::Inconclusive(why) => panic!("oracle inconclusive: {why}"),
            }
        }
    }

    #[test]
    fn single_edge() {
        let mut g = DiGraph::new();
        g.add_edge(0, 1);
        verify(&g, 0, 1); // reachable → no-instance
        verify(&g, 1, 0); // not reachable → yes-instance
    }

    #[test]
    fn fig3_example_graph() {
        // The paper's Figure 3 graph: s→1, s→2, 2→t (s=0, t=3).
        let mut g = DiGraph::new();
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(2, 3);
        verify(&g, 0, 3);

        // Disconnect t: every path from s dies elsewhere → yes-instance.
        let mut g2 = DiGraph::new();
        g2.add_edge(0, 1);
        g2.add_edge(0, 2);
        g2.add_vertex(3);
        verify(&g2, 0, 3);
    }

    #[test]
    fn longer_paths_and_dead_ends() {
        let mut g = DiGraph::new();
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 4);
        g.add_edge(1, 3); // dead end
        verify(&g, 0, 4);
        verify(&g, 3, 4);
    }

    #[test]
    fn isolated_source() {
        let mut g = DiGraph::new();
        g.add_vertex(0);
        g.add_vertex(1);
        verify(&g, 0, 1);
    }
}
