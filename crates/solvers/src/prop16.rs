//! Proposition 16: `CERTAINTY(q, FK)` is **NL-complete** for
//! `q = {N(x,x), O(x)}` and `FK = {N[2] → O}`.
//!
//! Two polynomial-time deciders are provided, both validated against the
//! exhaustive ⊕-repair oracle:
//!
//! * [`certain`] — a dual-Horn encoding derived directly from ⊕-repair
//!   semantics. Variables are constants `w`, read as "`O(w)` belongs to the
//!   repair":
//!   - `O(p) ∈ db` forces `x_p` (database `O`-facts are never deleted);
//!   - for every `N`-block with key `u` and member `N(u, w)`: if `x_w` holds
//!     the block cannot be dropped (the member would be re-addable), so a
//!     falsifying repair must keep some **non-diagonal** member `N(u, wᵢ)`
//!     (`wᵢ ≠ u`), which requires `x_{wᵢ}`: clause `¬x_w ∨ ⋁ x_{wᵢ}`.
//!     `db` is a no-instance iff the formula is satisfiable.
//!
//! * [`certain_via_reachability`] — the paper's proof-sketch graph, refined:
//!   vertices `V = {c | N(c,c) ∈ db} ∪ {⊥}`; block edges to in-`V` seconds,
//!   or to `⊥` when a second escapes `V`; `c` is marked when `O(c) ∈ db`.
//!   The sketch's criterion "`⊥` reachable from every marked vertex" must be
//!   broadened to "**`⊥` or a cycle** reachable from every marked vertex": a
//!   falsifying repair may also walk a cycle of non-diagonal choices forever
//!   (e.g. `{N(a,a), N(a,b), N(b,b), N(b,a), O(a)}`, which has the
//!   falsifying repair `{N(a,b), N(b,a), O(a), O(b)}`). This refinement is
//!   still decidable in NL, preserving the proposition.

use crate::horn::DualHornFormula;
use crate::reach::DiGraph;
use cqa_model::{Cst, Instance, RelName};
use std::collections::{BTreeMap, BTreeSet};

/// The schema text for Proposition 16's problem.
pub const SCHEMA: &str = "N[2,1] O[1,1]";
/// The query text for Proposition 16's problem.
pub const QUERY: &str = "N(x,x), O(x)";
/// The foreign-key text for Proposition 16's problem.
pub const FKS: &str = "N[2] -> O";

/// Decides `CERTAINTY({N(x,x), O(x)}, {N[2]→O})` on `db` (dual-Horn
/// encoding; polynomial time).
pub fn certain(db: &Instance) -> bool {
    certain_in(db, RelName::new("N"), RelName::new("O"))
}

/// [`certain`] generalized to any relation pair isomorphic to the
/// proposition's `(N, O)`: `n` must have signature `[2,1]` and `o`
/// signature `[1,1]` in `db`'s schema. The unified solver routes every
/// problem of this shape (up to renaming) here.
pub fn certain_in(db: &Instance, n: RelName, o: RelName) -> bool {
    !build_formula_in(db, n, o).satisfiable()
}

/// Builds the dual-Horn formula whose satisfiability witnesses a falsifying
/// ⊕-repair; exposed for the benchmarks.
pub fn build_formula(db: &Instance) -> DualHornFormula {
    build_formula_in(db, RelName::new("N"), RelName::new("O"))
}

/// [`build_formula`] generalized to any relation pair isomorphic to
/// `(N, O)` (see [`certain_in`]).
pub fn build_formula_in(db: &Instance, n: RelName, o: RelName) -> DualHornFormula {
    let mut ids: BTreeMap<Cst, usize> = BTreeMap::new();
    let id = |ids: &mut BTreeMap<Cst, usize>, v: Cst| -> usize {
        let next = ids.len();
        *ids.entry(v).or_insert(next)
    };

    let mut f = DualHornFormula::new();
    for fact in db.facts_of(o) {
        let p = id(&mut ids, fact.args[0]);
        f.add_clause(vec![], vec![p]);
    }
    for (key, block) in db.blocks(n) {
        let u = key[0];
        let nondiag: Vec<usize> = block
            .iter()
            .filter(|fact| fact.args[1] != u)
            .map(|fact| id(&mut ids, fact.args[1]))
            .collect();
        for member in &block {
            let w = id(&mut ids, member.args[1]);
            f.add_clause(vec![w], nondiag.clone());
        }
    }
    f
}

/// Decides the same problem through the (cycle-refined) reachability
/// criterion of the paper's proof sketch. Agrees with [`certain`] on every
/// instance (tested); kept separate because it exhibits the NL upper bound.
pub fn certain_via_reachability(db: &Instance) -> bool {
    certain_via_reachability_in(db, RelName::new("N"), RelName::new("O"))
}

/// [`certain_via_reachability`] generalized to any relation pair isomorphic
/// to `(N, O)` (see [`certain_in`]).
pub fn certain_via_reachability_in(db: &Instance, n: RelName, o: RelName) -> bool {
    let bottom = 0usize;
    let mut ids: BTreeMap<Cst, usize> = BTreeMap::new();
    for fact in db.facts_of(n) {
        if fact.args[0] == fact.args[1] {
            let next = ids.len() + 1;
            ids.entry(fact.args[0]).or_insert(next);
        }
    }

    let mut g = DiGraph::new();
    g.add_vertex(bottom);
    for (&c, &cid) in &ids {
        g.add_vertex(cid);
        let others: Vec<Cst> = db
            .block(n, &[c])
            .iter()
            .map(|f| f.args[1])
            .filter(|&d| d != c)
            .collect();
        for d in others {
            match ids.get(&d) {
                Some(&did) => g.add_edge(cid, did),
                None => g.add_edge(cid, bottom),
            }
        }
    }

    // Vertices lying on a cycle: those that can reach themselves via ≥1 edge.
    let on_cycle: BTreeSet<usize> = g
        .vertices()
        .filter(|&v| g.successors(v).any(|s| g.reachable(s, v)))
        .collect();
    // Escape set: ⊥ plus all cycle vertices.
    let escapes: BTreeSet<usize> = on_cycle.iter().copied().chain([bottom]).collect();

    let marked: Vec<usize> = db
        .facts_of(o)
        .filter_map(|f| ids.get(&f.args[0]).copied())
        .collect();

    // no-instance iff every marked vertex reaches an escape.
    !marked
        .iter()
        .all(|&m| escapes.iter().any(|&e| g.reachable(m, e)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_model::parser::{parse_fks, parse_instance, parse_query, parse_schema};
    use cqa_repair::{CertaintyOracle, OracleOutcome};
    use std::sync::Arc;

    const CASES: &[&str] = &[
        "",
        "N(a,a) O(a)",
        "N(a,a)",
        "N(a,b)",
        "N(a,a) N(a,b) O(a)",
        "N(a,a) N(a,b) N(b,b) O(a)",
        "N(a,a) N(a,b) N(b,b) O(a) O(b)",
        "N(a,a) N(a,b) N(b,b) N(b,c) O(a)",
        "N(a,a) N(a,b) N(b,b) N(b,a) O(a)",
        "N(a,a) O(a) O(zz)",
        "N(a,a) N(b,b) O(a) O(b)",
        "N(a,a) N(a,b) N(b,b) N(b,c) N(c,c) O(a) O(c)",
        "N(a,a) N(a,e) N(w,w) N(w,e) O(a) O(w)",
        "N(a,a) N(a,b) N(b,c) N(c,c) O(a)",
        "N(a,b) N(a,c) O(a)",
        "N(a,a) N(a,b) N(b,b) N(b,a) N(c,c) O(a) O(c)",
    ];

    fn check_against_oracle(text: &str) {
        let s = Arc::new(parse_schema(SCHEMA).unwrap());
        let q = parse_query(&s, QUERY).unwrap();
        let fks = parse_fks(&s, FKS).unwrap();
        let db = parse_instance(&s, text).unwrap();
        let fast = certain(&db);
        match CertaintyOracle::new().is_certain(&db, &q, &fks) {
            OracleOutcome::Certain => assert!(fast, "oracle says certain on {text:?}"),
            OracleOutcome::NotCertain(_) => {
                assert!(!fast, "oracle says not certain on {text:?}")
            }
            OracleOutcome::Inconclusive(why) => panic!("oracle inconclusive on {text:?}: {why}"),
        }
    }

    #[test]
    fn dual_horn_matches_oracle() {
        for text in CASES {
            check_against_oracle(text);
        }
    }

    #[test]
    fn reachability_matches_dual_horn() {
        let s = Arc::new(parse_schema(SCHEMA).unwrap());
        for text in CASES {
            let db = parse_instance(&s, text).unwrap();
            assert_eq!(
                certain(&db),
                certain_via_reachability(&db),
                "criteria disagree on {text:?}"
            );
        }
    }

    #[test]
    fn cycle_refinement_matters() {
        // The instance that separates the naive sketch (⊥ only) from the
        // refined criterion (⊥ or cycle): a ⇄ b with O(a).
        let s = Arc::new(parse_schema(SCHEMA).unwrap());
        let db = parse_instance(&s, "N(a,a) N(a,b) N(b,b) N(b,a) O(a)").unwrap();
        assert!(!certain(&db), "falsifiable by cycling a → b → a");
        assert!(!certain_via_reachability(&db));
    }

    #[test]
    fn simple_yes_instance() {
        let s = Arc::new(parse_schema(SCHEMA).unwrap());
        let db = parse_instance(&s, "N(a,a) O(a)").unwrap();
        assert!(certain(&db));
    }

    #[test]
    fn escape_to_bottom_is_no_instance() {
        let s = Arc::new(parse_schema(SCHEMA).unwrap());
        let db = parse_instance(&s, "N(a,a) N(a,b) O(a)").unwrap();
        assert!(!certain(&db));
    }

    #[test]
    fn chain_without_escape_is_yes_instance() {
        let s = Arc::new(parse_schema(SCHEMA).unwrap());
        let db = parse_instance(&s, "N(a,a) N(a,b) N(b,b) O(a)").unwrap();
        assert!(certain(&db));
    }

    #[test]
    fn no_marked_vertices_is_no_instance() {
        let s = Arc::new(parse_schema(SCHEMA).unwrap());
        let db = parse_instance(&s, "N(a,a)").unwrap();
        assert!(!certain(&db));
    }
}
