//! The common backend interface behind the unified solver.
//!
//! The polynomial-time deciders of this crate ([`crate::prop16`],
//! [`crate::prop17`]) were written against the paper's literal relation
//! names. A production router needs to dispatch *any* problem whose shape
//! is isomorphic to one of the propositions, so this module packages each
//! decider as a [`Backend`]: a pre-bound, instance-in/verdict-out adapter
//! carrying the relation names (and, for Proposition 17, the middle
//! constant) the router matched. `cqa-core`'s `Solver` constructs one at
//! routing time and calls it per instance; the adapters are `Send + Sync`
//! so batched solving can shard instances across threads.
//!
//! ```
//! use cqa_model::parser::{parse_instance, parse_schema};
//! use cqa_model::RelName;
//! use cqa_solvers::backend::{Backend, ReachabilityBackend};
//! use std::sync::Arc;
//!
//! // Proposition 16's problem with the relations renamed E/V.
//! let s = Arc::new(parse_schema("E[2,1] V[1,1]").unwrap());
//! let backend = ReachabilityBackend::new(RelName::new("E"), RelName::new("V"));
//! let db = parse_instance(&s, "E(a,a) V(a)").unwrap();
//! assert!(backend.certain(&db));
//! ```

use crate::{prop16, prop17};
use cqa_model::{Cst, Instance, RelName};
use std::fmt;

/// A polynomial-time decider for `CERTAINTY(q, FK)` on a fixed problem,
/// pre-bound to the relation names it was routed for.
///
/// Implementations must be deterministic and sound: `certain(db)` is `true`
/// iff every ⊕-repair of `db` satisfies the query the backend was built
/// for. They must also be `Send + Sync` — the solver shards batches of
/// instances across threads over one shared backend.
pub trait Backend: Send + Sync {
    /// A short human-readable name (used in verdict provenance).
    fn name(&self) -> &'static str;

    /// Decides certainty on `db`.
    fn certain(&self, db: &Instance) -> bool;
}

/// Proposition 16's NL-complete problem `({N(x,x), O(x)}, {N[2]→O})`, up to
/// renaming of the two relations, decided through the cycle-refined
/// reachability criterion ([`prop16::certain_via_reachability_in`]) — the
/// decider that exhibits the NL upper bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReachabilityBackend {
    /// The `N`-like relation (signature `[2,1]`).
    pub n: RelName,
    /// The `O`-like relation (signature `[1,1]`).
    pub o: RelName,
}

impl ReachabilityBackend {
    /// Binds the backend to a concrete relation pair.
    pub fn new(n: RelName, o: RelName) -> ReachabilityBackend {
        ReachabilityBackend { n, o }
    }
}

impl Backend for ReachabilityBackend {
    fn name(&self) -> &'static str {
        "reachability (Proposition 16)"
    }

    fn certain(&self, db: &Instance) -> bool {
        prop16::certain_via_reachability_in(db, self.n, self.o)
    }
}

impl fmt::Display for ReachabilityBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "reachability over ({}, {})", self.n, self.o)
    }
}

/// Proposition 17's P-complete problem `({N(x,'c',y), O(y)}, {N[3]→O})`, up
/// to renaming of the two relations and choice of the middle constant,
/// decided through dual-Horn SAT with unit propagation
/// ([`prop17::certain_in`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DualHornBackend {
    /// The `N`-like relation (signature `[3,1]`).
    pub n: RelName,
    /// The `O`-like relation (signature `[1,1]`).
    pub o: RelName,
    /// The query's middle constant.
    pub c: Cst,
}

impl DualHornBackend {
    /// Binds the backend to a concrete relation pair and middle constant.
    pub fn new(n: RelName, o: RelName, c: Cst) -> DualHornBackend {
        DualHornBackend { n, o, c }
    }
}

impl Backend for DualHornBackend {
    fn name(&self) -> &'static str {
        "dual-Horn SAT (Proposition 17)"
    }

    fn certain(&self, db: &Instance) -> bool {
        prop17::certain_in(db, self.n, self.o, self.c)
    }
}

impl fmt::Display for DualHornBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dual-Horn over ({}, {}) with constant {}", self.n, self.o, self.c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_model::parser::{parse_instance, parse_schema};
    use std::sync::Arc;

    #[test]
    fn renamed_prop16_matches_canonical() {
        // The same instances under the canonical (N, O) and a renamed
        // (E, V) signature must decide identically.
        let canon = Arc::new(parse_schema(prop16::SCHEMA).unwrap());
        let renamed = Arc::new(parse_schema("E[2,1] V[1,1]").unwrap());
        let backend = ReachabilityBackend::new(RelName::new("E"), RelName::new("V"));
        for text in [
            "N(a,a) O(a)",
            "N(a,a) N(a,b) O(a)",
            "N(a,a) N(a,b) N(b,b) O(a)",
            "N(a,a) N(a,b) N(b,b) N(b,a) O(a)",
        ] {
            let db = parse_instance(&canon, text).unwrap();
            let moved = text.replace('N', "E").replace('O', "V");
            let db2 = parse_instance(&renamed, &moved).unwrap();
            assert_eq!(
                prop16::certain(&db),
                backend.certain(&db2),
                "disagree on {text:?}"
            );
        }
    }

    #[test]
    fn renamed_prop17_matches_canonical() {
        let canon = Arc::new(parse_schema(prop17::SCHEMA).unwrap());
        let renamed = Arc::new(parse_schema("Emp[3,1] Dept[1,1]").unwrap());
        let backend =
            DualHornBackend::new(RelName::new("Emp"), RelName::new("Dept"), Cst::new("c"));
        for text in [
            "N(i,c,1) O(1)",
            "N(i,c,1) N(i,d,2) O(1)",
            "N(b1,c,1) N(b1,d,2) N(b2,c,2) O(1)",
            "N(b1,c,1) N(b1,d,2) N(b2,d,3) O(1)",
        ] {
            let db = parse_instance(&canon, text).unwrap();
            let moved = text.replace('N', "Emp").replace('O', "Dept");
            let db2 = parse_instance(&renamed, &moved).unwrap();
            assert_eq!(
                prop17::certain(&db, Cst::new("c")),
                backend.certain(&db2),
                "disagree on {text:?}"
            );
        }
    }

    #[test]
    fn backends_are_object_safe_and_shareable() {
        let boxed: Box<dyn Backend> =
            Box::new(ReachabilityBackend::new(RelName::new("N"), RelName::new("O")));
        assert!(boxed.name().contains("reachability"));
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        assert_send_sync(&boxed);
    }
}
