//! The compiled-vs-interpreted evaluation benchmark behind
//! `BENCH_eval.json`.
//!
//! Workload: the guarded path of `benches/fo_vs_naive` — the flattened
//! consistent rewriting of Example 13's `q1 = {N(x,u,y), O(y,w)}` with
//! `FK = {N[3]→O}`, evaluated over instances with `n` two-fact blocks. The
//! same closed formula is evaluated by
//!
//! * the interpretive reference evaluator ([`cqa_fo::interp`], the pre-PR
//!   hot path: per-candidate valuation clones and re-materialized residual
//!   conjunctions), and
//! * the compiled evaluator ([`cqa_fo::CompiledFormula`], compiled once
//!   outside the timing loop: slot bindings, pre-split guards, hash-indexed
//!   candidates),
//!
//! both with the guarded strategy. `paper-eval` runs this after the E1–E16
//! table and snapshots the result to `BENCH_eval.json`, which CI uploads as
//! an artifact — the perf-trajectory baseline for the evaluation core.

use cqa_core::classify::Classification;
use cqa_core::flatten::flatten;
use cqa_core::Problem;
use cqa_fo::{interp, CompiledFormula, Formula, Strategy};
use cqa_model::parser::{parse_fks, parse_query, parse_schema};
use cqa_model::{Instance, Schema};
use serde::Serialize;
use std::sync::Arc;
use std::time::Duration;

/// One measured size of the evaluation benchmark.
#[derive(Clone, Debug, Serialize)]
pub struct EvalBenchRow {
    /// Number of two-fact `N`-blocks in the instance.
    pub n_blocks: usize,
    /// Total facts in the instance.
    pub facts: usize,
    /// Best per-evaluation time of the interpretive guarded evaluator.
    pub interpreted_guarded_ns: u128,
    /// Best per-evaluation time of the compiled guarded evaluator
    /// (compiled once outside the loop).
    pub compiled_guarded_ns: u128,
    /// `interpreted / compiled`.
    pub speedup: f64,
}

/// The full `BENCH_eval.json` payload.
#[derive(Clone, Debug, Serialize)]
pub struct EvalBench {
    /// What was measured.
    pub workload: String,
    /// Per-size measurements.
    pub rows: Vec<EvalBenchRow>,
    /// The speedup at the largest measured size (the acceptance metric).
    pub largest_size_speedup: f64,
}

impl EvalBench {
    /// Renders as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("bench report serializes")
    }
}

fn chain_instance(s: &Arc<Schema>, n: usize) -> Instance {
    let mut db = Instance::new(s.clone());
    for i in 0..n {
        db.insert_named("N", &[&format!("k{i}"), "u", &format!("y{i}")])
            .unwrap();
        db.insert_named("N", &[&format!("k{i}"), "v", &format!("z{i}")])
            .unwrap();
        db.insert_named("O", &[&format!("y{i}"), "w"]).unwrap();
    }
    db
}

/// Best-of-batches wall-clock measurement of `routine`, targeting roughly
/// `budget` of total measurement time — the criterion shim's calibrated
/// loop, so these numbers are comparable with the `ablations` bench rows.
fn measure(budget: Duration, mut routine: impl FnMut() -> bool) -> Duration {
    criterion::measure_best(budget, || {
        std::hint::black_box(routine());
    })
}

/// The flattened rewriting of Example 13's q1.
fn q1_formula() -> (Arc<Schema>, Formula) {
    let s = Arc::new(parse_schema("N[3,1] O[2,1]").unwrap());
    let q = parse_query(&s, "N(x,u,y), O(y,w)").unwrap();
    let fks = parse_fks(&s, "N[3] -> O").unwrap();
    let plan = match Problem::new(q, fks).unwrap().classify() {
        Classification::Fo(p) => p,
        Classification::NotFo(r) => panic!("q1 must be in FO: {r}"),
    };
    (s, flatten(&plan).unwrap())
}

/// Runs the benchmark at the given sizes (ascending). `budget` bounds the
/// measurement time per engine per size.
pub fn run_eval_bench(sizes: &[usize], budget: Duration) -> EvalBench {
    let (s, formula) = q1_formula();
    let compiled = CompiledFormula::compile(&formula, Strategy::Guarded);
    let mut rows = Vec::new();
    for &n in sizes {
        let db = chain_instance(&s, n);
        let expected = compiled.eval_closed(&db);
        assert_eq!(
            expected,
            interp::eval_closed(&db, &formula),
            "engines disagree at n={n}"
        );
        db.index(); // warm the index so both engines see a built cache
        let interp_t = measure(budget, || interp::eval_closed(&db, &formula));
        let compiled_t = measure(budget, || compiled.eval_closed(&db));
        rows.push(EvalBenchRow {
            n_blocks: n,
            facts: db.len(),
            interpreted_guarded_ns: interp_t.as_nanos(),
            compiled_guarded_ns: compiled_t.as_nanos(),
            speedup: interp_t.as_secs_f64() / compiled_t.as_secs_f64().max(f64::EPSILON),
        });
    }
    let largest_size_speedup = rows.last().map(|r| r.speedup).unwrap_or(0.0);
    EvalBench {
        workload: "flattened rewriting of Example 13 q1 (guarded strategy) over n two-fact \
                   blocks: interpreted (cqa_fo::interp) vs compiled (CompiledFormula), \
                   compile outside the loop"
            .to_string(),
        rows,
        largest_size_speedup,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_bench_smoke() {
        // Tiny sizes and budget: correctness of the harness, not timings.
        let report = run_eval_bench(&[2, 4], Duration::from_millis(5));
        assert_eq!(report.rows.len(), 2);
        assert!(report.rows.iter().all(|r| r.compiled_guarded_ns > 0));
        assert!(report.to_json().contains("largest_size_speedup"));
    }
}
