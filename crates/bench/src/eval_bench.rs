//! The compiled-vs-interpreted evaluation benchmark behind
//! `BENCH_eval.json`.
//!
//! Workload: the guarded path of `benches/fo_vs_naive` — the flattened
//! consistent rewriting of Example 13's `q1 = {N(x,u,y), O(y,w)}` with
//! `FK = {N[3]→O}`, evaluated over instances with `n` two-fact blocks. The
//! same closed formula is evaluated by
//!
//! * the interpretive reference evaluator ([`cqa_fo::interp`], the pre-PR
//!   hot path: per-candidate valuation clones and re-materialized residual
//!   conjunctions), and
//! * the compiled evaluator ([`cqa_fo::CompiledFormula`], compiled once
//!   outside the timing loop: slot bindings, pre-split guards, hash-indexed
//!   candidates),
//!
//! both with the guarded strategy.
//!
//! A second workload measures the **reduction pipeline** end to end: the
//! depth-2 nested Lemma 45 problem
//! `q = {N('c',y), M(y,w), Q(w), P(w), O(y)}`,
//! `FK = {N[2]→O, M[2]→Q}`, whose interpretive evaluator
//! ([`cqa_core::RewritePlan::answer`]) renames and materializes a database
//! per block fact per nesting level, against the view-backed
//! [`cqa_core::CompiledPlan`] (compiled once outside the loop, zero
//! intermediate instances).
//!
//! A third workload measures **shard-parallel execution**: the same
//! compiled plan evaluated sequentially vs through
//! [`cqa_core::CompiledPlan::answer_parallel`] at 2 and 4 worker threads
//! (Lemma 45 block facts sharded across a scoped pool; answers are
//! asserted identical before timing). The recorded speedup is bounded by
//! the CPUs actually available to the process — the snapshot carries
//! `threads_available` so single-core runs are interpretable.
//!
//! A fourth workload measures the **unified-solver routing overhead**:
//! [`cqa_core::Solver::solve`] with sequential options vs calling the
//! compiled plan directly on the same problem — both sides execute the
//! identical single-threaded plan, so the delta is pure facade cost
//! (route dispatch, verdict and provenance construction); the acceptance
//! target is < 5% at the largest size.
//!
//! A fifth workload measures **delta-certainty**: the same nested problem
//! under a single-fact delta on the outer block (remove one `N('c',∗)`
//! fact, reinsert it, alternating), answered by
//! [`cqa_core::IncrementalSolver::reanswer`] — which re-reads cached
//! residual verdicts for the `n−1` untouched block facts — vs applying the
//! same delta and re-running a full [`cqa_core::Solver::solve`]. Both
//! sides pay the identical mutation, so the ratio is pure re-answering
//! work; the acceptance target is ≥ 10× at the largest size.
//!
//! A sixth workload measures the **Yannakakis semijoin evaluator** on the
//! acyclic residual join `{A(x,u), B(y,u)}` — two relations joined on
//! their *non-key* second position, with disjoint value sets so the query
//! is unsatisfiable. The backtracking search degenerates to an O(n²)
//! scan×scan nested loop; the semijoin pass filters each relation once
//! over the columnar projection. Both strategies are pinned explicitly
//! through [`cqa_model::CompiledQuery::satisfies_via`], so the row is
//! independent of `CQA_EVALUATOR`; the acceptance target is ≥ 3× at the
//! largest size.
//!
//! A seventh workload measures **serve-mode plan-cache amortization**: the
//! same nested Lemma 45 problem answered (a) the per-request way — parse
//! the schema/query/fks text, classify, compile, parse the database,
//! solve, all inside the loop — and (b) through
//! [`cqa_serve::Service::handle_line`] with a warm cache, where the
//! request still pays JSON decoding and database parsing but shares the
//! one cached compiled [`Solver`]. The ratio is the serve mode's reason to
//! exist; the acceptance target is ≥ 10× for repeated cached requests.
//!
//! An eighth workload measures the **emitted-artifact execution cost**:
//! the nested Lemma 45 problem lowered by `cqa-emit` to a self-contained
//! stratified Datalog program (emit + parse outside the loop), executed
//! by the vendored semi-naïve evaluator, vs the same verdict from the
//! compiled plan. The artifact path re-derives the rewriting's subformula
//! predicates over the whole active domain per call, so a large slowdown
//! is expected and *documented* — the evaluator is a differential oracle
//! and a portability story, not a production backend. The row exists so
//! a regression (or an accidental dependence of exec cost on route
//! internals) shows up in the trajectory.
//!
//! `paper-eval` runs all eight after the E1–E16 table and snapshots the
//! result to `BENCH_eval.json`, which CI uploads as an artifact — the
//! perf-trajectory baseline for the evaluation core.

use cqa_core::classify::Classification;
use cqa_core::flatten::flatten;
use cqa_core::{CompiledPlan, ExecOptions, ParallelPolicy, Problem, RewritePlan, Solver};
use cqa_fo::{interp, CompiledFormula, Formula, Strategy};
use cqa_model::parser::{parse_fks, parse_query, parse_schema};
use cqa_model::{CompiledQuery, Instance, JoinStrategy, Schema};
use serde::Serialize;
use std::sync::Arc;
use std::time::Duration;

/// One measured size of the evaluation benchmark.
#[derive(Clone, Debug, Serialize)]
pub struct EvalBenchRow {
    /// Number of two-fact `N`-blocks in the instance.
    pub n_blocks: usize,
    /// Total facts in the instance.
    pub facts: usize,
    /// Best per-evaluation time of the interpretive guarded evaluator.
    pub interpreted_guarded_ns: u128,
    /// Best per-evaluation time of the compiled guarded evaluator
    /// (compiled once outside the loop).
    pub compiled_guarded_ns: u128,
    /// `interpreted / compiled`.
    pub speedup: f64,
}

/// One measured size of the plan-level benchmark.
#[derive(Clone, Debug, Serialize)]
pub struct PlanBenchRow {
    /// Number of facts in the outer Lemma 45 block.
    pub n_blocks: usize,
    /// Total facts in the instance.
    pub facts: usize,
    /// Best per-evaluation time of the materializing `RewritePlan::answer`.
    pub materialized_ns: u128,
    /// Best per-evaluation time of the view-backed `CompiledPlan::answer`
    /// (compiled once outside the loop).
    pub compiled_ns: u128,
    /// `materialized / compiled`.
    pub speedup: f64,
}

/// One measured (size, width) point of the shard-parallel benchmark.
#[derive(Clone, Debug, Serialize)]
pub struct PlanParBenchRow {
    /// Number of facts in the outer Lemma 45 block.
    pub n_blocks: usize,
    /// Total facts in the instance.
    pub facts: usize,
    /// Worker threads of the parallel run.
    pub threads: usize,
    /// Best per-evaluation time of the sequential `CompiledPlan::answer`.
    pub sequential_ns: u128,
    /// Best per-evaluation time of `CompiledPlan::answer_parallel` at this
    /// width (fan-out threshold 1, so the Lemma 45 shards always engage).
    pub parallel_ns: u128,
    /// `sequential / parallel`.
    pub speedup: f64,
}

/// One measured size of the solver-routing-overhead benchmark.
#[derive(Clone, Debug, Serialize)]
pub struct SolverRoutingRow {
    /// Number of facts in the outer Lemma 45 block.
    pub n_blocks: usize,
    /// Total facts in the instance.
    pub facts: usize,
    /// Best per-evaluation time of `CompiledPlan::answer` called directly.
    pub direct_ns: u128,
    /// Best per-evaluation time of `Solver::solve` (sequential options) on
    /// the same problem — the same compiled plan behind the unified
    /// facade, plus verdict/provenance construction.
    pub solver_ns: u128,
    /// `(solver − direct) / direct`, in percent. Negative values are
    /// measurement noise.
    pub overhead_pct: f64,
}

/// One measured size of the delta-reanswer benchmark.
#[derive(Clone, Debug, Serialize)]
pub struct DeltaBenchRow {
    /// Number of facts in the outer Lemma 45 block.
    pub n_blocks: usize,
    /// Total facts in the instance.
    pub facts: usize,
    /// Best per-mutation time of the from-scratch baseline: apply the
    /// single-fact delta, then a full `Solver::solve`.
    pub full_ns: u128,
    /// Best per-mutation time of the incremental path: the same delta
    /// through `IncrementalSolver::reanswer` (residual-cache reuse for the
    /// untouched block facts).
    pub incremental_ns: u128,
    /// `full / incremental`.
    pub speedup: f64,
}

/// One measured size of the acyclic-join (semijoin vs backtracking)
/// benchmark.
#[derive(Clone, Debug, Serialize)]
pub struct AcyclicJoinRow {
    /// Rows per joined relation.
    pub n_rows: usize,
    /// Total facts in the instance.
    pub facts: usize,
    /// Best per-evaluation time of the backtracking join
    /// (`JoinStrategy::Backtracking`).
    pub backtracking_ns: u128,
    /// Best per-evaluation time of the Yannakakis semijoin evaluator
    /// (`JoinStrategy::Semijoin`).
    pub semijoin_ns: u128,
    /// `backtracking / semijoin`.
    pub speedup: f64,
}

/// One measured size of the emitted-artifact execution benchmark.
#[derive(Clone, Debug, Serialize)]
pub struct EmitExecRow {
    /// Number of facts in the outer Lemma 45 block.
    pub n_blocks: usize,
    /// Total facts in the instance (also embedded in the artifact).
    pub facts: usize,
    /// Best per-evaluation time of the compiled plan on the same instance.
    pub compiled_ns: u128,
    /// Best per-evaluation time of the vendored semi-naïve evaluator on
    /// the emitted Datalog artifact (emit + parse outside the loop).
    pub emit_exec_ns: u128,
    /// `emit_exec / compiled` — how much the self-contained artifact
    /// pays over the native backend (expected to be large; see module doc).
    pub slowdown: f64,
}

/// One measured size of the serve-mode cache-amortization benchmark.
#[derive(Clone, Debug, Serialize)]
pub struct ServeBenchRow {
    /// Number of facts in the outer Lemma 45 block.
    pub n_blocks: usize,
    /// Total facts in the instance.
    pub facts: usize,
    /// Best per-request time of the uncached path: parse schema/query/fks,
    /// classify + compile (`Solver::build`), parse the database, solve.
    pub per_request_build_ns: u128,
    /// Best per-request time through `Service::handle_line` with a warm
    /// plan cache (JSON decode + db parse + solve on the shared solver).
    pub cached_serve_ns: u128,
    /// `per_request_build / cached_serve` — the amortization factor.
    pub amortization: f64,
}

/// The full `BENCH_eval.json` payload.
#[derive(Clone, Debug, Serialize)]
pub struct EvalBench {
    /// What was measured (formula-evaluation workload).
    pub workload: String,
    /// Per-size measurements of the formula evaluators.
    pub rows: Vec<EvalBenchRow>,
    /// The formula-level speedup at the largest measured size.
    pub largest_size_speedup: f64,
    /// What was measured (plan-level workload).
    pub plan_workload: String,
    /// Per-size measurements of the reduction-pipeline executors.
    pub plan_rows: Vec<PlanBenchRow>,
    /// The plan-level speedup at the largest measured size (the
    /// compiled-plan acceptance metric).
    pub plan_largest_size_speedup: f64,
    /// What was measured (shard-parallel workload).
    pub plan_parallel_workload: String,
    /// CPUs available to this process when the snapshot was taken — the
    /// parallel rows are only meaningful relative to this (a single-core
    /// runner cannot show wall-clock speedup, whatever the thread count).
    pub threads_available: usize,
    /// Per-(size, width) measurements of sequential vs shard-parallel
    /// execution of the same compiled plan.
    pub plan_parallel_rows: Vec<PlanParBenchRow>,
    /// The parallel speedup at 4 threads on the largest measured size (the
    /// shard-parallel acceptance metric; bounded by `threads_available`).
    pub plan_parallel_vs_sequential: f64,
    /// What was measured (solver-routing-overhead workload).
    pub solver_routing_workload: String,
    /// Per-size measurements of direct plan calls vs the unified solver
    /// facade.
    pub solver_routing_rows: Vec<SolverRoutingRow>,
    /// Facade dispatch overhead (percent) at the largest measured size —
    /// the unified-solver acceptance metric, target < 5%.
    pub solver_routing_overhead: f64,
    /// What was measured (delta-reanswer workload).
    pub delta_workload: String,
    /// Per-size measurements of incremental re-answering vs apply+resolve.
    pub delta_rows: Vec<DeltaBenchRow>,
    /// Incremental speedup at the largest measured size (the
    /// delta-certainty acceptance metric, target ≥ 10×).
    pub delta_reanswer_vs_full: f64,
    /// What was measured (acyclic-join workload).
    pub acyclic_join_workload: String,
    /// Per-size measurements of the semijoin evaluator vs backtracking
    /// search on the acyclic non-key join.
    pub acyclic_join_rows: Vec<AcyclicJoinRow>,
    /// Semijoin speedup at the largest measured size (the Yannakakis
    /// acceptance metric, target ≥ 3×).
    pub acyclic_join_largest_speedup: f64,
    /// What was measured (emitted-artifact execution workload).
    pub emit_exec_workload: String,
    /// Per-size measurements of the emitted Datalog artifact under the
    /// vendored evaluator vs the compiled plan.
    pub emit_exec_rows: Vec<EmitExecRow>,
    /// Artifact-evaluator slowdown at the largest measured size — a
    /// documented cost, tracked so regressions in the exec core show up.
    pub emit_exec_vs_compiled: f64,
    /// What was measured (serve-mode cache-amortization workload).
    pub serve_workload: String,
    /// Per-size measurements of per-request build vs the warm serve path.
    pub serve_rows: Vec<ServeBenchRow>,
    /// Amortization factor at the smallest measured size (the serve-mode
    /// acceptance metric, target ≥ 10×): build cost is constant in the
    /// database, so the many-small-requests regime is where the cache pays.
    pub serve_cache_amortization: f64,
}

impl EvalBench {
    /// Renders as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("bench report serializes")
    }
}

fn chain_instance(s: &Arc<Schema>, n: usize) -> Instance {
    let mut db = Instance::new(s.clone());
    for i in 0..n {
        db.insert_named("N", &[&format!("k{i}"), "u", &format!("y{i}")])
            .unwrap();
        db.insert_named("N", &[&format!("k{i}"), "v", &format!("z{i}")])
            .unwrap();
        db.insert_named("O", &[&format!("y{i}"), "w"]).unwrap();
    }
    db
}

/// Best-of-batches wall-clock measurement of `routine`, targeting roughly
/// `budget` of total measurement time — the criterion shim's calibrated
/// loop, so these numbers are comparable with the `ablations` bench rows.
fn measure(budget: Duration, mut routine: impl FnMut() -> bool) -> Duration {
    criterion::measure_best(budget, || {
        std::hint::black_box(routine());
    })
}

/// The flattened rewriting of Example 13's q1.
fn q1_formula() -> (Arc<Schema>, Formula) {
    let s = Arc::new(parse_schema("N[3,1] O[2,1]").unwrap());
    let q = parse_query(&s, "N(x,u,y), O(y,w)").unwrap();
    let fks = parse_fks(&s, "N[3] -> O").unwrap();
    let plan = match Problem::new(q, fks).unwrap().classify() {
        Classification::Fo(p) => p,
        Classification::NotFo(r) => panic!("q1 must be in FO: {r}"),
    };
    (s, flatten(&plan).unwrap())
}

/// The nested-Lemma-45 plan workload: schema, query and keys (shared with
/// `benches/ablations.rs`).
pub const NESTED_L45_SCHEMA: &str = "N[2,1] M[2,1] Q[1,1] P[1,1] O[1,1]";
/// The depth-2 query: `N('c',y)` branches on its block, the residual
/// `M(y,w)` branches again, the tail is the KW rewriting of `P`.
pub const NESTED_L45_QUERY: &str = "N('c',y), M(y,w), Q(w), P(w), O(y)";
/// Its foreign keys.
pub const NESTED_L45_FKS: &str = "N[2] -> O, M[2] -> Q";

/// The nested-Lemma-45 problem value (shared by the plan and
/// solver-routing workloads).
pub fn nested_l45_problem() -> Problem {
    let s = Arc::new(parse_schema(NESTED_L45_SCHEMA).unwrap());
    let q = parse_query(&s, NESTED_L45_QUERY).unwrap();
    let fks = parse_fks(&s, NESTED_L45_FKS).unwrap();
    Problem::new(q, fks).expect("nested workload is a valid problem")
}

/// The nested-Lemma-45 plan pair (interpretive + compiled).
pub fn nested_l45_plan() -> (Arc<Schema>, RewritePlan, CompiledPlan) {
    let problem = nested_l45_problem();
    let s = problem.query().schema().clone();
    let plan = match problem.classify() {
        Classification::Fo(p) => *p,
        Classification::NotFo(r) => panic!("nested workload must be in FO: {r}"),
    };
    let compiled = CompiledPlan::compile(&plan).expect("nested workload compiles");
    (s, plan, compiled)
}

/// A yes-instance with `n` facts in the outer `N('c', ∗)` block, each
/// chained through its own `M`/`Q`/`P` witness (5n facts total) — every
/// block fact forces a full residual evaluation on both executors.
pub fn nested_l45_instance(s: &Arc<Schema>, n: usize) -> Instance {
    let mut db = Instance::new(s.clone());
    for i in 0..n {
        let y = format!("y{i}");
        let w = format!("w{i}");
        db.insert_named("N", &["c", &y]).unwrap();
        db.insert_named("O", &[&y]).unwrap();
        db.insert_named("M", &[&y, &w]).unwrap();
        db.insert_named("Q", &[&w]).unwrap();
        db.insert_named("P", &[&w]).unwrap();
    }
    db
}

/// The acyclic-join workload (shared with `benches/ablations.rs`): two
/// relations joined on their *non-key* second position.
pub const ACYCLIC_JOIN_SCHEMA: &str = "A[2,1] B[2,1]";
/// The non-key join query — GYO-acyclic, so [`CompiledQuery`] carries a
/// semijoin plan.
pub const ACYCLIC_JOIN_QUERY: &str = "A(x,u), B(y,u)";
/// Sizes measured for the acyclic-join workload (rows per relation).
pub const ACYCLIC_JOIN_SIZES: &[usize] = &[8, 64, 512];

/// Sizes measured for the emitted-artifact execution workload (outer
/// block facts; the instance has 5n facts, all embedded in the artifact).
pub const EMIT_EXEC_SIZES: &[usize] = &[4, 16, 64];

/// Sizes measured for the serve-mode amortization workload (outer block
/// facts; the instance has 5n facts). Deliberately small-heavy: the cache
/// amortizes the constant classify+compile cost, which dominates exactly
/// when instances are small.
pub const SERVE_SIZES: &[usize] = &[1, 8, 64];

/// An instance with `n` rows per relation whose `u`-value sets are
/// disjoint: the join is unsatisfiable, so backtracking search scans all
/// `n²` candidate pairs while the semijoin pass rejects after two linear
/// column filters.
pub fn acyclic_join_instance(s: &Arc<Schema>, n: usize) -> Instance {
    let mut db = Instance::new(s.clone());
    for i in 0..n {
        db.insert_named("A", &[&format!("a{i}"), &format!("u{i}")])
            .unwrap();
        db.insert_named("B", &[&format!("b{i}"), &format!("v{i}")])
            .unwrap();
    }
    db
}

/// Paired repeats of the solver-routing measurement per size; the reported
/// row is the median by overhead, damping scheduler noise in what is a
/// ratio of two near-identical timings.
const ROUTING_REPEATS: usize = 5;

/// Runs the benchmark at the given sizes (ascending): `sizes` for the
/// formula workload, `plan_sizes` for the plan workload. `budget` bounds
/// the measurement time per engine per size.
pub fn run_eval_bench(sizes: &[usize], plan_sizes: &[usize], budget: Duration) -> EvalBench {
    let (s, formula) = q1_formula();
    let compiled = CompiledFormula::compile(&formula, Strategy::Guarded);
    let mut rows = Vec::new();
    for &n in sizes {
        let db = chain_instance(&s, n);
        let expected = compiled.eval_closed(&db);
        assert_eq!(
            expected,
            interp::eval_closed(&db, &formula),
            "engines disagree at n={n}"
        );
        db.index(); // warm the index so both engines see a built cache
        let interp_t = measure(budget, || interp::eval_closed(&db, &formula));
        let compiled_t = measure(budget, || compiled.eval_closed(&db));
        rows.push(EvalBenchRow {
            n_blocks: n,
            facts: db.len(),
            interpreted_guarded_ns: interp_t.as_nanos(),
            compiled_guarded_ns: compiled_t.as_nanos(),
            speedup: interp_t.as_secs_f64() / compiled_t.as_secs_f64().max(f64::EPSILON),
        });
    }
    let largest_size_speedup = rows.last().map(|r| r.speedup).unwrap_or(0.0);

    let (ps, plan, cplan) = nested_l45_plan();
    let mut plan_rows = Vec::new();
    for &n in plan_sizes {
        let db = nested_l45_instance(&ps, n);
        assert_eq!(
            plan.answer(&db),
            cplan.answer(&db),
            "plan executors disagree at n={n}"
        );
        db.index();
        let mat_t = measure(budget, || plan.answer(&db));
        let comp_t = measure(budget, || cplan.answer(&db));
        plan_rows.push(PlanBenchRow {
            n_blocks: n,
            facts: db.len(),
            materialized_ns: mat_t.as_nanos(),
            compiled_ns: comp_t.as_nanos(),
            speedup: mat_t.as_secs_f64() / comp_t.as_secs_f64().max(f64::EPSILON),
        });
    }
    let plan_largest_size_speedup = plan_rows.last().map(|r| r.speedup).unwrap_or(0.0);

    // Shard-parallel vs sequential execution of the same compiled plan on
    // the same workload: widths 2 and 4, fan-out threshold 1 so the
    // Lemma 45 block-fact shards engage at every size.
    let mut plan_parallel_rows = Vec::new();
    for &n in plan_sizes {
        let db = nested_l45_instance(&ps, n);
        db.index();
        let expected = cplan.answer(&db);
        let seq_t = measure(budget, || cplan.answer(&db));
        for threads in [2usize, 4] {
            let policy = ParallelPolicy::with_threads(threads).fan_out_at(1);
            assert_eq!(
                cplan.answer_parallel(&db, &policy),
                expected,
                "parallel and sequential executors disagree at n={n}, {threads} threads"
            );
            let par_t = measure(budget, || cplan.answer_parallel(&db, &policy));
            plan_parallel_rows.push(PlanParBenchRow {
                n_blocks: n,
                facts: db.len(),
                threads,
                sequential_ns: seq_t.as_nanos(),
                parallel_ns: par_t.as_nanos(),
                speedup: seq_t.as_secs_f64() / par_t.as_secs_f64().max(f64::EPSILON),
            });
        }
    }
    let plan_parallel_vs_sequential = plan_parallel_rows
        .iter()
        .rfind(|r| r.threads == 4)
        .map(|r| r.speedup)
        .unwrap_or(0.0);

    // Unified-solver routing overhead: the same nested Lemma 45 problem
    // answered through `Solver::solve` (sequential options, so both sides
    // run the identical single-threaded compiled-plan execution) vs
    // calling the compiled plan directly. Measures pure facade cost:
    // route dispatch, policy read, verdict + provenance construction.
    // Each size takes the median of `ROUTING_REPEATS` paired runs.
    let solver = Solver::builder(nested_l45_problem())
        .options(ExecOptions::sequential())
        .build()
        .expect("nested workload is FO");
    let mut solver_routing_rows = Vec::new();
    for &n in plan_sizes {
        let db = nested_l45_instance(&ps, n);
        assert_eq!(
            solver.solve(&db).as_bool(),
            Some(cplan.answer(&db)),
            "solver facade and direct plan disagree at n={n}"
        );
        db.index();
        // The overhead is a ratio of two near-identical sub-microsecond
        // timings, so a single (direct, solver) pair is at the mercy of
        // scheduler noise: repeat the paired measurement and keep the
        // median repeat, which is what the acceptance metric reads.
        let mut repeats: Vec<(Duration, Duration, f64)> = (0..ROUTING_REPEATS)
            .map(|_| {
                let direct_t = measure(budget, || cplan.answer(&db));
                let solver_t = measure(budget, || solver.solve(&db).is_certain());
                let pct = (solver_t.as_secs_f64() / direct_t.as_secs_f64().max(f64::EPSILON)
                    - 1.0)
                    * 100.0;
                (direct_t, solver_t, pct)
            })
            .collect();
        repeats.sort_by(|a, b| a.2.total_cmp(&b.2));
        let (direct_t, solver_t, overhead_pct) = repeats[repeats.len() / 2];
        solver_routing_rows.push(SolverRoutingRow {
            n_blocks: n,
            facts: db.len(),
            direct_ns: direct_t.as_nanos(),
            solver_ns: solver_t.as_nanos(),
            overhead_pct,
        });
    }
    let solver_routing_overhead = solver_routing_rows
        .last()
        .map(|r| r.overhead_pct)
        .unwrap_or(0.0);

    // Delta-certainty: a single-fact delta on the outer N('c', ∗) block —
    // remove one chain's N-fact, then reinsert it, alternating — answered
    // incrementally (IncrementalSolver::reanswer, cached residuals for the
    // n−1 untouched block facts) vs from scratch (Instance::apply + full
    // Solver::solve). Both sides pay the same mutation; the delta is pure
    // re-answering work.
    let mut delta_rows = Vec::new();
    for &n in plan_sizes {
        let toggled = cqa_model::parser::parse_fact("N(c,y0)").unwrap();
        let mut remove = cqa_model::Delta::new();
        remove.remove(toggled.clone());
        let mut insert = cqa_model::Delta::new();
        insert.insert(toggled.clone());
        let toggles = [remove, insert];

        // Correctness first: the incremental session must localize (not
        // silently recompute) and agree with from-scratch on both phases.
        let mut db = nested_l45_instance(&ps, n);
        let mut session = solver.incremental();
        session.solve(&db);
        let mut check = nested_l45_instance(&ps, n);
        for i in 0..4 {
            let delta = &toggles[i % 2];
            let v = session.reanswer(&mut db, delta).unwrap();
            check.apply(delta).unwrap();
            assert_eq!(
                v.as_bool(),
                solver.solve(&check).as_bool(),
                "incremental and from-scratch disagree at n={n}, toggle {i}"
            );
            assert!(
                matches!(
                    v.provenance.delta,
                    Some(cqa_core::DeltaOutcome::Localized { .. })
                ),
                "single-fact N-delta must localize at n={n}: {:?}",
                v.provenance.delta
            );
        }

        // Timed runs: one mutation + one answer per iteration on each side.
        let mut full_db = nested_l45_instance(&ps, n);
        let facts = full_db.len();
        solver.solve(&full_db);
        let mut i = 0usize;
        let full_t = measure(budget, || {
            let delta = &toggles[i % 2];
            i += 1;
            full_db.apply(delta).unwrap();
            solver.solve(&full_db).is_certain()
        });

        let mut inc_db = nested_l45_instance(&ps, n);
        let mut session = solver.incremental();
        session.solve(&inc_db);
        let mut j = 0usize;
        let inc_t = measure(budget, || {
            let delta = &toggles[j % 2];
            j += 1;
            session.reanswer(&mut inc_db, delta).unwrap().is_certain()
        });

        delta_rows.push(DeltaBenchRow {
            n_blocks: n,
            facts,
            full_ns: full_t.as_nanos(),
            incremental_ns: inc_t.as_nanos(),
            speedup: full_t.as_secs_f64() / inc_t.as_secs_f64().max(f64::EPSILON),
        });
    }
    let delta_reanswer_vs_full = delta_rows.last().map(|r| r.speedup).unwrap_or(0.0);

    // Yannakakis semijoin vs backtracking search on the acyclic non-key
    // join: disjoint `u`-value sets, so the query is unsatisfiable and the
    // backtracking side pays the full n² scan×scan loop. Both strategies
    // are pinned per call, so the row is independent of `CQA_EVALUATOR`.
    let js = Arc::new(parse_schema(ACYCLIC_JOIN_SCHEMA).unwrap());
    let jq = parse_query(&js, ACYCLIC_JOIN_QUERY).unwrap();
    let cq = CompiledQuery::new(&jq);
    assert!(cq.semijoin_plan().is_some(), "join workload must be acyclic");
    let mut acyclic_join_rows = Vec::new();
    for &n in ACYCLIC_JOIN_SIZES {
        let db = acyclic_join_instance(&js, n);
        db.index(); // warm the row index and columnar projections
        assert_eq!(
            cq.satisfies_via(&db, JoinStrategy::Backtracking),
            cq.satisfies_via(&db, JoinStrategy::Semijoin),
            "join strategies disagree at n={n}"
        );
        let bt_t = measure(budget, || {
            cq.satisfies_via(&db, JoinStrategy::Backtracking)
        });
        let sj_t = measure(budget, || cq.satisfies_via(&db, JoinStrategy::Semijoin));
        acyclic_join_rows.push(AcyclicJoinRow {
            n_rows: n,
            facts: db.len(),
            backtracking_ns: bt_t.as_nanos(),
            semijoin_ns: sj_t.as_nanos(),
            speedup: bt_t.as_secs_f64() / sj_t.as_secs_f64().max(f64::EPSILON),
        });
    }
    let acyclic_join_largest_speedup = acyclic_join_rows.last().map(|r| r.speedup).unwrap_or(0.0);

    // Emitted-artifact execution: the same nested problem lowered to a
    // self-contained Datalog program (emit + re-parse OUTSIDE the loop —
    // the measured routine is pure semi-naïve evaluation), executed by the
    // vendored evaluator vs the compiled plan on the same instance. The
    // verdicts are asserted equal before timing (the differential-oracle
    // contract), and the recorded number is a slowdown, not a speedup:
    // the artifact re-derives every subformula predicate over the active
    // domain per call, which is the price of self-containment.
    let mut emit_exec_rows = Vec::new();
    {
        use cqa_emit::{datalog::Program, evaluate, Format, SolverEmitExt};
        for &n in EMIT_EXEC_SIZES {
            let db = nested_l45_instance(&ps, n);
            db.index();
            let artifact = solver
                .emit(&db, Format::Datalog)
                .expect("nested workload emits");
            let program =
                Program::parse(&artifact.text).expect("emitted artifact re-parses");
            let expected = cplan.answer(&db);
            assert_eq!(
                evaluate(&program).expect("artifact is sound").holds(&artifact.goal),
                expected,
                "emit∘exec and the compiled plan disagree at n={n}"
            );
            let comp_t = measure(budget, || cplan.answer(&db));
            let exec_t = measure(budget, || {
                evaluate(&program).expect("artifact is sound").holds(&artifact.goal)
            });
            emit_exec_rows.push(EmitExecRow {
                n_blocks: n,
                facts: db.len(),
                compiled_ns: comp_t.as_nanos(),
                emit_exec_ns: exec_t.as_nanos(),
                slowdown: exec_t.as_secs_f64() / comp_t.as_secs_f64().max(f64::EPSILON),
            });
        }
    }
    let emit_exec_vs_compiled = emit_exec_rows.last().map(|r| r.slowdown).unwrap_or(0.0);

    // Serve-mode plan-cache amortization: the same nested problem answered
    // (a) the uncached per-request way — schema/query/fks parsed,
    // classified and compiled inside the loop, exactly what a naive
    // stateless server would do per request — vs (b) through the serve
    // handler with a warm cache, which still decodes the request JSON and
    // parses the database text but shares the one cached compiled solver.
    // Both sides pay the database parse, so amortization is largest where
    // per-instance work is smallest (the build cost is constant in the
    // database); the headline reads the SMALLEST size — that is the
    // regime, many small requests against one plan, serve mode exists
    // for — and the larger rows document how the ratio decays toward 1 as
    // per-instance work swamps the amortized build.
    let mut serve_rows = Vec::new();
    {
        let service = cqa_serve::Service::new(cqa_serve::ServeConfig {
            defaults: ExecOptions::sequential(),
            cache_capacity: 8,
            max_facts: None,
        });
        for &n in SERVE_SIZES {
            let db = nested_l45_instance(&ps, n);
            let facts = db.len();
            let db_text = db
                .facts()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join(" ");
            let request = {
                use serde_json::Value;
                let mut fields = std::collections::BTreeMap::new();
                fields.insert("op".to_string(), Value::String("solve".to_string()));
                fields.insert(
                    "schema".to_string(),
                    Value::String(NESTED_L45_SCHEMA.to_string()),
                );
                fields.insert(
                    "query".to_string(),
                    Value::String(NESTED_L45_QUERY.to_string()),
                );
                fields.insert("fks".to_string(), Value::String(NESTED_L45_FKS.to_string()));
                fields.insert("db".to_string(), Value::String(db_text.clone()));
                serde_json::to_string(&Value::Object(fields)).expect("request serializes")
            };
            // Correctness first: the serve path must agree with the
            // per-request build on a yes-instance.
            let warm_reply = service.handle_line(&request);
            assert!(
                warm_reply.contains("\"certainty\":\"certain\""),
                "serve path answers the yes-instance at n={n}: {warm_reply}"
            );

            let cold_t = measure(budget, || {
                let s = Arc::new(parse_schema(NESTED_L45_SCHEMA).unwrap());
                let q = parse_query(&s, NESTED_L45_QUERY).unwrap();
                let fks = parse_fks(&s, NESTED_L45_FKS).unwrap();
                let solver = Solver::builder(Problem::new(q, fks).unwrap())
                    .options(ExecOptions::sequential())
                    .build()
                    .expect("nested workload is FO");
                let db = cqa_model::parser::parse_instance(&s, &db_text).unwrap();
                solver.solve(&db).is_certain()
            });
            let warm_t = measure(budget, || {
                service.handle_line(&request).contains("certain")
            });
            serve_rows.push(ServeBenchRow {
                n_blocks: n,
                facts,
                per_request_build_ns: cold_t.as_nanos(),
                cached_serve_ns: warm_t.as_nanos(),
                amortization: cold_t.as_secs_f64() / warm_t.as_secs_f64().max(f64::EPSILON),
            });
        }
    }
    let serve_cache_amortization = serve_rows.first().map(|r| r.amortization).unwrap_or(0.0);

    EvalBench {
        workload: "flattened rewriting of Example 13 q1 (guarded strategy) over n two-fact \
                   blocks: interpreted (cqa_fo::interp) vs compiled (CompiledFormula), \
                   compile outside the loop"
            .to_string(),
        rows,
        largest_size_speedup,
        plan_workload: "depth-2 nested Lemma 45 plan over an n-fact outer block (5n facts): \
                        materializing RewritePlan::answer vs view-backed CompiledPlan, \
                        compile outside the loop"
            .to_string(),
        plan_rows,
        plan_largest_size_speedup,
        plan_parallel_workload: "the same depth-2 nested Lemma 45 plan: sequential \
                                 CompiledPlan::answer vs answer_parallel (block-fact shards, \
                                 fan-out threshold 1) at 2 and 4 worker threads"
            .to_string(),
        threads_available: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        plan_parallel_rows,
        plan_parallel_vs_sequential,
        solver_routing_workload: "the same depth-2 nested Lemma 45 problem: direct \
                                  CompiledPlan::answer vs Solver::solve with sequential \
                                  ExecOptions (identical plan execution; the delta is route \
                                  dispatch + verdict/provenance construction)"
            .to_string(),
        solver_routing_rows,
        solver_routing_overhead,
        delta_workload: "the same depth-2 nested Lemma 45 problem under a single-fact delta \
                         (remove/reinsert one outer N('c',∗) block fact): \
                         IncrementalSolver::reanswer (cached residuals for the untouched \
                         block facts) vs Instance::apply + full Solver::solve"
            .to_string(),
        delta_rows,
        delta_reanswer_vs_full,
        acyclic_join_workload: "acyclic non-key join {A(x,u), B(y,u)} with disjoint u-value \
                                sets (unsatisfiable): CompiledQuery::satisfies_via pinned to \
                                Backtracking (n² scan×scan) vs Semijoin (Yannakakis passes \
                                over the columnar projection)"
            .to_string(),
        acyclic_join_rows,
        acyclic_join_largest_speedup,
        emit_exec_workload: "the same depth-2 nested Lemma 45 problem lowered by cqa-emit to \
                             a self-contained stratified Datalog artifact (emit + parse \
                             outside the loop): vendored semi-naïve evaluation of the \
                             artifact vs CompiledPlan::answer on the same instance — a \
                             documented self-containment cost, not a race"
            .to_string(),
        emit_exec_rows,
        emit_exec_vs_compiled,
        serve_workload: "the same depth-2 nested Lemma 45 problem as one serve request per \
                         instance: per-request parse + classify + compile (Solver::build) + \
                         solve, vs cqa_serve::Service::handle_line with a warm plan cache \
                         (JSON decode + db parse + solve on the shared cached solver); \
                         headline at the smallest size, where plan work dominates"
            .to_string(),
        serve_rows,
        serve_cache_amortization,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_bench_smoke() {
        // Tiny sizes and budget: correctness of the harness, not timings.
        let report = run_eval_bench(&[2, 4], &[2, 4], Duration::from_millis(5));
        assert_eq!(report.rows.len(), 2);
        assert!(report.rows.iter().all(|r| r.compiled_guarded_ns > 0));
        assert_eq!(report.plan_rows.len(), 2);
        assert!(report.plan_rows.iter().all(|r| r.compiled_ns > 0));
        assert_eq!(report.plan_parallel_rows.len(), 4, "2 sizes × 2 widths");
        assert!(report.plan_parallel_rows.iter().all(|r| r.parallel_ns > 0));
        assert!(report.threads_available >= 1);
        assert!(report.to_json().contains("largest_size_speedup"));
        assert!(report.to_json().contains("plan_largest_size_speedup"));
        assert!(report.to_json().contains("plan_parallel_vs_sequential"));
        assert_eq!(report.solver_routing_rows.len(), 2);
        assert!(report.solver_routing_rows.iter().all(|r| r.solver_ns > 0));
        assert!(report.to_json().contains("solver_routing_overhead"));
        assert_eq!(report.delta_rows.len(), 2);
        assert!(report.delta_rows.iter().all(|r| r.incremental_ns > 0));
        assert!(report.to_json().contains("delta_reanswer_vs_full"));
        assert_eq!(report.acyclic_join_rows.len(), ACYCLIC_JOIN_SIZES.len());
        assert!(report.acyclic_join_rows.iter().all(|r| r.semijoin_ns > 0));
        assert!(report.to_json().contains("acyclic_join_largest_speedup"));
        assert_eq!(report.emit_exec_rows.len(), EMIT_EXEC_SIZES.len());
        assert!(report.emit_exec_rows.iter().all(|r| r.emit_exec_ns > 0));
        assert!(report.to_json().contains("emit_exec_vs_compiled"));
        assert_eq!(report.serve_rows.len(), SERVE_SIZES.len());
        assert!(report.serve_rows.iter().all(|r| r.cached_serve_ns > 0));
        assert!(report.to_json().contains("serve_cache_amortization"));
    }

    #[test]
    fn nested_workload_is_a_yes_instance_with_depth_two() {
        let (s, plan, compiled) = nested_l45_plan();
        assert!(plan.depth() >= 3, "nested Lemma 45 depth: {}", plan.depth());
        let db = nested_l45_instance(&s, 4);
        assert_eq!(db.len(), 20);
        assert!(plan.answer(&db));
        assert!(compiled.answer(&db));
        // Breaking one chain flips both executors to "not certain".
        let mut broken = db.clone();
        broken.remove(&cqa_model::parser::parse_fact("P(w2)").unwrap()).unwrap();
        assert!(!plan.answer(&broken));
        assert!(!compiled.answer(&broken));
    }
}
