//! # cqa-bench
//!
//! The experiment harness: utilities shared by the Criterion benches and by
//! the `paper-eval` binary, which regenerates every figure and worked
//! example of the paper and prints a paper-vs-measured table
//! (see `EXPERIMENTS.md` and DESIGN.md §3 for the experiment index E1–E16).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eval_bench;

pub use eval_bench::{
    acyclic_join_instance, nested_l45_instance, nested_l45_plan, nested_l45_problem,
    run_eval_bench, AcyclicJoinRow, DeltaBenchRow, EvalBench, EvalBenchRow, PlanBenchRow,
    ACYCLIC_JOIN_QUERY, ACYCLIC_JOIN_SCHEMA, ACYCLIC_JOIN_SIZES,
};

use serde::Serialize;
use std::fmt;
use std::time::{Duration, Instant};

/// One experiment row: what the paper claims vs. what this reproduction
/// measured.
#[derive(Clone, Debug, Serialize)]
pub struct Experiment {
    /// Experiment id (E1…E14, DESIGN.md §3).
    pub id: String,
    /// The paper artifact (figure / example / proposition).
    pub artifact: String,
    /// What the paper claims.
    pub paper: String,
    /// What we measured or computed.
    pub measured: String,
    /// Whether the claim is reproduced.
    pub ok: bool,
}

impl Experiment {
    /// Creates a row.
    pub fn new(
        id: &str,
        artifact: &str,
        paper: &str,
        measured: impl Into<String>,
        ok: bool,
    ) -> Experiment {
        Experiment {
            id: id.to_string(),
            artifact: artifact.to_string(),
            paper: paper.to_string(),
            measured: measured.into(),
            ok,
        }
    }
}

impl fmt::Display for Experiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mark = if self.ok { "✓" } else { "✗" };
        writeln!(f, "[{mark}] {} — {}", self.id, self.artifact)?;
        writeln!(f, "      paper    : {}", self.paper)?;
        write!(f, "      measured : {}", self.measured)
    }
}

/// A collection of experiment rows with pretty/JSON output.
#[derive(Clone, Debug, Default, Serialize)]
pub struct Report {
    /// The rows.
    pub experiments: Vec<Experiment>,
}

impl Report {
    /// Creates an empty report.
    pub fn new() -> Report {
        Report::default()
    }

    /// Adds a row (also printing it).
    pub fn push(&mut self, e: Experiment) {
        println!("{e}\n");
        self.experiments.push(e);
    }

    /// Whether every experiment reproduced.
    pub fn all_ok(&self) -> bool {
        self.experiments.iter().all(|e| e.ok)
    }

    /// Renders the report as JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Summary line.
    pub fn summary(&self) -> String {
        let ok = self.experiments.iter().filter(|e| e.ok).count();
        format!("{ok}/{} experiments reproduced", self.experiments.len())
    }
}

/// Times a closure, returning its result and the wall-clock duration.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Formats a duration compactly for tables.
pub fn fmt_duration(d: Duration) -> String {
    if d.as_secs() >= 1 {
        format!("{:.2}s", d.as_secs_f64())
    } else if d.as_millis() >= 1 {
        format!("{:.2}ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.1}µs", d.as_secs_f64() * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trip() {
        let mut r = Report::new();
        r.push(Experiment::new("E0", "smoke", "claim", "observed", true));
        assert!(r.all_ok());
        assert!(r.to_json().contains("\"E0\""));
        assert_eq!(r.summary(), "1/1 experiments reproduced");
    }

    #[test]
    fn duration_formatting() {
        assert!(fmt_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with('s'));
    }
}
