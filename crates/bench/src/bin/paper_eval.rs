//! `paper-eval` — regenerates every figure, worked example and proposition
//! of the paper and prints a paper-vs-measured table (experiments E1–E16 of
//! DESIGN.md §3). Writes `experiments.json` next to the table, then runs
//! the compiled-vs-interpreted evaluation benchmark and snapshots it to
//! `BENCH_eval.json` (the perf-trajectory baseline; uploaded by CI).
//!
//! Run with: `cargo run -p cqa-bench --bin paper-eval --release`

use cqa_bench::{fmt_duration, timed, Experiment, Report};
use cqa_core::classify::Classification;
use cqa_core::fk_types::{type_table, FkType};
use cqa_core::flatten::flatten;
use cqa_core::{block_interference, CertainEngine, Problem, Solver};
use cqa_fo::eval::eval_closed;
use cqa_gen::graphs::layered_dag;
use cqa_gen::{bibliography_scenario, block_chain, BlockChainConfig};
use cqa_model::parser::{parse_fact, parse_fks, parse_instance, parse_query, parse_schema};
use cqa_model::{Cst, FkSet, Instance, Position, RelName, Schema};
use cqa_repair::{CertaintyOracle, SearchLimits};
use cqa_solvers::{fig3, prop16, prop17, DiGraph};
use std::sync::Arc;

/// A reachability test case: vertices, edges, source, target, expected
/// reachability.
type GraphCase = (Vec<usize>, Vec<(usize, usize)>, usize, usize, bool);
/// Paired `R`/`S` edge sets for the Lemma 14 invariance check.
type PairSet = (Vec<(usize, usize)>, Vec<(usize, usize)>);

fn main() {
    let mut report = Report::new();
    e1_bibliography(&mut report);
    e2_block_chain(&mut report);
    e3_obedience(&mut report);
    e4_interference_3b(&mut report);
    e5_example13(&mut report);
    e6_fig3(&mut report);
    e7_prop16(&mut report);
    e8_prop17(&mut report);
    e9_section8(&mut report);
    e10_example4(&mut report);
    e11_example27(&mut report);
    e12_classification_corpus(&mut report);
    e13_fo_vs_naive(&mut report);
    e14_aboutness(&mut report);
    e15_generic_lemma15(&mut report);
    e16_lemma14_invariance(&mut report);

    println!("━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━");
    println!("{}", report.summary());
    let json = report.to_json();
    let path = "experiments.json";
    std::fs::write(path, &json).expect("write experiments.json");
    println!("wrote {path}");
    // Fail before touching the perf baseline: a build whose experiments do
    // not reproduce must not overwrite BENCH_eval.json.
    assert!(report.all_ok(), "some experiments failed to reproduce");

    bench_eval_snapshot();
}

/// Measures the interpreted-vs-compiled formula evaluators on the
/// `fo_vs_naive` guarded workload, the materializing-vs-compiled plan
/// executors on the nested Lemma 45 workload, and snapshots both to
/// `BENCH_eval.json`.
fn bench_eval_snapshot() {
    println!("━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━");
    println!("evaluation core: interpreted vs compiled (guarded strategy)");
    let bench = cqa_bench::run_eval_bench(
        &[8, 64, 512],
        &[8, 64, 256],
        std::time::Duration::from_millis(200),
    );
    for row in &bench.rows {
        println!(
            "  n={:<4} ({:>4} facts): interpreted {:>10} — compiled {:>10} — {:.1}×",
            row.n_blocks,
            row.facts,
            fmt_duration(std::time::Duration::from_nanos(
                row.interpreted_guarded_ns as u64
            )),
            fmt_duration(std::time::Duration::from_nanos(
                row.compiled_guarded_ns as u64
            )),
            row.speedup,
        );
    }
    println!(
        "  speedup at the largest size: {:.1}×",
        bench.largest_size_speedup
    );
    println!("reduction pipeline: materializing plan vs compiled plan (nested Lemma 45)");
    for row in &bench.plan_rows {
        println!(
            "  n={:<4} ({:>4} facts): materialized {:>10} — compiled {:>10} — {:.1}×",
            row.n_blocks,
            row.facts,
            fmt_duration(std::time::Duration::from_nanos(row.materialized_ns as u64)),
            fmt_duration(std::time::Duration::from_nanos(row.compiled_ns as u64)),
            row.speedup,
        );
    }
    println!(
        "  plan speedup at the largest size: {:.1}×",
        bench.plan_largest_size_speedup
    );
    println!(
        "shard-parallel plan execution: sequential vs answer_parallel ({} CPU(s) available)",
        bench.threads_available
    );
    for row in &bench.plan_parallel_rows {
        println!(
            "  n={:<4} ({:>4} facts) × {} threads: sequential {:>10} — parallel {:>10} — {:.2}×",
            row.n_blocks,
            row.facts,
            row.threads,
            fmt_duration(std::time::Duration::from_nanos(row.sequential_ns as u64)),
            fmt_duration(std::time::Duration::from_nanos(row.parallel_ns as u64)),
            row.speedup,
        );
    }
    println!(
        "  parallel speedup at 4 threads, largest size: {:.2}×",
        bench.plan_parallel_vs_sequential
    );
    println!("unified solver: direct CompiledPlan::answer vs Solver::solve (facade dispatch)");
    for row in &bench.solver_routing_rows {
        println!(
            "  n={:<4} ({:>4} facts): direct {:>10} — solver {:>10} — overhead {:+.2}%",
            row.n_blocks,
            row.facts,
            fmt_duration(std::time::Duration::from_nanos(row.direct_ns as u64)),
            fmt_duration(std::time::Duration::from_nanos(row.solver_ns as u64)),
            row.overhead_pct,
        );
    }
    println!(
        "  routing overhead at the largest size: {:+.2}% (target < 5%)",
        bench.solver_routing_overhead
    );
    println!("delta-certainty: apply + full solve vs IncrementalSolver::reanswer (single-fact Δ)");
    for row in &bench.delta_rows {
        println!(
            "  n={:<4} ({:>4} facts): full {:>10} — incremental {:>10} — {:.1}×",
            row.n_blocks,
            row.facts,
            fmt_duration(std::time::Duration::from_nanos(row.full_ns as u64)),
            fmt_duration(std::time::Duration::from_nanos(row.incremental_ns as u64)),
            row.speedup,
        );
    }
    println!(
        "  delta speedup at the largest size: {:.1}× (target ≥ 10×)",
        bench.delta_reanswer_vs_full
    );
    println!("acyclic residual join: backtracking search vs Yannakakis semijoin passes");
    for row in &bench.acyclic_join_rows {
        println!(
            "  n={:<4} ({:>4} facts): backtracking {:>10} — semijoin {:>10} — {:.1}×",
            row.n_rows,
            row.facts,
            fmt_duration(std::time::Duration::from_nanos(row.backtracking_ns as u64)),
            fmt_duration(std::time::Duration::from_nanos(row.semijoin_ns as u64)),
            row.speedup,
        );
    }
    println!(
        "  semijoin speedup at the largest size: {:.1}× (target ≥ 3×)",
        bench.acyclic_join_largest_speedup
    );
    println!("emitted artifact: vendored Datalog evaluation vs the compiled plan");
    for row in &bench.emit_exec_rows {
        println!(
            "  n={:<4} ({:>4} facts): compiled {:>10} — emit∘exec {:>10} — {:.1}× slower",
            row.n_blocks,
            row.facts,
            fmt_duration(std::time::Duration::from_nanos(row.compiled_ns as u64)),
            fmt_duration(std::time::Duration::from_nanos(row.emit_exec_ns as u64)),
            row.slowdown,
        );
    }
    println!(
        "  self-containment cost at the largest size: {:.1}× (documented, not a race)",
        bench.emit_exec_vs_compiled
    );
    println!("serve mode: per-request parse+classify+compile+solve vs warm plan cache");
    for row in &bench.serve_rows {
        println!(
            "  n={:<4} ({:>4} facts): per-request {:>10} — cached serve {:>10} — {:.1}×",
            row.n_blocks,
            row.facts,
            fmt_duration(std::time::Duration::from_nanos(row.per_request_build_ns as u64)),
            fmt_duration(std::time::Duration::from_nanos(row.cached_serve_ns as u64)),
            row.amortization,
        );
    }
    println!(
        "  serve cache amortization at the smallest size: {:.1}× (target ≥ 10×)",
        bench.serve_cache_amortization
    );
    let path = "BENCH_eval.json";
    std::fs::write(path, bench.to_json()).expect("write BENCH_eval.json");
    println!("wrote {path}");
}

fn e1_bibliography(report: &mut Report) {
    let bib = bibliography_scenario();
    let problem = Problem::new(bib.query.clone(), bib.fks.clone()).unwrap();
    let plan = match problem.classify() {
        Classification::Fo(p) => p,
        Classification::NotFo(r) => {
            report.push(Experiment::new("E1", "Fig. 1 + §1 query q0", "in FO", r.to_string(), false));
            return;
        }
    };
    let (ans, t) = timed(|| plan.answer(&bib.db));
    let oracle = CertaintyOracle::new()
        .is_certain(&bib.db, &bib.query, &bib.fks)
        .as_bool();
    let ok = !ans && oracle == Some(false);
    report.push(Experiment::new(
        "E1",
        "Fig. 1 bibliography, §1 query q0",
        "consistent answer is \"no\" (a repair falsifies q0)",
        format!(
            "rewriting answer = {ans} in {}; exhaustive oracle = {:?}",
            fmt_duration(t),
            oracle
        ),
        ok,
    ));
}

fn e2_block_chain(report: &mut Report) {
    let mut ok = true;
    let mut lines = Vec::new();
    for (cfg, expect) in [
        (BlockChainConfig { n: 12, closing_is_c: true, with_anchor: true }, true),
        (BlockChainConfig { n: 12, closing_is_c: false, with_anchor: true }, false),
        (BlockChainConfig { n: 12, closing_is_c: true, with_anchor: false }, false),
    ] {
        let bc = block_chain(cfg);
        let got = prop17::certain(&bc.db, Cst::new("c"));
        ok &= got == expect;
        lines.push(format!(
            "□={} anchor={} → certain={got}",
            if cfg.closing_is_c { "c" } else { "d" },
            cfg.with_anchor
        ));
    }
    // Oracle confirmation at n = 2.
    let bc = block_chain(BlockChainConfig { n: 2, closing_is_c: true, with_anchor: true });
    let oracle = CertaintyOracle::new()
        .is_certain(&bc.db, &bc.query, &bc.fks)
        .as_bool();
    ok &= oracle == Some(true);
    report.push(Experiment::new(
        "E2",
        "§4 block-chain database",
        "yes-instance iff □ = c; removing O(1) gives a no-instance",
        format!("{}; oracle at n=2: {:?}", lines.join("; "), oracle),
        ok,
    ));
}

fn e3_obedience(report: &mut Report) {
    let s = Arc::new(parse_schema("N[3,1] O[1,1]").unwrap());
    let q = parse_query(&s, "N(x,'c',y), O(y)").unwrap();
    let fks = parse_fks(&s, "N[3] -> O").unwrap();
    let n2 = cqa_core::obedience::is_obedient_position(&q, &fks, Position::new(RelName::new("N"), 2));
    let n3 = cqa_core::obedience::is_obedient_position(&q, &fks, Position::new(RelName::new("N"), 3));
    let o = cqa_core::atom_obedient(&q, &fks, RelName::new("O"));
    let witnesses = block_interference(&q, &fks);
    let ok = !n2 && n3 && o && witnesses.len() == 1;
    report.push(Experiment::new(
        "E3",
        "Examples 6 & 10 (obedience, (3a) interference)",
        "{(N,2)} disobedient, {(N,3)} obedient, O obedient; N[3]→O interferes via (3a)",
        format!(
            "(N,2) obedient={n2}, (N,3) obedient={n3}, O obedient={o}; witnesses: {}",
            witnesses
                .iter()
                .map(|w| w.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        ),
        ok,
    ));
}

fn e4_interference_3b(report: &mut Report) {
    let s = Arc::new(parse_schema("Np[2,1] O[1,1] T[2,1] R[2,1]").unwrap());
    let q0 = parse_query(&s, "Np(x,y), O(y), T(x,y)").unwrap();
    let fks = parse_fks(&s, "Np[2] -> O").unwrap();
    let with_t = block_interference(&q0, &fks);
    let q_fixed = parse_query(&s, "Np(x,y), O(y), T(x,y), R('a',x)").unwrap();
    let fixed = block_interference(&q_fixed, &fks);
    let ok = with_t.len() == 1 && fixed.is_empty();
    report.push(Experiment::new(
        "E4",
        "Example 11 ((3b) interference and the V-set)",
        "T connects x,y ⟹ interference; adding R('a',x) fixes x and removes it",
        format!("witnesses with T: {}; after R('a',x): {}", with_t.len(), fixed.len()),
        ok,
    ));
}

fn e5_example13(report: &mut Report) {
    let s = Arc::new(parse_schema("N[3,1] O[2,1]").unwrap());
    let mk = |q: &str| {
        Problem::new(
            parse_query(&s, q).unwrap(),
            parse_fks(&s, "N[3] -> O").unwrap(),
        )
        .unwrap()
    };
    let c1 = mk("N(x,u,y), O(y,w)").classify();
    let c2 = mk("N(x,'c',y), O(y,w)").classify();
    let c3 = mk("N(x,'c',y), O(y,'c')").classify();

    // q1's rewriting differs from PK-only on the paper's witness.
    let witness = parse_instance(&s, "N(c,1,a) N(c,2,b) O(a,3)").unwrap();
    let with_fk = c1.plan().map(|p| p.answer(&witness));
    let pk_plan = match Problem::pk_only(parse_query(&s, "N(x,u,y), O(y,w)").unwrap()).classify() {
        Classification::Fo(p) => p,
        _ => unreachable!(),
    };
    let without_fk = pk_plan.answer(&witness);

    let ok = c1.is_fo() && !c2.is_fo() && c3.is_fo() && with_fk == Some(true) && !without_fk;
    report.push(Experiment::new(
        "E5",
        "Example 13 (q1, q2, q3)",
        "q1: FO (rewriting ≡ q1); q2: NL-hard; q3: FO; witness db yes with FK, no without",
        format!(
            "q1 {}; q2 {}; q3 {}; witness with FK = {:?}, without = {}",
            c1, c2, c3, with_fk, without_fk
        ),
        ok,
    ));
}

fn e6_fig3(report: &mut Report) {
    // The paper's Figure 3 graph, then a scaling sweep.
    let mut g = DiGraph::new();
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(2, 3);
    let inst = fig3::reduce(&g, 0, 3);
    let no_instance = !prop17::certain(&inst.db, Cst::new("c"));
    let mut ok = no_instance == inst.reachable;

    let mut sweep = Vec::new();
    for layers in [8usize, 32, 128] {
        let spec = layered_dag(layers, 5, 2, 11);
        let mut g = DiGraph::new();
        for &v in &spec.vertices {
            g.add_vertex(v);
        }
        for &(u, v) in &spec.edges {
            g.add_edge(u, v);
        }
        let inst = fig3::reduce(&g, 0, layers * 5 - 1);
        let (got, t) = timed(|| prop17::certain(&inst.db, Cst::new("c")));
        ok &= got != inst.reachable;
        sweep.push(format!("{} facts: {}", inst.db.len(), fmt_duration(t)));
    }
    report.push(Experiment::new(
        "E6",
        "Fig. 3 / Lemma 15 reduction from reachability",
        "db is a no-instance iff s ⇝ t; family witnesses NL-hardness",
        format!(
            "paper's graph: no-instance={no_instance} (reachable={}); sweep {}",
            inst.reachable,
            sweep.join(", ")
        ),
        ok,
    ));
}

fn e7_prop16(report: &mut Report) {
    let s = Arc::new(parse_schema(prop16::SCHEMA).unwrap());
    let q = parse_query(&s, prop16::QUERY).unwrap();
    let fks = parse_fks(&s, prop16::FKS).unwrap();
    let classify = Problem::new(q.clone(), fks.clone()).unwrap().classify();
    let mut ok = !classify.is_fo();

    // Solver vs oracle over a deterministic instance battery.
    let oracle = CertaintyOracle::new();
    let mut agree = 0;
    let mut total = 0;
    for text in [
        "N(a,a) O(a)",
        "N(a,a) N(a,b) O(a)",
        "N(a,a) N(a,b) N(b,b) O(a)",
        "N(a,a) N(a,b) N(b,b) N(b,a) O(a)",
        "N(a,a) N(a,b) N(b,b) N(b,c) N(c,c) O(a) O(c)",
    ] {
        let db = parse_instance(&s, text).unwrap();
        let fast = prop16::certain(&db);
        let reach = prop16::certain_via_reachability(&db);
        if let Some(truth) = oracle.is_certain(&db, &q, &fks).as_bool() {
            total += 1;
            if fast == truth && reach == truth {
                agree += 1;
            }
        }
    }
    ok &= agree == total;
    report.push(Experiment::new(
        "E7",
        "Proposition 16 (NL-complete case)",
        "q={N(x,x),O(x)}, FK={N[2]→O} not in FO; decidable via reachability",
        format!(
            "Theorem 12: {classify}; solver agrees with oracle on {agree}/{total} instances \
             (graph criterion refined to \"⊥ or a cycle\", see cqa-solvers docs)"
        ),
        ok,
    ));
}

fn e8_prop17(report: &mut Report) {
    let s = Arc::new(parse_schema(prop17::SCHEMA).unwrap());
    let q = parse_query(&s, prop17::QUERY).unwrap();
    let fks = parse_fks(&s, prop17::FKS).unwrap();
    let classify = Problem::new(q.clone(), fks.clone()).unwrap().classify();
    let mut ok = !classify.is_fo();

    // Linear-scaling sweep of the dual-Horn solver.
    let mut sweep = Vec::new();
    for n in [1_000usize, 10_000, 100_000] {
        let bc = block_chain(BlockChainConfig { n, closing_is_c: true, with_anchor: true });
        let (got, t) = timed(|| prop17::certain(&bc.db, Cst::new("c")));
        ok &= got;
        sweep.push(format!("n={n}: {}", fmt_duration(t)));
    }
    report.push(Experiment::new(
        "E8",
        "Proposition 17 (P-complete case)",
        "q={N(x,'c',y),O(y)}, FK={N[3]→O} ≡ DUAL HORN SAT (both directions)",
        format!("Theorem 12: {classify}; dual-Horn sweep {}", sweep.join(", ")),
        ok,
    ));
}

fn e9_section8(report: &mut Report) {
    let s = Arc::new(parse_schema("N[2,1] O[1,1] P[1,1]").unwrap());
    let q = parse_query(&s, "N('c',y), O(y), P(y)").unwrap();
    let fks = parse_fks(&s, "N[2] -> O").unwrap();
    let p = Problem::new(q, fks).unwrap();
    let engine = match CertainEngine::try_new(p.clone()) {
        Ok(e) => e,
        Err(r) => {
            report.push(Experiment::new("E9", "§8 rewriting", "in FO", r.to_string(), false));
            return;
        }
    };
    let solver = Solver::new(p).expect("§8's problem is FO");
    let formula = engine.formula().unwrap();
    let yes = parse_instance(&s, "N(c,a) N(c,b) O(a) P(a) P(b)").unwrap();
    let mut ok = solver.solve(&yes).is_certain() && eval_closed(&yes, &formula);
    for gone in ["P(a)", "P(b)"] {
        let mut db = yes.clone();
        db.remove(&parse_fact(gone).unwrap()).unwrap();
        ok &= !solver.solve(&db).is_certain();
    }
    report.push(Experiment::new(
        "E9",
        "§8 worked rewriting (Lemma 45)",
        "rewriting is ∃y(N(c,y) ∧ O(y)) ∧ ∀y(N(c,y) → P(y)); removing either P-fact flips yes→no",
        format!("constructed: {formula}; instance behaviour matches"),
        ok,
    ));
}

fn e10_example4(report: &mut Report) {
    let s = Arc::new(parse_schema("R[2,1] S[2,1] T[1,1]").unwrap());
    let fks = parse_fks(&s, "R[2] -> S, S[2] -> T").unwrap();
    let db = parse_instance(&s, "R(a,b) S(b,c)").unwrap();
    let limits = SearchLimits::default();
    let r1 = parse_instance(&s, "").unwrap();
    let r2 = parse_instance(&s, "R(a,b) S(b,1) T(1)").unwrap();
    let r3 = parse_instance(&s, "R(a,b) S(b,c) T(c)").unwrap();
    let all_repairs = [&r1, &r2, &r3]
        .iter()
        .all(|r| cqa_repair::is_delta_repair(&db, r, &fks, &limits) == Some(true));
    let incomparable =
        !cqa_repair::closer_eq(&db, &r2, &r3) && !cqa_repair::closer_eq(&db, &r3, &r2);
    report.push(Experiment::new(
        "E10",
        "Example 4 (⊕-repairs)",
        "r1={}, r2, r3 are ⊕-repairs; r2 and r3 are ⪯_db-incomparable",
        format!("all three verified as ⊕-repairs: {all_repairs}; r2 ∥ r3: {incomparable}"),
        all_repairs && incomparable,
    ));
}

fn e11_example27(report: &mut Report) {
    let s = Arc::new(parse_schema("N[2,1] O[2,1]").unwrap());
    let q = parse_query(&s, "N(x,x), O(x,y)").unwrap();
    let fks = parse_fks(&s, "N[2] -> N, N[2] -> O").unwrap();
    let db = parse_instance(&s, "N(a,a) N(b,c) O(a,b)").unwrap();
    let a_fact = parse_fact("N(b, c)").unwrap();
    let db_ap = parse_instance(&s, "N(c,⊥) N(⊥,c) O(c,⊥) O(⊥,c)").unwrap();

    let item1 = db_ap.adom().iter().all(|c| !db.key_consts().contains(c));
    let item3 = db_ap.is_consistent(&fks);
    let mut with_a = db_ap.clone();
    with_a.insert(a_fact.clone()).unwrap();
    let item4 = fks.iter().all(|fk| !with_a.is_dangling(&a_fact, fk));
    let union = db.union(&db_ap);
    let item5 = with_a
        .facts()
        .all(|f| !cqa_model::eval::is_relevant(&union, &q, &f));
    let ok = item1 && item3 && item4 && item5;
    report.push(Experiment::new(
        "E11",
        "Example 27 / Lemma 24 (cyclic chase witness)",
        "db_{A,P} with 2-cycle c→⊥→c satisfies items (1)–(5) of Lemma 24",
        format!("keyconst∩adom=∅: {item1}; consistent: {item3}; A non-dangling: {item4}; all irrelevant: {item5}"),
        ok,
    ));
}

fn e12_classification_corpus(report: &mut Report) {
    // A corpus spanning all foreign-key types and all Theorem 12 outcomes.
    let corpus: Vec<(&str, &str, &str, &str)> = vec![
        ("N[3,1] O[2,1]", "N(x,u,y), O(y,w)", "N[3] -> O", "FO"),
        ("N[3,1] O[2,1]", "N(x,'c',y), O(y,w)", "N[3] -> O", "NL-hard"),
        ("N[3,1] O[2,1]", "N(x,'c',y), O(y,'c')", "N[3] -> O", "FO"),
        ("N[3,1] O[1,1]", "N(x,'c',y), O(y)", "N[3] -> O", "NL-hard"),
        ("N[2,1] O[1,1]", "N(x,x), O(x)", "N[2] -> O", "NL-hard"),
        ("R[2,1] S[2,1]", "R(x,y), S(y,x)", "R[2] -> S", "L-hard"),
        ("R[2,1] S[1,1]", "R(x,y), S(x)", "R[1] -> S", "FO"),
        ("N[2,1] O[1,1] P[1,1]", "N('c',y), O(y), P(y)", "N[2] -> O", "FO"),
    ];
    let mut ok = true;
    let mut types = std::collections::BTreeSet::new();
    let mut lines = Vec::new();
    let (_, total_time) = timed(|| {
        for (schema_text, q, fk, expected) in &corpus {
            let s = Arc::new(parse_schema(schema_text).unwrap());
            let problem = Problem::new(
                parse_query(&s, q).unwrap(),
                parse_fks(&s, fk).unwrap(),
            )
            .unwrap();
            for (_, ty) in type_table(problem.query(), problem.fks()) {
                if ty != FkType::Trivial {
                    types.insert(ty.to_string());
                }
            }
            let got = match problem.classify() {
                Classification::Fo(_) => "FO",
                Classification::NotFo(r) => {
                    if r.l_hard() {
                        "L-hard"
                    } else {
                        "NL-hard"
                    }
                }
            };
            if got != *expected {
                ok = false;
                lines.push(format!("{q} with {fk}: expected {expected}, got {got}"));
            }
        }
    });
    report.push(Experiment::new(
        "E12",
        "Theorem 12 over a corpus + Fig. 4 type table",
        "classification decidable; types weak / o→o / d→d / d→o all occur",
        format!(
            "8/8 classified as expected in {}; observed types: {:?}{}",
            fmt_duration(total_time),
            types,
            if lines.is_empty() { String::new() } else { format!("; ERRORS: {lines:?}") }
        ),
        ok && types.len() >= 4,
    ));
}

fn e13_fo_vs_naive(report: &mut Report) {
    // FO case: rewriting evaluation (polynomial) vs. exhaustive repair
    // search (exponential). The crossover is immediate and widens.
    let s = Arc::new(parse_schema("N[3,1] O[2,1]").unwrap());
    let q = parse_query(&s, "N(x,u,y), O(y,w)").unwrap();
    let fks = parse_fks(&s, "N[3] -> O").unwrap();
    let problem = Problem::new(q.clone(), fks.clone()).unwrap();
    let plan = match problem.classify() {
        Classification::Fo(p) => p,
        _ => unreachable!(),
    };
    let formula = flatten(&plan).unwrap();

    let mut lines = Vec::new();
    let mut ok = true;
    for n in [2usize, 4, 6, 32, 256] {
        let db = chain_instance(&s, n);
        let (a, t_plan) = timed(|| plan.answer(&db));
        let (b, t_formula) = timed(|| eval_closed(&db, &formula));
        ok &= a == b;
        let oracle_col = if n <= 6 {
            let oracle = CertaintyOracle::new();
            let (o, t_oracle) = timed(|| oracle.is_certain(&db, &q, &fks));
            if let Some(truth) = o.as_bool() {
                ok &= truth == a;
            }
            format!("oracle {}", fmt_duration(t_oracle))
        } else {
            "oracle —(exponential)".to_string()
        };
        lines.push(format!(
            "n={n}: plan {} formula {} {}",
            fmt_duration(t_plan),
            fmt_duration(t_formula),
            oracle_col
        ));
    }
    report.push(Experiment::new(
        "E13",
        "FO rewriting vs. generic repair search (shape of Theorem 12(1))",
        "rewriting is polynomial data complexity; repair enumeration blows up",
        lines.join(" | "),
        ok,
    ));
}

fn chain_instance(s: &Arc<Schema>, n: usize) -> Instance {
    let mut db = Instance::new(s.clone());
    for i in 0..n {
        db.insert_named("N", &[&format!("k{i}"), "u", &format!("y{i}")]).unwrap();
        db.insert_named("N", &[&format!("k{i}"), "v", &format!("z{i}")]).unwrap();
        db.insert_named("O", &[&format!("y{i}"), "w"]).unwrap();
    }
    db
}

fn e14_aboutness(report: &mut Report) {
    let s = Arc::new(parse_schema("E[2,1]").unwrap());
    let rejected = Problem::new(
        parse_query(&s, "E(x,y)").unwrap(),
        parse_fks(&s, "E[2] -> E").unwrap(),
    )
    .is_err();
    let s2 = Arc::new(parse_schema("DOCS[3,1] R[2,2] AUTHORS[3,1]").unwrap());
    let fks2 = parse_fks(&s2, "R[1] -> DOCS, R[2] -> AUTHORS").unwrap();
    let short_rejected = Problem::new(
        parse_query(&s2, "DOCS(x, t, 2016), R(x, 'o1')").unwrap(),
        fks2.clone(),
    )
    .is_err();
    let full_accepted = Problem::new(
        parse_query(&s2, "DOCS(x, t, 2016), R(x, 'o1'), AUTHORS('o1', u, z)").unwrap(),
        fks2,
    )
    .is_ok();
    let _unused: Option<FkSet> = None;
    let ok = rejected && short_rejected && full_accepted;
    report.push(Experiment::new(
        "E14",
        "\"about the query\" restriction (§1, Proposition 19)",
        "({E(x,y)}, {E[2]→E}) rejected; §1's q1 needs the AUTHORS atom",
        format!(
            "Prop 19 pair rejected: {rejected}; short q rejected: {short_rejected}; full q1 accepted: {full_accepted}"
        ),
        ok,
    ));
}

fn e15_generic_lemma15(report: &mut Report) {
    // The generic Appendix D.2 reduction, exercised on both Definition 9
    // witness kinds and verified against the oracle.
    let cases = [
        ("(3a)", "N[3,1] O[1,1]", "N(x,'c',y), O(y)", "N[3] -> O"),
        ("(3b)", "Np[2,1] O[1,1] T[2,1]", "Np(x,y), O(y), T(x,y)", "Np[2] -> O"),
    ];
    let graphs: [GraphCase; 3] = [
        (vec![0, 1, 2], vec![(0, 1), (1, 2)], 0, 2, true),
        (vec![0, 1, 2], vec![(0, 1)], 0, 2, false),
        (vec![0, 1, 2, 3], vec![(0, 1), (0, 2), (2, 3)], 0, 3, true),
    ];
    let mut ok = true;
    let mut lines = Vec::new();
    let oracle = CertaintyOracle::new();
    for (kind, schema_text, q_text, fks_text) in cases {
        let s = Arc::new(parse_schema(schema_text).unwrap());
        let q = parse_query(&s, q_text).unwrap();
        let fks = parse_fks(&s, fks_text).unwrap();
        let w = cqa_core::block_interference(&q, &fks).into_iter().next().unwrap();
        let mut agree = 0;
        for (vs, es, src, dst, reach) in &graphs {
            let db = cqa_core::lemma15_reduction(&q, &fks, &w, vs, es, *src, *dst).unwrap();
            if let Some(certain) = oracle.is_certain(&db, &q, &fks).as_bool() {
                if certain != *reach {
                    agree += 1;
                } else {
                    ok = false;
                }
            }
        }
        lines.push(format!("{kind}: {agree}/3 graphs"));
    }
    report.push(Experiment::new(
        "E15",
        "generic Lemma 15 reduction (Appendix D.2)",
        "for any block-interfering pair: db is a no-instance iff s \u{21dd} t",
        format!("oracle agreement {}", lines.join("; ")),
        ok,
    ));
}

fn e16_lemma14_invariance(report: &mut Report) {
    // Lemma 14's proof invariant on db_{R,S}: foreign keys do not change
    // certainty.
    let s = Arc::new(parse_schema("R[2,1] S[2,1]").unwrap());
    let q = parse_query(&s, "R(x,y), S(y,x)").unwrap();
    let no_fk = FkSet::empty(s.clone());
    let with_fk = parse_fks(&s, "R[2] -> S").unwrap();
    let oracle = CertaintyOracle::new();
    let mut ok = true;
    let mut compared = 0;
    let sets: [PairSet; 4] = [
        (vec![(0, 0)], vec![(0, 0)]),
        (vec![(0, 0), (0, 1)], vec![(0, 0)]),
        (vec![(0, 1)], vec![(1, 0)]),
        (vec![(0, 0), (1, 1)], vec![(0, 0), (1, 1)]),
    ];
    for (r_pairs, s_pairs) in sets {
        let db = cqa_core::lemma14_instance(
            &q,
            RelName::new("R"),
            RelName::new("S"),
            &r_pairs,
            &s_pairs,
        )
        .unwrap();
        let base = oracle.is_certain(&db, &q, &no_fk).as_bool();
        let with = oracle.is_certain(&db, &q, &with_fk).as_bool();
        if let (Some(a), Some(b)) = (base, with) {
            compared += 1;
            ok &= a == b;
        }
    }
    report.push(Experiment::new(
        "E16",
        "Lemma 14 on db_{R,S} (Appendix C)",
        "adding foreign keys preserves certainty on the L-hardness instances",
        format!("{compared}/4 instance pairs compared, all invariant: {ok}"),
        ok,
    ));
}

