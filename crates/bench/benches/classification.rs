//! Bench E12 — decision-procedure costs: Theorem 12 classification
//! (attack graph + obedience + block-interference + plan construction) on a
//! corpus, and attack-graph construction as the query grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cqa_attack::AttackGraph;
use cqa_core::Problem;
use cqa_model::parser::{parse_fks, parse_query, parse_schema};
use cqa_model::Query;
use std::sync::Arc;

fn bench_classify_corpus(c: &mut Criterion) {
    let corpus: Vec<(&str, &str, &str)> = vec![
        ("N[3,1] O[2,1]", "N(x,u,y), O(y,w)", "N[3] -> O"),
        ("N[3,1] O[2,1]", "N(x,'c',y), O(y,w)", "N[3] -> O"),
        ("N[3,1] O[2,1]", "N(x,'c',y), O(y,'c')", "N[3] -> O"),
        ("N[2,1] O[1,1] P[1,1]", "N('c',y), O(y), P(y)", "N[2] -> O"),
        (
            "A[2,1] B[2,1] C[1,1] D[2,1]",
            "A(x,y), B(y,z), C(y), D(z,'k')",
            "A[2] -> B, B[1] -> C, B[2] -> D",
        ),
        ("R[2,1] S[2,1]", "R(x,y), S(y,x)", "R[2] -> S"),
    ];
    let problems: Vec<Problem> = corpus
        .iter()
        .map(|(s, q, k)| {
            let schema = Arc::new(parse_schema(s).unwrap());
            Problem::new(
                parse_query(&schema, q).unwrap(),
                parse_fks(&schema, k).unwrap(),
            )
            .unwrap()
        })
        .collect();

    c.bench_function("classify_corpus_of_6", |b| {
        b.iter(|| {
            problems
                .iter()
                .map(|p| p.classify().is_fo())
                .filter(|&fo| fo)
                .count()
        })
    });
}

/// Path query R1(x1,x2), R2(x2,x3), …: attack-graph cost vs. atom count.
fn path_query(n: usize) -> Query {
    let schema_text: String = (0..n).map(|i| format!("P{i}[2,1] ")).collect();
    let schema = Arc::new(parse_schema(&schema_text).unwrap());
    let query_text: String = (0..n)
        .map(|i| format!("P{i}(x{i}, x{})", i + 1))
        .collect::<Vec<_>>()
        .join(", ");
    parse_query(&schema, &query_text).unwrap()
}

fn bench_attack_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("attack_graph");
    group.sample_size(20);
    for n in [4usize, 8, 16] {
        let q = path_query(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &q, |b, q| {
            b.iter(|| {
                let ag = AttackGraph::of(q);
                assert!(ag.is_acyclic());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_classify_corpus, bench_attack_graph);
criterion_main!(benches);
