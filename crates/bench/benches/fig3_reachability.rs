//! Bench E6 — the Figure 3 / Lemma 15 family: building the reduction
//! instance from a graph and deciding `CERTAINTY(q, FK)` on it, as the graph
//! (and hence the database) grows. The paper pins the problem NL-hard; the
//! dual-Horn decision procedure scales near-linearly in the instance size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cqa_gen::graphs::layered_dag;
use cqa_model::Cst;
use cqa_solvers::{fig3, prop17, DiGraph};

fn to_digraph(spec: &cqa_gen::graphs::GraphSpec) -> DiGraph {
    let mut g = DiGraph::new();
    for &v in &spec.vertices {
        g.add_vertex(v);
    }
    for &(u, v) in &spec.edges {
        g.add_edge(u, v);
    }
    g
}

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_reachability");
    group.sample_size(20);
    for layers in [8usize, 32, 128] {
        let spec = layered_dag(layers, 5, 2, 11);
        let g = to_digraph(&spec);
        let target = layers * 5 - 1;
        let inst = fig3::reduce(&g, 0, target);

        group.bench_with_input(
            BenchmarkId::new("reduce", layers),
            &layers,
            |b, _| b.iter(|| fig3::reduce(&g, 0, target).db.len()),
        );
        group.bench_with_input(
            BenchmarkId::new("solve", inst.db.len()),
            &inst,
            |b, inst| b.iter(|| prop17::certain(&inst.db, Cst::new("c"))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
