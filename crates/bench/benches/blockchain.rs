//! Bench E2/E8 — the §4 block-chain family through the Proposition 17
//! dual-Horn solver (near-linear), contrasted with the exhaustive ⊕-repair
//! oracle at tiny sizes (exponential: the candidate space is the product of
//! block choices).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cqa_gen::{block_chain, BlockChainConfig};
use cqa_model::Cst;
use cqa_repair::CertaintyOracle;
use cqa_solvers::prop17;

fn bench_solver_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("blockchain_dual_horn");
    group.sample_size(20);
    for n in [64usize, 512, 4096] {
        let bc = block_chain(BlockChainConfig {
            n,
            closing_is_c: true,
            with_anchor: true,
        });
        group.bench_with_input(BenchmarkId::from_parameter(n), &bc, |b, bc| {
            b.iter(|| {
                assert!(prop17::certain(&bc.db, Cst::new("c")));
            })
        });
    }
    group.finish();
}

fn bench_oracle_blowup(c: &mut Criterion) {
    let mut group = c.benchmark_group("blockchain_oracle");
    group.sample_size(10);
    for n in [1usize, 2, 3] {
        let bc = block_chain(BlockChainConfig {
            n,
            closing_is_c: true,
            with_anchor: true,
        });
        let oracle = CertaintyOracle::new();
        group.bench_with_input(BenchmarkId::from_parameter(n), &bc, |b, bc| {
            b.iter(|| {
                let out = oracle.is_certain(&bc.db, &bc.query, &bc.fks);
                assert_eq!(out.as_bool(), Some(true));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solver_scaling, bench_oracle_blowup);
criterion_main!(benches);
