//! Ablation benches (design-choice experiments of DESIGN.md §3):
//!
//! * `guarded_vs_naive_fo` — the guarded top-down FO evaluator vs. plain
//!   active-domain evaluation of the same rewriting formula;
//! * `compiled_vs_interpreted` — the compiled evaluation core
//!   (slot bindings, pre-split guards, hash-indexed candidates) vs. the
//!   interpretive reference evaluator, on the same guarded formula; the
//!   `compile+eval` row includes the one-time compile step, the `eval`
//!   row reuses a precompiled formula;
//! * `plan_compiled_vs_materialized` — the view-backed `CompiledPlan`
//!   executor vs. the materializing `RewritePlan::answer` on the depth-2
//!   nested Lemma 45 workload (the interpreter renames and materializes a
//!   database per block fact per level; the compiled plan rebinds
//!   parameter slots over one lazy view stack);
//! * `plan_parallel_vs_sequential` — shard-parallel `answer_parallel`
//!   (Lemma 45 block-fact fan-out across a scoped pool, always fanning
//!   out) at widths 2 and 4 vs. the sequential compiled executor on the
//!   same workload; wall-clock gains require actual CPUs, so on
//!   single-core runners this group measures the sharding overhead;
//! * `delta_reanswer_vs_full` — a single-fact delta on the outer Lemma 45
//!   block (remove/reinsert one `N('c',∗)` fact, alternating), answered by
//!   `IncrementalSolver::reanswer` (cached residuals for the untouched
//!   block facts) vs. the same mutation followed by a full
//!   `Solver::solve`;
//! * `block_index` — conjunctive-query matching with the primary-key block
//!   index vs. a relation-scan emulation;
//! * `columnar_vs_row` — a single-column predicate scan over the cached
//!   [`cqa_model::ColumnarRelation`] projection (one contiguous `&[Cst]`
//!   slice) vs. the same scan over the row store's boxed-row iterator;
//! * `semijoin_vs_backtracking` — `CompiledQuery::satisfies_via` pinned to
//!   the Yannakakis semijoin evaluator vs. the backtracking search on the
//!   acyclic non-key join `{A(x,u), B(y,u)}` with disjoint `u`-value sets
//!   (unsatisfiable, so backtracking pays the full n² scan×scan loop).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cqa_attack::kw_rewrite;
use cqa_bench::{
    acyclic_join_instance, nested_l45_instance, nested_l45_plan, ACYCLIC_JOIN_QUERY,
    ACYCLIC_JOIN_SCHEMA,
};
use cqa_fo::eval::{eval_with, Strategy};
use cqa_fo::{interp, CompiledFormula};
use cqa_model::parser::{parse_query, parse_schema};
use cqa_model::{satisfies, CompiledQuery, Cst, Instance, JoinStrategy, RelName, Schema, Valuation};
use std::sync::Arc;

fn chain_db(s: &Arc<Schema>, n: usize) -> Instance {
    let mut db = Instance::new(s.clone());
    for i in 0..n {
        db.insert_named("R", &[&format!("a{i}"), &format!("b{i}")]).unwrap();
        db.insert_named("S", &[&format!("b{i}"), &format!("c{i}")]).unwrap();
    }
    db
}

fn bench_guarded_vs_naive(c: &mut Criterion) {
    let s = Arc::new(parse_schema("R[2,1] S[2,1]").unwrap());
    let q = parse_query(&s, "R(x,y), S(y,z)").unwrap();
    let f = kw_rewrite(&q).unwrap();
    let mut group = c.benchmark_group("guarded_vs_naive_fo");
    group.sample_size(10);
    for n in [8usize, 32] {
        let db = chain_db(&s, n);
        group.bench_with_input(BenchmarkId::new("guarded", n), &db, |b, db| {
            b.iter(|| eval_with(db, &f, &Valuation::new(), Strategy::Guarded))
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &db, |b, db| {
            b.iter(|| eval_with(db, &f, &Valuation::new(), Strategy::Naive))
        });
    }
    group.finish();
}

fn bench_compiled_vs_interpreted(c: &mut Criterion) {
    let s = Arc::new(parse_schema("R[2,1] S[2,1]").unwrap());
    let q = parse_query(&s, "R(x,y), S(y,z)").unwrap();
    let f = kw_rewrite(&q).unwrap();
    let compiled = CompiledFormula::compile(&f, Strategy::Guarded);
    let mut group = c.benchmark_group("compiled_vs_interpreted");
    group.sample_size(10);
    for n in [8usize, 64, 512] {
        let db = chain_db(&s, n);
        db.index(); // warm the instance index outside the timed loops
        group.bench_with_input(BenchmarkId::new("eval", n), &db, |b, db| {
            b.iter(|| compiled.eval_closed(db))
        });
        group.bench_with_input(BenchmarkId::new("compile+eval", n), &db, |b, db| {
            b.iter(|| CompiledFormula::compile(&f, Strategy::Guarded).eval_closed(db))
        });
        group.bench_with_input(BenchmarkId::new("interpreted", n), &db, |b, db| {
            b.iter(|| interp::eval_closed(db, &f))
        });
    }
    group.finish();
}

fn bench_plan_compiled_vs_materialized(c: &mut Criterion) {
    let (s, plan, compiled) = nested_l45_plan();
    let mut group = c.benchmark_group("plan_compiled_vs_materialized");
    group.sample_size(10);
    for n in [16usize, 64, 256] {
        let db = nested_l45_instance(&s, n);
        assert_eq!(plan.answer(&db), compiled.answer(&db), "executors agree");
        db.index(); // warm the base index outside the timed loops
        group.bench_with_input(BenchmarkId::new("compiled", n), &db, |b, db| {
            b.iter(|| compiled.answer(db))
        });
        group.bench_with_input(BenchmarkId::new("materialized", n), &db, |b, db| {
            b.iter(|| plan.answer(db))
        });
    }
    group.finish();
}

fn bench_plan_parallel_vs_sequential(c: &mut Criterion) {
    let (s, _, compiled) = nested_l45_plan();
    let mut group = c.benchmark_group("plan_parallel_vs_sequential");
    group.sample_size(10);
    for n in [64usize, 256] {
        let db = nested_l45_instance(&s, n);
        db.index(); // warm the base index outside the timed loops
        let expected = compiled.answer(&db);
        group.bench_with_input(BenchmarkId::new("sequential", n), &db, |b, db| {
            b.iter(|| compiled.answer(db))
        });
        for threads in [2usize, 4] {
            let policy = cqa_core::ParallelPolicy::with_threads(threads).fan_out_at(1);
            assert_eq!(compiled.answer_parallel(&db, &policy), expected);
            group.bench_with_input(
                BenchmarkId::new(format!("parallel{threads}"), n),
                &db,
                |b, db| b.iter(|| compiled.answer_parallel(db, &policy)),
            );
        }
    }
    group.finish();
}

fn bench_delta_reanswer_vs_full(c: &mut Criterion) {
    use cqa_bench::nested_l45_problem;
    use cqa_core::{ExecOptions, Solver};
    use cqa_model::parser::parse_fact;
    use cqa_model::Delta;

    let (s, _, _) = nested_l45_plan();
    let solver = Solver::builder(nested_l45_problem())
        .options(ExecOptions::sequential())
        .build()
        .expect("nested workload is FO");
    let toggled = parse_fact("N(c,y0)").unwrap();
    let mut remove = Delta::new();
    remove.remove(toggled.clone());
    let mut insert = Delta::new();
    insert.insert(toggled);
    let toggles = [remove, insert];

    let mut group = c.benchmark_group("delta_reanswer_vs_full");
    group.sample_size(10);
    for n in [64usize, 256] {
        // Both sides pay one single-fact mutation + one answer per
        // iteration; the delta between them is pure re-answering work.
        group.bench_with_input(BenchmarkId::new("full", n), &n, |b, &n| {
            let mut db = nested_l45_instance(&s, n);
            solver.solve(&db);
            let mut i = 0usize;
            b.iter(|| {
                let delta = &toggles[i % 2];
                i += 1;
                db.apply(delta).unwrap();
                solver.solve(&db).is_certain()
            })
        });
        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, &n| {
            let mut db = nested_l45_instance(&s, n);
            let mut session = solver.incremental();
            session.solve(&db);
            let mut i = 0usize;
            b.iter(|| {
                let delta = &toggles[i % 2];
                i += 1;
                session.reanswer(&mut db, delta).unwrap().is_certain()
            })
        });
    }
    group.finish();
}

/// Emulates CQ matching without the block index: join the atoms by scanning
/// full relations and filtering, the way an index-free engine would.
fn scan_join(db: &Instance, _q: &cqa_model::Query) -> bool {
    let r = cqa_model::RelName::new("R");
    let s_rel = cqa_model::RelName::new("S");
    for rf in db.facts_of(r) {
        for sf in db.facts_of(s_rel) {
            if rf.args[1] == sf.args[0] {
                return true;
            }
        }
    }
    false
}

fn bench_block_index(c: &mut Criterion) {
    let s = Arc::new(parse_schema("R[2,1] S[2,1]").unwrap());
    let q = parse_query(&s, "R(x,y), S(y,z)").unwrap();
    let mut group = c.benchmark_group("block_index");
    group.sample_size(10);
    for n in [64usize, 512] {
        // Worst case for the scan: no join partner until the very end.
        let mut db = Instance::new(s.clone());
        for i in 0..n {
            db.insert_named("R", &[&format!("a{i}"), &format!("miss{i}")]).unwrap();
            db.insert_named("S", &[&format!("other{i}"), "z"]).unwrap();
        }
        db.insert_named("R", &["last", "hit"]).unwrap();
        db.insert_named("S", &["hit", "z"]).unwrap();

        group.bench_with_input(BenchmarkId::new("indexed", n), &db, |b, db| {
            b.iter(|| assert!(satisfies(db, &q)))
        });
        group.bench_with_input(BenchmarkId::new("scan", n), &db, |b, db| {
            b.iter(|| assert!(scan_join(db, &q)))
        });
    }
    group.finish();
}

fn bench_columnar_vs_row(c: &mut Criterion) {
    let s = Arc::new(parse_schema("R[2,1]").unwrap());
    let rel = RelName::new("R");
    let needle = Cst::new("hit");
    let mut group = c.benchmark_group("columnar_vs_row");
    group.sample_size(10);
    for n in [64usize, 512] {
        // Every 8th row carries the needle in the non-key position.
        let mut db = Instance::new(s.clone());
        for i in 0..n {
            let v = if i % 8 == 0 { "hit".to_string() } else { format!("v{i}") };
            db.insert_named("R", &[&format!("k{i}"), &v]).unwrap();
        }
        db.index(); // build the row index and the cached projection
        let columnar = db.index().columnar(rel).expect("R holds rows").clone();
        let expected = n.div_ceil(8);
        let col_count = || columnar.column(1).iter().filter(|&&c| c == needle).count();
        let row_count = || {
            db.facts_of(rel)
                .filter(|f| f.args[1] == needle)
                .count()
        };
        assert_eq!(col_count(), expected);
        assert_eq!(row_count(), expected);
        group.bench_with_input(BenchmarkId::new("columnar", n), &n, |b, _| {
            b.iter(col_count)
        });
        group.bench_with_input(BenchmarkId::new("row", n), &n, |b, _| b.iter(row_count));
    }
    group.finish();
}

fn bench_semijoin_vs_backtracking(c: &mut Criterion) {
    let s = Arc::new(parse_schema(ACYCLIC_JOIN_SCHEMA).unwrap());
    let q = parse_query(&s, ACYCLIC_JOIN_QUERY).unwrap();
    let cq = CompiledQuery::new(&q);
    assert!(cq.semijoin_plan().is_some(), "workload must be acyclic");
    let mut group = c.benchmark_group("semijoin_vs_backtracking");
    group.sample_size(10);
    for n in [8usize, 64, 512] {
        let db = acyclic_join_instance(&s, n);
        db.index(); // warm the row index and columnar projections
        assert!(!cq.satisfies_via(&db, JoinStrategy::Backtracking));
        assert!(!cq.satisfies_via(&db, JoinStrategy::Semijoin));
        group.bench_with_input(BenchmarkId::new("semijoin", n), &db, |b, db| {
            b.iter(|| cq.satisfies_via(db, JoinStrategy::Semijoin))
        });
        group.bench_with_input(BenchmarkId::new("backtracking", n), &db, |b, db| {
            b.iter(|| cq.satisfies_via(db, JoinStrategy::Backtracking))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_guarded_vs_naive,
    bench_compiled_vs_interpreted,
    bench_plan_compiled_vs_materialized,
    bench_plan_parallel_vs_sequential,
    bench_delta_reanswer_vs_full,
    bench_block_index,
    bench_columnar_vs_row,
    bench_semijoin_vs_backtracking
);
criterion_main!(benches);
