//! Bench E7 — Proposition 16's NL-complete problem: the dual-Horn decision
//! procedure vs. the (cycle-refined) reachability criterion on growing
//! self-loop chains.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cqa_model::parser::parse_schema;
use cqa_model::Instance;
use cqa_solvers::prop16;
use std::sync::Arc;

/// A chain instance: N(v_i, v_i) and N(v_i, v_{i+1}) for i < n, with O(v_0):
/// certainty propagates down the whole chain.
fn chain(n: usize) -> Instance {
    let s = Arc::new(parse_schema(prop16::SCHEMA).unwrap());
    let mut db = Instance::new(s);
    let name = |i: usize| format!("v{i}");
    for i in 0..n {
        db.insert_named("N", &[&name(i), &name(i)]).unwrap();
        if i + 1 < n {
            db.insert_named("N", &[&name(i), &name(i + 1)]).unwrap();
        }
    }
    db.insert_named("O", &[&name(0)]).unwrap();
    db
}

fn bench_prop16(c: &mut Criterion) {
    let mut group = c.benchmark_group("prop16");
    group.sample_size(20);
    for n in [16usize, 64, 256] {
        let db = chain(n);
        group.bench_with_input(BenchmarkId::new("dual_horn", n), &db, |b, db| {
            b.iter(|| prop16::certain(db))
        });
        group.bench_with_input(BenchmarkId::new("reachability", n), &db, |b, db| {
            b.iter(|| prop16::certain_via_reachability(db))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_prop16);
criterion_main!(benches);
