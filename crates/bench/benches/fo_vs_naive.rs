//! Bench E13 — the shape of Theorem 12(1): on an FO-classified problem, the
//! constructed rewriting evaluates in polynomial time while the generic
//! ⊕-repair search is exponential in the number of inconsistent blocks.
//!
//! Workload: Example 13's q1 = {N(x,u,y), O(y,w)} with FK = {N[3]→O}, over
//! instances with `n` two-fact blocks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cqa_core::classify::Classification;
use cqa_core::flatten::flatten;
use cqa_core::Problem;
use cqa_fo::eval::{eval_closed, Strategy};
use cqa_fo::{interp, CompiledFormula};
use cqa_model::parser::{parse_fks, parse_query, parse_schema};
use cqa_model::{Instance, Schema};
use cqa_repair::CertaintyOracle;
use std::sync::Arc;

fn setup() -> (Arc<Schema>, cqa_core::RewritePlan, cqa_fo::Formula) {
    let s = Arc::new(parse_schema("N[3,1] O[2,1]").unwrap());
    let q = parse_query(&s, "N(x,u,y), O(y,w)").unwrap();
    let fks = parse_fks(&s, "N[3] -> O").unwrap();
    let plan = match Problem::new(q, fks).unwrap().classify() {
        Classification::Fo(p) => *p,
        Classification::NotFo(r) => panic!("{r}"),
    };
    let formula = flatten(&plan).unwrap();
    (s, plan, formula)
}

fn instance(s: &Arc<Schema>, n: usize) -> Instance {
    let mut db = Instance::new(s.clone());
    for i in 0..n {
        db.insert_named("N", &[&format!("k{i}"), "u", &format!("y{i}")]).unwrap();
        db.insert_named("N", &[&format!("k{i}"), "v", &format!("z{i}")]).unwrap();
        db.insert_named("O", &[&format!("y{i}"), "w"]).unwrap();
    }
    db
}

fn bench_rewriting(c: &mut Criterion) {
    let (s, plan, formula) = setup();
    let compiled = CompiledFormula::compile(&formula, Strategy::Guarded);
    let mut group = c.benchmark_group("fo_rewriting");
    group.sample_size(20);
    for n in [8usize, 64, 512] {
        let db = instance(&s, n);
        group.bench_with_input(BenchmarkId::new("plan_answer", n), &db, |b, db| {
            b.iter(|| plan.answer(db))
        });
        group.bench_with_input(BenchmarkId::new("flat_formula", n), &db, |b, db| {
            b.iter(|| eval_closed(db, &formula))
        });
        group.bench_with_input(
            BenchmarkId::new("flat_formula_precompiled", n),
            &db,
            |b, db| b.iter(|| compiled.eval_closed(db)),
        );
        // The pre-PR hot path, kept as the ablation baseline.
        group.bench_with_input(
            BenchmarkId::new("flat_formula_interpreted", n),
            &db,
            |b, db| b.iter(|| interp::eval_closed(db, &formula)),
        );
    }
    group.finish();
}

fn bench_oracle(c: &mut Criterion) {
    let (s, _, _) = setup();
    let schema2 = s.clone();
    let q = parse_query(&schema2, "N(x,u,y), O(y,w)").unwrap();
    let fks = parse_fks(&schema2, "N[3] -> O").unwrap();
    let oracle = CertaintyOracle::new();
    let mut group = c.benchmark_group("naive_repair_search");
    group.sample_size(10);
    for n in [2usize, 4, 5] {
        let db = instance(&s, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &db, |b, db| {
            b.iter(|| oracle.is_certain(db, &q, &fks))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rewriting, bench_oracle);
criterion_main!(benches);
