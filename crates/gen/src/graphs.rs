//! Random graph generators for the Figure 3 reachability reduction.
//!
//! `cqa-gen` deliberately does not depend on `cqa-solvers`; it emits plain
//! edge lists ([`GraphSpec`]) that the bench harness feeds into
//! `cqa_solvers::DiGraph` and `cqa_solvers::fig3::reduce`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// A generated graph as vertex/edge lists.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GraphSpec {
    /// The vertices.
    pub vertices: Vec<usize>,
    /// The directed edges.
    pub edges: Vec<(usize, usize)>,
}

impl GraphSpec {
    /// BFS reachability on the spec (ground truth for the generated family).
    pub fn reachable(&self, s: usize, t: usize) -> bool {
        if s == t {
            return self.vertices.contains(&s);
        }
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut stack = vec![s];
        seen.insert(s);
        while let Some(u) = stack.pop() {
            for &(a, b) in &self.edges {
                if a == u {
                    if b == t {
                        return true;
                    }
                    if seen.insert(b) {
                        stack.push(b);
                    }
                }
            }
        }
        false
    }
}

/// A random DAG on `n` vertices: each ordered pair `(i, j)` with `i < j`
/// gets an edge with probability `p` (acyclic by construction).
pub fn random_dag(n: usize, p: f64, seed: u64) -> GraphSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = GraphSpec {
        vertices: (0..n).collect(),
        edges: Vec::new(),
    };
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(p) {
                g.edges.push((i, j));
            }
        }
    }
    g
}

/// A layered DAG: `layers` layers of `width` vertices; every vertex points
/// to `fanout` random vertices of the next layer. Vertex `0` is the natural
/// source and `layers*width - 1` the natural target; reachability distance
/// grows with `layers`, which is what the NL-hardness benchmark sweeps.
pub fn layered_dag(layers: usize, width: usize, fanout: usize, seed: u64) -> GraphSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let id = |layer: usize, i: usize| layer * width + i;
    let mut g = GraphSpec {
        vertices: (0..layers * width).collect(),
        edges: Vec::new(),
    };
    let mut seen = BTreeSet::new();
    for l in 0..layers.saturating_sub(1) {
        for i in 0..width {
            for _ in 0..fanout {
                let j = rng.gen_range(0..width);
                if seen.insert((id(l, i), id(l + 1, j))) {
                    g.edges.push((id(l, i), id(l + 1, j)));
                }
            }
        }
    }
    g
}

/// A directed path `0 → 1 → … → n-1` (worst-case reachability depth).
pub fn path_graph(n: usize) -> GraphSpec {
    GraphSpec {
        vertices: (0..n).collect(),
        edges: (0..n.saturating_sub(1)).map(|v| (v, v + 1)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dag_is_deterministic_per_seed() {
        assert_eq!(random_dag(10, 0.3, 42), random_dag(10, 0.3, 42));
    }

    #[test]
    fn dag_edges_go_forward() {
        let g = random_dag(12, 0.5, 7);
        assert!(g.edges.iter().all(|(u, v)| u < v));
    }

    #[test]
    fn path_reachability() {
        let g = path_graph(6);
        assert!(g.reachable(0, 5));
        assert!(!g.reachable(5, 0));
        assert!(g.reachable(3, 3));
    }

    #[test]
    fn layered_shape() {
        let g = layered_dag(4, 3, 2, 1);
        assert_eq!(g.vertices.len(), 12);
        assert!(g.edges.iter().all(|(u, v)| v / 3 == u / 3 + 1));
    }
}
